// Command ilpgen emits the Section 4.4 integer linear program for a
// MinEnergy(T) instance in CPLEX LP format. Any MIP solver (CPLEX, Gurobi,
// CBC, SCIP, HiGHS) accepts the file; the paper solved instances up to a 2x2
// CMP this way.
//
// Example:
//
//	ilpgen -workload chain:n=5,seed=1 -grid 2x2 -period 0.2 -o chain5.lp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spgcmp/internal/core"
	"spgcmp/internal/exact"
	"spgcmp/internal/platform"
	"spgcmp/internal/workload"
)

func main() {
	var (
		spec   = flag.String("workload", "chain:n=5,seed=1", "workload spec (see spgmap)")
		grid   = flag.String("grid", "2x2", "CMP grid size PxQ")
		period = flag.Float64("period", 0.2, "period bound T in seconds")
		ccr    = flag.Float64("ccr", 0, "rescale communication volumes to this CCR (0 = keep)")
		out    = flag.String("o", "", "output file (empty = stdout)")
	)
	flag.Parse()

	g, err := workload.Load(*spec, *ccr)
	fatalIf(err)
	p, q, err := workload.ParseGrid(*grid)
	fatalIf(err)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		w = f
	}
	stats, err := exact.WriteILP(w, core.Instance{
		Graph:    g,
		Platform: platform.XScale(p, q),
		Period:   *period,
	})
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "ilpgen: %d binary variables, %d constraints\n", stats.Variables, stats.Constraints)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ilpgen:", err)
		os.Exit(1)
	}
}
