// Command spgmap maps a series-parallel workflow onto a CMP grid with the
// paper's heuristics and reports period feasibility, energy and the mapping
// layout.
//
// Examples:
//
//	spgmap -workload streamit:FMRadio -grid 4x4 -period 0.1
//	spgmap -workload random:n=50,elev=8,seed=3 -grid 6x6 -autoperiod -simulate
//	spgmap -workload chain:n=12 -grid 4x4 -period 0.05 -heuristic DPA1D -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"spgcmp/internal/core"
	"spgcmp/internal/exact"
	"spgcmp/internal/experiments"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/sim"
	"spgcmp/internal/spg"
	"spgcmp/internal/workload"
)

func main() {
	var (
		spec       = flag.String("workload", "streamit:FMRadio", "workload spec: streamit:<Name> | random:n=..,elev=..,seed=.. | chain:n=.. | file:<path>")
		grid       = flag.String("grid", "4x4", "CMP grid size PxQ")
		period     = flag.Float64("period", 0.1, "period bound T in seconds")
		autoPeriod = flag.Bool("autoperiod", false, "select T with the Section 6.1.3 protocol (start 1s, divide by 10)")
		ccr        = flag.Float64("ccr", 0, "rescale communication volumes to this CCR (0 = keep)")
		heuristic  = flag.String("heuristic", "all", "all | Random | Greedy | DPA2D | DPA1D | DPA2D1D | Exact")
		seed       = flag.Int64("seed", 1, "seed for the Random heuristic")
		exactRun   = flag.Bool("exact", false, "also run the branch-and-bound exact solver after the heuristics (small instances only)")
		exactBudg  = flag.Int("exact-budget", 0, "exact solver placement budget; 0 keeps the default (30M)")
		simulate   = flag.Bool("simulate", false, "run the pipeline simulator on each solution")
		refine     = flag.Bool("refine", false, "apply the local-search refinement pass to each solution")
		saveBest   = flag.String("save", "", "write the best mapping as JSON to this file")
		verbose    = flag.Bool("v", false, "print the core-by-core layout of each solution")
	)
	flag.Parse()

	g, err := workload.Load(*spec, *ccr)
	fatalIf(err)
	p, q, err := workload.ParseGrid(*grid)
	fatalIf(err)
	pl := platform.XScale(p, q)

	// One analysis cache serves the summary line and every heuristic run.
	an := spg.NewAnalysis(g)
	fmt.Printf("Workload %s: n=%d stages, %d edges, ymax=%d, xmax=%d, CCR=%.3g\n",
		*spec, g.N(), g.M(), an.Elevation(), an.Depth(), an.CCR())
	fmt.Printf("Platform: %dx%d XScale grid, speeds %v GHz, BW %.3g GB/s\n", p, q, pl.Speeds, pl.BW)

	T := *period
	if *autoPeriod {
		ir, ok := experiments.SelectPeriod(g, pl, *seed)
		if !ok {
			fmt.Println("autoperiod: no heuristic succeeds even at T = 1 s")
			os.Exit(1)
		}
		T = ir.Period
		fmt.Printf("Selected period: T = %g s\n", T)
	}
	fmt.Printf("Period bound: T = %g s (link capacity %.3g GB/period)\n\n", T, pl.LinkCapacity(T))

	inst := core.Instance{Graph: g, Platform: pl, Period: T, Analysis: an}
	hs := pickHeuristics(*heuristic, *seed, *exactBudg)
	if *exactRun && !strings.EqualFold(*heuristic, "Exact") {
		hs = append(hs, newExact(*seed, *exactBudg))
	}
	var best *core.Solution
	for _, h := range hs {
		sol, err := h.Solve(inst)
		if err != nil {
			fmt.Printf("%-8s FAILED: %v\n", h.Name(), err)
			continue
		}
		if *refine {
			sol = core.NewRefiner().Refine(inst, sol)
		}
		if best == nil || sol.Energy() < best.Energy() {
			best = sol
		}
		r := sol.Result
		fmt.Printf("%-8s energy %.6g J/period  (comp: leak %.4g + dyn %.4g; comm %.4g)  maxCycle %.4g s  cores %d  links %d\n",
			sol.Heuristic, r.Energy, r.CompLeakEnergy, r.CompDynEnergy, r.CommDynEnergy,
			r.MaxCycleTime, r.ActiveCores, r.UsedLinks)
		if *verbose {
			printLayout(g, pl, sol.Mapping)
		}
		if *simulate {
			sat, err := sim.Run(g, pl, sol.Mapping, T, sim.Options{DataSets: 512, Saturated: true})
			fatalIf(err)
			arr, err := sim.Run(g, pl, sol.Mapping, T, sim.Options{DataSets: 512})
			fatalIf(err)
			fmt.Printf("         simulated: intrinsic period %.6g s (analytic %.6g), steady period %.6g s, latency %.4g s\n",
				sat.MeasuredPeriod, sat.AnalyticPeriod, arr.MeasuredPeriod, arr.MeanLatency)
		}
	}
	if *saveBest != "" {
		if best == nil {
			fatalIf(fmt.Errorf("no solution to save"))
		}
		f, err := os.Create(*saveBest)
		fatalIf(err)
		defer f.Close()
		fatalIf(best.Mapping.WriteJSON(f, pl))
		fmt.Printf("\nSaved best mapping (%s, %.6g J) to %s\n", best.Heuristic, best.Energy(), *saveBest)
	}
}

// newExact builds the branch-and-bound exact solver with the CLI's seed (it
// drives the incumbent-seeding pass, never the result) and placement budget.
func newExact(seed int64, budget int) *exact.Solver {
	s := exact.NewSolver()
	s.Seed = seed
	if budget > 0 {
		s.MaxPlacements = budget
	}
	return s
}

func pickHeuristics(name string, seed int64, budget int) []core.Heuristic {
	if name == "all" {
		return core.All(seed)
	}
	if strings.EqualFold(name, "Exact") {
		return []core.Heuristic{newExact(seed, budget)}
	}
	for _, h := range core.All(seed) {
		if strings.EqualFold(h.Name(), name) {
			return []core.Heuristic{h}
		}
	}
	fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", name)
	os.Exit(2)
	return nil
}

func printLayout(g *spg.Graph, pl *platform.Platform, m *mapping.Mapping) {
	cores, byCore := m.Clusters(pl)
	sort.Slice(cores, func(i, j int) bool {
		if cores[i].U != cores[j].U {
			return cores[i].U < cores[j].U
		}
		return cores[i].V < cores[j].V
	})
	for _, c := range cores {
		stages := byCore[c]
		var work float64
		for _, s := range stages {
			work += g.Stages[s].Weight
		}
		names := make([]string, len(stages))
		for i, s := range stages {
			names[i] = fmt.Sprintf("S%d", s+1)
		}
		fmt.Printf("         %v @ %.3g GHz: %.4g Gcycles, %d stages: %s\n",
			c, pl.Speeds[m.SpeedOf(pl, c)], work, len(stages), strings.Join(names, " "))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgmap:", err)
		os.Exit(1)
	}
}
