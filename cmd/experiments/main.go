// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Table 1 (workflow characteristics), Figures 8-9 and
// Table 2 (StreamIt campaigns on 4x4 and 6x6 CMPs), Figures 10-13 and
// Table 3 (random-SPG campaigns). Text panels go to stdout; CSV files go to
// the -out directory.
//
// The full paper scale uses 100 graphs per elevation point; -graphs trades
// statistical smoothness for runtime (the shapes are stable well below 100).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spgcmp/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "all | table1 | fig8 | fig9 | table2 | fig10 | fig11 | fig12 | fig13 | table3")
		graphs = flag.Int("graphs", 30, "random graphs per elevation point (paper: 100)")
		seed   = flag.Int64("seed", 1, "base seed")
		outDir = flag.String("out", "", "directory for CSV output (empty = no CSV)")
	)
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	saveCSV := func(name, content string) {
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("[wrote %s]\n", path)
	}

	if want("table1") {
		fmt.Println(experiments.RenderTable1())
	}

	var streamItResults []*experiments.StreamItResult
	runStreamIt := func(p, q int, figure string) *experiments.StreamItResult {
		start := time.Now()
		res, err := experiments.RunStreamIt(p, q, nil, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s: StreamIt suite on %dx%d (%v) ===\n", figure, p, q, time.Since(start).Round(time.Millisecond))
		fmt.Println(experiments.RenderStreamIt(res))
		saveCSV(strings.ToLower(figure)+".csv", experiments.CSVStreamIt(res))
		return res
	}
	if want("fig8") || want("table2") {
		streamItResults = append(streamItResults, runStreamIt(4, 4, "Figure8"))
	}
	if want("fig9") || want("table2") {
		streamItResults = append(streamItResults, runStreamIt(6, 6, "Figure9"))
	}
	if want("table2") && len(streamItResults) > 0 {
		fmt.Println(experiments.RenderFailureTable(streamItResults))
		fmt.Println()
	}

	runRandom := func(n, p, q, maxElev int, figure string) []*experiments.RandomResult {
		var results []*experiments.RandomResult
		for _, ccr := range []float64{10, 1, 0.1} {
			start := time.Now()
			res, err := experiments.RunRandom(experiments.RandomConfig{
				N: n, P: p, Q: q, CCR: ccr,
				MaxElevation: maxElev, GraphsPerElev: *graphs, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("=== %s: %d-node random SPGs on %dx%d, CCR=%g (%v) ===\n",
				figure, n, p, q, ccr, time.Since(start).Round(time.Millisecond))
			fmt.Println(experiments.RenderRandom(res))
			saveCSV(fmt.Sprintf("%s_ccr%g.csv", strings.ToLower(figure), ccr), experiments.CSVRandom(res))
			results = append(results, res)
		}
		return results
	}

	var table3Source []*experiments.RandomResult
	if want("fig10") || want("table3") {
		table3Source = runRandom(50, 4, 4, 20, "Figure10")
	}
	if want("fig11") {
		runRandom(50, 6, 6, 20, "Figure11")
	}
	if want("fig12") {
		runRandom(150, 4, 4, 30, "Figure12")
	}
	if want("fig13") {
		runRandom(150, 6, 6, 30, "Figure13")
	}
	if want("table3") && len(table3Source) > 0 {
		fmt.Println(experiments.RenderRandomFailures(table3Source))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
