// Command spgbench lowers `go test -bench` text output onto the shared
// BENCH_* artifact schema (internal/benchfmt): benchmark result lines become
// schema entries, everything else is ignored, and the result is one
// spgcmp-bench/v1 JSON document on stdout. CI pipes every Go benchmark run
// through it so all performance artifacts — engine, campaign, serving — are
// machine-comparable with the same tooling.
//
// Example:
//
//	go test -run '^$' -bench BenchmarkEngine -benchtime 1x . | spgbench -commit "$GITHUB_SHA" > BENCH_engine.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"spgcmp/internal/benchfmt"
)

func main() {
	var (
		commit   = flag.String("commit", "", "git revision recorded in the artifact")
		requireN = flag.Int("require", 0, "fail unless at least this many benchmarks parsed (guards against silently-empty artifacts)")
	)
	flag.Parse()

	benches, err := benchfmt.ParseGoBench(os.Stdin)
	fatalIf(err)
	if len(benches) < *requireN {
		fatalIf(fmt.Errorf("parsed %d benchmarks, -require %d", len(benches), *requireN))
	}

	f := benchfmt.New(*commit, runtime.GOOS, runtime.GOARCH)
	f.Benchmarks = benches
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fatalIf(enc.Encode(f))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgbench:", err)
		os.Exit(1)
	}
}
