// Command spgload is a seeded closed-loop load generator for the spgserve
// /v1/map endpoint: N workers each issue one request, wait for the answer,
// and immediately issue the next, for a fixed duration. Each request maps a
// seeded random workload; with probability -repeat-ratio the workload seed is
// drawn from a small hot set (exercising the content-addressed result store
// and singleflight coalescing), otherwise from a process-wide unique counter
// (always a cold solve). The same -seed therefore replays the same request
// mix.
//
// Output is one spgcmp-bench/v1 JSON document (internal/benchfmt) on stdout
// with a single benchmark entry per run: mean latency as ns_per_op, and
// qps, p50_ms/p95_ms/p99_ms, errors and store_hit_rate (from /v1/healthz
// result-store deltas, when the server has the store enabled) as metrics.
// CI runs one leg per traffic mix and merges the documents into
// BENCH_serving.json.
//
// Example:
//
//	spgload -url http://127.0.0.1:8080 -concurrency 8 -duration 10s -repeat-ratio 0.95
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spgcmp/internal/benchfmt"
)

// loadConfig drives one measurement leg.
type loadConfig struct {
	URL         string        // server base URL, e.g. http://127.0.0.1:8080
	Concurrency int           // closed-loop workers
	Duration    time.Duration // measurement window
	Warmup      time.Duration // unrecorded traffic before measurement (same seeds, so it warms the hot set)
	RepeatRatio float64       // probability a request re-maps a hot-set workload
	HotSet      int           // distinct hot workload seeds
	Seed        int64         // replaying the same seed replays the same mix
	N           int           // random-workload task count
	Elevation   int           // random-workload elevation
	CCR         float64       // random-workload CCR
	P, Q        int           // CMP grid
	Name        string        // benchmark entry name (default "map/repeat=<ratio>")
	Client      *http.Client  // override for tests; defaults to a pooled client
}

// Wire shapes of the service's /v1/map request and the healthz fields this
// tool reads; kept local so the generator builds against a server, not the
// service package internals.

type loadMapRequest struct {
	Workload loadWorkload `json:"workload"`
	P        int          `json:"p"`
	Q        int          `json:"q"`
	Seed     int64        `json:"seed"`
}

type loadWorkload struct {
	Random loadRandom `json:"random"`
}

type loadRandom struct {
	N         int     `json:"n"`
	Elevation int     `json:"elevation"`
	Seed      int64   `json:"seed"`
	CCR       float64 `json:"ccr"`
}

type storeCounters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type healthSnapshot struct {
	ResultStore *storeCounters `json:"result_store"`
}

// nextBody picks the next request: a hot-set workload seed with probability
// RepeatRatio, else a never-repeated seed above the hot range.
func nextBody(rng *rand.Rand, uniq *atomic.Int64, cfg *loadConfig) []byte {
	var wlSeed int64
	if rng.Float64() < cfg.RepeatRatio {
		wlSeed = int64(rng.Intn(cfg.HotSet))
	} else {
		wlSeed = int64(cfg.HotSet) + uniq.Add(1)
	}
	buf, err := json.Marshal(loadMapRequest{
		Workload: loadWorkload{Random: loadRandom{N: cfg.N, Elevation: cfg.Elevation, Seed: wlSeed, CCR: cfg.CCR}},
		P:        cfg.P, Q: cfg.Q, Seed: cfg.Seed,
	})
	if err != nil {
		panic(err) // static shape; cannot fail
	}
	return buf
}

// runPhase runs the closed loop for d and returns the latency of every 200
// answer plus the count of everything else (non-200, transport errors).
func runPhase(cfg *loadConfig, d time.Duration, uniq *atomic.Int64) (latencies []time.Duration, errCount int64) {
	perWorker := make([][]time.Duration, cfg.Concurrency)
	var errs atomic.Int64
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct per-worker streams derived from the one seed.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1_000_003))
			for time.Now().Before(deadline) {
				body := nextBody(rng, uniq, cfg)
				start := time.Now()
				resp, err := cfg.Client.Post(cfg.URL+"/v1/map", "application/json", bytes.NewReader(body))
				elapsed := time.Since(start)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if ok {
					perWorker[w] = append(perWorker[w], elapsed)
				} else {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, l := range perWorker {
		latencies = append(latencies, l...)
	}
	return latencies, errs.Load()
}

func fetchStoreStats(cfg *loadConfig) (*storeCounters, error) {
	resp, err := cfg.Client.Get(cfg.URL + "/v1/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz answered %s", resp.Status)
	}
	var h healthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %v", err)
	}
	return h.ResultStore, nil // nil when the server runs without a store
}

// percentile reads the q-quantile from an ascending-sorted sample using the
// nearest-rank definition.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runLeg executes one full measurement: warmup traffic (unrecorded), a
// healthz snapshot, the measured window, and a second snapshot for the
// store hit rate over exactly the measured requests.
func runLeg(cfg loadConfig) (benchfmt.Benchmark, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.HotSet <= 0 {
		cfg.HotSet = 16
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("map/repeat=%.2f", cfg.RepeatRatio)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        2 * cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		}}
	}
	var uniq atomic.Int64
	if cfg.Warmup > 0 {
		runPhase(&cfg, cfg.Warmup, &uniq)
	}
	before, err := fetchStoreStats(&cfg)
	if err != nil {
		return benchfmt.Benchmark{}, fmt.Errorf("%s unreachable: %v", cfg.URL, err)
	}

	start := time.Now()
	latencies, errCount := runPhase(&cfg, cfg.Duration, &uniq)
	elapsed := time.Since(start)

	after, err := fetchStoreStats(&cfg)
	if err != nil {
		return benchfmt.Benchmark{}, err
	}
	if len(latencies) == 0 {
		return benchfmt.Benchmark{}, fmt.Errorf("no request completed (%d errors)", errCount)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	b := benchfmt.Benchmark{
		Name:       cfg.Name,
		Iterations: int64(len(latencies)),
		NsPerOp:    float64(total.Nanoseconds()) / float64(len(latencies)),
		Metrics: map[string]float64{
			"qps":    float64(len(latencies)) / elapsed.Seconds(),
			"p50_ms": float64(percentile(latencies, 0.50)) / float64(time.Millisecond),
			"p95_ms": float64(percentile(latencies, 0.95)) / float64(time.Millisecond),
			"p99_ms": float64(percentile(latencies, 0.99)) / float64(time.Millisecond),
			"errors": float64(errCount),
		},
	}
	if before != nil && after != nil {
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		if hits+misses > 0 {
			b.Metrics["store_hit_rate"] = float64(hits) / float64(hits+misses)
		}
	}
	return b, nil
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.URL, "url", "http://127.0.0.1:8080", "spgserve base URL")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "closed-loop workers")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measurement window")
	flag.DurationVar(&cfg.Warmup, "warmup", 2*time.Second, "unrecorded warmup traffic before measuring")
	flag.Float64Var(&cfg.RepeatRatio, "repeat-ratio", 0, "probability a request re-maps a hot-set workload [0,1]")
	flag.IntVar(&cfg.HotSet, "hot-set", 16, "distinct hot workload seeds")
	flag.Int64Var(&cfg.Seed, "seed", 1, "request-mix seed; same seed, same mix")
	flag.IntVar(&cfg.N, "n", 8, "random-workload task count")
	flag.IntVar(&cfg.Elevation, "elevation", 2, "random-workload elevation")
	flag.Float64Var(&cfg.CCR, "ccr", 1, "random-workload CCR")
	flag.IntVar(&cfg.P, "p", 2, "CMP rows")
	flag.IntVar(&cfg.Q, "q", 2, "CMP columns")
	flag.StringVar(&cfg.Name, "name", "", `benchmark entry name (default "map/repeat=<ratio>")`)
	commit := flag.String("commit", "", "git revision recorded in the artifact")
	flag.Parse()
	if cfg.RepeatRatio < 0 || cfg.RepeatRatio > 1 {
		fatalIf(fmt.Errorf("-repeat-ratio %v outside [0,1]", cfg.RepeatRatio))
	}

	b, err := runLeg(cfg)
	fatalIf(err)
	f := benchfmt.New(*commit, runtime.GOOS, runtime.GOARCH)
	f.Benchmarks = []benchfmt.Benchmark{b}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fatalIf(enc.Encode(f))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgload:", err)
		os.Exit(1)
	}
}
