package main

import (
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/service"
)

// TestRunLegAgainstService drives the full generator loop against an
// in-process spgserve handler with the result store enabled: a repeat-heavy
// leg must complete requests, report ordered percentiles, and observe a
// store hit rate above zero once the warmup has populated the hot set.
func TestRunLegAgainstService(t *testing.T) {
	srv := service.New(service.Config{
		Cache: engine.NewAnalysisCache(64),
		Store: engine.NewResultStore(256, 0),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b, err := runLeg(loadConfig{
		URL:         ts.URL,
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		Warmup:      150 * time.Millisecond,
		RepeatRatio: 1.0, // every request from the hot set
		HotSet:      2,
		Seed:        7,
		N:           8,
		Elevation:   2,
		CCR:         1,
		P:           2, Q: 2,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "map/repeat=1.00" {
		t.Fatalf("leg name %q", b.Name)
	}
	if b.Iterations == 0 || b.NsPerOp <= 0 {
		t.Fatalf("empty measurement: %+v", b)
	}
	if b.Metrics["errors"] != 0 {
		t.Fatalf("%v requests failed: %+v", b.Metrics["errors"], b)
	}
	p50, p95, p99 := b.Metrics["p50_ms"], b.Metrics["p95_ms"], b.Metrics["p99_ms"]
	if p50 <= 0 || p50 > p95 || p95 > p99 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if b.Metrics["qps"] <= 0 {
		t.Fatalf("qps missing: %+v", b)
	}
	// All-repeat traffic over a 2-seed hot set, after warmup: nearly every
	// measured request is a store hit.
	if hr, ok := b.Metrics["store_hit_rate"]; !ok || hr <= 0.5 {
		t.Fatalf("store_hit_rate %v (present %v), want > 0.5", hr, ok)
	}
}

// TestRunLegWithoutStore checks the generator degrades cleanly against a
// store-less server: no store_hit_rate metric, everything else intact.
func TestRunLegWithoutStore(t *testing.T) {
	srv := service.New(service.Config{Cache: engine.NewAnalysisCache(64)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b, err := runLeg(loadConfig{
		URL: ts.URL, Concurrency: 1, Duration: 150 * time.Millisecond,
		RepeatRatio: 1.0, HotSet: 1, Seed: 3, N: 8, Elevation: 2, CCR: 1, P: 2, Q: 2,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Metrics["store_hit_rate"]; ok {
		t.Fatalf("store_hit_rate reported by store-less server: %+v", b)
	}
	if b.Iterations == 0 {
		t.Fatalf("no requests completed: %+v", b)
	}
}

// TestNextBodyDeterministic pins the seeded mix: the same seed yields the
// same request sequence, hot draws stay inside the hot range, cold draws
// never repeat.
func TestNextBodyDeterministic(t *testing.T) {
	cfg := &loadConfig{RepeatRatio: 0.5, HotSet: 4, N: 8, Elevation: 2, CCR: 1, P: 2, Q: 2, Seed: 9}
	gen := func() []string {
		rng := rand.New(rand.NewSource(42))
		var uniq atomic.Int64
		out := make([]string, 50)
		for i := range out {
			out[i] = string(nextBody(rng, &uniq, cfg))
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across replays:\n%s\n%s", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, body := range a {
		seen[body] = true
	}
	if len(seen) >= len(a) {
		t.Fatal("no request repeated despite repeat-ratio 0.5 over a 4-seed hot set")
	}
}

func TestPercentile(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}} {
		if got := percentile(s, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty sample should yield 0")
	}
}
