// Command spggen generates series-parallel workflows and writes them as JSON
// (loadable by spgmap via file:) or Graphviz DOT.
//
// Examples:
//
//	spggen -workload random:n=50,elev=8,seed=3 -format dot -o graph.dot
//	spggen -workload streamit:Vocoder -ccr 1 -o vocoder.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spgcmp/internal/workload"
)

func main() {
	var (
		spec   = flag.String("workload", "random:n=50,elev=8,seed=1", "workload spec (see spgmap)")
		ccr    = flag.Float64("ccr", 0, "rescale communication volumes to this CCR (0 = keep)")
		format = flag.String("format", "json", "json | dot")
		out    = flag.String("o", "", "output file (empty = stdout)")
	)
	flag.Parse()

	g, err := workload.Load(*spec, *ccr)
	fatalIf(err)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		fatalIf(g.WriteJSON(w))
	case "dot":
		fatalIf(g.WriteDOT(w, *spec))
	default:
		fatalIf(fmt.Errorf("unknown format %q", *format))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spggen:", err)
		os.Exit(1)
	}
}
