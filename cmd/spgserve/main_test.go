package main

import (
	"reflect"
	"testing"
)

// TestParseByteSize: plain byte counts plus K/M/G spellings (all binary,
// case-insensitive, with or without the B/iB tail); junk and negatives are
// rejected.
func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{" 64 ", 64},
		{"4K", 4096},
		{"4k", 4096},
		{"4KB", 4096},
		{"4KiB", 4096},
		{"64M", 64 << 20},
		{"64MiB", 64 << 20},
		{"2G", 2 << 30},
		{"1gb", 1 << 30},
	} {
		got, err := parseByteSize(tc.in)
		if err != nil {
			t.Errorf("parseByteSize(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-4K", "4T", "1.5M", "K"} {
		if got, err := parseByteSize(bad); err == nil {
			t.Errorf("parseByteSize(%q) accepted as %d", bad, got)
		}
	}
}

// TestAddWorkerURLs: one -worker occurrence may carry a single URL or a
// comma-separated list, occurrences accumulate, and empty entries are
// rejected rather than silently dropped.
func TestAddWorkerURLs(t *testing.T) {
	var urls []string
	if err := addWorkerURLs(&urls, "http://a:8081"); err != nil {
		t.Fatal(err)
	}
	if err := addWorkerURLs(&urls, "http://b:8082,http://c:8083 , http://d:8084"); err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8081", "http://b:8082", "http://c:8083", "http://d:8084"}
	if !reflect.DeepEqual(urls, want) {
		t.Fatalf("accumulated %v, want %v", urls, want)
	}
	for _, bad := range []string{"", ",", "http://a:1,,http://b:2", "http://a:1, "} {
		var dst []string
		if err := addWorkerURLs(&dst, bad); err == nil {
			t.Errorf("addWorkerURLs(%q) accepted", bad)
		}
	}
}

// TestAdvertiseURL: wildcard and empty listen hosts advertise as loopback;
// concrete hosts survive.
func TestAdvertiseURL(t *testing.T) {
	for _, tc := range []struct{ addr, want string }{
		{":8080", "http://127.0.0.1:8080"},
		{"0.0.0.0:8080", "http://127.0.0.1:8080"},
		{"[::]:9000", "http://127.0.0.1:9000"},
		{"10.1.2.3:8080", "http://10.1.2.3:8080"},
		{"worker7.cluster:80", "http://worker7.cluster:80"},
	} {
		if got := advertiseURL(tc.addr); got != tc.want {
			t.Errorf("advertiseURL(%q) = %q, want %q", tc.addr, got, tc.want)
		}
	}
}
