// Command spgserve runs the HTTP/JSON mapping service: the Section 6 solver
// stack behind POST /v1/map and POST /v1/campaign, backed by the shared
// campaign engine and the campaign-scope analysis cache (see
// internal/service and the README next to this file).
//
// Every spgserve process also answers the shard-worker endpoint
// POST /v1/cells/execute, so a cluster is just N ordinary instances plus a
// coordinator that knows them: either seed the coordinator with -worker
// flags, or start each worker with -register-with pointing at the
// coordinator and let it announce itself. The coordinator's worker registry
// health-probes every member, and its work-stealing dispatcher pulls
// family-affine cell chunks to whichever workers are free — re-dispatching
// failed chunks to surviving workers — so campaigns stay bit-identical to a
// single-process run through worker deaths, rejoins and replacements.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/service"
)

// addWorkerURLs appends the -worker flag value's URLs to dst: each
// occurrence may carry one URL or a comma-separated list.
func addWorkerURLs(dst *[]string, value string) error {
	for _, u := range strings.Split(value, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			return fmt.Errorf("empty worker URL in %q", value)
		}
		*dst = append(*dst, u)
	}
	return nil
}

// advertiseURL derives the base URL this process registers under from its
// listen address when -advertise is not given: a wildcard or empty host
// becomes 127.0.0.1 (the operator must pass -advertise for anything
// reachable across machines).
func advertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// registerLoop announces this process to a coordinator's POST /v1/workers —
// immediately, then every interval as a keep-alive, so a coordinator that
// restarts (or starts late) relearns its workers without operator action.
func registerLoop(coordinator, selfURL string, interval time.Duration) {
	endpoint := strings.TrimRight(coordinator, "/") + "/v1/workers"
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	registered := false
	for {
		resp, err := http.Post(endpoint, "application/json", bytes.NewReader([]byte(body)))
		switch {
		case err != nil:
			log.Printf("registering with %s failed: %v (retrying)", coordinator, err)
			registered = false
		case resp.StatusCode != http.StatusOK:
			log.Printf("registering with %s answered %s (retrying)", coordinator, resp.Status)
			registered = false
		case !registered:
			log.Printf("registered as %s with coordinator %s", selfURL, coordinator)
			registered = true
		}
		if resp != nil {
			resp.Body.Close()
		}
		time.Sleep(interval)
	}
}

func main() {
	var workerURLs []string
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheSize     = flag.Int("cache-entries", 512, "campaign cache capacity in workloads; <= 0 removes the entry bound, which with -cache-mb 0 disables caching entirely")
		cacheMB       = flag.Int64("cache-mb", 0, "campaign cache byte bound in MiB, estimated by spg.Analysis.MemoryFootprint (0 disables)")
		workers       = flag.Int("workers", 0, "campaign executor workers (0 = GOMAXPROCS)")
		maxCells      = flag.Int("max-campaign-cells", 10_000, "largest accepted campaign, in cells")
		maxGrid       = flag.Int("max-grid", 16, "largest accepted CMP side")
		maxRanges     = flag.Int("max-active-ranges", 4, "concurrently executing /v1/cells/execute ranges; beyond it workers answer 429")
		chunkCells    = flag.Int("chunk-cells", 0, "cells per dispatcher chunk for scheduled campaigns (0 = one workload family)")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "worker health-probe spacing (also the self-registration keep-alive interval)")
		registerWith  = flag.String("register-with", "", "coordinator base URL to self-register with via POST /v1/workers")
		advertise     = flag.String("advertise", "", "base URL this process registers under (default derived from -addr)")
		jobTTL        = flag.Duration("job-ttl", time.Hour, "how long finished campaign jobs stay pollable (negative disables)")
		maxJobs       = flag.Int("max-finished-jobs", 64, "retained finished campaign jobs, oldest evicted first (negative disables)")
		quickstart    = flag.Bool("h-examples", false, "print example requests and exit")
	)
	flag.Func("worker", "shard-worker base URL, repeatable and/or comma-separated; seeds the coordinator's worker registry", func(v string) error {
		return addWorkerURLs(&workerURLs, v)
	})
	flag.Parse()
	if *quickstart {
		fmt.Println(`curl localhost:8080/v1/healthz
curl -X POST localhost:8080/v1/map -d '{"workload":{"streamit":"FFT","ccr":1},"p":4,"q":4,"seed":42}'
curl -X POST localhost:8080/v1/campaign -d '{"streamit":{"p":4,"q":4,"apps":["DCT","FFT"],"seed":42}}'
curl localhost:8080/v1/campaign/c1
curl -X DELETE localhost:8080/v1/campaign/c1
curl localhost:8080/v1/workers
# coordinator of a 3-process cluster (see README.md):
#   spgserve -addr :8080 -worker http://127.0.0.1:8081,http://127.0.0.1:8082
# or let workers announce themselves:
#   spgserve -addr :8081 -register-with http://127.0.0.1:8080`)
		os.Exit(0)
	}

	cache := engine.NewAnalysisCacheBytes(*cacheSize, *cacheMB<<20)
	registry := engine.NewWorkerRegistry(engine.RegistryConfig{ProbeInterval: *probeInterval}, workerURLs...)
	registry.Start()
	defer registry.Stop()
	srv := service.New(service.Config{
		Cache:    cache,
		Executor: &engine.PoolExecutor{Workers: *workers},
		Registry: registry,
		OnFallback: func(start, end int, err error) {
			log.Printf("dispatch chunk [%d,%d) fell back to local execution: %v", start, end, err)
		},
		ChunkCells:       *chunkCells,
		MaxGrid:          *maxGrid,
		MaxCampaignCells: *maxCells,
		MaxActiveRanges:  *maxRanges,
		JobTTL:           *jobTTL,
		MaxFinishedJobs:  *maxJobs,
	})
	if *registerWith != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(*addr)
		}
		go registerLoop(*registerWith, self, *probeInterval)
	}
	role := "single-process"
	if len(workerURLs) > 0 {
		role = fmt.Sprintf("coordinator seeded with %d workers", len(workerURLs))
	}
	log.Printf("spgserve listening on %s (%s; cache: %d entries, %d MiB; workers: %d)",
		*addr, role, *cacheSize, *cacheMB, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
