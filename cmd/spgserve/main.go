// Command spgserve runs the HTTP/JSON mapping service: the Section 6 solver
// stack behind POST /v1/map and POST /v1/campaign, backed by the shared
// campaign engine and the campaign-scope analysis cache (see
// internal/service and the README next to this file).
//
// Every spgserve process also answers the shard-worker endpoint
// POST /v1/cells/execute, so a cluster is just N ordinary instances plus one
// coordinator started with -worker flags naming them: the coordinator's
// campaigns are partitioned into cell ranges, shipped to the workers, and
// reassembled — bit-identical to a single-process run, with local fallback
// when a worker fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/service"
)

func main() {
	var workerURLs []string
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheSize  = flag.Int("cache-entries", 512, "campaign cache capacity in workloads; <= 0 removes the entry bound, which with -cache-mb 0 disables caching entirely")
		cacheMB    = flag.Int64("cache-mb", 0, "campaign cache byte bound in MiB, estimated by spg.Analysis.MemoryFootprint (0 disables)")
		workers    = flag.Int("workers", 0, "campaign executor workers (0 = GOMAXPROCS)")
		maxCells   = flag.Int("max-campaign-cells", 10_000, "largest accepted campaign, in cells")
		maxGrid    = flag.Int("max-grid", 16, "largest accepted CMP side")
		maxRanges  = flag.Int("max-active-ranges", 4, "concurrently executing /v1/cells/execute ranges; beyond it workers answer 429")
		shards     = flag.Int("shards", 0, "cell ranges to partition sharded campaigns into (0 = one per -worker)")
		jobTTL     = flag.Duration("job-ttl", time.Hour, "how long finished campaign jobs stay pollable (negative disables)")
		maxJobs    = flag.Int("max-finished-jobs", 64, "retained finished campaign jobs, oldest evicted first (negative disables)")
		quickstart = flag.Bool("h-examples", false, "print example requests and exit")
	)
	flag.Func("worker", "shard-worker base URL (repeatable); campaigns shard across all listed workers", func(u string) error {
		if u == "" {
			return fmt.Errorf("empty worker URL")
		}
		workerURLs = append(workerURLs, u)
		return nil
	})
	flag.Parse()
	if *quickstart {
		fmt.Println(`curl localhost:8080/v1/healthz
curl -X POST localhost:8080/v1/map -d '{"workload":{"streamit":"FFT","ccr":1},"p":4,"q":4,"seed":42}'
curl -X POST localhost:8080/v1/campaign -d '{"streamit":{"p":4,"q":4,"apps":["DCT","FFT"],"seed":42}}'
curl localhost:8080/v1/campaign/c1
curl -X DELETE localhost:8080/v1/campaign/c1
# coordinator of a 3-process cluster (see README.md):
#   spgserve -addr :8080 -worker http://127.0.0.1:8081 -worker http://127.0.0.1:8082 -shards 4`)
		os.Exit(0)
	}

	cache := engine.NewAnalysisCacheBytes(*cacheSize, *cacheMB<<20)
	pool := &engine.PoolExecutor{Workers: *workers}
	var exec engine.Executor = pool
	if len(workerURLs) > 0 {
		exec = &engine.ShardExecutor{
			Workers:       workerURLs,
			Shards:        *shards,
			LocalFallback: *pool,
			OnFallback: func(start, end int, err error) {
				log.Printf("shard range [%d,%d) fell back to local execution: %v", start, end, err)
			},
		}
	}
	srv := service.New(service.Config{
		Cache:            cache,
		Executor:         exec,
		MaxGrid:          *maxGrid,
		MaxCampaignCells: *maxCells,
		MaxActiveRanges:  *maxRanges,
		JobTTL:           *jobTTL,
		MaxFinishedJobs:  *maxJobs,
	})
	role := "single-process"
	if len(workerURLs) > 0 {
		role = fmt.Sprintf("coordinator of %d workers", len(workerURLs))
	}
	log.Printf("spgserve listening on %s (%s; cache: %d entries, %d MiB; workers: %d)",
		*addr, role, *cacheSize, *cacheMB, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
