// Command spgserve runs the HTTP/JSON mapping service: the Section 6 solver
// stack behind POST /v1/map and POST /v1/campaign, backed by the shared
// campaign engine and the campaign-scope analysis cache (see
// internal/service and the README next to this file).
//
// Every spgserve process also answers the shard-worker endpoint
// POST /v1/cells/execute, so a cluster is just N ordinary instances plus a
// coordinator that knows them: either seed the coordinator with -worker
// flags, or start each worker with -register-with pointing at the
// coordinator and let it announce itself. The coordinator's worker registry
// health-probes every member, and its work-stealing dispatcher pulls
// family-affine cell chunks to whichever workers are free — re-dispatching
// failed chunks to surviving workers — so campaigns stay bit-identical to a
// single-process run through worker deaths, rejoins and replacements.
//
// SIGTERM (and SIGINT) triggers a graceful drain: the process announces
// {draining:true} to its coordinator so it stops receiving chunks without
// being marked dead, sheds new work with 503, finishes in-flight requests
// within -drain-timeout, deregisters, and exits — a rolling restart loses no
// chunk and trips no circuit breaker. The -chaos flag wraps the dispatcher's
// HTTP client in internal/chaos's deterministic fault injector (see that
// package and `spgserve -h` for the spec grammar); CI drives a real
// three-process cluster under it and asserts byte-identical results.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spgcmp/internal/chaos"
	"spgcmp/internal/engine"
	"spgcmp/internal/service"
)

// parseByteSize reads a -result-cache-bytes style value: a plain byte count
// or one with a K/M/G (or KB/MB/GB, KiB/MiB/GiB — all binary) suffix,
// case-insensitive. "0" disables the bound it configures.
func parseByteSize(s string) (int64, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	v = strings.TrimSuffix(strings.TrimSuffix(v, "b"), "i")
	shift := 0
	switch {
	case strings.HasSuffix(v, "k"):
		v, shift = v[:len(v)-1], 10
	case strings.HasSuffix(v, "m"):
		v, shift = v[:len(v)-1], 20
	case strings.HasSuffix(v, "g"):
		v, shift = v[:len(v)-1], 30
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("byte size %q: want a number with optional K/M/G suffix", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("byte size %q: negative", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n << shift, nil
}

// addWorkerURLs appends the -worker flag value's URLs to dst: each
// occurrence may carry one URL or a comma-separated list.
func addWorkerURLs(dst *[]string, value string) error {
	for _, u := range strings.Split(value, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			return fmt.Errorf("empty worker URL in %q", value)
		}
		*dst = append(*dst, u)
	}
	return nil
}

// advertiseURL derives the base URL this process registers under from its
// listen address when -advertise is not given: a wildcard or empty host
// becomes 127.0.0.1 (the operator must pass -advertise for anything
// reachable across machines).
func advertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// registerLoop announces this process to a coordinator's POST /v1/workers —
// immediately, then every interval as a keep-alive, so a coordinator that
// restarts (or starts late) relearns its workers without operator action.
// Closing stop ends the loop; the drain sequence does that before it sends
// the draining notice, so no keep-alive re-registration (which clears the
// coordinator's draining mark) can race it.
func registerLoop(coordinator, selfURL string, interval time.Duration, stop <-chan struct{}) {
	endpoint := strings.TrimRight(coordinator, "/") + "/v1/workers"
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	registered := false
	for {
		resp, err := http.Post(endpoint, "application/json", bytes.NewReader([]byte(body)))
		switch {
		case err != nil:
			log.Printf("registering with %s failed: %v (retrying)", coordinator, err)
			registered = false
		case resp.StatusCode != http.StatusOK:
			log.Printf("registering with %s answered %s (retrying)", coordinator, resp.Status)
			registered = false
		case !registered:
			log.Printf("registered as %s with coordinator %s", selfURL, coordinator)
			registered = true
		}
		if resp != nil {
			resp.Body.Close()
		}
		select {
		case <-time.After(interval):
		case <-stop:
			return
		}
	}
}

// announceDrain tells the coordinator this worker is draining: still alive,
// still probe-answering, but ineligible for new chunks. Best-effort — a
// coordinator that misses it only loses the head start, not correctness (its
// dispatches fail against the 503s and re-route).
func announceDrain(coordinator, selfURL string) {
	endpoint := strings.TrimRight(coordinator, "/") + "/v1/workers"
	body := fmt.Sprintf(`{"url":%q,"draining":true}`, selfURL)
	resp, err := http.Post(endpoint, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Printf("drain announcement to %s failed: %v", coordinator, err)
		return
	}
	resp.Body.Close()
	log.Printf("announced drain of %s to coordinator %s", selfURL, coordinator)
}

// deregister removes this worker from the coordinator's registry — the final
// step of a drain, after in-flight work has finished.
func deregister(coordinator, selfURL string) {
	endpoint := strings.TrimRight(coordinator, "/") + "/v1/workers"
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	req, err := http.NewRequestWithContext(context.Background(), http.MethodDelete, endpoint, bytes.NewReader([]byte(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("deregistering from %s failed: %v", coordinator, err)
		return
	}
	resp.Body.Close()
	log.Printf("deregistered %s from coordinator %s", selfURL, coordinator)
}

func main() {
	var workerURLs []string
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cacheSize     = flag.Int("cache-entries", 512, "campaign cache capacity in workloads; <= 0 removes the entry bound, which with -cache-mb 0 disables caching entirely")
		cacheMB       = flag.Int64("cache-mb", 0, "campaign cache byte bound in MiB, estimated by spg.Analysis.MemoryFootprint (0 disables)")
		workers       = flag.Int("workers", 0, "campaign executor workers (0 = GOMAXPROCS)")
		resultEntries = flag.Int("result-cache-entries", 4096, "content-addressed result store capacity in cell outcomes; with -result-cache-bytes 0 both <= 0 disable the store")
		resultBytes   = flag.String("result-cache-bytes", "0", "content-addressed result store byte bound, e.g. 64M or 1GiB (0 = no byte bound)")
		maxCells      = flag.Int("max-campaign-cells", 10_000, "largest accepted campaign, in cells")
		maxGrid       = flag.Int("max-grid", 16, "largest accepted CMP side")
		maxRanges     = flag.Int("max-active-ranges", 4, "concurrently executing /v1/cells/execute ranges; beyond it workers answer 429")
		maxMaps       = flag.Int("max-active-maps", 4, "concurrently executing /v1/map solves; beyond active+queued the service answers 429")
		maxQueuedMaps = flag.Int("max-queued-maps", 0, "/v1/map solves allowed to wait for an active slot (0 = shed immediately)")
		maxBatches    = flag.Int("max-active-batches", 2, "concurrently executing /v1/map/batch campaigns (plus a wait queue of the same depth); beyond both, 429")
		maxBatchCells = flag.Int("max-batch-cells", 256, "largest accepted /v1/map/batch request, in items")
		chunkCells    = flag.Int("chunk-cells", 0, "cells per dispatcher chunk for scheduled campaigns (0 = one workload family)")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "worker health-probe spacing (also the self-registration keep-alive interval)")
		registerWith  = flag.String("register-with", "", "coordinator base URL to self-register with via POST /v1/workers")
		advertise     = flag.String("advertise", "", "base URL this process registers under (default derived from -addr)")
		jobTTL        = flag.Duration("job-ttl", time.Hour, "how long finished campaign jobs stay pollable (negative disables)")
		maxJobs       = flag.Int("max-finished-jobs", 64, "retained finished campaign jobs, oldest evicted first (negative disables)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests before exiting")
		pprofAddr     = flag.String("pprof-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = disabled); bind to loopback, the endpoints are unauthenticated")
		chaosSpec     = flag.String("chaos", "", `deterministic fault injection on outgoing dispatch requests, e.g. "delay,d=400ms,path=/v1/cells/execute,every=3;status,code=500,every=5" (see internal/chaos)`)
		chaosSeed     = flag.Int64("chaos-seed", 1, "seed for the -chaos probability gates (same seed, same faults)")
		quickstart    = flag.Bool("h-examples", false, "print example requests and exit")
	)
	flag.Func("worker", "shard-worker base URL, repeatable and/or comma-separated; seeds the coordinator's worker registry", func(v string) error {
		return addWorkerURLs(&workerURLs, v)
	})
	flag.Parse()
	if *quickstart {
		fmt.Println(`curl localhost:8080/v1/healthz
curl -X POST localhost:8080/v1/map -d '{"workload":{"streamit":"FFT","ccr":1},"p":4,"q":4,"seed":42}'
curl -X POST localhost:8080/v1/campaign -d '{"streamit":{"p":4,"q":4,"apps":["DCT","FFT"],"seed":42}}'
curl localhost:8080/v1/campaign/c1
curl -X DELETE localhost:8080/v1/campaign/c1
curl localhost:8080/v1/workers
# coordinator of a 3-process cluster (see README.md):
#   spgserve -addr :8080 -worker http://127.0.0.1:8081,http://127.0.0.1:8082
# or let workers announce themselves:
#   spgserve -addr :8081 -register-with http://127.0.0.1:8080`)
		os.Exit(0)
	}

	var dispatchClient *http.Client
	if *chaosSpec != "" {
		rules, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
		dispatchClient = &http.Client{Transport: &chaos.Transport{Seed: *chaosSeed, Rules: rules}}
		log.Printf("CHAOS: injecting %d fault rule(s) into dispatch requests (seed %d)", len(rules), *chaosSeed)
	}

	if *pprofAddr != "" {
		// Profiling lives on its own listener so the service handler never
		// exposes it: DefaultServeMux carries the net/http/pprof registrations
		// from the import above, nothing else is registered on it here.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			log.Printf("pprof server stopped: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	storeBytes, err := parseByteSize(*resultBytes)
	if err != nil {
		log.Fatalf("-result-cache-bytes: %v", err)
	}
	cache := engine.NewAnalysisCacheBytes(*cacheSize, *cacheMB<<20)
	store := engine.NewResultStore(*resultEntries, storeBytes)
	registry := engine.NewWorkerRegistry(engine.RegistryConfig{ProbeInterval: *probeInterval}, workerURLs...)
	registry.Start()
	defer registry.Stop()
	srv := service.New(service.Config{
		Cache:    cache,
		Store:    store,
		Executor: &engine.PoolExecutor{Workers: *workers},
		Registry: registry,
		Client:   dispatchClient,
		OnFallback: func(start, end int, err error) {
			log.Printf("dispatch chunk [%d,%d) fell back to local execution: %v", start, end, err)
		},
		ChunkCells:       *chunkCells,
		MaxGrid:          *maxGrid,
		MaxCampaignCells: *maxCells,
		MaxActiveRanges:  *maxRanges,
		MaxActiveMaps:    *maxMaps,
		MaxQueuedMaps:    *maxQueuedMaps,
		MaxActiveBatches: *maxBatches,
		MaxQueuedBatches: *maxBatches,
		MaxBatchCells:    *maxBatchCells,
		JobTTL:           *jobTTL,
		MaxFinishedJobs:  *maxJobs,
	})
	self := *advertise
	if self == "" {
		self = advertiseURL(*addr)
	}
	stopKeepAlive := make(chan struct{})
	if *registerWith != "" {
		go registerLoop(*registerWith, self, *probeInterval, stopKeepAlive)
	}
	role := "single-process"
	if len(workerURLs) > 0 {
		role = fmt.Sprintf("coordinator seeded with %d workers", len(workerURLs))
	}
	storeDesc := "off"
	if store.Enabled() {
		storeDesc = fmt.Sprintf("%d entries, %d bytes", *resultEntries, storeBytes)
	}
	log.Printf("spgserve listening on %s (%s; cache: %d entries, %d MiB; result store: %s; workers: %d)",
		*addr, role, *cacheSize, *cacheMB, storeDesc, *workers)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case sig := <-sigs:
		// Graceful drain: shed new work, tell the coordinator we are leaving
		// the rotation (ineligible, not dead), finish what is in flight, then
		// deregister and go. A second signal aborts the wait.
		log.Printf("received %v: draining (timeout %v)", sig, *drainTimeout)
		srv.StartDrain()
		close(stopKeepAlive)
		if *registerWith != "" {
			announceDrain(*registerWith, self)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			<-sigs
			log.Print("second signal: aborting drain")
			cancel()
		}()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain ended early: %v", err)
		}
		cancel()
		if *registerWith != "" {
			deregister(*registerWith, self)
		}
		log.Print("drained; exiting")
	}
}
