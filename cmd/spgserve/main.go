// Command spgserve runs the HTTP/JSON mapping service: the Section 6 solver
// stack behind POST /v1/map and POST /v1/campaign, backed by the shared
// campaign engine and the campaign-scope analysis cache (see
// internal/service and the README next to this file).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"spgcmp/internal/engine"
	"spgcmp/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheSize  = flag.Int("cache-entries", 512, "campaign cache capacity in workloads; <= 0 removes the entry bound, which with -cache-mb 0 disables caching entirely")
		cacheMB    = flag.Int64("cache-mb", 0, "campaign cache byte bound in MiB, estimated by spg.Analysis.MemoryFootprint (0 disables)")
		workers    = flag.Int("workers", 0, "campaign executor workers (0 = GOMAXPROCS)")
		maxCells   = flag.Int("max-campaign-cells", 10_000, "largest accepted campaign, in cells")
		maxGrid    = flag.Int("max-grid", 16, "largest accepted CMP side")
		quickstart = flag.Bool("h-examples", false, "print example requests and exit")
	)
	flag.Parse()
	if *quickstart {
		fmt.Println(`curl localhost:8080/v1/healthz
curl -X POST localhost:8080/v1/map -d '{"workload":{"streamit":"FFT","ccr":1},"p":4,"q":4,"seed":42}'
curl -X POST localhost:8080/v1/campaign -d '{"streamit":{"p":4,"q":4,"apps":["DCT","FFT"],"seed":42}}'
curl localhost:8080/v1/campaign/c1`)
		os.Exit(0)
	}

	cache := engine.NewAnalysisCacheBytes(*cacheSize, *cacheMB<<20)
	srv := service.New(service.Config{
		Cache:            cache,
		Executor:         &engine.PoolExecutor{Workers: *workers},
		MaxGrid:          *maxGrid,
		MaxCampaignCells: *maxCells,
	})
	log.Printf("spgserve listening on %s (cache: %d entries, %d MiB; workers: %d)",
		*addr, *cacheSize, *cacheMB, *workers)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
