// Command spglint is spgcmp's invariant multichecker: it runs the five
// internal/lint analyzers (detrange, wirecodec, memoalias, lockguard,
// ctxflow) over the named packages and exits nonzero on any unsuppressed
// finding. CI runs `spglint ./...` as a required job.
//
// Usage:
//
//	spglint [-v] [-list] [packages...]
//
// With no packages, ./... is checked. -v also prints suppressed findings
// with their //spglint:ignore reasons (the audit trail for deliberate
// exemptions). -list prints the analyzers and exits.
//
// Findings are suppressed with a directive on the flagged line or the line
// above it:
//
//	//spglint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"spgcmp/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also print suppressed findings with their reasons")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spglint:", err)
		os.Exit(2)
	}

	failed := false
	checked := 0
	for _, pkg := range pkgs {
		var active []*lint.Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(pkg.Path) {
				active = append(active, a)
			}
		}
		// The malformed-suppression check runs everywhere, even where no
		// analyzer is enforced, so a directive can never silently rot.
		diags, err := lint.Check(pkg, active)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spglint:", err)
			os.Exit(2)
		}
		checked++
		for _, d := range diags {
			if d.Suppressed {
				if *verbose {
					fmt.Println(d)
				}
				continue
			}
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("spglint: %d packages checked\n", checked)
	}
}
