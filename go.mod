module spgcmp

go 1.24
