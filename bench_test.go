// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), at a scale suitable for `go test -bench`. The full-scale
// campaigns are produced by cmd/experiments; these benchmarks exercise the
// identical code paths (workload synthesis, period protocol, all five
// heuristics, aggregation) with reduced instance counts, plus
// per-heuristic micro-benchmarks on representative workloads.
package spgcmp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"spgcmp/internal/core"
	"spgcmp/internal/engine"
	"spgcmp/internal/exact"
	"spgcmp/internal/experiments"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/sim"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// benchApps is the reduced StreamIt subset used by the figure benchmarks:
// one low-elevation pipeline (DCT), one long chain-like graph (DES) and one
// fat graph (FMRadio), covering the three regimes of Section 6.2.1.
func benchApps(b *testing.B) []streamit.App {
	b.Helper()
	var apps []streamit.App
	for _, a := range streamit.Suite() {
		switch a.Name {
		case "DCT", "DES", "FMRadio":
			apps = append(apps, a)
		}
	}
	return apps
}

// BenchmarkTable1StreamItSuite regenerates Table 1: synthesize all 12
// workflows and verify their characteristics.
func BenchmarkTable1StreamItSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range streamit.Suite() {
			g, err := a.Graph()
			if err != nil {
				b.Fatal(err)
			}
			if g.N() != a.N || g.Elevation() != a.YMax || g.Depth() != a.XMax {
				b.Fatalf("%s: characteristics drifted", a.Name)
			}
		}
	}
}

// BenchmarkFigure8StreamIt4x4 regenerates the Figure 8 campaign (normalized
// energies over CCR variants) on the reduced suite, 4x4 grid.
func BenchmarkFigure8StreamIt4x4(b *testing.B) {
	apps := benchApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStreamIt(4, 4, apps, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9StreamIt6x6 regenerates the Figure 9 campaign on 6x6.
func BenchmarkFigure9StreamIt6x6(b *testing.B) {
	apps := benchApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStreamIt(6, 6, apps, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2StreamItFailures regenerates Table 2 (failure counts per
// heuristic on both grids) from the reduced campaigns.
func BenchmarkTable2StreamItFailures(b *testing.B) {
	apps := benchApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r4, err := experiments.RunStreamIt(4, 4, apps, 1)
		if err != nil {
			b.Fatal(err)
		}
		r6, err := experiments.RunStreamIt(6, 6, apps, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = r4.FailureCounts()
		_ = r6.FailureCounts()
	}
}

func benchRandom(b *testing.B, n, p, q, maxElev int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, ccr := range []float64{10, 1, 0.1} {
			_, err := experiments.RunRandom(experiments.RandomConfig{
				N: n, P: p, Q: q, CCR: ccr,
				MinElevation: 1, MaxElevation: maxElev, GraphsPerElev: 2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure10Random50_4x4 regenerates the Figure 10 panels (n=50
// random SPGs on 4x4, CCR 10/1/0.1) over a reduced elevation sweep.
func BenchmarkFigure10Random50_4x4(b *testing.B) { benchRandom(b, 50, 4, 4, 8) }

// BenchmarkFigure11Random50_6x6 regenerates Figure 11 (n=50 on 6x6).
func BenchmarkFigure11Random50_6x6(b *testing.B) { benchRandom(b, 50, 6, 6, 8) }

// BenchmarkFigure12Random150_4x4 regenerates Figure 12 (n=150 on 4x4).
func BenchmarkFigure12Random150_4x4(b *testing.B) { benchRandom(b, 150, 4, 4, 10) }

// BenchmarkFigure13Random150_6x6 regenerates Figure 13 (n=150 on 6x6).
func BenchmarkFigure13Random150_6x6(b *testing.B) { benchRandom(b, 150, 6, 6, 10) }

// BenchmarkTable3RandomFailures regenerates Table 3 (failure counts per CCR
// for n=50 on 4x4) from a reduced campaign.
func BenchmarkTable3RandomFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ccr := range []float64{10, 1, 0.1} {
			res, err := experiments.RunRandom(experiments.RandomConfig{
				N: 50, P: 4, Q: 4, CCR: ccr,
				MinElevation: 1, MaxElevation: 8, GraphsPerElev: 2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res.TotalFailures()
		}
	}
}

// --- Campaign-scale solver reuse: the three cache layers together ---

// BenchmarkCampaign measures the steady-state cost of answering the full
// Figure 8 campaign — all 12 StreamIt applications, all 4 CCR variants, the
// complete period-selection protocol, all five heuristics — through the
// three reuse layers: per-instance analyses, scale-family sharing across the
// CCR variants, and a warm campaign cache (one warming sweep runs before the
// timer starts, modelling the long-running mapping-service pattern the
// campaign cache exists for). Compare with BenchmarkCampaignUncached for the
// end-to-end speedup of the reuse architecture.
func BenchmarkCampaign(b *testing.B) {
	cache := experiments.NewAnalysisCache(64)
	if _, err := experiments.RunStreamItWith(4, 4, nil, 1, cache); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStreamItWith(4, 4, nil, 1, cache); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignUncached answers the identical campaign with every reuse
// layer off: a fresh graph synthesis per (app, CCR) cell and a fresh,
// cache-free instance per (heuristic, period) call — what each Solve cost
// before the analysis cache existed. The per-cell seeds and the worker-pool
// parallelism match BenchmarkCampaign, so the ratio between the two isolates
// the reuse architecture rather than scheduling differences.
func BenchmarkCampaignUncached(b *testing.B) {
	apps := streamit.Suite()
	pl := platform.XScale(4, 4)
	type cellSpec struct {
		app  streamit.App
		ccr  float64
		seed int64
	}
	var cells []cellSpec
	for _, a := range apps {
		for _, ccr := range []float64{a.CCR, 10, 1, 0.1} {
			cells = append(cells, cellSpec{a, ccr, int64(1 + len(cells))})
		}
	}
	runAllFresh := func(g *spg.Graph, T float64, seed int64) bool {
		any := false
		for _, h := range core.AllWith(core.Options{Seed: seed, DPA1DMaxStates: 60_000}) {
			if _, err := h.Solve(core.Instance{Graph: g, Platform: pl, Period: T}); err == nil {
				any = true
			}
		}
		return any
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(cells) {
			workers = len(cells)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range next {
					c := cells[ci]
					g, err := c.app.GraphWithCCR(c.ccr)
					if err != nil {
						b.Error(err)
						return
					}
					if !runAllFresh(g, 1, c.seed) {
						continue
					}
					T := 1.0
					for d := 0; d < 9; d++ {
						if !runAllFresh(g, T/10, c.seed) {
							break
						}
						T /= 10
					}
				}
			}()
		}
		for ci := range cells {
			next <- ci
		}
		close(next)
		wg.Wait()
	}
}

// BenchmarkSelectPeriodSweep measures one application's CCR sweep — the
// Section 6.1 pattern of solving the same workload at every CCR variant —
// with the variants derived as scale-family members of one base analysis:
// reachability, band shapes, convexity verdicts, the downset lattice and the
// cross-period speed thresholds are built once for the whole sweep.
func BenchmarkSelectPeriodSweep(b *testing.B) {
	a, err := streamit.ByName("DES")
	if err != nil {
		b.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseG, err := a.BaseGraph()
		if err != nil {
			b.Fatal(err)
		}
		base := spg.NewAnalysis(baseG)
		for ci, ccr := range []float64{a.CCR, 10, 1, 0.1} {
			an := base.ScaleToCCR(ccr)
			experiments.SelectPeriodAnalyzed(an, pl, int64(1+ci))
		}
	}
}

// BenchmarkSelectPeriodSweepUncached is the same CCR sweep with every layer
// off: a fresh synthesis per variant and a fresh instance per (heuristic,
// period) call.
func BenchmarkSelectPeriodSweepUncached(b *testing.B) {
	a, err := streamit.ByName("DES")
	if err != nil {
		b.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	runAllFresh := func(g *spg.Graph, T float64, seed int64) bool {
		any := false
		for _, h := range core.AllWith(core.Options{Seed: seed, DPA1DMaxStates: 60_000}) {
			if _, err := h.Solve(core.Instance{Graph: g, Platform: pl, Period: T}); err == nil {
				any = true
			}
		}
		return any
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, ccr := range []float64{a.CCR, 10, 1, 0.1} {
			g, err := a.GraphWithCCR(ccr)
			if err != nil {
				b.Fatal(err)
			}
			seed := int64(1 + ci)
			if !runAllFresh(g, 1, seed) {
				continue
			}
			T := 1.0
			for d := 0; d < 9; d++ {
				if !runAllFresh(g, T/10, seed) {
					break
				}
				T /= 10
			}
		}
	}
}

// --- Period-selection protocol: shared analysis cache vs naive rebuild ---

// selectPeriodWorkload is the workload the SelectPeriod benchmarks run: DES
// at CCR 1 with stage weights and volumes scaled down 100x — a fine-grained
// variant whose stages fit sub-10ms periods, so the protocol performs ~5
// divisions instead of 1-2. More divisions is exactly where the shared
// analysis cache compounds: every structure built at the first period is
// reused at each subsequent one.
func selectPeriodWorkload(b *testing.B) *spg.Graph {
	b.Helper()
	a, err := streamit.ByName("DES")
	if err != nil {
		b.Fatal(err)
	}
	g, err := a.GraphWithCCR(1)
	if err != nil {
		b.Fatal(err)
	}
	fine := g.Clone()
	for i := range fine.Stages {
		fine.Stages[i].Weight /= 100
	}
	for i := range fine.Edges {
		fine.Edges[i].Volume /= 100
	}
	return fine
}

// BenchmarkSelectPeriod measures the Section 6.1.3 protocol as shipped: one
// analysis cache per workload, shared across all heuristics and all period
// divisions.
func BenchmarkSelectPeriod(b *testing.B) {
	g := selectPeriodWorkload(b)
	pl := platform.XScale(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.SelectPeriod(g, pl, 1)
	}
}

// BenchmarkSelectPeriodUncached replicates the protocol without the shared
// cache — a fresh cache-free instance per (heuristic, period) call, which is
// what every Solve did before the analysis cache existed. The ratio to
// BenchmarkSelectPeriod is the cache's speedup.
func BenchmarkSelectPeriodUncached(b *testing.B) {
	g := selectPeriodWorkload(b)
	pl := platform.XScale(4, 4)
	runAllFresh := func(T float64) bool {
		any := false
		for _, h := range core.AllWith(core.Options{Seed: 1, DPA1DMaxStates: 60_000}) {
			if _, err := h.Solve(core.Instance{Graph: g, Platform: pl, Period: T}); err == nil {
				any = true
			}
		}
		return any
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		T := 1.0
		if !runAllFresh(T) {
			continue
		}
		for d := 0; d < 9; d++ {
			if !runAllFresh(T / 10) {
				break
			}
			T /= 10
		}
	}
}

// --- Per-structure micro-benchmarks: fresh build vs cached reuse ---

func analysisBenchGraph(b *testing.B) *spg.Graph {
	b.Helper()
	a, err := streamit.ByName("FMRadio")
	if err != nil {
		b.Fatal(err)
	}
	g, err := a.GraphWithCCR(1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkAnalysisValidateFresh(b *testing.B) {
	g := analysisBenchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisValidateCached(b *testing.B) {
	an := spg.NewAnalysis(analysisBenchGraph(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := an.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisReachabilityFresh(b *testing.B) {
	g := analysisBenchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spg.NewReachability(g)
	}
}

func BenchmarkAnalysisReachabilityCached(b *testing.B) {
	an := spg.NewAnalysis(analysisBenchGraph(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.Reachability()
	}
}

// BenchmarkDownsetExpansionsFresh builds the full downset space of a 30-stage
// chain from scratch every iteration; ...Warmed re-enumerates on a shared
// space (one budget epoch per iteration), the DPA1D-across-periods pattern.
func BenchmarkDownsetExpansionsFresh(b *testing.B) {
	inst := chainInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := spg.NewDownsetSpace(inst.Graph, 150_000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ds.Expansions(ds.EmptyID(), inst.Period*inst.Platform.MaxSpeed()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDownsetExpansionsWarmed(b *testing.B) {
	inst := chainInstance(b)
	ds, err := spg.NewDownsetSpace(inst.Graph, 150_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.BeginRun()
		if _, err := ds.Expansions(ds.EmptyID(), inst.Period*inst.Platform.MaxSpeed()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-heuristic micro-benchmarks on representative instances ---

func benchHeuristic(b *testing.B, h core.Heuristic, inst core.Instance) {
	b.Helper()
	// Ensure the instance is solvable before timing (or expectedly not).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = h.Solve(inst)
	}
}

func fmRadioInstance(b *testing.B) core.Instance {
	b.Helper()
	a, err := streamit.ByName("FMRadio")
	if err != nil {
		b.Fatal(err)
	}
	g, err := a.GraphWithCCR(1)
	if err != nil {
		b.Fatal(err)
	}
	return core.Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 1}
}

func chainInstance(b *testing.B) core.Instance {
	b.Helper()
	g, err := randspg.Generate(randspg.Params{N: 30, Elevation: 1, Seed: 4, CCR: 10})
	if err != nil {
		b.Fatal(err)
	}
	return core.Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 0.2}
}

func BenchmarkHeuristicRandomFMRadio(b *testing.B) {
	benchHeuristic(b, core.NewRandom(1), fmRadioInstance(b))
}

func BenchmarkHeuristicGreedyFMRadio(b *testing.B) {
	benchHeuristic(b, core.NewGreedy(), fmRadioInstance(b))
}

func BenchmarkHeuristicDPA2DFMRadio(b *testing.B) {
	benchHeuristic(b, core.NewDPA2D(), fmRadioInstance(b))
}

func BenchmarkHeuristicDPA2D1DFMRadio(b *testing.B) {
	benchHeuristic(b, core.NewDPA2D1D(), fmRadioInstance(b))
}

func BenchmarkHeuristicDPA1DChain30(b *testing.B) {
	benchHeuristic(b, core.NewDPA1D(), chainInstance(b))
}

// The ...Shared variants attach one analysis cache outside the loop, so each
// iteration reuses the precomputed graph structures — the per-heuristic view
// of the SelectPeriod speedup.
func BenchmarkHeuristicDPA2DFMRadioShared(b *testing.B) {
	benchHeuristic(b, core.NewDPA2D(), fmRadioInstance(b).Analyzed())
}

func BenchmarkHeuristicDPA1DChain30Shared(b *testing.B) {
	benchHeuristic(b, core.NewDPA1D(), chainInstance(b).Analyzed())
}

func BenchmarkHeuristicDPA2D1DChain30(b *testing.B) {
	benchHeuristic(b, core.NewDPA2D1D(), chainInstance(b))
}

// --- Single-cell kernel benchmarks (flattened DP kernels) ---

// benchCellKernel times one heuristic in a pool worker's steady state: warm
// analysis (every shared cache populated) and a worker-owned scratch arena
// reset between solves. This isolates the DP kernels themselves — the target
// of the bitset-downset / run-indexed-table / arena flattening — from
// workload synthesis and cache warm-up.
func benchCellKernel(b *testing.B, h core.Heuristic, inst core.Instance) {
	b.Helper()
	inst = inst.Analyzed()
	inst.Scratch = core.NewScratch()
	if _, err := h.Solve(inst); err != nil {
		b.Fatal(err)
	}
	inst.Scratch.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = h.Solve(inst)
		inst.Scratch.Reset()
	}
}

func BenchmarkCellKernel(b *testing.B) {
	dpa2dSweep4 := core.NewDPA2D()
	dpa2dSweep4.Sweeps = 4
	cases := []struct {
		name string
		h    core.Heuristic
		inst func(*testing.B) core.Instance
	}{
		{"DPA2D/FMRadio", core.NewDPA2D(), fmRadioInstance},
		{"DPA2DSweep4/FMRadio", dpa2dSweep4, fmRadioInstance},
		{"DPA2D1D/FMRadio", core.NewDPA2D1D(), fmRadioInstance},
		{"Greedy/FMRadio", core.NewGreedy(), fmRadioInstance},
		{"Random/FMRadio", core.NewRandom(1), fmRadioInstance},
		{"DPA1D/Chain30", core.NewDPA1D(), chainInstance},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchCellKernel(b, c.h, c.inst(b)) })
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// BenchmarkAblationRefinement measures the local-search post-pass
// (an extension beyond the paper) applied to every heuristic's output.
func BenchmarkAblationRefinement(b *testing.B) {
	g, err := randspg.Generate(randspg.Params{N: 30, Elevation: 5, Seed: 2, CCR: 1})
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 0.2}
	sol, err := core.NewGreedy().Solve(inst)
	if err != nil {
		b.Fatal(err)
	}
	ref := core.NewRefiner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.Refine(inst, sol)
	}
}

// BenchmarkAblationRandomTrials1 and ...Trials10 quantify the cost of the
// paper's "ten calls, keep the best" rule for the Random baseline.
func BenchmarkAblationRandomTrials1(b *testing.B) {
	benchHeuristic(b, &core.Random{Trials: 1, Seed: 1}, fmRadioInstance(b))
}

func BenchmarkAblationRandomTrials10(b *testing.B) {
	benchHeuristic(b, &core.Random{Trials: 10, Seed: 1}, fmRadioInstance(b))
}

// BenchmarkAblationExactDAGPartition and ...ExactGeneral compare the
// exhaustive search with and without the DAG-partition rule (the paper's
// future-work question) on a tiny instance.
func BenchmarkAblationExactDAGPartition(b *testing.B) {
	g, err := randspg.Generate(randspg.Params{N: 7, Elevation: 2, Seed: 1, CCR: 10})
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.3}
	s := exact.NewSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Solve(inst)
	}
}

func BenchmarkAblationExactGeneral(b *testing.B) {
	g, err := randspg.Generate(randspg.Params{N: 7, Elevation: 2, Seed: 1, CCR: 10})
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.3}
	s := exact.NewSolver()
	s.General = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Solve(inst)
	}
}

// BenchmarkExactSolver is the bench-exact CI family: the branch-and-bound
// engine against the exhaustive baseline on seeded random instances both
// engines complete (2x2, 2x3), plus the 3x3 frontier row only
// branch-and-bound finishes — the exhaustive engine burns its whole default
// budget there (see TestBnBFrontierExhaustiveDefaultBudget). CI renames the
// engine prefixes onto a common benchmark name and diffs the two with
// benchstat, gating on a >=5x branch-and-bound speedup at 2x3.
func BenchmarkExactSolver(b *testing.B) {
	rows := []struct {
		name       string
		params     randspg.Params
		p, q       int
		frac       float64 // period as a fraction of total work
		exhaustive bool    // baseline engine completes this row
	}{
		{"2x2", randspg.Params{N: 7, Elevation: 2, Seed: 1, CCR: 10}, 2, 2, 0.30, true},
		{"2x3", randspg.Params{N: 9, Elevation: 3, Seed: 1, CCR: 10}, 2, 3, 0.25, true},
		{"3x3", randspg.Params{N: 10, Elevation: 4, Seed: 9, CCR: 10}, 3, 3, 0.20, false},
	}
	instance := func(b *testing.B, i int) core.Instance {
		g, err := randspg.Generate(rows[i].params)
		if err != nil {
			b.Fatal(err)
		}
		var w float64
		for _, st := range g.Stages {
			w += st.Weight
		}
		return core.Instance{Graph: g, Platform: platform.XScale(rows[i].p, rows[i].q), Period: rows[i].frac * w}
	}
	b.Run("bnb", func(b *testing.B) {
		for i := range rows {
			inst := instance(b, i)
			b.Run(rows[i].name, func(b *testing.B) {
				s := exact.NewSolver()
				for n := 0; n < b.N; n++ {
					if _, err := s.Solve(inst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := range rows {
			if !rows[i].exhaustive {
				continue
			}
			inst := instance(b, i)
			b.Run(rows[i].name, func(b *testing.B) {
				s := exact.NewSolver()
				s.Exhaustive = true
				for n := 0; n < b.N; n++ {
					if _, err := s.Solve(inst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkSimulator measures the pipeline simulator on a mapped StreamIt
// workflow (512 data sets).
func BenchmarkSimulator(b *testing.B) {
	inst := fmRadioInstance(b)
	sol, err := core.NewDPA2D().Solve(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(inst.Graph, inst.Platform, sol.Mapping, inst.Period,
			sim.Options{DataSets: 512, Saturated: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILPEmission measures generation of the Section 4.4 program.
func BenchmarkILPEmission(b *testing.B) {
	g, err := randspg.Generate(randspg.Params{N: 8, Elevation: 2, Seed: 1, CCR: 10})
	if err != nil {
		b.Fatal(err)
	}
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.WriteILP(devnull{}, inst); err != nil {
			b.Fatal(err)
		}
	}
}

type devnull struct{}

func (devnull) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkAblationDPA2DTranspose compares the paper's orientation with the
// transposed one on a representative workload.
func BenchmarkAblationDPA2DTranspose(b *testing.B) {
	benchHeuristic(b, &core.DPA2D{Transpose: true}, fmRadioInstance(b))
}

// --- Campaign engine: cells + pluggable executor vs the legacy inline loop ---

// benchEngineCache returns a campaign cache pre-warmed with one full pass of
// the reduced suite, modelling the steady state of a long-running service.
func benchEngineCache(b *testing.B, apps []streamit.App) *engine.AnalysisCache {
	b.Helper()
	cache := experiments.NewAnalysisCache(64)
	if _, err := experiments.RunStreamItWith(4, 4, apps, 1, cache); err != nil {
		b.Fatal(err)
	}
	return cache
}

// BenchmarkEngineCampaign measures a warm StreamIt campaign through the
// engine path: cell enumeration, the pool executor, and the indexed
// order-independent reducer. Compare with BenchmarkEngineCampaignLegacy —
// the pre-engine monolithic loop over the same warm cache — to see what the
// cell/executor indirection costs (it should be noise next to the solves).
func BenchmarkEngineCampaign(b *testing.B) {
	apps := benchApps(b)
	cache := benchEngineCache(b, apps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := engine.Run(context.Background(), nil, engine.Campaign{
			Cells: experiments.StreamItCells(4, 4, apps, 1),
			Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.ReduceStreamIt(4, 4, apps, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCampaignLegacy reproduces the pre-engine campaign loop over
// the same warm cache: serial base-analysis resolution per application, an
// inline worker pool over the CCR variants, and direct writes into the
// result table — the shape RunStreamItWith had before it became an engine
// adapter.
func BenchmarkEngineCampaignLegacy(b *testing.B) {
	apps := benchApps(b)
	cache := benchEngineCache(b, apps)
	pl := platform.XScale(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bases := make([]*spg.Analysis, len(apps))
		for ai, a := range apps {
			a := a
			an, err := cache.Get(
				fmt.Sprintf("streamit/%s/n=%d/y=%d/x=%d", a.Name, a.N, a.YMax, a.XMax),
				func() (*spg.Analysis, error) {
					g, err := a.BaseGraph()
					if err != nil {
						return nil, err
					}
					return spg.NewAnalysis(g), nil
				})
			if err != nil {
				b.Fatal(err)
			}
			bases[ai] = an
		}
		type variant struct {
			appIdx int
			ccr    float64
		}
		var variants []variant
		for ai, a := range apps {
			variants = append(variants,
				variant{ai, a.CCR}, variant{ai, 10}, variant{ai, 1}, variant{ai, 0.1})
		}
		type cellOut struct {
			res experiments.InstanceResult
		}
		outs := make([]cellOut, len(variants))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(variants) {
			workers = len(variants)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for vi := range next {
					v := variants[vi]
					an := bases[v.appIdx].ScaleToCCR(v.ccr)
					ir, _ := experiments.SelectPeriodAnalyzed(an, pl, 1+int64(vi))
					outs[vi] = cellOut{res: ir}
				}
			}()
		}
		for vi := range variants {
			next <- vi
		}
		close(next)
		wg.Wait()
	}
}

// BenchmarkShardExecutor measures a warm StreamIt campaign through the
// distributed path: specs serialized over HTTP/JSON to two in-process
// workers (httptest servers sharing the campaign cache), wire results
// reassembled by index. Compare with BenchmarkEngineCampaign — the same
// campaign on the in-process pool — to see what the wire crossing costs;
// results are bit-identical by the shard-equivalence suite.
func BenchmarkShardExecutor(b *testing.B) {
	apps := benchApps(b)
	cache := benchEngineCache(b, apps)
	worker := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req engine.ExecuteCellsRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			results, err := engine.ExecuteSpecs(r.Context(), nil, req.Cells, cache, nil)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_ = json.NewEncoder(w).Encode(engine.ExecuteCellsResponse{Results: results})
		}))
	}
	w1, w2 := worker(), worker()
	defer w1.Close()
	defer w2.Close()
	ex := &engine.ShardExecutor{Workers: []string{w1.URL, w2.URL}, Shards: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := engine.Run(context.Background(), ex, engine.Campaign{
			Cells: experiments.StreamItCells(4, 4, apps, 1),
			Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.ReduceStreamIt(4, 4, apps, results); err != nil {
			b.Fatal(err)
		}
	}
	if ex.Fallbacks() > 0 {
		b.Fatalf("%d shard ranges fell back locally", ex.Fallbacks())
	}
}

// BenchmarkDispatcherSteal measures the cluster scheduler's point on a
// heterogeneous cluster: one worker is artificially slow (a per-cell stall
// modelling an overloaded host), the other fast. Under the work-stealing
// Dispatcher the fast worker pulls (and steals) most chunks, so the
// campaign finishes near the fast worker's pace; under the ShardExecutor's
// static up-front ranges the slow worker serializes its whole half. Both
// sub-benchmarks run the identical campaign over the same warm cache, and
// results stay bit-identical either way.
func BenchmarkDispatcherSteal(b *testing.B) {
	apps := benchApps(b)
	cache := benchEngineCache(b, apps)
	const perCell = 15 * time.Millisecond
	worker := func(stall bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req engine.ExecuteCellsRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if stall {
				select {
				case <-time.After(time.Duration(len(req.Cells)) * perCell):
				case <-r.Context().Done():
					return
				}
			}
			results, err := engine.ExecuteSpecs(r.Context(), nil, req.Cells, cache, nil)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_ = json.NewEncoder(w).Encode(engine.ExecuteCellsResponse{Results: results})
		}))
	}
	slow, fast := worker(true), worker(false)
	defer slow.Close()
	defer fast.Close()
	campaign := func(b *testing.B, ex engine.Executor) {
		b.Helper()
		results, err := engine.Run(context.Background(), ex, engine.Campaign{
			Cells: experiments.StreamItCells(4, 4, apps, 1),
			Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.ReduceStreamIt(4, 4, apps, results); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("WorkSteal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := &engine.Dispatcher{
				Registry:   engine.NewWorkerRegistry(engine.RegistryConfig{}, slow.URL, fast.URL),
				ChunkCells: 1,
			}
			campaign(b, d)
			if st := d.Stats(); st.LocalFallbacks > 0 {
				b.Fatalf("%d chunks fell back locally", st.LocalFallbacks)
			}
		}
	})
	b.Run("StaticRanges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex := &engine.ShardExecutor{Workers: []string{slow.URL, fast.URL}, Shards: 2}
			campaign(b, ex)
			if ex.Fallbacks() > 0 {
				b.Fatalf("%d shard ranges fell back locally", ex.Fallbacks())
			}
		}
	})
}
