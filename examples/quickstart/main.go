// Quickstart: build a small series-parallel workflow with the composition
// API, map it onto a 4x4 XScale CMP under a period bound, and print the
// energy breakdown of every heuristic.
package main

import (
	"fmt"
	"log"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func main() {
	// A video-analytics-style workflow: decode -> (filter | detect) -> fuse
	// -> encode, built by explicit series/parallel composition. Weights are
	// in Gcycles per data set; communication volumes in GB.
	decodeSplit := spg.Primitive(0.04, 0.0, 0.002) // decode feeds the fork
	filter, err := spg.Chain([]float64{0, 0.035, 0.02, 0}, []float64{0.002, 0.001, 0.001})
	if err != nil {
		log.Fatal(err)
	}
	detect, err := spg.Chain([]float64{0, 0.06, 0}, []float64{0.002, 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	analysis := spg.Parallel(filter, detect)       // two branches in parallel
	fuseEncode := spg.Primitive(0.01, 0.03, 0.001) // fuse feeds encode
	g := spg.Series(spg.Series(decodeSplit, analysis), fuseEncode)

	fmt.Printf("Workflow: %v (series-parallel: %v)\n", g, spg.IsSeriesParallel(g))
	fmt.Printf("Total work %.3g Gcycles, total traffic %.3g GB, CCR %.3g\n\n",
		g.TotalWork(), g.TotalVolume(), spg.CCR(g))

	// One data set must complete every 60 ms on a 4x4 Intel XScale grid.
	inst := core.Instance{
		Graph:    g,
		Platform: platform.XScale(4, 4),
		Period:   0.060,
	}

	fmt.Printf("%-8s  %-12s %-10s %-6s\n", "method", "energy (J)", "cycle (s)", "cores")
	for _, h := range core.All(42) {
		sol, err := h.Solve(inst)
		if err != nil {
			fmt.Printf("%-8s  no valid mapping\n", h.Name())
			continue
		}
		fmt.Printf("%-8s  %-12.5g %-10.4g %-6d\n",
			h.Name(), sol.Energy(), sol.Result.MaxCycleTime, sol.Result.ActiveCores)
	}
}
