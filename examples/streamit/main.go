// StreamIt example: map every workflow of the StreamIt suite (Table 1 of the
// paper) onto a 4x4 CMP at its protocol-selected period and print which
// heuristic wins where — the paper's central observation is that each
// specialized heuristic dominates on the graph shape it was designed for:
// DPA1D/DPA2D1D on long pipeline-like graphs, DPA2D on fat graphs of large
// elevation, with Greedy robust but dominated.
package main

import (
	"fmt"
	"log"
	"math"

	"spgcmp/internal/experiments"
	"spgcmp/internal/platform"
	"spgcmp/internal/streamit"
)

func main() {
	pl := platform.XScale(4, 4)
	fmt.Println("StreamIt suite on a 4x4 XScale CMP (original CCR, protocol-selected period)")
	fmt.Printf("%-16s %4s %5s %5s  %9s  %-8s  %s\n",
		"app", "n", "ymax", "xmax", "T (s)", "winner", "normalized energies")

	for _, app := range streamit.Suite() {
		g, err := app.Graph()
		if err != nil {
			log.Fatal(err)
		}
		ir, ok := experiments.SelectPeriod(g, pl, int64(app.Index))
		if !ok {
			fmt.Printf("%-16s %4d %5d %5d  infeasible at 1 s\n", app.Name, app.N, app.YMax, app.XMax)
			continue
		}
		best := ir.BestEnergy()
		winner := "-"
		detail := ""
		for _, o := range ir.Outcomes {
			if !o.OK {
				detail += fmt.Sprintf("%s=-  ", o.Heuristic)
				continue
			}
			norm := o.Energy / best
			if math.Abs(norm-1) < 1e-9 {
				winner = o.Heuristic
			}
			detail += fmt.Sprintf("%s=%.2f  ", o.Heuristic, norm)
		}
		fmt.Printf("%-16s %4d %5d %5d  %9.0e  %-8s  %s\n",
			app.Name, app.N, app.YMax, app.XMax, ir.Period, winner, detail)
	}
}
