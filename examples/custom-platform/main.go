// Custom-platform example: the library is not tied to the paper's Intel
// XScale model. This example defines a hypothetical 8-mode near-threshold
// CMP, maps the same workflow on it and on the XScale reference, compares
// the winners, and cross-checks a tiny instance against the exhaustive
// optimal solver (the role played by CPLEX in Section 4.4). It also emits
// the instance's ILP in LP format to stdout-compatible sizing stats.
package main

import (
	"fmt"
	"log"

	"spgcmp/internal/core"
	"spgcmp/internal/exact"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
)

func main() {
	// A dense-DVFS design: eight speed steps with an aggressive low-power
	// region (power grows roughly with the cube of frequency).
	custom := &platform.Platform{
		P: 4, Q: 4,
		Speeds:      []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0, 1.2},
		DynPower:    []float64{0.020, 0.080, 0.190, 0.380, 0.660, 1.050, 1.600, 2.500},
		LeakPower:   0.050,
		BW:          12.8, // narrower 8-byte links at 1.6 GHz
		EnergyPerGB: 8e-12 * 8e9,
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	xscale := platform.XScale(4, 4)

	g, err := randspg.Generate(randspg.Params{N: 45, Elevation: 7, Seed: 11, CCR: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workflow: %v, CCR %.3g\n\n", g, spg.CCR(g))

	for _, tc := range []struct {
		name string
		pl   *platform.Platform
	}{{"XScale 5-mode", xscale}, {"custom 8-mode", custom}} {
		inst := core.Instance{Graph: g, Platform: tc.pl, Period: 0.4}
		var best *core.Solution
		for _, h := range core.All(5) {
			if sol, err := h.Solve(inst); err == nil && (best == nil || sol.Energy() < best.Energy()) {
				best = sol
			}
		}
		if best == nil {
			fmt.Printf("%-14s: no valid mapping at T=0.4s\n", tc.name)
			continue
		}
		fmt.Printf("%-14s: best %s, %.5g J/period on %d cores\n",
			tc.name, best.Heuristic, best.Energy(), best.Result.ActiveCores)
	}

	// Exact cross-check on a tiny instance and the custom platform shrunk to
	// 2x2 (the scale the paper's ILP could handle).
	small, err := randspg.Generate(randspg.Params{N: 7, Elevation: 2, Seed: 3, CCR: 10})
	if err != nil {
		log.Fatal(err)
	}
	tiny := &platform.Platform{
		P: 2, Q: 2,
		Speeds: custom.Speeds, DynPower: custom.DynPower,
		LeakPower: custom.LeakPower, BW: custom.BW, EnergyPerGB: custom.EnergyPerGB,
	}
	inst := core.Instance{Graph: small, Platform: tiny, Period: 0.5}
	opt, err := exact.NewSolver().Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExact optimum on 2x2 (n=%d): %.5g J/period\n", small.N(), opt.Energy())
	for _, h := range core.All(5) {
		sol, err := h.Solve(inst)
		if err != nil {
			fmt.Printf("  %-8s failed\n", h.Name())
			continue
		}
		fmt.Printf("  %-8s %.5g J/period (%.1f%% above optimal)\n",
			h.Name(), sol.Energy(), 100*(sol.Energy()/opt.Energy()-1))
	}

	stats, err := exact.WriteILP(discard{}, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSection 4.4 ILP for this instance: %d binary variables, %d constraints (see cmd/ilpgen to export)\n",
		stats.Variables, stats.Constraints)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
