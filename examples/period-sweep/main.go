// Period-sweep example: the energy/performance trade-off at the heart of
// MinEnergy(T). For one workflow, sweep the period bound from loose to tight
// and report the minimum energy over the heuristics at each point: looser
// periods let cores run slower (superlinear power savings) and pack onto
// fewer cores (leakage savings); tighter ones force spreading and speed.
// This also runs the pipeline simulator on each winning mapping to confirm
// the achieved rate matches the analytic model.
package main

import (
	"fmt"
	"log"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/sim"
)

func main() {
	g, err := randspg.Generate(randspg.Params{N: 40, Elevation: 6, Seed: 7, CCR: 10})
	if err != nil {
		log.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	fmt.Printf("Workflow: %v, total work %.3g Gcycles\n", g, g.TotalWork())
	fmt.Printf("%-10s  %-8s  %-12s  %-7s  %-14s\n",
		"T (s)", "winner", "energy (J)", "cores", "simulated T(s)")

	// One analysis cache serves the whole sweep: every heuristic at every
	// period reuses the same validation, reachability, band and downset
	// structures.
	inst := core.NewInstance(g, pl, 1)
	for _, T := range []float64{2, 1, 0.5, 0.25, 0.12, 0.06, 0.03} {
		var best *core.Solution
		for _, h := range core.All(1) {
			sol, err := h.Solve(inst.WithPeriod(T))
			if err != nil {
				continue
			}
			if best == nil || sol.Energy() < best.Energy() {
				best = sol
			}
		}
		if best == nil {
			fmt.Printf("%-10g  no heuristic finds a valid mapping\n", T)
			continue
		}
		rep, err := sim.Run(g, pl, best.Mapping, T, sim.Options{DataSets: 256})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10g  %-8s  %-12.5g  %-7d  %-14.6g\n",
			T, best.Heuristic, best.Energy(), best.Result.ActiveCores, rep.MeasuredPeriod)
	}
}
