// Package spgcmp reproduces "Energy-aware mappings of series-parallel
// workflows onto chip multiprocessors" (Benoit, Melhem, Renaud-Goud, Robert —
// ICPP 2011 / INRIA RR-7521): minimum-energy DAG-partition mappings of
// series-parallel streaming workflows onto DVFS-capable 2D CMP grids under a
// period bound.
//
// The implementation lives in internal packages:
//
//	internal/spg         series-parallel graphs, composition, labels, downsets,
//	                     and the scale-family Analysis cache
//	internal/platform    CMP grid, XScale DVFS model, XY routing, snake embedding
//	internal/mapping     DAG-partition mappings, period and energy evaluation
//	internal/core        the five heuristics: Random, Greedy, DPA2D, DPA1D, DPA2D1D
//	internal/exact       branch-and-bound optimal solver (admissible energy
//	                     bounds, heuristic incumbent seeding, parallel subtree
//	                     search), its exhaustive baseline, and the Section 4.4
//	                     ILP emitter
//	internal/sim         steady-state pipeline simulator
//	internal/streamit    the 12 StreamIt workflows of Table 1
//	internal/randspg     random SPG generation with exact elevation
//	internal/engine      the campaign engine: deterministic cells, pluggable
//	                     executors, the campaign-scope AnalysisCache
//	internal/experiments the Section 6 evaluation campaigns (engine adapters)
//	internal/service     the HTTP/JSON mapping service (cmd/spgserve)
//	internal/chaos       deterministic fault injection for the cluster paths
//	internal/benchfmt    the spgcmp-bench/v1 schema all BENCH_* CI artifacts carry
//
// # The cache and result-store layers
//
// The paper's evaluation is a campaign: every workload is solved across five
// heuristics, up to ten period divisions (Section 6.1.3), four CCR variants
// (Section 6.1.1), and — in the random sweeps — hundreds of graphs, many
// times over. Solver reuse is therefore structured in four nested layers,
// each proven bit-identical to a cache-free run by the equivalence suite:
//
// Layer 1 — instance scope. spg.Analysis memoizes everything a heuristic
// derives from the workload alone: validation, transitive closure, elevation
// levels, label grids and prefix sums, DPA2D band contexts with
// rectangle-convexity verdicts, and the interned DPA1D downset space with
// per-run budget epochs. Each structure hides behind its own sync.Once-style
// slot, so an expensive first build never blocks cheap getters on concurrent
// goroutines. core.NewInstance attaches a cache, Instance.WithPeriod
// re-solves at a new bound without re-analyzing, and every Solve falls back
// to a private cache when none is attached. This layer applies whenever the
// same workload is solved more than once — several heuristics, several
// periods. Riding on it, the core package keys two further structures to the
// analysis through its Aux hooks: cross-period speed-threshold tables (the
// minimal period at which each ladder speed can process each DPA2D
// rectangle, monotone in T and computed once for all period divisions) with
// per-period rectangle-energy snapshots shared between DPA2D, DPA2D-T and
// DPA2D1D, and a DPA1D run-outcome memo that replays both recorded
// state-explosion failures and — keyed additionally by the platform's energy
// fingerprint, which steers the DP's argmin — successful chunk
// decompositions (copy-on-return through a fresh mapping build, so callers
// never alias solutions), instead of re-running enumerations whose outcome
// is already determined.
//
// Layer 2 — scale-family scope. The CCR variants of a workload differ only
// by a uniform edge-volume rescale, so Analysis.ScaleToCCR derives a variant
// analysis that shares the structural caches verbatim — nothing in them
// reads a volume — and recomputes only the volume-dependent entries (CCR,
// in-volumes, band crossing volumes, downset cut volumes) with the exact
// arithmetic a fresh analysis would use. One analysis effectively serves an
// application's whole Section 6.1 column. This layer applies whenever
// volume-rescaled variants of one workload are solved: RunStreamIt derives
// all four CCR cells of an application from one base analysis.
//
// Layer 3 — campaign scope. engine.AnalysisCache (re-exported as
// experiments.AnalysisCache) is a bounded, workload-identity-keyed LRU
// carrying whole analyses across campaign runs: repeated sweeps over the
// same suite — the long-running mapping-service pattern the ROADMAP aims at
// — skip workload synthesis and analysis entirely. Retention is bounded by
// an entry count and, optionally, a byte account fed by
// spg.Analysis.MemoryFootprint estimates (downset lattices dominate; the
// estimate is refreshed on every hit because lattices grow while solvers
// run). RunStreamIt and RunRandom consult the process-wide default cache
// (or one supplied by the caller; nil disables the layer). This layer
// applies across calls: the 6x6 campaign reuses the 4x4 campaign's
// analyses, and a re-run reuses everything.
//
// Layer 4 — outcome scope. engine.ResultStore memoizes finished cell
// outcomes themselves, keyed by content: every wire-codable CellSpec has a
// canonical content key (CellSpec.ContentKey) — a versioned hash over the
// workload identity, grid, and each solver option that can steer the
// outcome, excluding campaign-local addressing and the parallelism knob,
// which provably cannot — and engine.Run consults the store before
// dispatching a cell, so a spec solved once anywhere (a /v1/map request, a
// batch item, a campaign cell, a shard worker's range) never solves again
// while it stays resident. Entries hold the result's JSON wire form and
// decode to fresh copies on every hit, so served results are byte-identical
// to fresh solves (the store-equivalence suite proves it over the full
// StreamIt suite and the seeded random panel, cold and warm, at 1 and 4
// workers) and callers never alias store memory. Retention is LRU under an
// entry bound and a byte account. Cells whose workloads are in-process
// closures have no wire form, no content key, and always solve. Where the
// analysis cache makes re-solving cheap, this layer makes it free — the
// high-QPS serving pattern.
//
// # The flattened DP kernels
//
// Under the cache layers, the DP solvers themselves run on dense data
// structures rather than map-keyed states. spg.DownsetSpace interns every
// downset of a chain once: per-downset element counts live in a flat stride
// arena, membership in packed bitsets, identity in an open-addressed FNV
// table, and successor expansion in id-indexed entries with epoch-stamped
// DFS marks — so DPA1D's enumeration walks integer ids, never hashing a
// map. The DP tables of DPA2D, DPA1D and DPA2D1D are run-indexed slices
// carved from a core.Scratch: a bump arena of doubling blocks handing out
// float64/int32 windows, row matrices sliced from one flat block, and
// distribution buffers, all recycled by a reset that retains the largest
// block. Scratch ownership follows three rules: one goroutine uses a
// Scratch at a time; long-lived pool workers own one for life — the
// engine's ExecuteScratch seam threads it through solveCell and resets it
// between cells and between period divisions — and solvers accept a nil
// Scratch (falling back to plain allocation), so the arenas are an
// optimization, never an API obligation. Buffers come back dirty; kernels
// fully initialize what they use. Nothing arena-backed escapes a cell:
// outcomes carry scalars and wire-form copies, and shared per-period
// tables are seeded into arena memory by copying (snapshotInto) and
// published back by copying (publish), an idiom pinned by the memoalias
// golden fixture. Options.SweepParallelism additionally fans the
// independent per-state sweeps inside one DPA2D layer across goroutines
// on child arenas — writes are disjoint per state, shared memos are
// mutex-guarded pure caches, and the barrier between layers makes the
// reduction deterministic, so the knob is proven bit-identical (it pays
// off on large cells only and defaults off). The kernel golden suite
// replays every StreamIt cell and a seeded random panel against
// pre-refactor outputs in cold, warm, serial and parallel-sweep variants;
// BenchmarkCellKernel measures the result (DPA2D single cell ~1.6x with
// ~79x fewer allocations, DPA1D ~1.8x, full engine campaign ~1.35x), with
// testing.AllocsPerRun tests bounding steady-state allocation counts and
// a benchstat old-vs-new comparison in the bench CI job.
//
// # The exact-solver layer
//
// internal/exact plays the role of the paper's Section 4.4 ILP, which CPLEX
// could only solve on grids up to 2x2. The default engine is a
// branch-and-bound search over the same space the original exhaustive
// enumeration walks — restricted-growth-string set partitions with an
// acyclic cluster quotient, injective placements reduced to grid-symmetry
// orbit representatives, slowest feasible speed per core — pruned by two
// admissible lower bounds. The partition-side bound prices a partial
// partition from below using suffix-minimal dynamic-power ratios (the
// cheapest energy-per-work any feasible speed at or above a cluster's
// minimum can achieve; P(s)/s is not monotone on the XScale ladder, so the
// suffix minimum matters), solo floors for unassigned stages, and one hop
// of link energy per cross-cluster edge. The placement-side bound
// (mapping.PrefixAccount) is exact on computation once the partition is
// complete — cluster works determine core energies before any cluster is
// placed — and charges each placed pair its Manhattan-distance hop excess;
// both terms are invariant under grid automorphisms, so pruning composes
// soundly with the orbit canonicity check. The incumbent is seeded from the
// cheap heuristics (pinned paths stripped, so the seed is re-evaluated
// inside the solver's own XY search space) and only ever strengthens
// pruning — the seed mapping is never returned. Search fans out over
// lexicographic partition prefixes on a worker pool (per-worker state on
// core.Scratch child arenas) with a shared atomic incumbent; bounds prune
// strictly (with a 1e-12 slack so last-ulp float noise cannot flip a
// verdict), per-unit winners tie-break by exhaustive visit order, and the
// final reduction walks units in order — so results are proven bit-identical
// (energy bits and mapping bytes) to the exhaustive engine at any worker
// count, seeded or not, with or without arenas. SolveContext threads
// cancellation through every enumeration loop (the ctxflow analyzer pins
// it), and the placement budget is per search unit: a truncated unit
// surfaces ErrTooLarge rather than passing off an unproven mapping as
// optimal. Measured (bench-exact CI job, BenchmarkExactSolver): ~80-100x
// over the exhaustive engine on a 2x3 instance both complete, and proven
// optima on 3x3/4x3 frontier instances (in milliseconds, a few dozen
// placements evaluated) where the exhaustive engine cannot finish its full
// 30M-placement default budget — past the paper's 2x2 wall.
//
// # The campaign engine and the mapping service
//
// internal/engine turns any campaign into deterministic, individually
// addressable cells — one (workload identity, CCR, grid, period divisions,
// solver options) point each, declared by a JSON-serializable CellSpec from
// which a workload registry (StreamIt name / random-SPG parameters / inline
// SPG / custom kinds) rebuilds the seeded instance — executed through a
// pluggable Executor with the campaign cache threaded through, and folded
// by order-independent reducers over the indexed results. RunStreamIt,
// RunRandom and SelectPeriod are thin adapters over it (cell enumeration
// plus a reducer each), and the equivalence suite proves engine-run
// campaigns bit-identical to the pre-engine loops for every (app, CCR,
// period, heuristic) cell at any worker count, cached or not.
//
// Three executors implement the seam. PoolExecutor runs cells on an
// in-process worker pool. ShardExecutor is the original distributed layer:
// it partitions the cell index space into balanced contiguous ranges, ships
// each range's specs once, up front, to a static worker list over HTTP/JSON
// (POST /v1/cells/execute), reassembles the wire results at their absolute
// indexes, and re-executes failed ranges on the local fallback pool.
// Dispatcher is the cluster scheduler that supersedes it for real clusters:
// a WorkerRegistry tracks cluster membership (static -worker seeds plus
// POST /v1/workers self-registrations) and worker health (periodic
// /v1/healthz probes plus dispatch outcomes drive a
// healthy -> suspect -> dead machine with rejoin on recovery), and the
// Dispatcher splits campaigns into small chunks aligned to workload-family
// boundaries which healthy workers pull as they free up. Placement is
// cache-affine — each family has a rendezvous-hash owner among the healthy
// workers, so one family's analyses warm one worker's AnalysisCache, with
// steal-on-idle overriding affinity so no worker starves (gated on expected
// benefit: an idle worker leaves a chunk with its healthy owner when the
// owner's backlog times its EWMA chunk service time is below
// StealMinBenefit, so brief idleness no longer breaks cache affinity) — and
// a chunk
// whose dispatch fails or times out is re-dispatched to a different healthy
// worker, falling back to the local pool only when no healthy worker
// remains that hasn't already failed it. Because cells are pure functions
// of their specs, every re-placement is free: the dispatcher- and
// shard-equivalence suites prove campaign results bit-identical to the
// PoolExecutor at any worker count, chunk size and failure schedule
// (dead workers, slow workers, workers that die mid-campaign and rejoin).
// Results cross the wire losslessly: CellOutcome (float64 energies
// round-trip bit-exactly through encoding/json) optionally carries the
// winning placement as mapping.WireMapping, the platform-independent
// canonical wire form of a Mapping.
//
// internal/service exposes the engine over HTTP/JSON (cmd/spgserve):
// POST /v1/map answers one workload with the period-selection protocol plus
// the winning mapping's placement — consulting the result store first, and
// coalescing identical in-flight requests into a single solve (singleflight:
// one leader solves, every concurrent duplicate waits on its flight) behind
// a bounded admission gate (active slots plus a wait queue; beyond both,
// 429 with Retry-After) — POST /v1/map/batch enumerates many map requests
// into one engine campaign (one dispatcher schedule on a coordinator,
// per-item answers byte-identical to /v1/map), POST /v1/campaign runs whole
// campaigns
// asynchronously with cell-level progress polling at GET /v1/campaign/{id}
// — including per-worker chunk attribution and the redispatch /
// local-fallback counters — and cancellation at DELETE /v1/campaign/{id}
// (propagated through the dispatcher into in-flight worker requests;
// finished jobs are retained under TTL and count bounds), and
// GET /v1/healthz reports the shared cache's and result store's statistics
// and the coalescing counters plus, on a coordinator, the worker registry
// snapshot and lifetime dispatcher counters. Every instance answers the shard-worker endpoint
// POST /v1/cells/execute and the registry endpoints
// POST/GET/DELETE /v1/workers, so a cluster is N ordinary spgserve
// processes plus a coordinator that either names them with -worker flags or
// lets them self-register with -register-with; registering a worker
// promotes any running instance to coordinator. One engine and one cache
// back all endpoints, so a service that has mapped a workload family once
// answers every later request on it from warm structures.
//
// The serving stack is hardened for real clusters. Request deadlines
// (deadline_ms / the X-SPG-Deadline header) propagate from /v1/map and
// /v1/campaign through the dispatcher into every worker request — each
// dispatch advertises its remaining budget, and workers refuse ranges they
// cannot plausibly finish — while failed chunks re-dispatch under seeded
// exponential backoff bounded by a per-campaign retry budget (surfaced in
// the campaign status and /v1/healthz). Dispatch outcomes and probes drive a
// per-worker circuit breaker (closed / open / half-open, visible in
// /v1/workers), and SIGTERM starts a graceful drain: the worker announces
// {draining:true} so its coordinator stops placing chunks on it without
// marking it dead, finishes in-flight ranges, deregisters and exits.
// Because every retry, re-placement and fallback re-executes a pure cell,
// none of this machinery can change a campaign's bytes — and internal/chaos
// proves it: a seeded http.RoundTripper injects deterministic faults
// (drops, delays, 5xx, garbage, truncated bodies) on a declarative
// schedule, and the dispatcher chaos suite plus the CI fault matrix assert
// byte-identical results under every fault class, with retries within
// budget and breaker transitions observed. Same seed, same faults — a
// chaos failure replays exactly.
//
// BenchmarkCampaign vs BenchmarkCampaignUncached quantifies the end-to-end
// effect on the full StreamIt suite (all CCR variants, warm cache; >20x on a
// multicore host), BenchmarkSelectPeriodSweep isolates the scale-family
// layer (~1.8x for one application's CCR sweep), and the cache-equivalence
// tests prove bit-identical energies for every (app, CCR, period, heuristic)
// cell with and without each layer.
//
// # Machine-checked invariants
//
// Three of the properties above — campaigns are deterministic, results cross
// the wire losslessly, shared state is lock-disciplined — are invariants the
// type system cannot see. internal/lint machine-checks them: five custom
// analyzers (detrange, wirecodec, memoalias, lockguard, ctxflow) compiled
// into cmd/spglint and run over ./... as a required CI job. Deliberate
// exceptions carry a //spglint:ignore annotation with a written reason; see
// internal/lint/doc.go for the invariant catalog and README.md for how to
// run the suite locally.
//
// Executables: cmd/spgmap (map one workload), cmd/experiments (regenerate
// every table and figure), cmd/spgserve (the HTTP mapping service; see
// cmd/spgserve/README.md for curl examples), cmd/spgload (seeded
// closed-loop load generator for the map path; its legs and the other
// benchmark artifacts share the internal/benchfmt schema, onto which
// cmd/spgbench lowers `go test -bench` output), cmd/spggen (emit
// workloads), cmd/ilpgen (emit the ILP). Runnable walkthroughs live under examples/ —
// examples/period-sweep documents the cache layers from a user's
// perspective. The benchmarks in bench_test.go regenerate each table and
// figure at reduced scale; BenchmarkEngineCampaign vs
// BenchmarkEngineCampaignLegacy isolates the engine indirection's cost,
// BenchmarkShardExecutor the wire crossing of the distributed path, and
// BenchmarkDispatcherSteal the work-stealing scheduler's win over static
// ranges on a cluster with one slow worker.
package spgcmp
