// Package spgcmp reproduces "Energy-aware mappings of series-parallel
// workflows onto chip multiprocessors" (Benoit, Melhem, Renaud-Goud, Robert —
// ICPP 2011 / INRIA RR-7521): minimum-energy DAG-partition mappings of
// series-parallel streaming workflows onto DVFS-capable 2D CMP grids under a
// period bound.
//
// The implementation lives in internal packages:
//
//	internal/spg         series-parallel graphs, composition, labels, downsets,
//	                     and the shared per-graph Analysis cache
//	internal/platform    CMP grid, XScale DVFS model, XY routing, snake embedding
//	internal/mapping     DAG-partition mappings, period and energy evaluation
//	internal/core        the five heuristics: Random, Greedy, DPA2D, DPA1D, DPA2D1D
//	internal/exact       exhaustive optimal solver and Section 4.4 ILP emitter
//	internal/sim         steady-state pipeline simulator
//	internal/streamit    the 12 StreamIt workflows of Table 1
//	internal/randspg     random SPG generation with exact elevation
//	internal/experiments the Section 6 evaluation campaigns
//
// # The analysis cache
//
// Everything a heuristic derives from the workflow alone — validation,
// transitive closure, elevation levels, label grids and prefix sums, DPA2D
// band contexts with rectangle-convexity verdicts, and the interned DPA1D
// downset space — is period- and platform-independent. spg.Analysis computes
// each structure lazily, memoizes it under a lock, and is threaded through
// core.Instance: core.NewInstance attaches a cache, Instance.WithPeriod
// re-solves at a new bound without re-analyzing, and every Solve falls back
// to a private cache when none is attached. The Section 6.1.3 period
// protocol (experiments.SelectPeriod) builds one Analysis per workload and
// reuses it across all five heuristics and every period division;
// BenchmarkSelectPeriod vs BenchmarkSelectPeriodUncached quantifies the
// speedup, and the cache-equivalence tests prove bit-identical energies with
// and without the cache on the full StreamIt suite.
//
// Executables: cmd/spgmap (map one workload), cmd/experiments (regenerate
// every table and figure), cmd/spggen (emit workloads), cmd/ilpgen (emit the
// ILP). Runnable walkthroughs live under examples/. The benchmarks in
// bench_test.go regenerate each table and figure at reduced scale.
package spgcmp
