// Package spgcmp reproduces "Energy-aware mappings of series-parallel
// workflows onto chip multiprocessors" (Benoit, Melhem, Renaud-Goud, Robert —
// ICPP 2011 / INRIA RR-7521): minimum-energy DAG-partition mappings of
// series-parallel streaming workflows onto DVFS-capable 2D CMP grids under a
// period bound.
//
// The implementation lives in internal packages:
//
//	internal/spg         series-parallel graphs, composition, labels, downsets
//	internal/platform    CMP grid, XScale DVFS model, XY routing, snake embedding
//	internal/mapping     DAG-partition mappings, period and energy evaluation
//	internal/core        the five heuristics: Random, Greedy, DPA2D, DPA1D, DPA2D1D
//	internal/exact       exhaustive optimal solver and Section 4.4 ILP emitter
//	internal/sim         steady-state pipeline simulator
//	internal/streamit    the 12 StreamIt workflows of Table 1
//	internal/randspg     random SPG generation with exact elevation
//	internal/experiments the Section 6 evaluation campaigns
//
// Executables: cmd/spgmap (map one workload), cmd/experiments (regenerate
// every table and figure), cmd/spggen (emit workloads), cmd/ilpgen (emit the
// ILP). Runnable walkthroughs live under examples/. The benchmarks in
// bench_test.go regenerate each table and figure at reduced scale.
package spgcmp
