package core

import (
	"sync"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// This file provides EnergyFloors, the admissible lower-bound oracle behind
// the branch-and-bound exact solver. It reuses the cross-period threshold
// machinery of recttab.go — the same ulp-exact speedFeasible predicate and
// minFeasiblePeriod boundary location — so every verdict agrees bit for bit
// with platform.MinFeasibleSpeed, and hangs off the scale family's shared
// spg.Analysis through the Aux hook exactly like the rectangle tables do
// (stage weights are untouched by CCR rescaling, so the per-stage threshold
// rows are shared across every CCR variant of the family).
//
// The core inequality: a cluster of total work w, run at its slowest
// feasible speed index i, dissipates dynamic energy w * DynPower[i]/Speeds[i].
// The power-per-speed ratio is NOT monotone along real ladders (XScale dips
// at 0.4 GHz), so the admissible per-work floor at index i is the suffix
// minimum of the ratio over indices >= i: a cluster can only grow, growth can
// only push the minimal feasible index up, and the final ratio is then at
// least the suffix minimum at any member's solo index. Leakage and link
// energy floors are handled by the solver on top of these per-work terms.

// floorsCacheKey is the Aux key under which the floor tables hang off the
// family's shared analysis.
type floorsCacheKey struct{}

type floorsCache struct {
	mu   sync.Mutex
	sigs map[string]*EnergyFloors
}

// MemoryFootprint implements spg.Footprinter so the floor tables participate
// in Analysis.MemoryFootprint, with the same flat constants the other Aux
// structures use.
func (fc *floorsCache) MemoryFootprint() int64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	var b int64
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for sig, f := range fc.sigs {
		b += int64(len(sig)) + auxMapEntryBytes
		b += int64(len(f.suffixRatio)) * 8
		b += auxSliceHeaderBytes * int64(len(f.stageThr))
		for _, row := range f.stageThr {
			b += int64(len(row)) * 8
		}
	}
	return b
}

// EnergyFloors answers admissible energy lower-bound queries for one
// (scale family, energy signature) pair: per-stage solo-cluster dynamic
// floors via cross-period threshold rows, and per-work dynamic floors for
// growing clusters via suffix-minimum power ratios. All feasibility verdicts
// reproduce platform.MinFeasibleSpeed bit for bit.
type EnergyFloors struct {
	speeds []float64
	// suffixRatio[i] = min over j >= i of DynPower[j]/Speeds[j], the
	// admissible J-per-Gcycle floor for any cluster whose slowest feasible
	// index is at least i.
	suffixRatio []float64
	// stageThr[s][i] is the minimal period at which ladder speed i becomes
	// feasible for stage s's weight — the recttab cross-period threshold,
	// computed once per family and shared across periods and CCR variants.
	stageThr [][]float64
	// stageW[s] is stage s's weight, kept alongside the thresholds so the
	// floor can be priced without a graph in hand.
	stageW []float64
}

// FloorsFor returns the floor tables for an's scale family and pl's energy
// signature, creating them on first use.
func FloorsFor(an *spg.Analysis, pl *platform.Platform) *EnergyFloors {
	fc := an.Aux(floorsCacheKey{}, func() any {
		return &floorsCache{sigs: make(map[string]*EnergyFloors)}
	}).(*floorsCache)
	sig := energySig(pl)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	f := fc.sigs[sig]
	if f == nil {
		f = newEnergyFloors(an.Graph(), pl)
		fc.sigs[sig] = f
	}
	return f
}

func newEnergyFloors(g *spg.Graph, pl *platform.Platform) *EnergyFloors {
	f := &EnergyFloors{
		speeds:      pl.Speeds,
		suffixRatio: make([]float64, len(pl.Speeds)),
		stageThr:    make([][]float64, g.N()),
		stageW:      make([]float64, g.N()),
	}
	for i := len(pl.Speeds) - 1; i >= 0; i-- {
		r := pl.DynPower[i] / pl.Speeds[i]
		if i+1 < len(pl.Speeds) && f.suffixRatio[i+1] < r {
			r = f.suffixRatio[i+1]
		}
		f.suffixRatio[i] = r
	}
	for s := range f.stageThr {
		f.stageW[s] = g.Stages[s].Weight
		row := make([]float64, len(pl.Speeds))
		for i, sp := range pl.Speeds {
			row[i] = minFeasiblePeriod(f.stageW[s], sp)
		}
		f.stageThr[s] = row
	}
	return f
}

// MinIdx returns the index of the slowest speed able to process work within
// period T — platform.MinFeasibleSpeed's verdict, ulp for ulp — or -1 when
// even the fastest speed is too slow.
func (f *EnergyFloors) MinIdx(work, T float64) int {
	if work < 0 || T <= 0 {
		return -1
	}
	for i, s := range f.speeds {
		if speedFeasible(work, s, T) {
			return i
		}
	}
	return -1
}

// DynFloor returns an admissible lower bound on the dynamic energy of any
// cluster whose current work is work: the work priced at the suffix-minimum
// power ratio of its slowest feasible index. The bound never exceeds the
// dynamic energy the evaluator charges the cluster after any sequence of
// further stage additions. ok is false when the work already exceeds the
// fastest speed's capacity.
func (f *EnergyFloors) DynFloor(work, T float64) (floor float64, ok bool) {
	idx := f.MinIdx(work, T)
	if idx < 0 {
		return 0, false
	}
	return work * f.suffixRatio[idx], true
}

// StageMinIdx answers MinIdx for stage s's weight from the cross-period
// threshold row: the feasibility predicate is monotone in T, so the first
// index whose threshold period is at or below T is exactly the predicate
// scan's answer.
func (f *EnergyFloors) StageMinIdx(s int, T float64) int {
	if T <= 0 {
		return -1
	}
	for i, tmin := range f.stageThr[s] {
		if T >= tmin {
			return i
		}
	}
	return -1
}

// StageDynFloor returns the solo-cluster dynamic floor of stage s at period
// T: an admissible lower bound on the dynamic energy any final cluster
// containing s will be charged on s's behalf, answered from the cross-period
// threshold row. ok is false when the stage alone cannot meet the period.
func (f *EnergyFloors) StageDynFloor(s int, T float64) (floor float64, ok bool) {
	idx := f.StageMinIdx(s, T)
	if idx < 0 {
		return 0, false
	}
	return f.stageW[s] * f.suffixRatio[idx], true
}
