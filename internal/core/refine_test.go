package core

import (
	"testing"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
)

// TestRefineNeverWorsens: the refiner must return a solution at least as
// good as its input across heuristics and workloads.
func TestRefineNeverWorsens(t *testing.T) {
	pl := platform.XScale(4, 4)
	ref := NewRefiner()
	for seed := int64(0); seed < 6; seed++ {
		g := testRandomSPG(t, seed, 25, 1)
		inst := Instance{Graph: g, Platform: pl, Period: 0.15}
		for _, h := range All(seed) {
			sol, err := h.Solve(inst)
			if err != nil {
				continue
			}
			improved := ref.Refine(inst, sol)
			if improved.Energy() > sol.Energy()+1e-12 {
				t.Errorf("seed %d %s: refine worsened %.9g -> %.9g",
					seed, h.Name(), sol.Energy(), improved.Energy())
			}
			// The refined mapping must still pass the evaluator.
			if _, err := mapping.Evaluate(g, pl, improved.Mapping, inst.Period); err != nil {
				t.Errorf("seed %d %s: refined mapping invalid: %v", seed, h.Name(), err)
			}
		}
	}
}

// TestRefineImprovesRandom: Random leaves obvious slack (random placement);
// the refiner should find a strict improvement on at least one of a handful
// of instances.
func TestRefineImprovesRandom(t *testing.T) {
	pl := platform.XScale(4, 4)
	ref := NewRefiner()
	improvedOnce := false
	for seed := int64(0); seed < 8 && !improvedOnce; seed++ {
		g := testRandomSPG(t, seed, 25, 1)
		inst := Instance{Graph: g, Platform: pl, Period: 0.15}
		sol, err := NewRandom(seed).Solve(inst)
		if err != nil {
			continue
		}
		improved := ref.Refine(inst, sol)
		if improved.Energy() < sol.Energy()-1e-12 {
			improvedOnce = true
			if improved.Heuristic != "Random+refine" {
				t.Errorf("improved solution not renamed: %q", improved.Heuristic)
			}
		}
	}
	if !improvedOnce {
		t.Error("refiner never improved any Random solution")
	}
}

// TestRefinePreservesInputSolution: the input mapping must not be mutated.
func TestRefinePreservesInputSolution(t *testing.T) {
	pl := platform.XScale(4, 4)
	g := testRandomSPG(t, 3, 20, 10)
	inst := Instance{Graph: g, Platform: pl, Period: 0.15}
	sol, err := NewRandom(3).Solve(inst)
	if err != nil {
		t.Skip("random failed")
	}
	allocBefore := append([]platform.Core(nil), sol.Mapping.Alloc...)
	_ = NewRefiner().Refine(inst, sol)
	for i := range allocBefore {
		if sol.Mapping.Alloc[i] != allocBefore[i] {
			t.Fatalf("refiner mutated the input mapping at stage %d", i)
		}
	}
}

// TestRefineHandlesPinnedPaths: solutions with snake-pinned routes (DPA1D)
// are either re-routed in XY space or returned unchanged — never invalid,
// never worse.
func TestRefineHandlesPinnedPaths(t *testing.T) {
	pl := platform.XScale(4, 4)
	g := testChain(t, 10, 0.02, 0.01)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	sol, err := NewDPA1D().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	improved := NewRefiner().Refine(inst, sol)
	if improved.Energy() > sol.Energy()+1e-12 {
		t.Errorf("refine worsened pinned-path solution: %.9g -> %.9g", sol.Energy(), improved.Energy())
	}
	if _, err := mapping.Evaluate(g, pl, improved.Mapping, inst.Period); err != nil {
		t.Errorf("refined mapping invalid: %v", err)
	}
}

// TestRefineRespectsBudget: a zero-candidate budget must return the input.
func TestRefineRespectsBudget(t *testing.T) {
	pl := platform.XScale(4, 4)
	g := testRandomSPG(t, 5, 20, 1)
	inst := Instance{Graph: g, Platform: pl, Period: 0.15}
	sol, err := NewGreedy().Solve(inst)
	if err != nil {
		t.Skip("greedy failed")
	}
	r := &Refiner{MaxMoves: 64, MaxCandidates: 1}
	improved := r.Refine(inst, sol)
	if improved.Energy() > sol.Energy()+1e-12 {
		t.Errorf("budgeted refine worsened the solution")
	}
}

// TestRandomTrialsAblation: more random trials can only help (keep-best
// semantics) — the design choice behind the paper's "ten calls" rule.
func TestRandomTrialsAblation(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(0); seed < 5; seed++ {
		g := testRandomSPG(t, seed, 25, 10)
		inst := Instance{Graph: g, Platform: pl, Period: 0.15}
		one, errOne := (&Random{Trials: 1, Seed: seed}).Solve(inst)
		ten, errTen := (&Random{Trials: 10, Seed: seed}).Solve(inst)
		if errTen != nil {
			if errOne == nil {
				t.Errorf("seed %d: 10 trials failed where 1 succeeded", seed)
			}
			continue
		}
		if errOne != nil {
			continue
		}
		if ten.Energy() > one.Energy()+1e-12 {
			t.Errorf("seed %d: 10-trial energy %.9g worse than 1-trial %.9g",
				seed, ten.Energy(), one.Energy())
		}
	}
}
