package core

import (
	"math/rand"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
)

// Random is the baseline heuristic of Section 5.1. Each trial randomly grows
// a DAG-partition that respects the computation period (choosing a random
// speed per cluster), then places the clusters on random distinct cores with
// XY routing. The heuristic runs a fixed number of trials and keeps the valid
// mapping of minimum energy.
type Random struct {
	// Trials is the number of independent attempts; the paper uses 10.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
}

// NewRandom returns the paper's configuration: 10 trials.
func NewRandom(seed int64) *Random { return &Random{Trials: 10, Seed: seed} }

// Name implements Heuristic.
func (h *Random) Name() string { return "Random" }

// Solve implements Heuristic.
func (h *Random) Solve(inst Instance) (*Solution, error) {
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	trials := h.Trials
	if trials <= 0 {
		trials = 10
	}
	rng := rand.New(rand.NewSource(h.Seed))
	var best *Solution
	for t := 0; t < trials; t++ {
		m, ok := h.trial(inst, rng)
		if !ok {
			continue
		}
		sol, err := finish(h.Name(), inst, m)
		if err != nil {
			continue
		}
		if best == nil || sol.Energy() < best.Energy() {
			best = sol
		}
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}

type randomCluster struct {
	stages   []int
	speedIdx int
}

// trial performs the two-step procedure of Section 5.1: build a random
// DAG-partition whose clusters respect the computation period, then map the
// clusters onto random distinct cores and route with XY. The caller validates
// link bandwidth through the evaluator.
func (h *Random) trial(inst Instance, rng *rand.Rand) (*mapping.Mapping, bool) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()

	predsLeft := append([]int(nil), inst.Analysis.PredCounts()...)
	assignedCount := 0
	ready := []int{g.Source()}
	var clusters []randomCluster

	// pickSpeed draws a random speed able to host at least weight w.
	pickSpeed := func(w float64) (int, bool) {
		feasible := make([]int, 0, len(pl.Speeds))
		for k, s := range pl.Speeds {
			if w <= T*s {
				feasible = append(feasible, k)
			}
		}
		if len(feasible) == 0 {
			return 0, false
		}
		return feasible[rng.Intn(len(feasible))], true
	}

	for assignedCount < n {
		if len(ready) == 0 {
			return nil, false // defensive; cannot happen on a DAG
		}
		// New cluster, seeded with the first stage of the current list.
		first := ready[0]
		ready = ready[1:]
		speedIdx, ok := pickSpeed(g.Stages[first].Weight)
		if !ok {
			return nil, false
		}
		cl := randomCluster{speedIdx: speedIdx}
		capW := T * pl.Speeds[speedIdx]
		work := 0.0

		add := func(s int) {
			cl.stages = append(cl.stages, s)
			work += g.Stages[s].Weight
			assignedCount++
			for _, succ := range g.Successors(s) {
				predsLeft[succ]--
				if predsLeft[succ] == 0 {
					ready = append(ready, succ)
				}
			}
		}
		add(first)

		// Grow with random ready stages as long as computations fit; the
		// first unlucky draw closes the cluster (Section 5.1).
		for len(ready) > 0 {
			pick := rng.Intn(len(ready))
			s := ready[pick]
			if work+g.Stages[s].Weight > capW {
				break
			}
			ready[pick] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			add(s)
		}
		clusters = append(clusters, cl)
	}

	// Step 2: place clusters on random distinct cores.
	if len(clusters) > pl.NumCores() {
		return nil, false
	}
	perm := rng.Perm(pl.NumCores())
	m := mapping.New(n, pl)
	for ci, cl := range clusters {
		c := platform.Core{U: perm[ci] / pl.Q, V: perm[ci] % pl.Q}
		for _, s := range cl.stages {
			m.Alloc[s] = c
		}
		m.SetSpeed(pl, c, cl.speedIdx)
	}
	return m, true
}
