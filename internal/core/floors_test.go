package core

import (
	"math"
	"math/rand"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
)

func floorsTestGraph(t *testing.T) *spg.Graph {
	t.Helper()
	g, err := randspg.Generate(randspg.Params{N: 12, Elevation: 3, Seed: 21, CCR: 10})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEnergyFloorsSuffixRatio: suffixRatio[i] must be the exact minimum of
// DynPower[j]/Speeds[j] over j >= i. On the XScale ladder the ratio dips at
// an interior speed, so the test also pins that the suffix minimum differs
// from the pointwise ratio somewhere — the non-monotonicity the bound
// exists to survive.
func TestEnergyFloorsSuffixRatio(t *testing.T) {
	pl := platform.XScale(3, 3)
	f := newEnergyFloors(floorsTestGraph(t), pl)
	dipped := false
	for i := range pl.Speeds {
		want := math.Inf(1)
		for j := i; j < len(pl.Speeds); j++ {
			if r := pl.DynPower[j] / pl.Speeds[j]; r < want {
				want = r
			}
		}
		if f.suffixRatio[i] != want {
			t.Errorf("suffixRatio[%d] = %g, want %g", i, f.suffixRatio[i], want)
		}
		if f.suffixRatio[i] != pl.DynPower[i]/pl.Speeds[i] {
			dipped = true
		}
	}
	if !dipped {
		t.Error("suffix minimum equals the pointwise ratio everywhere — ladder no longer dips, bound untested")
	}
}

// TestEnergyFloorsMinIdxAgreesWithPlatform: MinIdx and StageMinIdx must
// reproduce platform.MinFeasibleSpeed's verdict index for index, including
// at randomly probed periods around the feasibility boundaries.
func TestEnergyFloorsMinIdxAgreesWithPlatform(t *testing.T) {
	pl := platform.XScale(3, 3)
	g := floorsTestGraph(t)
	f := newEnergyFloors(g, pl)
	rng := rand.New(rand.NewSource(31))
	wantIdx := func(work, T float64) int {
		if _, idx, ok := pl.MinFeasibleSpeed(work, T); ok {
			return idx
		}
		return -1
	}
	for trial := 0; trial < 2000; trial++ {
		work := rng.Float64() * 0.3
		T := rng.Float64() * 0.4
		if got, want := f.MinIdx(work, T), wantIdx(work, T); got != want {
			t.Fatalf("MinIdx(%g, %g) = %d, platform says %d", work, T, got, want)
		}
	}
	for s := range g.Stages {
		for trial := 0; trial < 200; trial++ {
			T := rng.Float64() * 0.4
			if got, want := f.StageMinIdx(s, T), wantIdx(g.Stages[s].Weight, T); got != want {
				t.Fatalf("StageMinIdx(%d, %g) = %d, platform says %d", s, T, got, want)
			}
		}
		// Exactly at each threshold the speed must be feasible.
		for i, tmin := range f.stageThr[s] {
			if got := f.StageMinIdx(s, tmin); got > i {
				t.Fatalf("stage %d at its own threshold for speed %d: MinIdx %d", s, i, got)
			}
		}
	}
}

// TestEnergyFloorsAdmissible: DynFloor must never exceed the dynamic energy
// any feasible speed assignment charges — it equals the minimum of
// work*DynPower/Speeds over the feasible suffix — and must stay admissible
// as the cluster grows (adding work never lowers the final cost below the
// floor priced earlier).
func TestEnergyFloorsAdmissible(t *testing.T) {
	pl := platform.XScale(3, 3)
	f := newEnergyFloors(floorsTestGraph(t), pl)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		work := rng.Float64() * 0.3
		T := 0.05 + rng.Float64()*0.3
		floor, ok := f.DynFloor(work, T)
		idx := f.MinIdx(work, T)
		if (idx >= 0) != ok {
			t.Fatalf("DynFloor ok=%v but MinIdx=%d", ok, idx)
		}
		if !ok {
			continue
		}
		// Exact: the cheapest feasible pricing of this work.
		want := math.Inf(1)
		for j := idx; j < len(pl.Speeds); j++ {
			if e := work * (pl.DynPower[j] / pl.Speeds[j]); e < want {
				want = e
			}
		}
		if floor != want {
			t.Fatalf("DynFloor(%g, %g) = %g, cheapest feasible pricing %g", work, T, floor, want)
		}
		// Admissible under growth: a bigger cluster can only move its
		// feasible suffix up, where the suffix minimum is no smaller.
		grown := work + rng.Float64()*0.1
		if gf, gok := f.DynFloor(grown, T); gok {
			scaled := floor / work * grown
			if gf < scaled*(1-1e-12) && work > 0 {
				t.Fatalf("growth lowered the per-work floor: %g/%g -> %g/%g", floor, work, gf, grown)
			}
		}
	}
}

// TestEnergyFloorsSharedAcrossCCR: the tables hang off the scale family's
// shared analysis, so every CCR variant of a family and repeated calls
// return the same instance per energy signature, and distinct signatures
// get distinct tables.
func TestEnergyFloorsSharedAcrossCCR(t *testing.T) {
	g := floorsTestGraph(t)
	an := spg.NewAnalysis(g)
	pl := platform.XScale(3, 3)
	f1 := FloorsFor(an, pl)
	if f2 := FloorsFor(an, pl); f2 != f1 {
		t.Error("repeated FloorsFor rebuilt the tables")
	}
	variant := an.ScaleToCCR(2.5)
	if f3 := FloorsFor(variant, pl); f3 != f1 {
		t.Error("CCR variant did not share the family's floor tables")
	}
	if f4 := FloorsFor(an, platform.XScale(2, 2)); f4 != f1 {
		// Same energy signature regardless of grid shape is fine; only a
		// changed signature must key a fresh table.
		if energySig(platform.XScale(2, 2)) != energySig(pl) {
			t.Error("distinct energy signatures shared one table")
		}
	}
}
