// Package core implements the paper's primary contribution: the five
// polynomial-time heuristics for the MinEnergy(T) problem — Random, Greedy,
// DPA2D, DPA1D and DPA2D1D (Section 5) — built on the SPG, platform and
// mapping substrates. MinEnergy(T) asks for a DAG-partition mapping of a
// series-parallel workflow onto a CMP whose maximum resource cycle-time does
// not exceed the period bound T and whose energy is minimum (Definition 1).
package core

import (
	"errors"
	"fmt"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// ErrNoSolution is returned when a heuristic cannot produce any valid mapping
// for the instance: the paper records these events as failures (Tables 2
// and 3).
var ErrNoSolution = errors.New("core: heuristic found no valid mapping")

// Instance is one MinEnergy(T) problem instance.
type Instance struct {
	Graph    *spg.Graph
	Platform *platform.Platform
	Period   float64 // the bound T, in seconds
}

// Validate sanity-checks the instance.
func (inst Instance) Validate() error {
	if inst.Graph == nil || inst.Platform == nil {
		return errors.New("core: instance missing graph or platform")
	}
	if err := inst.Graph.Validate(); err != nil {
		return err
	}
	if err := inst.Platform.Validate(); err != nil {
		return err
	}
	if inst.Period <= 0 {
		return fmt.Errorf("core: period %g is not positive", inst.Period)
	}
	return nil
}

// Solution is a valid mapping together with its evaluation.
type Solution struct {
	Heuristic string
	Mapping   *mapping.Mapping
	Result    *mapping.Result
}

// Energy returns the total energy of the solution.
func (s *Solution) Energy() float64 { return s.Result.Energy }

// Heuristic is the interface implemented by the five algorithms of Section 5
// and by the exact solver.
type Heuristic interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Solve returns a valid solution or ErrNoSolution (possibly wrapped with
	// a cause, e.g. a state-budget overflow for DPA1D).
	Solve(inst Instance) (*Solution, error)
}

// finish evaluates a candidate mapping with the authoritative evaluator and
// wraps it into a Solution. Heuristics call it as their final step so that
// no invalid mapping ever escapes and all reported energies come from the
// same model.
func finish(name string, inst Instance, m *mapping.Mapping) (*Solution, error) {
	res, err := mapping.Evaluate(inst.Graph, inst.Platform, m, inst.Period)
	if err != nil {
		return nil, fmt.Errorf("%w: %s produced an invalid mapping: %v", ErrNoSolution, name, err)
	}
	return &Solution{Heuristic: name, Mapping: m, Result: res}, nil
}

// All returns the five heuristics of the paper in presentation order, with
// their default configurations. seed drives the Random heuristic.
func All(seed int64) []Heuristic {
	return []Heuristic{
		NewRandom(seed),
		NewGreedy(),
		NewDPA2D(),
		NewDPA1D(),
		NewDPA2D1D(),
	}
}
