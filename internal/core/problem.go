// Package core implements the paper's primary contribution: the five
// polynomial-time heuristics for the MinEnergy(T) problem — Random, Greedy,
// DPA2D, DPA1D and DPA2D1D (Section 5) — built on the SPG, platform and
// mapping substrates. MinEnergy(T) asks for a DAG-partition mapping of a
// series-parallel workflow onto a CMP whose maximum resource cycle-time does
// not exceed the period bound T and whose energy is minimum (Definition 1).
package core

import (
	"errors"
	"fmt"
	"os"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// StrictAnalysisEnv is the environment variable enabling strict analysis
// checking: when set to anything but the empty string or "0", an Instance
// whose Analysis wraps a different graph than Instance.Graph makes Validate
// fail loudly instead of being silently replaced by a private cache. The
// silent default keeps accidental mismatches safe (the mismatched cache is
// never consulted); the strict mode exists to catch them during development
// and in CI, where a mismatch almost always means a caller rebuilt a graph
// but kept an old cache — quietly forfeiting every reuse benefit.
const StrictAnalysisEnv = "SPGCMP_STRICT_ANALYSIS"

// ErrAnalysisMismatch is the strict-mode validation failure: the instance
// carries an analysis cache built for a different graph.
var ErrAnalysisMismatch = errors.New("core: Instance.Analysis wraps a different graph than Instance.Graph")

// strictAnalysis reports whether strict analysis checking is on. The
// environment is consulted per call so tests can toggle it with t.Setenv;
// the lookup is trivial next to any Solve.
func strictAnalysis() bool {
	v := os.Getenv(StrictAnalysisEnv)
	return v != "" && v != "0"
}

// ErrNoSolution is returned when a heuristic cannot produce any valid mapping
// for the instance: the paper records these events as failures (Tables 2
// and 3).
var ErrNoSolution = errors.New("core: heuristic found no valid mapping")

// Instance is one MinEnergy(T) problem instance.
type Instance struct {
	Graph    *spg.Graph
	Platform *platform.Platform
	Period   float64 // the bound T, in seconds

	// Analysis optionally carries the shared per-graph analysis cache
	// (validation, reachability, levels, label grids, bands, downset
	// spaces). When nil, each Solve call builds a private one; attaching a
	// cache with NewInstance (or Analyzed) lets every heuristic — and every
	// period division of the selection protocol — reuse the same
	// precomputed structures. The cache must wrap the same Graph; a
	// mismatched cache is ignored.
	Analysis *spg.Analysis

	// Scratch optionally supplies the arena the DP kernels carve their
	// tables from (see Scratch for the ownership and reset rules). nil makes
	// the kernels allocate normally, so results are identical either way.
	// Scratch is an execution resource, not part of the instance's identity,
	// and is never wire-coded.
	Scratch *Scratch
}

// NewInstance returns an instance with a fresh analysis cache attached, the
// configuration callers should use when the same workload is solved more
// than once (several heuristics, several periods).
func NewInstance(g *spg.Graph, pl *platform.Platform, T float64) Instance {
	return Instance{Graph: g, Platform: pl, Period: T, Analysis: spg.NewAnalysis(g)}
}

// WithPeriod returns a copy of the instance with the period replaced and the
// analysis cache retained — the period protocol's way to re-solve a workload
// at a new bound without re-analyzing the graph.
func (inst Instance) WithPeriod(T float64) Instance {
	inst.Period = T
	return inst
}

// Analyzed returns a copy of the instance guaranteed to carry an analysis
// cache for its graph. Heuristics call it once at the top of Solve so that
// all internal stages share one cache even when the caller attached none.
// Under strict analysis checking (StrictAnalysisEnv) a mismatched cache is
// left in place instead of being replaced, so the Validate that every Solve
// performs next fails with ErrAnalysisMismatch.
func (inst Instance) Analyzed() Instance {
	if inst.Graph != nil && (inst.Analysis == nil || inst.Analysis.Graph() != inst.Graph) {
		if inst.Analysis != nil && strictAnalysis() {
			return inst
		}
		inst.Analysis = spg.NewAnalysis(inst.Graph)
	}
	return inst
}

// Validate sanity-checks the instance. With an analysis cache attached the
// graph validation is memoized, making repeated calls (one per heuristic per
// period division) effectively free. Under strict analysis checking
// (StrictAnalysisEnv) a cache wrapping a different graph fails validation
// with ErrAnalysisMismatch instead of being silently bypassed.
func (inst Instance) Validate() error {
	if inst.Graph == nil || inst.Platform == nil {
		return errors.New("core: instance missing graph or platform")
	}
	var err error
	if inst.Analysis != nil && inst.Analysis.Graph() == inst.Graph {
		err = inst.Analysis.Validate()
	} else {
		if inst.Analysis != nil && strictAnalysis() {
			return ErrAnalysisMismatch
		}
		err = inst.Graph.Validate()
	}
	if err != nil {
		return err
	}
	if err := inst.Platform.Validate(); err != nil {
		return err
	}
	if inst.Period <= 0 {
		return fmt.Errorf("core: period %g is not positive", inst.Period)
	}
	return nil
}

// Solution is a valid mapping together with its evaluation.
type Solution struct {
	Heuristic string
	Mapping   *mapping.Mapping
	Result    *mapping.Result
}

// Energy returns the total energy of the solution.
func (s *Solution) Energy() float64 { return s.Result.Energy }

// Heuristic is the interface implemented by the five algorithms of Section 5
// and by the exact solver.
type Heuristic interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Solve returns a valid solution or ErrNoSolution (possibly wrapped with
	// a cause, e.g. a state-budget overflow for DPA1D).
	Solve(inst Instance) (*Solution, error)
}

// finish evaluates a candidate mapping with the authoritative evaluator and
// wraps it into a Solution. Heuristics call it as their final step so that
// no invalid mapping ever escapes and all reported energies come from the
// same model.
func finish(name string, inst Instance, m *mapping.Mapping) (*Solution, error) {
	res, err := mapping.Evaluate(inst.Graph, inst.Platform, m, inst.Period)
	if err != nil {
		return nil, fmt.Errorf("%w: %s produced an invalid mapping: %v", ErrNoSolution, name, err)
	}
	return &Solution{Heuristic: name, Mapping: m, Result: res}, nil
}

// Options configures the heuristic set returned by AllWith. The zero value
// of every field means "library default", so callers override only what they
// need. Options is part of the campaign cell's wire form (engine.CellSpec),
// so every field is plain JSON-codable data.
type Options struct {
	// Seed drives the Random heuristic.
	Seed int64 `json:"seed,omitempty"`
	// RandomTrials overrides the number of Random trials (default 10).
	RandomTrials int `json:"random_trials,omitempty"`
	// DPA1DMaxStates overrides the DPA1D downset state budget.
	DPA1DMaxStates int `json:"dpa1d_max_states,omitempty"`
	// DPA1DMaxTransitions overrides the DPA1D transition budget.
	DPA1DMaxTransitions int `json:"dpa1d_max_transitions,omitempty"`
	// SweepParallelism caps the goroutines the DPA2D-family solvers may use
	// for the independent band sweeps inside one cell; 0 or 1 keeps the
	// sweeps serial. Every band state is computed by exactly one goroutine
	// and reduced in a fixed order, so results are bit-identical at any
	// setting — the knob trades cores for single-cell latency only.
	SweepParallelism int `json:"sweep_parallelism,omitempty"`
	// KeepMappings attaches each successful heuristic's placement to its
	// outcome (CellOutcome.Mapping) instead of dropping it after evaluation.
	// It never changes what is solved or reported — only whether the winning
	// mappings survive — so results with and without it differ solely by the
	// mapping fields. Off by default: campaign tables only need energies,
	// and retaining thousands of placements would be waste; the service's
	// /v1/map turns it on to answer with actionable placements.
	KeepMappings bool `json:"keep_mappings,omitempty"`
}

// All returns the five heuristics of the paper in presentation order, with
// their default configurations. seed drives the Random heuristic.
func All(seed int64) []Heuristic {
	return AllWith(Options{Seed: seed})
}

// AllWith returns the five heuristics of the paper in presentation order,
// configured by o. It is the single authoritative heuristic list: callers
// that need non-default budgets (the experiment campaigns reduce DPA1D's)
// delegate here instead of duplicating the list.
func AllWith(o Options) []Heuristic {
	random := NewRandom(o.Seed)
	if o.RandomTrials > 0 {
		random.Trials = o.RandomTrials
	}
	dpa1d := NewDPA1D()
	if o.DPA1DMaxStates > 0 {
		dpa1d.MaxStates = o.DPA1DMaxStates
	}
	if o.DPA1DMaxTransitions > 0 {
		dpa1d.MaxTransitions = o.DPA1DMaxTransitions
	}
	dpa2d := NewDPA2D()
	dpa2d.Sweeps = o.SweepParallelism
	dpa2d1d := NewDPA2D1D()
	dpa2d1d.Sweeps = o.SweepParallelism
	return []Heuristic{
		random,
		NewGreedy(),
		dpa2d,
		dpa1d,
		dpa2d1d,
	}
}
