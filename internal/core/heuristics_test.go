package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// testChain builds a chain of k stages with the given per-stage weight and
// per-edge volume.
func testChain(t testing.TB, k int, w, vol float64) *spg.Graph {
	t.Helper()
	ws := make([]float64, k)
	vs := make([]float64, k-1)
	for i := range ws {
		ws[i] = w
	}
	for i := range vs {
		vs[i] = vol
	}
	g, err := spg.Chain(ws, vs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testRandomSPG builds a random SPG via recursive composition with uniform
// weights in [0.01, 0.1] Gcycles and volumes scaled to the given CCR.
func testRandomSPG(t testing.TB, seed int64, n int, ccr float64) *spg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var build func(n int) *spg.Graph
	build = func(n int) *spg.Graph {
		if n <= 2 {
			return spg.Primitive(1, 1, 1)
		}
		k := 1 + rng.Intn(n-1)
		l, r := build(k), build(n-k)
		if rng.Intn(2) == 0 {
			return spg.Series(l, r)
		}
		return spg.Parallel(l, r)
	}
	g := build(n)
	spg.RandomizeWeights(g, rng, 0.01, 0.1)
	spg.RandomizeVolumes(g, rng, 0.5, 1.5)
	spg.ScaleToCCR(g, ccr)
	return g
}

func solveOrSkipReason(t *testing.T, h Heuristic, inst Instance) *Solution {
	t.Helper()
	sol, err := h.Solve(inst)
	if err != nil {
		if errors.Is(err, ErrNoSolution) {
			return nil
		}
		t.Fatalf("%s: unexpected error: %v", h.Name(), err)
	}
	return sol
}

// TestAllHeuristicsOnChain checks that every heuristic solves an easy chain
// instance and produces a validated solution. DPA2D is exempt: on a pipeline
// it can enroll only q cores (Section 6.2.1), which this instance permits,
// but its failures on chains are documented paper behaviour.
func TestAllHeuristicsOnChain(t *testing.T) {
	g := testChain(t, 10, 0.03, 0.001)
	pl := platform.XScale(4, 4)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	solved := 0
	for _, h := range All(1) {
		sol := solveOrSkipReason(t, h, inst)
		if sol == nil {
			t.Errorf("%s failed on easy chain", h.Name())
			continue
		}
		solved++
		if sol.Result.MaxCycleTime > inst.Period*(1+1e-9) {
			t.Errorf("%s: cycle time %g exceeds period", h.Name(), sol.Result.MaxCycleTime)
		}
		if sol.Energy() <= 0 {
			t.Errorf("%s: non-positive energy %g", h.Name(), sol.Energy())
		}
	}
	if solved == 0 {
		t.Fatal("no heuristic solved the chain")
	}
}

// TestAllHeuristicsOnForkJoin exercises parallel structure.
func TestAllHeuristicsOnForkJoin(t *testing.T) {
	mid := []float64{0.04, 0.05, 0.06}
	vol := []float64{0.001, 0.001, 0.001}
	g, err := spg.ForkJoin(0.01, 0.01, mid, vol, vol)
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	inst := Instance{Graph: g, Platform: pl, Period: 0.08}
	for _, h := range All(2) {
		sol := solveOrSkipReason(t, h, inst)
		if sol == nil {
			t.Logf("%s failed on fork-join (allowed)", h.Name())
			continue
		}
		if sol.Result.MaxCycleTime > inst.Period*(1+1e-9) {
			t.Errorf("%s: cycle time %g exceeds period %g", h.Name(), sol.Result.MaxCycleTime, inst.Period)
		}
	}
}

// TestHeuristicsOnRandomSuites runs every heuristic over a spread of random
// SPGs and verifies that any returned solution passes the evaluator (finish
// already guarantees this; the test asserts feasibility metadata too).
func TestHeuristicsOnRandomSuites(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(0); seed < 8; seed++ {
		for _, ccr := range []float64{10, 1} {
			g := testRandomSPG(t, seed, 30, ccr)
			inst := Instance{Graph: g, Platform: pl, Period: 0.1}
			anySolved := false
			for _, h := range All(seed) {
				sol := solveOrSkipReason(t, h, inst)
				if sol == nil {
					continue
				}
				anySolved = true
				if sol.Result.ActiveCores > pl.NumCores() {
					t.Errorf("%s: %d active cores on %d-core grid",
						h.Name(), sol.Result.ActiveCores, pl.NumCores())
				}
			}
			if !anySolved {
				t.Errorf("seed %d ccr %g: no heuristic found a solution", seed, ccr)
			}
		}
	}
}

// TestDPA1DOptimalOnChainBeatsOthers: Section 5.4 argues DPA1D is optimal for
// linear chains (no other mapping can use the links discarded by the snake).
// Its energy must therefore never exceed any other heuristic's on chains.
func TestDPA1DOptimalOnChain(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 5 + rng.Intn(15)
		g := testChain(t, k, 0, 0)
		spg.RandomizeWeights(g, rng, 0.005, 0.04)
		spg.RandomizeVolumes(g, rng, 0.0001, 0.001)
		inst := Instance{Graph: g, Platform: pl, Period: 0.05}
		d1 := solveOrSkipReason(t, NewDPA1D(), inst)
		if d1 == nil {
			t.Fatalf("seed %d: DPA1D failed on a chain", seed)
		}
		for _, h := range All(seed) {
			sol := solveOrSkipReason(t, h, inst)
			if sol == nil {
				continue
			}
			if sol.Energy() < d1.Energy()*(1-1e-9) {
				t.Errorf("seed %d: %s energy %.6g beats DPA1D %.6g on a chain",
					seed, h.Name(), sol.Energy(), d1.Energy())
			}
		}
	}
}

// TestDPA2DPipelineUsesAtMostQCores reproduces the observation of
// Section 6.2.1: on a pure pipeline DPA2D can enroll at most q cores (one
// per column), since each band holds a single row.
func TestDPA2DPipelineUsesAtMostQCores(t *testing.T) {
	g := testChain(t, 12, 0.05, 0.0001)
	pl := platform.XScale(4, 4)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solveOrSkipReason(t, NewDPA2D(), inst)
	if sol == nil {
		t.Skip("DPA2D failed (allowed on pipelines when the period is tight)")
	}
	if sol.Result.ActiveCores > pl.Q {
		t.Errorf("DPA2D enrolled %d cores on a pipeline, max should be q=%d",
			sol.Result.ActiveCores, pl.Q)
	}
}

// TestDPA2DInfeasiblePipeline: a pipeline whose total work cannot fit on q
// cores must make DPA2D fail while DPA1D (with p*q cores) succeeds.
func TestDPA2DInfeasiblePipeline(t *testing.T) {
	pl := platform.XScale(4, 4)
	// 12 stages of 0.09 Gcycles each with T=0.1 s: at most ~1 stage per core
	// at full speed, so 4 columns cannot host 12 stages.
	g := testChain(t, 12, 0.09, 0.00001)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	if _, err := NewDPA2D().Solve(inst); !errors.Is(err, ErrNoSolution) {
		t.Errorf("DPA2D error = %v, want ErrNoSolution", err)
	}
	if sol := solveOrSkipReason(t, NewDPA1D(), inst); sol == nil {
		t.Error("DPA1D should solve the 12-stage pipeline on 16 cores")
	}
}

// TestDPA1DFailsOnHighElevation reproduces the paper's DPA1D failure mode:
// state explosion on fat graphs.
func TestDPA1DFailsOnHighElevation(t *testing.T) {
	mid := make([]float64, 20)
	vol := make([]float64, 20)
	for i := range mid {
		mid[i] = 0.01
		vol[i] = 0.0001
	}
	g, err := spg.ForkJoin(0.01, 0.01, mid, vol, vol)
	if err != nil {
		t.Fatal(err)
	}
	h := &DPA1D{MaxStates: 500, MaxTransitions: 10_000}
	_, err = h.Solve(Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 1})
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("error = %v, want ErrNoSolution", err)
	}
}

// TestRandomDeterministicWithSeed: equal seeds give equal results.
func TestRandomDeterministicWithSeed(t *testing.T) {
	g := testRandomSPG(t, 5, 25, 10)
	inst := Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 0.1}
	a, errA := NewRandom(42).Solve(inst)
	b, errB := NewRandom(42).Solve(inst)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("determinism broken: %v vs %v", errA, errB)
	}
	if errA == nil && math.Abs(a.Energy()-b.Energy()) > 1e-12 {
		t.Fatalf("energies differ: %g vs %g", a.Energy(), b.Energy())
	}
}

// TestTightPeriodInfeasibleForAll: a period below the fastest possible
// execution of the heaviest stage must defeat every heuristic.
func TestTightPeriodInfeasibleForAll(t *testing.T) {
	g := testChain(t, 5, 0.5, 0.001) // 0.5 Gcycles per stage
	inst := Instance{Graph: g, Platform: platform.XScale(4, 4), Period: 0.1}
	for _, h := range All(3) {
		if _, err := h.Solve(inst); !errors.Is(err, ErrNoSolution) {
			t.Errorf("%s error = %v, want ErrNoSolution", h.Name(), err)
		}
	}
}

// TestLoosePeriodSingleCore: with a very loose period the best energy is a
// single core at minimum speed; DPA1D must find exactly that.
func TestLoosePeriodSingleCore(t *testing.T) {
	g := testChain(t, 6, 0.01, 0.000001)
	pl := platform.XScale(4, 4)
	inst := Instance{Graph: g, Platform: pl, Period: 10}
	sol := solveOrSkipReason(t, NewDPA1D(), inst)
	if sol == nil {
		t.Fatal("DPA1D failed on a trivial instance")
	}
	if sol.Result.ActiveCores != 1 {
		t.Errorf("active cores = %d, want 1", sol.Result.ActiveCores)
	}
	// Energy must be leak + all work at the slowest speed.
	want := pl.LeakPower*inst.Period + 0.06/pl.Speeds[0]*pl.DynPower[0]
	if math.Abs(sol.Energy()-want) > 1e-9 {
		t.Errorf("energy = %.9g, want %.9g", sol.Energy(), want)
	}
}

// TestFinishRejectsBrokenMapping: the finish wrapper converts evaluator
// rejections into ErrNoSolution so no heuristic can leak invalid mappings.
func TestFinishRejectsBrokenMapping(t *testing.T) {
	g := testChain(t, 3, 0.02, 0.001)
	pl := platform.XScale(2, 2)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	m := mapping.New(3, pl)
	// All stages on one core, but the core is left unpowered.
	for i := range m.Alloc {
		m.Alloc[i] = platform.Core{U: 0, V: 0}
	}
	_, err := finish("test", inst, m)
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("error = %v, want ErrNoSolution", err)
	}
}

// TestSolutionEnergyAccessor covers the Solution convenience method.
func TestSolutionEnergyAccessor(t *testing.T) {
	g := testChain(t, 4, 0.02, 0.001)
	inst := Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.2}
	sol, err := NewGreedy().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy() != sol.Result.Energy {
		t.Error("Energy() accessor mismatch")
	}
}
