package core

import (
	"testing"

	"spgcmp/internal/platform"
)

// TestArenaAllocReset exercises the bump allocator: carved slices must be
// disjoint, reset must rewind to a single retained block, and oversized
// blocks must be released.
func TestArenaAllocReset(t *testing.T) {
	var a arena[float64]
	x := a.alloc(10)
	y := a.alloc(10)
	for i := range x {
		x[i] = 1
	}
	for i := range y {
		y[i] = 2
	}
	for i := range x {
		if x[i] != 1 {
			t.Fatalf("overlapping arena slices: x[%d] = %g", i, x[i])
		}
	}
	if got := a.alloc(0); got != nil {
		t.Fatalf("alloc(0) = %v, want nil", got)
	}
	// Force several blocks, then reset: one block remains and is reused.
	a.alloc(5000)
	if len(a.blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(a.blocks))
	}
	a.reset()
	if len(a.blocks) != 1 {
		t.Fatalf("reset retained %d blocks, want 1", len(a.blocks))
	}
	retained := &a.blocks[0][0]
	z := a.alloc(8)
	if &z[0] != retained {
		t.Fatal("reset did not rewind to the retained block")
	}
	// An over-cap block is dropped on reset.
	a.alloc(arenaMaxRetain + 1)
	a.reset()
	if len(a.blocks) != 0 {
		t.Fatalf("oversized block survived reset: %d blocks", len(a.blocks))
	}
}

// TestScratchNilSafety: every alloc method of a nil Scratch falls back to
// plain make, and Reset/Child are no-ops.
func TestScratchNilSafety(t *testing.T) {
	var s *Scratch
	s.Reset()
	if c := s.Child(3); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	if got := len(s.F64(4)); got != 4 {
		t.Fatalf("nil.F64 len = %d", got)
	}
	if got := len(s.I32(4)); got != 4 {
		t.Fatalf("nil.I32 len = %d", got)
	}
	if got := len(s.Ints(4)); got != 4 {
		t.Fatalf("nil.Ints len = %d", got)
	}
	if got := len(s.distEntries(4)); got != 4 {
		t.Fatalf("nil.distEntries len = %d", got)
	}
	m := s.F64Rows(3, 5)
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("nil.F64Rows shape = %dx%d", len(m), len(m[0]))
	}
	n := s.IntRows(3, 5)
	if len(n) != 3 || len(n[0]) != 5 {
		t.Fatalf("nil.IntRows shape = %dx%d", len(n), len(n[0]))
	}
}

// TestScratchRowsDisjoint: matrix rows are disjoint windows of one block.
func TestScratchRowsDisjoint(t *testing.T) {
	s := NewScratch()
	m := s.F64Rows(4, 3)
	for r := range m {
		for c := range m[r] {
			m[r][c] = float64(10*r + c)
		}
	}
	for r := range m {
		for c := range m[r] {
			if m[r][c] != float64(10*r+c) {
				t.Fatalf("rows overlap at [%d][%d]", r, c)
			}
		}
	}
	// Row headers must not allow appends to bleed into the next row.
	if cap(m[0]) != 3 {
		t.Fatalf("row cap = %d, want 3", cap(m[0]))
	}
}

// TestScratchResetClearsRowHeaders: after Reset, retained row-header blocks
// hold no stale slice headers that would pin released element blocks.
func TestScratchResetClearsRowHeaders(t *testing.T) {
	s := NewScratch()
	s.F64Rows(4, 8)
	s.Reset()
	blk := s.f64rows.blocks
	for _, b := range blk {
		for i, h := range b {
			if h != nil {
				t.Fatalf("stale row header at %d after Reset", i)
			}
		}
	}
}

// TestScratchChildren: children are distinct, created on demand, and reset
// with the parent.
func TestScratchChildren(t *testing.T) {
	s := NewScratch()
	c0, c1 := s.Child(0), s.Child(1)
	if c0 == nil || c1 == nil || c0 == c1 {
		t.Fatal("children not distinct")
	}
	if s.Child(0) != c0 {
		t.Fatal("Child(0) not stable")
	}
	c0.F64(100)
	s.Reset()
	if c0.f64.off != 0 || c0.f64.cur != 0 {
		t.Fatal("child not reset with parent")
	}
}

// scratchAllocInstance is the warm instance the steady-state allocation tests
// share: a mid-size random SPG with an attached analysis, solved once so all
// shared caches (bands, thresholds, downsets, solution memos) are populated.
func scratchAllocInstance(t *testing.T) Instance {
	t.Helper()
	g := testRandomSPG(t, 7, 40, 1)
	inst := NewInstance(g, platform.XScale(4, 4), 0.5)
	inst.Scratch = NewScratch()
	return inst
}

// testSolveSteadyAllocs warms h on inst, then bounds the steady-state heap
// allocations of one solve + arena reset. The bounds are regression tripwires
// for the flattened kernels (pre-flattening, a DPA2D solve on this instance
// allocated thousands of times): generous enough to absorb allocator noise,
// tight enough that reintroducing a per-cell table or per-transition map
// blows them immediately.
func testSolveSteadyAllocs(t *testing.T, h Heuristic, inst Instance, maxAllocs float64) {
	t.Helper()
	if _, err := h.Solve(inst); err != nil {
		t.Fatalf("%s: %v", h.Name(), err)
	}
	inst.Scratch.Reset()
	got := testing.AllocsPerRun(20, func() {
		if _, err := h.Solve(inst); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		inst.Scratch.Reset()
	})
	t.Logf("%s: %.0f allocs per warm solve (bound %.0f)", h.Name(), got, maxAllocs)
	if got > maxAllocs {
		t.Errorf("%s: %.0f allocs per warm solve, want <= %.0f", h.Name(), got, maxAllocs)
	}
}

// TestSteadyStateAllocs bounds the warm-path allocation count of each DP
// heuristic when a scratch arena is attached — the PoolExecutor worker
// steady state.
func TestSteadyStateAllocs(t *testing.T) {
	inst := scratchAllocInstance(t)
	t.Run("DPA2D", func(t *testing.T) {
		testSolveSteadyAllocs(t, NewDPA2D(), inst, 250)
	})
	t.Run("DPA2D1D", func(t *testing.T) {
		testSolveSteadyAllocs(t, NewDPA2D1D(), inst, 250)
	})
	t.Run("DPA1D", func(t *testing.T) {
		// Warm DPA1D replays its memoized chunk sequence through finishSnake;
		// the bound covers the replay (mapping, routes, evaluation), not the DP.
		testSolveSteadyAllocs(t, NewDPA1D(), inst, 250)
	})
}
