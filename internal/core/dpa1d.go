package core

import (
	"errors"
	"fmt"
	"math"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// DPA1D configures the CMP as a uni-directional uni-line of r = p*q cores
// (embedded as a snake, Section 5.4) and computes the optimal 1D solution
// with the dynamic programming algorithm of Theorem 1: admissible subgraphs
// (downsets) are split into consecutive chunks, one per processor, subject to
// the cut bandwidth constraint Cout(G')/BW <= T. For a linear chain the
// result is optimal even among 2D mappings, since a chain cannot exploit the
// discarded links; for graphs of large elevation the downset lattice explodes
// and the heuristic fails, exactly as reported in Section 6.2.
type DPA1D struct {
	// MaxStates caps the number of downsets interned before giving up.
	MaxStates int
	// MaxTransitions caps the total number of downset expansions explored.
	MaxTransitions int
}

// NewDPA1D returns the default configuration. The transition budget counts
// DP relaxations (per processor layer), so it scales with the core count;
// the state budget is what stops elevation blow-ups early.
func NewDPA1D() *DPA1D {
	return &DPA1D{MaxStates: 150_000, MaxTransitions: 24_000_000}
}

// Name implements Heuristic.
func (h *DPA1D) Name() string { return "DPA1D" }

// ErrBudget wraps ErrNoSolution for failures caused by state explosion
// rather than by infeasibility.
var ErrBudget = errors.New("state budget exhausted")

// Solve implements Heuristic.
func (h *DPA1D) Solve(inst Instance) (*Solution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	chunks, err := solve1D(inst, h.MaxStates, h.MaxTransitions)
	if err != nil {
		return nil, err
	}
	return finishSnake(h.Name(), inst, chunks)
}

// solve1D runs the Theorem 1 DP on a uni-directional chain of
// pl.NumCores() processors and returns the optimal chunk sequence.
func solve1D(inst Instance, maxStates, maxTransitions int) ([][]int, error) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	r := pl.NumCores()
	ds, err := spg.NewDownsetSpace(g, maxStates)
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%v)", ErrNoSolution, err, ErrBudget)
	}
	maxChunk := T * pl.MaxSpeed()
	linkCap := pl.LinkCapacity(T)

	// chunkEnergy is Ecal of Theorem 1: leakage plus dynamic energy at the
	// slowest feasible speed.
	chunkEnergy := func(work float64) float64 {
		_, idx, ok := pl.MinFeasibleSpeed(work, T)
		if !ok {
			return math.Inf(1)
		}
		return pl.CoreEnergy(work, T, idx)
	}

	const unset = -1
	type layer struct {
		energy []float64
		parent []int32
	}
	newLayer := func(states int) *layer {
		l := &layer{energy: make([]float64, states), parent: make([]int32, states)}
		for i := range l.energy {
			l.energy[i] = math.Inf(1)
			l.parent[i] = unset
		}
		return l
	}
	grow := func(l *layer, states int) {
		for len(l.energy) < states {
			l.energy = append(l.energy, math.Inf(1))
			l.parent = append(l.parent, unset)
		}
	}

	full := ds.FullID()
	transitions := 0

	// Layer k holds E(D, k): minimal energy to run downset D on exactly the
	// first k processors of the chain.
	prev := newLayer(ds.NumStates())
	exps, err := ds.Expansions(ds.EmptyID(), maxChunk)
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%v)", ErrNoSolution, err, ErrBudget)
	}
	transitions += len(exps)
	grow(prev, ds.NumStates())
	for _, ex := range exps {
		e := chunkEnergy(ex.ChunkWork)
		if e < prev.energy[ex.To] {
			prev.energy[ex.To] = e
			prev.parent[ex.To] = int32(ds.EmptyID())
		}
	}

	bestEnergy := math.Inf(1)
	bestK := -1
	layers := []*layer{nil, prev} // layers[k] for k >= 1
	if prev.energy[full] < bestEnergy {
		bestEnergy = prev.energy[full]
		bestK = 1
	}

	for k := 2; k <= r; k++ {
		cur := newLayer(ds.NumStates())
		progress := false
		for id := 0; id < len(prev.energy); id++ {
			base := prev.energy[id]
			if math.IsInf(base, 1) || id == full {
				continue
			}
			cut := ds.Cout(id)
			if cut > linkCap {
				continue // the link between cores k-1 and k would overflow
			}
			commE := cut * pl.EnergyPerGB
			exps, err := ds.Expansions(id, maxChunk)
			if err != nil {
				return nil, fmt.Errorf("%w: %v (%v)", ErrNoSolution, err, ErrBudget)
			}
			transitions += len(exps)
			if transitions > maxTransitions {
				return nil, fmt.Errorf("%w: transition budget exceeded (%v)", ErrNoSolution, ErrBudget)
			}
			grow(cur, ds.NumStates())
			grow(prev, ds.NumStates())
			for _, ex := range exps {
				cand := base + commE + chunkEnergy(ex.ChunkWork)
				if cand < cur.energy[ex.To] {
					cur.energy[ex.To] = cand
					cur.parent[ex.To] = int32(id)
					progress = true
				}
			}
		}
		layers = append(layers, cur)
		grow(cur, ds.NumStates())
		if cur.energy[full] < bestEnergy {
			bestEnergy = cur.energy[full]
			bestK = k
		}
		if !progress {
			break
		}
		prev = cur
	}

	if bestK < 0 {
		return nil, ErrNoSolution
	}

	// Reconstruct the chunk of each processor, in chain order.
	chunks := make([][]int, bestK)
	id := full
	for k := bestK; k >= 1; k-- {
		p := int(layers[k].parent[id])
		chunks[k-1] = ds.Diff(p, id)
		id = p
	}
	return chunks, nil
}

// finishSnake places consecutive chunks along the snake embedding, pins the
// communication routes to the snake links ("no other communication link is
// used", Section 5.4) and evaluates the result.
func finishSnake(name string, inst Instance, chunks [][]int) (*Solution, error) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	snake := platform.NewSnake(pl)
	m := mapping.New(g.N(), pl)
	pos := make([]int, g.N()) // stage -> snake position
	for k, chunk := range chunks {
		c := snake.Core(k)
		var work float64
		for _, s := range chunk {
			m.Alloc[s] = c
			pos[s] = k
			work += g.Stages[s].Weight
		}
		_, idx, ok := pl.MinFeasibleSpeed(work, T)
		if !ok {
			return nil, fmt.Errorf("%w: %s chunk %d infeasible", ErrNoSolution, name, k)
		}
		m.SetSpeed(pl, c, idx)
	}
	m.Paths = make(map[int][]platform.Link)
	for e, edge := range g.Edges {
		a, b := pos[edge.Src], pos[edge.Dst]
		if a != b {
			m.Paths[e] = snake.Path(a, b)
		}
	}
	return finish(name, inst, m)
}
