package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// DPA1D configures the CMP as a uni-directional uni-line of r = p*q cores
// (embedded as a snake, Section 5.4) and computes the optimal 1D solution
// with the dynamic programming algorithm of Theorem 1: admissible subgraphs
// (downsets) are split into consecutive chunks, one per processor, subject to
// the cut bandwidth constraint Cout(G')/BW <= T. For a linear chain the
// result is optimal even among 2D mappings, since a chain cannot exploit the
// discarded links; for graphs of large elevation the downset lattice explodes
// and the heuristic fails, exactly as reported in Section 6.2.
type DPA1D struct {
	// MaxStates caps the number of downsets interned before giving up.
	MaxStates int
	// MaxTransitions caps the total number of downset expansions explored.
	MaxTransitions int
}

// NewDPA1D returns the default configuration. The transition budget counts
// DP relaxations (per processor layer), so it scales with the core count;
// the state budget is what stops elevation blow-ups early.
func NewDPA1D() *DPA1D {
	return &DPA1D{MaxStates: 150_000, MaxTransitions: 24_000_000}
}

// Name implements Heuristic.
func (h *DPA1D) Name() string { return "DPA1D" }

// ErrBudget wraps ErrNoSolution for failures caused by state explosion
// rather than by infeasibility.
var ErrBudget = errors.New("state budget exhausted")

// budgetMemoKey identifies one DPA1D run's budget verdict: everything the
// run's exploration sequence — and therefore its budget failure point —
// depends on, besides the member's graph and volumes (the memo lives on the
// member): the period (chunk cap and link capacity scale with it), both
// budgets, the chain length, the bandwidth and the speed ladder (chunk-
// energy finiteness gates which states later layers expand). Energy
// magnitudes never influence which states are touched, so dynamic powers
// and leakage stay out of the key.
type budgetMemoKey struct {
	T                         float64
	maxStates, maxTransitions int
	cores                     int
	bw                        float64
	ladder                    string
}

// solutionMemoKey identifies one DPA1D run's optimal chunk sequence. The
// budget key pins everything the exploration depends on; the chunk sequence
// additionally depends on the platform's energy model — chunk energies
// (dynamic powers, leakage) and the communication energy rate steer the DP's
// argmin even when the explored state set is identical — so the energy
// fingerprint joins the key. Two platforms sharing a ladder but not powers
// therefore never share solutions.
type solutionMemoKey struct {
	budgetMemoKey
	energy string
}

// dpa1dEnergySig fingerprints every platform quantity the solve1D objective
// reads beyond the key's explicit fields: the speed/power ladder with
// leakage (energySig, shared with the rectangle tables) plus the per-GB link
// energy charged on chunk cuts. CommLeakPower stays out: it is a
// mapping-independent constant added by the final evaluation, so it never
// influences which chunk sequence wins.
func dpa1dEnergySig(pl *platform.Platform) string {
	b := []byte(energySig(pl))
	b = append(b, ';')
	b = appendHexFloat(b, pl.EnergyPerGB)
	return string(b)
}

// budgetMemo records, per family member, the outcomes of past DPA1D runs:
// budget-failure verdicts and, since the campaign-engine refactor,
// successful chunk decompositions. A budget-failed run evicts its
// half-enumerated downset space (see Solve), so before this memo every
// identical later run — the same CCR cell in a repeated campaign sweep, say
// — re-burned the entire enumeration just to fail at the same point; the run
// is deterministic given the key, so replaying the recorded error is
// bit-identical and free.
//
// Successful runs memoize their chunk sequence (not the Solution): a warm
// sweep replays the chunks through finishSnake, which rebuilds mapping,
// routes and evaluation from scratch, so callers never alias mappings while
// skipping the whole DP. The memo stores a private copy and hands out
// fresh copies (copy-on-return), keeping the cached sequence immutable even
// if a caller mutates what it received.
type budgetMemo struct {
	mu  sync.Mutex
	m   map[budgetMemoKey]error
	sol map[solutionMemoKey][][]int
}

type budgetMemoAuxKey struct{}

func budgetMemoFor(an *spg.Analysis) *budgetMemo {
	return an.MemberAux(budgetMemoAuxKey{}, func() any {
		return &budgetMemo{
			m:   make(map[budgetMemoKey]error),
			sol: make(map[solutionMemoKey][][]int),
		}
	}).(*budgetMemo)
}

func (bm *budgetMemo) lookup(key budgetMemoKey) error {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	return bm.m[key]
}

func (bm *budgetMemo) record(key budgetMemoKey, err error) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	bm.m[key] = err
}

// MemoryFootprint implements spg.Footprinter: both verdict maps count
// toward Analysis.MemoryFootprint and so toward the campaign cache's byte
// account (chunk sequences are the only entries of real size).
func (bm *budgetMemo) MemoryFootprint() int64 {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	const keyBytes = 56 // budgetMemoKey's fixed fields + string header
	var b int64
	for k := range bm.m {
		b += keyBytes + int64(len(k.ladder)) + 48
	}
	for k, chunks := range bm.sol {
		b += keyBytes + int64(len(k.ladder)+len(k.energy)) + 48 + 24
		for _, c := range chunks {
			b += 24 + int64(len(c))*8
		}
	}
	return b
}

// copyChunks deep-copies a chunk sequence; both record and replay copy, so
// the memoized sequence is never shared with any caller.
func copyChunks(chunks [][]int) [][]int {
	out := make([][]int, len(chunks))
	for i, c := range chunks {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// solution returns a fresh copy of the memoized chunk sequence for key.
func (bm *budgetMemo) solution(key solutionMemoKey) ([][]int, bool) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	chunks, ok := bm.sol[key]
	if !ok {
		return nil, false
	}
	return copyChunks(chunks), true
}

// recordSolution memoizes a private copy of a successful run's chunks.
func (bm *budgetMemo) recordSolution(key solutionMemoKey, chunks [][]int) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	bm.sol[key] = copyChunks(chunks)
}

// Solve implements Heuristic.
func (h *DPA1D) Solve(inst Instance) (*Solution, error) {
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// A budget failure recorded for this exact configuration replays
	// immediately: the run it summarizes would burn the whole enumeration
	// again only to fail identically (runs are deterministic given the key
	// and the member's graph).
	memo := budgetMemoFor(inst.Analysis)
	key := budgetMemoKey{
		T:         inst.Period,
		maxStates: h.MaxStates, maxTransitions: h.MaxTransitions,
		cores:  inst.Platform.NumCores(),
		bw:     inst.Platform.BW,
		ladder: speedLadderSig(inst.Platform),
	}
	if err := memo.lookup(key); err != nil {
		return nil, err
	}
	// A memoized successful run replays its chunk sequence straight through
	// finishSnake: the DP is deterministic given the key, the member's graph
	// and the platform's energy model (all in solKey), so the rebuilt
	// mapping and its evaluation are bit-identical to re-running it — and
	// warm sweeps skip the enumeration entirely.
	solKey := solutionMemoKey{key, dpa1dEnergySig(inst.Platform)}
	if chunks, ok := memo.solution(solKey); ok {
		return finishSnake(h.Name(), inst, chunks)
	}
	ds, err := inst.Analysis.DownsetSpace(h.MaxStates)
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%w)", ErrNoSolution, err, ErrBudget)
	}
	// The space may be shared through the analysis cache: take the run lock
	// so concurrent Solves serialize instead of invalidating each other's
	// run indices, then open one budget epoch — a space warmed by earlier
	// periods fails (or succeeds) exactly where a freshly built one would.
	ds.LockRun()
	defer ds.UnlockRun()
	ds.BeginRun()
	chunks, err := solve1D(inst, ds, h.MaxTransitions)
	if err != nil {
		if errors.Is(err, ErrBudget) {
			// A partially enumerated space is dead weight for future runs;
			// drop it so the next period starts from a fresh space, exactly
			// like the uncached path — and remember the verdict so the next
			// identical run skips the burn altogether.
			inst.Analysis.EvictDownsetSpace(h.MaxStates, ds)
			memo.record(key, err)
		}
		return nil, err
	}
	memo.recordSolution(solKey, chunks)
	return finishSnake(h.Name(), inst, chunks)
}

// solve1D runs the Theorem 1 DP on a uni-directional chain of
// pl.NumCores() processors and returns the optimal chunk sequence.
func solve1D(inst Instance, ds *spg.DownsetSpace, maxTransitions int) ([][]int, error) {
	pl, T := inst.Platform, inst.Period
	r := pl.NumCores()
	maxChunk := T * pl.MaxSpeed()
	linkCap := pl.LinkCapacity(T)

	// chunkEnergy is Ecal of Theorem 1: leakage plus dynamic energy at the
	// slowest feasible speed.
	chunkEnergy := func(work float64) float64 {
		_, idx, ok := pl.MinFeasibleSpeed(work, T)
		if !ok {
			return math.Inf(1)
		}
		return pl.CoreEnergy(work, T, idx)
	}

	const unset = -1
	sc := inst.Scratch
	type layer struct {
		energy []float64
		parent []int32
	}
	newLayer := func(states int) *layer {
		// Layers are carved from the scratch arena with capacity headroom so
		// grow's in-place appends stay inside the region reserved here; a run
		// that interns more states than the headroom covers spills the layer
		// onto the heap, which changes nothing but the allocator.
		capHint := states + states/4 + 64
		l := &layer{energy: sc.F64(capHint)[:states], parent: sc.I32(capHint)[:states]}
		for i := range l.energy {
			l.energy[i] = math.Inf(1)
			l.parent[i] = unset
		}
		return l
	}
	grow := func(l *layer, states int) {
		for len(l.energy) < states {
			l.energy = append(l.energy, math.Inf(1))
			l.parent = append(l.parent, unset)
		}
	}

	// The DP is keyed by run indices (per-epoch touch order: empty = 0,
	// full = 1), not by global downset ids: run indices are dense — sized by
	// this run's states even when the shared space holds leftovers from
	// earlier periods — and identical between fresh and warmed spaces, so
	// tables, iteration order and floating-point tie-breaking never depend on
	// interning history.
	const empty, full = 0, 1
	transitions := 0

	// A state's expansion list, chunk energies and outgoing cut are the same
	// in every layer, so they are fetched and evaluated once per state and
	// replayed as pure array math in the remaining r-1 layers. runStates
	// shadows ds.RunCount() locally: it only grows when an expansion list is
	// first built (memoized replays touch nothing new), so the hot loop
	// never takes the space's mutex for already-expanded states.
	type stateExp struct {
		exps  []spg.Expansion
		chunk []float64 // chunkEnergy per expansion
		commE float64   // cut * EnergyPerGB
	}
	memo := []*stateExp{}
	cuts := []float64{} // per run index; negative = not yet computed
	runStates := ds.RunCount()
	growState := func(id int) {
		for len(memo) <= id {
			memo = append(memo, nil)
			cuts = append(cuts, -1)
		}
	}
	cutOf := func(id int) float64 {
		growState(id)
		if cuts[id] < 0 {
			cuts[id] = ds.CoutRun(id)
		}
		return cuts[id]
	}
	expand := func(id int) (*stateExp, error) {
		growState(id)
		if memo[id] != nil {
			return memo[id], nil
		}
		exps, err := ds.ExpansionsInRun(id, maxChunk)
		if err != nil {
			return nil, err
		}
		se := &stateExp{exps: exps, chunk: sc.F64(len(exps))}
		for j, ex := range exps {
			se.chunk[j] = chunkEnergy(ex.ChunkWork)
		}
		se.commE = cutOf(id) * pl.EnergyPerGB
		memo[id] = se
		runStates = ds.RunCount()
		return se, nil
	}

	// Layer k holds E(D, k): minimal energy to run downset D on exactly the
	// first k processors of the chain.
	prev := newLayer(runStates)
	first, err := expand(empty)
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%w)", ErrNoSolution, err, ErrBudget)
	}
	transitions += len(first.exps)
	grow(prev, runStates)
	for j, ex := range first.exps {
		if e := first.chunk[j]; e < prev.energy[ex.To] {
			prev.energy[ex.To] = e
			prev.parent[ex.To] = int32(empty)
		}
	}

	bestEnergy := math.Inf(1)
	bestK := -1
	layers := []*layer{nil, prev} // layers[k] for k >= 1
	if prev.energy[full] < bestEnergy {
		bestEnergy = prev.energy[full]
		bestK = 1
	}

	for k := 2; k <= r; k++ {
		cur := newLayer(runStates)
		progress := false
		for id := 0; id < len(prev.energy); id++ {
			base := prev.energy[id]
			if math.IsInf(base, 1) || id == full {
				continue
			}
			// The cut check comes first, as in the Theorem 1 statement: an
			// over-capacity state is never expanded, so it charges neither
			// the state nor the transition budget.
			if cutOf(id) > linkCap {
				continue // the link between cores k-1 and k would overflow
			}
			se, err := expand(id)
			if err != nil {
				return nil, fmt.Errorf("%w: %v (%w)", ErrNoSolution, err, ErrBudget)
			}
			transitions += len(se.exps)
			if transitions > maxTransitions {
				return nil, fmt.Errorf("%w: transition budget exceeded (%w)", ErrNoSolution, ErrBudget)
			}
			grow(cur, runStates)
			grow(prev, runStates)
			for j, ex := range se.exps {
				cand := base + se.commE + se.chunk[j]
				if cand < cur.energy[ex.To] {
					cur.energy[ex.To] = cand
					cur.parent[ex.To] = int32(id)
					progress = true
				}
			}
		}
		layers = append(layers, cur)
		grow(cur, runStates)
		if cur.energy[full] < bestEnergy {
			bestEnergy = cur.energy[full]
			bestK = k
		}
		if !progress {
			break
		}
		prev = cur
	}

	if bestK < 0 {
		return nil, ErrNoSolution
	}

	// Reconstruct the chunk of each processor, in chain order (run indices
	// translate back to downset ids for the membership diff).
	chunks := make([][]int, bestK)
	id := full
	for k := bestK; k >= 1; k-- {
		p := int(layers[k].parent[id])
		chunks[k-1] = ds.Diff(ds.RunID(p), ds.RunID(id))
		id = p
	}
	return chunks, nil
}

// finishSnake places consecutive chunks along the snake embedding, pins the
// communication routes to the snake links ("no other communication link is
// used", Section 5.4) and evaluates the result.
func finishSnake(name string, inst Instance, chunks [][]int) (*Solution, error) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	snake := platform.NewSnake(pl)
	m := mapping.New(g.N(), pl)
	pos := make([]int, g.N()) // stage -> snake position
	for k, chunk := range chunks {
		c := snake.Core(k)
		var work float64
		for _, s := range chunk {
			m.Alloc[s] = c
			pos[s] = k
			work += g.Stages[s].Weight
		}
		_, idx, ok := pl.MinFeasibleSpeed(work, T)
		if !ok {
			return nil, fmt.Errorf("%w: %s chunk %d infeasible", ErrNoSolution, name, k)
		}
		m.SetSpeed(pl, c, idx)
	}
	m.Paths = make(map[int][]platform.Link, len(g.Edges))
	for e, edge := range g.Edges {
		a, b := pos[edge.Src], pos[edge.Dst]
		if a != b {
			m.Paths[e] = snake.Path(a, b)
		}
	}
	return finish(name, inst, m)
}
