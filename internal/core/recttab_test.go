package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
)

// TestMinFeasiblePeriodBoundary: the threshold table must reproduce the
// MinFeasibleSpeed verdict exactly, including one ulp to either side of the
// located boundary.
func TestMinFeasiblePeriodBoundary(t *testing.T) {
	pl := platform.XScale(4, 4)
	rng := rand.New(rand.NewSource(11))
	check := func(work, T float64) {
		t.Helper()
		want := -1
		if _, idx, ok := pl.MinFeasibleSpeed(work, T); ok {
			want = idx
		}
		got := -1
		for i, s := range pl.Speeds {
			if T >= minFeasiblePeriod(work, s) {
				got = i
				break
			}
		}
		if got != want {
			t.Fatalf("work=%.17g T=%.17g: threshold idx %d, MinFeasibleSpeed idx %d", work, T, got, want)
		}
	}
	for trial := 0; trial < 20000; trial++ {
		work := math.Ldexp(rng.Float64(), rng.Intn(20)-10)
		T := math.Ldexp(rng.Float64(), rng.Intn(20)-10)
		if T <= 0 {
			continue
		}
		check(work, T)
		// Probe the exact boundary of every ladder speed, one ulp around it.
		for _, s := range pl.Speeds {
			tb := minFeasiblePeriod(work, s)
			if tb <= 0 {
				continue
			}
			check(work, tb)
			check(work, math.Nextafter(tb, 0))
			check(work, math.Nextafter(tb, math.Inf(1)))
		}
	}
	check(0, 1)
}

// TestSharedRectTablesEquivalence: re-solving the same instance through one
// analysis — warming the family's threshold and energy tables — must return
// bit-identical energies to a fresh, cache-cold solve, for every 2D-family
// heuristic across a period sweep.
func TestSharedRectTablesEquivalence(t *testing.T) {
	pl := platform.XScale(4, 4)
	for _, elev := range []int{2, 5, 8} {
		g, err := randspg.Generate(randspg.Params{N: 40, Elevation: elev, Seed: int64(elev), CCR: 1})
		if err != nil {
			t.Fatal(err)
		}
		warm := NewInstance(g, pl, 1)
		for _, T := range []float64{1, 0.1, 0.01} {
			for _, mk := range []func() Heuristic{
				func() Heuristic { return NewDPA2D() },
				func() Heuristic { return &DPA2D{Transpose: true} },
				func() Heuristic { return NewDPA2D1D() },
			} {
				h := mk()
				// Two warm solves (the second hits every shared table) vs a
				// cache-cold instance.
				sol1, err1 := h.Solve(warm.WithPeriod(T))
				sol2, err2 := h.Solve(warm.WithPeriod(T))
				solC, errC := mk().Solve(Instance{Graph: g, Platform: pl, Period: T})
				if (err1 == nil) != (errC == nil) || (err2 == nil) != (errC == nil) {
					t.Fatalf("elev=%d %s T=%g: warm errs %v/%v, cold err %v", elev, h.Name(), T, err1, err2, errC)
				}
				if err1 != nil {
					continue
				}
				if math.Float64bits(sol1.Energy()) != math.Float64bits(solC.Energy()) ||
					math.Float64bits(sol2.Energy()) != math.Float64bits(solC.Energy()) {
					t.Fatalf("elev=%d %s T=%g: warm energies %.17g/%.17g != cold %.17g",
						elev, h.Name(), T, sol1.Energy(), sol2.Energy(), solC.Energy())
				}
			}
		}
	}
}

// TestStrictAnalysisMode: with SPGCMP_STRICT_ANALYSIS set, an instance whose
// cache wraps a different graph must fail validation loudly; by default the
// mismatch is silently repaired with a private cache.
func TestStrictAnalysisMode(t *testing.T) {
	g1, err := randspg.Generate(randspg.Params{N: 12, Elevation: 2, Seed: 1, CCR: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := randspg.Generate(randspg.Params{N: 12, Elevation: 2, Seed: 2, CCR: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(2, 2)
	mismatched := Instance{Graph: g1, Platform: pl, Period: 1, Analysis: spg.NewAnalysis(g2)}

	if _, err := NewGreedy().Solve(mismatched); err != nil {
		t.Fatalf("default mode: mismatched cache must be repaired silently, got %v", err)
	}

	t.Setenv(StrictAnalysisEnv, "1")
	if err := mismatched.Analyzed().Validate(); !errors.Is(err, ErrAnalysisMismatch) {
		t.Fatalf("strict Validate error = %v, want ErrAnalysisMismatch", err)
	}
	for _, h := range All(1) {
		if _, err := h.Solve(mismatched); !errors.Is(err, ErrAnalysisMismatch) {
			t.Fatalf("strict %s Solve error = %v, want ErrAnalysisMismatch", h.Name(), err)
		}
	}
	// A matching cache and a nil cache stay fine under strict mode.
	if _, err := NewGreedy().Solve(NewInstance(g1, pl, 1)); err != nil {
		t.Fatalf("strict mode rejects a matching cache: %v", err)
	}
	if _, err := NewGreedy().Solve(Instance{Graph: g1, Platform: pl, Period: 1}); err != nil {
		t.Fatalf("strict mode rejects a nil cache: %v", err)
	}

	t.Setenv(StrictAnalysisEnv, "0")
	if _, err := NewGreedy().Solve(mismatched); err != nil {
		t.Fatalf("%s=0 must behave like the default, got %v", StrictAnalysisEnv, err)
	}
}
