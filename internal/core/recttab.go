package core

import (
	"math"
	"strconv"
	"sync"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// This file lifts DPA2D's rectangle tables out of the per-call engine2D and
// into caches shared across every solver run on a workload family, hanging
// off the scale family's shared spg.Analysis through its Aux hook. Two
// structures are shared, at two different scopes:
//
//   - Speed thresholds (cross-period). The speed-index component of ecal —
//     the slowest speed able to process a rectangle's work within the period
//     — is monotone in T: tightening the period can only push the index up.
//     For each rectangle, whose work is fixed, the minimal period at which
//     each ladder speed becomes feasible is computed once and reused across
//     every period division of the selection protocol, every CCR variant
//     (rectangle work is a stage-weight sum, untouched by volume rescaling)
//     and every heuristic sharing the grid orientation (DPA2D, DPA2D-T,
//     DPA2D1D all use the same energy ladder). Thresholds reproduce the
//     platform.MinFeasibleSpeed verdict bit for bit: the feasibility
//     predicate work <= T*s*(1+1e-12) is monotone in T (IEEE multiplication
//     by a positive constant is monotone), so the exact float boundary is
//     well defined and located by ulp refinement.
//
//   - Rectangle-energy snapshots (per period). The full ecal entry adds the
//     T-dependent leakage and dynamic terms, so energies are shared only
//     between engines probing the same period: DPA2D, DPA2D-T and DPA2D1D
//     all run at each division of SelectPeriod and probe overlapping band
//     rectangles. Engines copy the shared snapshot into a private table
//     (keeping the DP's hot loop lock-free), and publish their additions
//     back when the solve finishes. Entries are pure functions of
//     (weights, energy ladder, T, rectangle), so merging is conflict-free
//     and bit-identical to local recomputation.
//
// Both caches key by the platform's energy signature (speeds, dynamic
// powers, leakage), not by platform identity: the transposed and uni-line
// virtual platforms DPA2D-T and DPA2D1D synthesize per call share the real
// platform's ladder and therefore its tables.

// rectCacheKey is the Aux key under which the tables hang off the family's
// shared analysis.
type rectCacheKey struct{}

type rectCache struct {
	mu   sync.Mutex
	sigs map[string]*sigTables
}

// sigTables holds the tables of one (family, energy signature) pair.
type sigTables struct {
	mu sync.Mutex
	// thr[bandKey][rectIdx][speedIdx] is the minimal period at which the
	// ladder speed becomes feasible for the rectangle's work; rows are
	// allocated on first touch.
	thr map[int][][]float64
	// periods is a tiny most-recently-used list of per-period energy
	// snapshot tables; SelectPeriod probes at most ten periods and revisits
	// each one for every heuristic, so a small cap bounds memory without
	// evicting anything a sweep still wants.
	periods []*periodTables
}

const maxPeriodTables = 12

// periodTables shares completed rectangle-energy entries between engines
// running at the same period.
type periodTables struct {
	T    float64
	mu   sync.Mutex
	ecal map[int][]float64 // band key -> (ymax+2)^2 entries, NaN = unknown
}

// appendHexFloat appends f's exact hexadecimal form, the collision-free
// float encoding the cache signatures are built from.
func appendHexFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'x', -1, 64)
}

// speedLadderSig fingerprints the platform's speed ladder — the single
// encoding shared by every cache key that depends on it (the DPA1D budget
// memo and, through energySig, the rectangle tables), so the fingerprints
// can never drift apart.
func speedLadderSig(pl *platform.Platform) string {
	var b []byte
	for _, s := range pl.Speeds {
		b = appendHexFloat(b, s)
		b = append(b, ',')
	}
	return string(b)
}

// energySig fingerprints the parts of a platform that ecal depends on.
func energySig(pl *platform.Platform) string {
	b := []byte(speedLadderSig(pl))
	b = append(b, ';')
	for _, p := range pl.DynPower {
		b = appendHexFloat(b, p)
		b = append(b, ',')
	}
	b = append(b, ';')
	b = appendHexFloat(b, pl.LeakPower)
	return string(b)
}

// MemoryFootprint implements spg.Footprinter so the rectangle tables
// participate in Analysis.MemoryFootprint (and through it in the campaign
// cache's byte account): threshold rows, period snapshot tables and the
// per-signature map overheads, with the same flat-constant approximations
// the spg estimates use.
func (rc *rectCache) MemoryFootprint() int64 {
	rc.mu.Lock()
	var b int64
	sigs := make([]*sigTables, 0, len(rc.sigs))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for sig, st := range rc.sigs {
		b += int64(len(sig)) + auxMapEntryBytes
		sigs = append(sigs, st)
	}
	rc.mu.Unlock()
	for _, st := range sigs {
		b += st.footprint()
	}
	return b
}

// Flat approximations matching the spg footprint constants.
const (
	auxSliceHeaderBytes = 24
	auxMapEntryBytes    = 48
)

func (st *sigTables) footprint() int64 {
	st.mu.Lock()
	var b int64
	for _, rows := range st.thr {
		b += auxMapEntryBytes + auxSliceHeaderBytes + int64(len(rows))*auxSliceHeaderBytes
		for _, row := range rows {
			b += int64(len(row)) * 8
		}
	}
	periods := append([]*periodTables(nil), st.periods...)
	st.mu.Unlock()
	for _, pt := range periods {
		pt.mu.Lock()
		for _, tab := range pt.ecal {
			b += auxMapEntryBytes + auxSliceHeaderBytes + int64(len(tab))*8
		}
		pt.mu.Unlock()
	}
	return b
}

// rectTablesFor returns the shared tables for an's scale family and pl's
// energy signature, creating them on first use.
func rectTablesFor(an *spg.Analysis, pl *platform.Platform) *sigTables {
	rc := an.Aux(rectCacheKey{}, func() any {
		return &rectCache{sigs: make(map[string]*sigTables)}
	}).(*rectCache)
	sig := energySig(pl)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	st := rc.sigs[sig]
	if st == nil {
		st = &sigTables{thr: make(map[int][][]float64)}
		rc.sigs[sig] = st
	}
	return st
}

// period returns the energy snapshot store for period T, creating it on
// first use and keeping the list in most-recently-used order.
func (st *sigTables) period(T float64) *periodTables {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, pt := range st.periods {
		if pt.T == T {
			copy(st.periods[1:i+1], st.periods[:i])
			st.periods[0] = pt
			return pt
		}
	}
	pt := &periodTables{T: T, ecal: make(map[int][]float64)}
	st.periods = append(st.periods, nil)
	copy(st.periods[1:], st.periods)
	st.periods[0] = pt
	if len(st.periods) > maxPeriodTables {
		st.periods = st.periods[:maxPeriodTables]
	}
	return pt
}

// speedFeasible is the platform.MinFeasibleSpeed predicate, verbatim.
func speedFeasible(work, s, T float64) bool {
	return work <= T*s*(1+1e-12)
}

// minFeasiblePeriod returns the smallest positive float64 period at which
// speed s can process work — the exact boundary of the speedFeasible
// predicate, located by ulp refinement around the real-arithmetic estimate.
func minFeasiblePeriod(work, s float64) float64 {
	if work <= 0 {
		return 0
	}
	t := work / (s * (1 + 1e-12))
	for !speedFeasible(work, s, t) {
		t = math.Nextafter(t, math.Inf(1))
	}
	for {
		t2 := math.Nextafter(t, 0)
		if t2 > 0 && speedFeasible(work, s, t2) {
			t = t2
		} else {
			break
		}
	}
	return t
}

// speedIdx returns the index of the slowest feasible speed for a rectangle
// with the given work at period T, or -1 when even the fastest is too slow —
// exactly platform.MinFeasibleSpeed's verdict, answered from the cross-period
// threshold table. bandKey/rectIdx address the rectangle; rects is the table
// width (the per-band rectangle count, identical across the family).
func (st *sigTables) speedIdx(bandKey, rectIdx, rects int, work, T float64, pl *platform.Platform) int {
	if work < 0 || T <= 0 {
		return -1
	}
	st.mu.Lock()
	rows := st.thr[bandKey]
	if rows == nil {
		rows = make([][]float64, rects)
		st.thr[bandKey] = rows
	}
	row := rows[rectIdx]
	if row == nil {
		row = make([]float64, len(pl.Speeds))
		for i, s := range pl.Speeds {
			row[i] = minFeasiblePeriod(work, s)
		}
		rows[rectIdx] = row
	}
	st.mu.Unlock()
	for i, tmin := range row {
		if T >= tmin {
			return i
		}
	}
	return -1
}

// snapshotInto fills tab — a caller-supplied (typically arena-backed) table —
// with a private copy of the shared energy entries for a band, NaN-filled
// where no engine has computed an entry yet, and returns it. The copy runs
// under the lock so a concurrent publish's NaN->value fill can never be seen
// half-written; which side of a racing fill the copy lands on is invisible
// anyway, since the engine would recompute a missing entry to identical bits.
func (pt *periodTables) snapshotInto(bandKey int, tab []float64) []float64 {
	pt.mu.Lock()
	src := pt.ecal[bandKey]
	if src != nil {
		copy(tab, src)
	}
	pt.mu.Unlock()
	if src != nil {
		return tab
	}
	for i := range tab {
		tab[i] = math.NaN()
	}
	return tab
}

// publish merges an engine's completed entries back into the shared table.
// Entries are pure functions of the rectangle, so a concurrent engine can
// only have computed the identical value; first write wins.
func (pt *periodTables) publish(bandKey int, tab []float64) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	dst := pt.ecal[bandKey]
	if dst == nil {
		dst = make([]float64, len(tab))
		copy(dst, tab)
		pt.ecal[bandKey] = dst
		return
	}
	for i, v := range tab {
		if !math.IsNaN(v) && math.IsNaN(dst[i]) {
			dst[i] = v
		}
	}
}
