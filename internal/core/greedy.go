package core

import (
	"sort"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
)

// Greedy is the heuristic of Section 5.2. For every speed s it runs a
// wavefront assignment greedy(s) with all cores at speed s: starting from
// C(1,1) with the source stage, each core accumulates ready stages (largest
// incoming communication first) while its computation cycle-time fits the
// period and the XY routes of the incoming communications fit the link
// bandwidth; the remaining pending stages are shared between the right and
// down neighbours, balancing the forwarded communication volume. Speeds are
// then downgraded per core to the slowest feasible value and the best
// resulting energy over all s is kept.
//
// Because cores are processed in a fixed sweep order and a stage is only
// placed once all its predecessors are placed, every quotient edge goes
// forward in the sweep order, so the DAG-partition rule holds by
// construction.
//
// Two sweeps are tried per speed: the paper's anti-diagonal wavefront
// (leftovers shared between the right and down neighbours) and, as a
// robustness fallback, a snake sweep (leftovers forwarded to the next snake
// position), which cannot strand stages in the bottom-right corner on tight
// periods. The best valid result wins.
type Greedy struct{}

// NewGreedy returns the heuristic.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Heuristic.
func (h *Greedy) Name() string { return "Greedy" }

// Solve implements Heuristic.
func (h *Greedy) Solve(inst Instance) (*Solution, error) {
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	var best *Solution
	for sIdx := range inst.Platform.Speeds {
		// The snake sweep is a pure feasibility fallback: it only runs when
		// the paper's wavefront finds nothing valid at this speed, which
		// preserves the paper's quality characteristics (Greedy robust but
		// dominated by the specialized heuristics).
		for _, sweep := range []sweepPlan{diagonalSweep(inst.Platform), snakeSweep(inst.Platform)} {
			m, ok := greedyAtSpeed(inst, sIdx, sweep)
			if !ok {
				continue
			}
			// Downgrade each enrolled core to its slowest feasible speed and
			// turn off unused cores before computing the energy (Section 5.2).
			if !m.DowngradeSpeeds(inst.Graph, inst.Platform, inst.Period) {
				continue
			}
			sol, err := finish(h.Name(), inst, m)
			if err != nil {
				continue
			}
			if best == nil || sol.Energy() < best.Energy() {
				best = sol
			}
			break // this speed succeeded; no fallback needed
		}
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}

// sweepPlan fixes the core processing order and the forwarding targets of a
// greedy sweep. Targets must come strictly later in the order.
type sweepPlan struct {
	order   []platform.Core
	targets func(platform.Core) []platform.Core
}

// diagonalSweep is the paper's wavefront: anti-diagonal order, leftovers
// shared between the right and down neighbours.
func diagonalSweep(pl *platform.Platform) sweepPlan {
	var order []platform.Core
	for d := 0; d <= pl.P+pl.Q-2; d++ {
		for u := 0; u < pl.P; u++ {
			v := d - u
			if v >= 0 && v < pl.Q {
				order = append(order, platform.Core{U: u, V: v})
			}
		}
	}
	return sweepPlan{
		order: order,
		targets: func(c platform.Core) []platform.Core {
			var ts []platform.Core
			for _, t := range []platform.Core{{U: c.U, V: c.V + 1}, {U: c.U + 1, V: c.V}} {
				if pl.InBounds(t) {
					ts = append(ts, t)
				}
			}
			return ts
		},
	}
}

// snakeSweep processes cores along the snake embedding and forwards
// leftovers to the next position; only the very last core can strand stages.
func snakeSweep(pl *platform.Platform) sweepPlan {
	s := platform.NewSnake(pl)
	order := make([]platform.Core, s.Len())
	for k := 0; k < s.Len(); k++ {
		order[k] = s.Core(k)
	}
	return sweepPlan{
		order: order,
		targets: func(c platform.Core) []platform.Core {
			k := s.Position(c)
			if k+1 >= s.Len() {
				return nil
			}
			return []platform.Core{s.Core(k + 1)}
		},
	}
}

// greedyAtSpeed runs the procedure greedy(s) of Section 5.2 under the given
// sweep plan.
func greedyAtSpeed(inst Instance, sIdx int, sweep sweepPlan) (*mapping.Mapping, bool) {
	inst = inst.Analyzed()
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()
	capW := T * pl.Speeds[sIdx]
	capL := pl.LinkCapacity(T)

	predsLeft := append([]int(nil), inst.Analysis.PredCounts()...)
	inVolume := inst.Analysis.InVolumes() // total incoming communication volume; read-only

	placed := make([]bool, n)
	alloc := make([]platform.Core, n)
	pendingAt := make([]int, n) // flattened core index holding the stage, -1 if none
	for i := range pendingAt {
		pendingAt[i] = -1
	}
	pending := make([][]int, pl.NumCores())
	linkLoad := make(map[platform.Link]float64)
	coreWork := make(map[platform.Core]float64)
	processed := make([]bool, pl.NumCores())

	src := g.Source()
	start := sweep.order[0]
	pending[mapping.CoreIndex(pl, start)] = []int{src}
	pendingAt[src] = mapping.CoreIndex(pl, start)

	placedCount := 0

	// tryPlace attempts to place stage s on core c, honouring the compute
	// capacity and the bandwidth of every XY link its incoming
	// communications would use. It commits on success.
	tryPlace := func(s int, c platform.Core) bool {
		if coreWork[c]+g.Stages[s].Weight > capW {
			return false
		}
		// Gather the per-link extra load of the incoming communications.
		extra := make(map[platform.Link]float64)
		for _, e := range g.InEdges(s) {
			edge := g.Edges[e]
			from := alloc[edge.Src]
			if from == c {
				continue
			}
			for _, l := range pl.XYPath(from, c) {
				extra[l] += edge.Volume
			}
		}
		for l, v := range extra {
			if linkLoad[l]+v > capL {
				return false
			}
		}
		for l, v := range extra {
			linkLoad[l] += v
		}
		coreWork[c] += g.Stages[s].Weight
		placed[s] = true
		alloc[s] = c
		placedCount++
		if pendingAt[s] >= 0 {
			// Remove from its pending list lazily: mark only.
			pendingAt[s] = -1
		}
		return true
	}

	// processCore grows core c and shares the leftovers with its right and
	// down neighbours.
	processCore := func(c platform.Core) bool {
		ci := mapping.CoreIndex(pl, c)
		processed[ci] = true
		list := pending[ci]
		pending[ci] = nil

		// current returns the live pending stages at c (placed/moved ones
		// are dropped).
		compact := func() []int {
			out := list[:0]
			for _, s := range list {
				if !placed[s] && pendingAt[s] == ci {
					out = append(out, s)
				}
			}
			return out
		}

		for {
			list = compact()
			// Candidates: pending stages whose predecessors are all placed,
			// sorted by non-increasing incoming volume (Section 5.2 sorts
			// successors by communication volume).
			cands := make([]int, 0, len(list))
			for _, s := range list {
				if predsLeft[s] == 0 {
					cands = append(cands, s)
				}
			}
			sort.Slice(cands, func(a, b int) bool {
				if inVolume[cands[a]] != inVolume[cands[b]] {
					return inVolume[cands[a]] > inVolume[cands[b]]
				}
				return cands[a] < cands[b]
			})
			placedOne := false
			for _, s := range cands {
				if !tryPlace(s, c) {
					continue
				}
				placedOne = true
				// Newly discovered / newly ready successors become pending
				// here (or stay wherever they already wait).
				for _, succ := range g.Successors(s) {
					predsLeft[succ]--
					if pendingAt[succ] == -1 && !placed[succ] {
						pendingAt[succ] = ci
						list = append(list, succ)
					} else if predsLeft[succ] == 0 && !placed[succ] && pendingAt[succ] != ci {
						// Ready now: if it waits on an already-processed
						// core it would be lost; pull it here.
						if processed[pendingAt[succ]] {
							pendingAt[succ] = ci
							list = append(list, succ)
						}
					}
				}
				break
			}
			if !placedOne {
				break
			}
		}

		// Share the leftovers among the forwarding targets, heaviest
		// communication first, to the currently lightest target.
		list = compact()
		if len(list) == 0 {
			return true
		}
		targets := sweep.targets(c)
		if len(targets) == 0 {
			return false // last core with unplaced stages: greedy(s) fails
		}
		sort.Slice(list, func(a, b int) bool {
			if inVolume[list[a]] != inVolume[list[b]] {
				return inVolume[list[a]] > inVolume[list[b]]
			}
			return list[a] < list[b]
		})
		forwarded := make([]float64, len(targets))
		for _, s := range list {
			pick := 0
			for ti := 1; ti < len(targets); ti++ {
				if forwarded[ti] < forwarded[pick] {
					pick = ti
				}
			}
			forwarded[pick] += inVolume[s]
			ti := mapping.CoreIndex(pl, targets[pick])
			pendingAt[s] = ti
			pending[ti] = append(pending[ti], s)
		}
		return true
	}

	// Sweep: forwarding targets always come later in the order, so every
	// upstream source of a core is processed before the core itself.
	for _, c := range sweep.order {
		if len(pending[mapping.CoreIndex(pl, c)]) == 0 {
			processed[mapping.CoreIndex(pl, c)] = true
			continue
		}
		if !processCore(c) {
			return nil, false
		}
	}
	if placedCount != n {
		return nil, false
	}

	m := mapping.New(n, pl)
	copy(m.Alloc, alloc)
	for c := range coreWork {
		m.SetSpeed(pl, c, sIdx)
	}
	return m, true
}
