package core

import (
	"math"
	"testing"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// TestDPA1DChunksAreContiguousOnSnake: DPA1D's clusters occupy a prefix of
// the snake with no holes, and all pinned paths follow the snake.
func TestDPA1DChunksAreContiguousOnSnake(t *testing.T) {
	pl := platform.XScale(4, 4)
	snake := platform.NewSnake(pl)
	for seed := int64(0); seed < 5; seed++ {
		g := testRandomSPG(t, seed, 20, 10)
		inst := Instance{Graph: g, Platform: pl, Period: 0.1}
		sol, err := NewDPA1D().Solve(inst)
		if err != nil {
			continue
		}
		used := make(map[int]bool)
		maxPos := -1
		for _, c := range sol.Mapping.Alloc {
			k := snake.Position(c)
			used[k] = true
			if k > maxPos {
				maxPos = k
			}
		}
		for k := 0; k <= maxPos; k++ {
			if !used[k] {
				t.Errorf("seed %d: snake position %d unused inside the prefix", seed, k)
			}
		}
		// Stages must be assigned in topological-compatible snake order:
		// an edge never goes backwards along the snake.
		for _, e := range g.Edges {
			a := snake.Position(sol.Mapping.Alloc[e.Src])
			b := snake.Position(sol.Mapping.Alloc[e.Dst])
			if b < a {
				t.Errorf("seed %d: edge %d->%d goes backwards on the snake (%d -> %d)",
					seed, e.Src, e.Dst, a, b)
			}
		}
	}
}

// TestDPA1DMonotoneInPeriod: loosening the period can only lower the optimal
// 1D energy.
func TestDPA1DMonotoneInPeriod(t *testing.T) {
	pl := platform.XScale(4, 4)
	g := testRandomSPG(t, 7, 18, 10)
	var prev float64 = math.Inf(1)
	for _, T := range []float64{0.05, 0.1, 0.2, 0.5, 1} {
		sol, err := NewDPA1D().Solve(Instance{Graph: g, Platform: pl, Period: T})
		if err != nil {
			continue
		}
		if sol.Energy() > prev*(1+1e-9) {
			t.Errorf("T=%g: energy %.9g rose above tighter-period energy %.9g", T, sol.Energy(), prev)
		}
		prev = sol.Energy()
	}
}

// TestDPA2DColumnStructure: every DPA2D cluster occupies a single column and
// the x ranges of the columns are increasing bands.
func TestDPA2DColumnStructure(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(0); seed < 8; seed++ {
		g := testRandomSPG(t, seed, 35, 10)
		sol, err := NewDPA2D().Solve(Instance{Graph: g, Platform: pl, Period: 0.3})
		if err != nil {
			continue
		}
		minX := make(map[int]int)
		maxX := make(map[int]int)
		for i, c := range sol.Mapping.Alloc {
			x := g.Stages[i].Label.X
			if cur, ok := minX[c.V]; !ok || x < cur {
				minX[c.V] = x
			}
			if cur, ok := maxX[c.V]; !ok || x > cur {
				maxX[c.V] = x
			}
		}
		// Bands must not overlap: max x of column v < min x of column v+1.
		for v := 0; v < pl.Q-1; v++ {
			if _, ok := maxX[v]; !ok {
				continue
			}
			if _, ok := minX[v+1]; !ok {
				continue
			}
			if maxX[v] >= minX[v+1] {
				t.Errorf("seed %d: column bands overlap: col %d ends at x=%d, col %d starts at x=%d",
					seed, v, maxX[v], v+1, minX[v+1])
			}
		}
	}
}

// TestDPA2DRowStructure: within a column, rows are grouped in increasing
// order across cores.
func TestDPA2DRowStructure(t *testing.T) {
	pl := platform.XScale(4, 4)
	g := testRandomSPG(t, 11, 35, 10)
	sol, err := NewDPA2D().Solve(Instance{Graph: g, Platform: pl, Period: 0.3})
	if err != nil {
		t.Skip("DPA2D failed on this instance")
	}
	type key struct{ v, u int }
	minY := make(map[key]int)
	maxY := make(map[key]int)
	for i, c := range sol.Mapping.Alloc {
		y := g.Stages[i].Label.Y
		k := key{c.V, c.U}
		if cur, ok := minY[k]; !ok || y < cur {
			minY[k] = y
		}
		if cur, ok := maxY[k]; !ok || y > cur {
			maxY[k] = y
		}
	}
	for v := 0; v < pl.Q; v++ {
		for u := 0; u < pl.P-1; u++ {
			a, okA := maxY[key{v, u}]
			for un := u + 1; un < pl.P && okA; un++ {
				if b, okB := minY[key{v, un}]; okB && b <= a {
					t.Errorf("column %d: core %d rows end at y=%d but core %d starts at y=%d",
						v, u, a, un, b)
				}
			}
		}
	}
}

// TestDPA2D1DOnSingleRowPlatform: on a 1xQ platform DPA2D and DPA2D1D
// coincide up to the snake embedding (identical energy).
func TestDPA2D1DOnSingleRowPlatform(t *testing.T) {
	pl := platform.XScale(1, 8)
	g := testRandomSPG(t, 4, 20, 10)
	inst := Instance{Graph: g, Platform: pl, Period: 0.3}
	a, errA := NewDPA2D().Solve(inst)
	b, errB := NewDPA2D1D().Solve(inst)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("feasibility differs: %v vs %v", errA, errB)
	}
	if errA != nil {
		t.Skip("both failed")
	}
	if math.Abs(a.Energy()-b.Energy()) > 1e-9*math.Max(1, a.Energy()) {
		t.Errorf("DPA2D %.9g vs DPA2D1D %.9g on a 1-row platform", a.Energy(), b.Energy())
	}
}

// TestInstanceValidate covers the instance sanity checks.
func TestInstanceValidate(t *testing.T) {
	good := Instance{
		Graph:    spg.Primitive(0.01, 0.01, 0.001),
		Platform: platform.XScale(2, 2),
		Period:   1,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Period = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero period accepted")
	}
	bad = good
	bad.Graph = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil graph accepted")
	}
	bad = good
	bad.Platform = &platform.Platform{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid platform accepted")
	}
}

// TestAllReturnsFiveHeuristics pins the paper's heuristic set and order.
func TestAllReturnsFiveHeuristics(t *testing.T) {
	hs := All(1)
	want := []string{"Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"}
	if len(hs) != len(want) {
		t.Fatalf("All returned %d heuristics", len(hs))
	}
	for i, h := range hs {
		if h.Name() != want[i] {
			t.Errorf("heuristic %d is %s, want %s", i, h.Name(), want[i])
		}
	}
}

// TestSolutionsAlwaysWithinPeriod is the blanket safety property across the
// whole heuristic portfolio and many instances.
func TestSolutionsAlwaysWithinPeriod(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(20); seed < 30; seed++ {
		for _, ccr := range []float64{10, 0.1} {
			g := testRandomSPG(t, seed, 30, ccr)
			for _, T := range []float64{1, 0.1} {
				inst := Instance{Graph: g, Platform: pl, Period: T}
				for _, h := range All(seed) {
					sol, err := h.Solve(inst)
					if err != nil {
						continue
					}
					if sol.Result.MaxCycleTime > T*(1+1e-9) {
						t.Errorf("seed %d %s T=%g: cycle %.9g", seed, h.Name(), T, sol.Result.MaxCycleTime)
					}
					if _, err := mapping.Evaluate(g, pl, sol.Mapping, T); err != nil {
						t.Errorf("seed %d %s: invalid solution escaped: %v", seed, h.Name(), err)
					}
				}
			}
		}
	}
}

// TestDPA2DTransposeValidAndSymmetric: the transposed variant produces valid
// mappings; on a square platform with a symmetric workload family it is a
// genuine alternative (sometimes better, sometimes worse, never invalid).
func TestDPA2DTransposeValid(t *testing.T) {
	pl := platform.XScale(4, 4)
	solvedBoth := 0
	for seed := int64(0); seed < 8; seed++ {
		g := testRandomSPG(t, seed, 30, 1)
		inst := Instance{Graph: g, Platform: pl, Period: 0.3}
		normal, errN := NewDPA2D().Solve(inst)
		transposed, errT := (&DPA2D{Transpose: true}).Solve(inst)
		if errT == nil {
			if _, err := mapping.Evaluate(g, pl, transposed.Mapping, inst.Period); err != nil {
				t.Fatalf("seed %d: transposed mapping invalid: %v", seed, err)
			}
			if transposed.Heuristic != "DPA2D-T" {
				t.Fatalf("transposed name = %q", transposed.Heuristic)
			}
		}
		if errN == nil && errT == nil {
			solvedBoth++
			_ = normal
		}
	}
	if solvedBoth == 0 {
		t.Skip("no instance solved by both orientations")
	}
}

// TestDPA2DTransposeOnWideFlatPlatform: the paper's DPA2D maps label rows
// onto grid rows, so on a 2x8 grid a fork-join of 6 heavy parallel stages
// (one x level) can split over at most 2 cores and fails. The transposed
// variant sees an 8x2 virtual grid, spreads the fork level across its 8
// virtual rows, and succeeds — the orientation ablation in action.
func TestDPA2DTransposeOnWideFlatPlatform(t *testing.T) {
	mid := make([]float64, 6)
	vol := make([]float64, 6)
	for i := range mid {
		mid[i] = 0.09 // needs a dedicated core at T=0.1
		vol[i] = 0.0001
	}
	g, err := spg.ForkJoin(0.01, 0.01, mid, vol, vol)
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(2, 8)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}
	if _, err := NewDPA2D().Solve(inst); err == nil {
		t.Error("DPA2D solved a 6-way fork on 2 grid rows, expected failure")
	}
	trp, err := (&DPA2D{Transpose: true}).Solve(inst)
	if err != nil {
		t.Fatalf("transposed DPA2D failed on 2x8: %v", err)
	}
	if trp.Result.ActiveCores < 6 {
		t.Errorf("transposed enrolled %d cores, want >= 6", trp.Result.ActiveCores)
	}
}
