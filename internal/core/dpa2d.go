package core

import (
	"math"
	"sync"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// DPA2D is the two-dimensional dynamic programming heuristic of Section 5.3.
// The SPG is first laid onto its x_max x y_max label grid; an outer DP cuts
// the x levels into consecutive bands, one per CMP column, and an inner DP
// cuts the rows of each band into consecutive groups, one per core of that
// column (empty cores are allowed). Communications leave a column
// horizontally on the row of their source core, are forwarded on that row
// through intermediate columns, and descend or climb vertically in the
// destination column — i.e. XY routing, which is what the final mapping uses.
//
// The outer DP carries, for each state, the outgoing-communication
// distribution D of its best solution only (the paper's greedy choice), so
// DPA2D is a heuristic even though both nested programs are exact given D.
//
// Transpose is an ablation knob beyond the paper: it swaps the roles of rows
// and columns (bands occupy grid rows, row groups occupy columns, routes are
// YX instead of XY), which can help on non-square grids or when the label
// grid is much taller than it is deep.
type DPA2D struct {
	Transpose bool
	// Sweeps caps the goroutines the outer DP uses for the independent
	// per-band-end sweeps of one solve (Options.SweepParallelism); <= 1 runs
	// serially. Any setting is bit-identical: see solve2D.
	Sweeps int
}

// NewDPA2D returns the paper's orientation.
func NewDPA2D() *DPA2D { return &DPA2D{} }

// Name implements Heuristic.
func (h *DPA2D) Name() string {
	if h.Transpose {
		return "DPA2D-T"
	}
	return "DPA2D"
}

// Solve implements Heuristic.
func (h *DPA2D) Solve(inst Instance) (*Solution, error) {
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	pl := inst.Platform
	if h.Transpose {
		pl = &platform.Platform{
			P: inst.Platform.Q, Q: inst.Platform.P,
			Speeds: inst.Platform.Speeds, DynPower: inst.Platform.DynPower,
			LeakPower: inst.Platform.LeakPower, CommLeakPower: inst.Platform.CommLeakPower,
			BW: inst.Platform.BW, EnergyPerGB: inst.Platform.EnergyPerGB,
		}
	}
	plan, err := solve2D(inst.Analysis, pl, inst.Period, inst.Scratch, h.Sweeps)
	if err != nil {
		return nil, err
	}
	m := plan.buildMapping(inst.Graph, pl, inst.Period)
	if m == nil {
		return nil, ErrNoSolution
	}
	if h.Transpose {
		m = transposeMapping(inst.Graph, inst.Platform, m)
	}
	return finish(h.Name(), inst, m)
}

// transposeMapping reflects a mapping computed on the transposed grid back
// onto the real platform, pinning YX routes (the mirror of the DP's XY
// accounting, so loads transfer link for link).
func transposeMapping(g *spg.Graph, pl *platform.Platform, m *mapping.Mapping) *mapping.Mapping {
	out := mapping.New(g.N(), pl)
	for i, c := range m.Alloc {
		out.Alloc[i] = platform.Core{U: c.V, V: c.U}
	}
	for u := 0; u < pl.P; u++ {
		for v := 0; v < pl.Q; v++ {
			// Transposed core (v, u) maps to real core (u, v).
			out.SpeedIdx[u*pl.Q+v] = m.SpeedIdx[v*pl.P+u]
		}
	}
	out.Paths = make(map[int][]platform.Link, len(g.Edges))
	for e, edge := range g.Edges {
		a, b := out.Alloc[edge.Src], out.Alloc[edge.Dst]
		if a != b {
			out.Paths[e] = pl.YXPath(a, b)
		}
	}
	return out
}

// distEntry is one element of the distribution D of Section 5.3: a
// communication leaving a column on physical row `row` (0-based), carried by
// graph edge `edge`.
type distEntry struct {
	edge int
	row  int
}

// plan2D is the reconstructed solution of the nested DP: bandEnd[v] is the
// last x level (1-based) of the band mapped onto CMP column v, and
// rowCuts[v][u] is the cumulative row cut of that column (core u, 1-based,
// hosts label rows rowCuts[v][u-1]+1 .. rowCuts[v][u]).
type plan2D struct {
	bandEnd []int
	rowCuts [][]int
	energy  float64
}

// buildMapping turns the plan into a concrete mapping on pl with XY routing
// (paths are left implicit: the evaluator defaults to XY, which matches the
// DP's communication accounting link for link).
func (p *plan2D) buildMapping(g *spg.Graph, pl *platform.Platform, T float64) *mapping.Mapping {
	m := mapping.New(g.N(), pl)
	prevEnd := 0
	for v, end := range p.bandEnd {
		cuts := p.rowCuts[v]
		for i, s := range g.Stages {
			if s.Label.X <= prevEnd || s.Label.X > end {
				continue
			}
			u := rowCore(cuts, s.Label.Y)
			m.Alloc[i] = platform.Core{U: u, V: v}
		}
		prevEnd = end
	}
	if !m.DowngradeSpeeds(g, pl, T) {
		return nil
	}
	return m
}

// rowCore returns the 0-based core row hosting label row y under cuts.
func rowCore(cuts []int, y int) int {
	for u := 1; u < len(cuts); u++ {
		if y <= cuts[u] {
			return u - 1
		}
	}
	return len(cuts) - 2 // defensive; y <= ymax = cuts[last]
}

// engine2D holds the state shared by the outer and inner dynamic programs.
// The period-independent graph analysis (prefix sums, topological order,
// band contexts) comes from the shared spg.Analysis; the cross-period speed
// thresholds and the per-period rectangle-energy snapshots come from the
// family-wide tables of recttab.go. The engine owns only the capacities and
// its private working copies of the energy tables, which it publishes back
// on exit so the next engine at this period starts warm.
type engine2D struct {
	g  *spg.Graph
	an *spg.Analysis
	pl *platform.Platform
	T  float64

	xmax, ymax int

	wPrefix [][]float64 // (xmax+1) x (ymax+1) weight prefix sums over labels
	cPrefix [][]int     // same for stage counts

	capL    float64 // link capacity per period, GB
	maxWork float64 // T * s_max, the largest per-core work

	// ecal caches, per band key m1*(xmax+1)+m2, the per-rectangle core
	// energy: index r1*(ymax+2)+r2 for label rows [r1..r2]; NaN marks an
	// uncomputed entry, +Inf an infeasible or non-convex rectangle. Tables
	// are seeded from — and published back to — the shared per-period store,
	// so the DP's hot loop stays lock-free while completed entries carry
	// across heuristics and solver calls.
	ecal [][]float64

	st *sigTables    // cross-period speed thresholds (shared, family-wide)
	pt *periodTables // rectangle-energy snapshots at this period (shared)
}

func newEngine2D(an *spg.Analysis, pl *platform.Platform, T float64) *engine2D {
	g := an.Graph()
	xmax, ymax := an.Depth(), an.Elevation()
	st := rectTablesFor(an, pl)
	e := &engine2D{
		g: g, an: an, pl: pl, T: T,
		xmax: xmax, ymax: ymax,
		capL:    pl.LinkCapacity(T),
		maxWork: T * pl.MaxSpeed(),
		ecal:    make([][]float64, (xmax+1)*(xmax+1)),
		st:      st,
		pt:      st.period(T),
	}
	e.wPrefix, e.cPrefix = an.LabelPrefixSums()
	return e
}

// publishEcal pushes every band table the engine touched back into the
// shared per-period store.
func (e *engine2D) publishEcal() {
	for key, tab := range e.ecal {
		if tab != nil {
			e.pt.publish(key, tab)
		}
	}
}

// rectWork returns the total weight of the stages with m1 <= x <= m2 and
// r1 <= y <= r2 (all 1-based, inclusive).
func (e *engine2D) rectWork(m1, m2, r1, r2 int) float64 {
	return e.wPrefix[m2][r2] - e.wPrefix[m1-1][r2] - e.wPrefix[m2][r1-1] + e.wPrefix[m1-1][r1-1]
}

func (e *engine2D) rectCount(m1, m2, r1, r2 int) int {
	return e.cPrefix[m2][r2] - e.cPrefix[m1-1][r2] - e.cPrefix[m2][r1-1] + e.cPrefix[m1-1][r1-1]
}

// band returns the (shared, memoized) analysis context of the band of x
// levels [m1..m2].
func (e *engine2D) band(m1, m2 int) *spg.Band {
	return e.an.Band(m1, m2)
}

// bandEcal returns the engine's rectangle-energy cache for band b, seeding
// it on first use from the shared per-period snapshot (warm after any
// earlier engine at this period probed the band). The table may live in sc:
// publishEcal copies entries out on exit, so nothing shared outlives the
// arena. Parallel sweeps never collide here — a band's key is determined by
// its last level M2, and each sweep goroutine owns distinct band ends.
func (e *engine2D) bandEcal(b *spg.Band, sc *Scratch) []float64 {
	key := b.M1*(e.xmax+1) + b.M2
	if ec := e.ecal[key]; ec != nil {
		return ec
	}
	ec := e.pt.snapshotInto(key, sc.F64((e.ymax+2)*(e.ymax+2)))
	e.ecal[key] = ec
	return ec
}

// ecalRect returns the optimal core energy for executing the band stages
// with rows in [r1..r2] on one core: leakage plus dynamic energy at the
// slowest feasible speed; 0 for an empty rectangle; +Inf when the period
// cannot be met or the rectangle is not convex (Section 5.3 sets such
// entries to +Inf). ec is the band's cache from bandEcal.
func (e *engine2D) ecalRect(b *spg.Band, ec []float64, r1, r2 int) float64 {
	idx := r1*(e.ymax+2) + r2
	if v := ec[idx]; !math.IsNaN(v) {
		return v
	}
	v := e.computeEcal(b, r1, r2)
	ec[idx] = v
	return v
}

func (e *engine2D) computeEcal(b *spg.Band, r1, r2 int) float64 {
	if e.rectCount(b.M1, b.M2, r1, r2) == 0 {
		return 0
	}
	work := e.rectWork(b.M1, b.M2, r1, r2)
	// The speed index comes from the cross-period threshold table — the
	// bit-exact MinFeasibleSpeed verdict, computed once per rectangle for
	// every period division and CCR variant.
	bandKey := b.M1*(e.xmax+1) + b.M2
	rects := (e.ymax + 2) * (e.ymax + 2)
	sIdx := e.st.speedIdx(bandKey, r1*(e.ymax+2)+r2, rects, work, e.T, e.pl)
	if sIdx < 0 {
		return math.Inf(1)
	}
	// Convexity is graph-only, so the verdict is memoized in the shared band
	// shape rather than recomputed per period.
	if !b.RowsConvex(r1, r2) {
		return math.Inf(1)
	}
	return e.pl.CoreEnergy(work, e.T, sIdx)
}

// innerResult is the outcome of the inner (column) DP for one band.
type innerResult struct {
	energy float64
	cuts   []int // cuts[u], u = 0..P: rows (cuts[u-1]..cuts[u]] go to core u-1
}

// inner runs the column DP of Section 5.3 for band b given the arriving
// distribution D' and returns the optimal row partition. Arrivals
// terminating in the band climb or descend from their arrival row to the
// core of their destination stage; arrivals destined beyond the band are
// forwarded horizontally and do not touch vertical links.
func (e *engine2D) inner(b *spg.Band, arrivals []distEntry, sc *Scratch) (innerResult, bool) {
	P := e.pl.P
	ymax := e.ymax
	ec := e.bandEcal(b, sc)

	// 2D prefix sums of terminating arrival volume by (arrival row, dest y):
	// t2d[r][y] = volume with row < r and dest y <= y. Arena rows come back
	// dirty, so the zero fill the old make() provided is now explicit.
	t2d := sc.F64Rows(P+1, ymax+1)
	for r := range t2d {
		row := t2d[r]
		for y := range row {
			row[y] = 0
		}
	}
	for _, d := range arrivals {
		edge := e.g.Edges[d.edge]
		dx := e.g.Stages[edge.Dst].Label.X
		if dx > b.M2 {
			continue // forwarded through this column
		}
		dy := e.g.Stages[edge.Dst].Label.Y
		t2d[d.row+1][dy] += edge.Volume
	}
	for r := 1; r <= P; r++ {
		for y := 1; y <= ymax; y++ {
			t2d[r][y] += t2d[r][y-1]
		}
		for y := 0; y <= ymax; y++ {
			t2d[r][y] += t2d[r-1][y]
		}
	}

	// ever returns the vertical-link cost of the boundary below core u
	// (1-based) when rows <= gp are on cores < u. It returns +Inf when a
	// direction overflows the link capacity.
	ever := func(gp, u int) float64 {
		if u == 1 {
			return 0
		}
		// Link between cores u-1 and u (physical rows u-2 and u-1).
		// Upward crossings: arrivals at rows <= u-2 with destination row
		// above the cut (y > gp). Downward: arrivals at rows >= u-1 with
		// destination at or below the cut (y <= gp).
		up := b.UpInt[gp] + t2d[u-1][ymax] - t2d[u-1][gp]
		down := b.DownInt[gp] + t2d[P][gp] - t2d[u-1][gp]
		if up > e.capL*(1+1e-12) || down > e.capL*(1+1e-12) {
			return math.Inf(1)
		}
		return (up + down) * e.pl.EnergyPerGB
	}

	dp := sc.F64Rows(ymax+1, P+1)
	par := sc.IntRows(ymax+1, P+1)
	for g := 0; g <= ymax; g++ {
		for u := 0; u <= P; u++ {
			dp[g][u] = math.Inf(1)
			par[g][u] = -1
		}
	}
	dp[0][0] = 0
	for u := 1; u <= P; u++ {
		for g := 0; g <= ymax; g++ {
			// g' descends from g (empty rectangle) to 0; the rectangle work
			// grows monotonically, so stop once it exceeds the core budget.
			for gp := g; gp >= 0; gp-- {
				if gp < g && e.rectWork(b.M1, b.M2, gp+1, g) > e.maxWork {
					break
				}
				base := dp[gp][u-1]
				if math.IsInf(base, 1) {
					continue
				}
				var rectE float64
				if gp < g {
					rectE = e.ecalRect(b, ec, gp+1, g)
					if math.IsInf(rectE, 1) {
						continue
					}
				}
				vertE := ever(gp, u)
				if math.IsInf(vertE, 1) {
					continue
				}
				if cand := base + rectE + vertE; cand < dp[g][u] {
					dp[g][u] = cand
					par[g][u] = gp
				}
			}
		}
	}
	if math.IsInf(dp[ymax][P], 1) {
		return innerResult{}, false
	}
	cuts := sc.Ints(P + 1)
	cuts[P] = ymax
	for u := P; u >= 1; u-- {
		cuts[u-1] = par[cuts[u]][u]
	}
	return innerResult{energy: dp[ymax][P], cuts: cuts}, true
}

// outDistribution builds the outgoing distribution D of a band solved with
// the given cuts: forwarded arrivals keep their row; new outgoing
// communications are emitted on the row of the core hosting their source.
// The result is exactly sized (counted first, filled by index) so the arena
// never over-allocates for append growth.
func (e *engine2D) outDistribution(b *spg.Band, arrivals []distEntry, cuts []int, sc *Scratch) []distEntry {
	fwd := 0
	for _, d := range arrivals {
		if e.g.Stages[e.g.Edges[d.edge].Dst].Label.X > b.M2 {
			fwd++
		}
	}
	out := sc.distEntries(fwd + len(b.Outgoing))
	i := 0
	for _, d := range arrivals {
		if e.g.Stages[e.g.Edges[d.edge].Dst].Label.X > b.M2 {
			out[i] = d
			i++
		}
	}
	for _, ei := range b.Outgoing {
		y := e.g.Stages[e.g.Edges[ei].Src].Label.Y
		out[i] = distEntry{edge: ei, row: rowCore(cuts, y)}
		i++
	}
	return out
}

// solve2D runs the nested DP on the label grid of an's graph against pl and
// returns the best plan over all numbers of used columns. Tables are carved
// from sc (nil allocates normally); sweeps > 1 computes the independent
// band-end states of each outer layer in parallel.
//
// Parallelism is bit-identical by construction: within one layer v, the state
// of band end m reads only layer v-1 and writes only rows[v][m]; the shared
// structures it touches are either keyed by m (the engine's ecal tables, band
// key M2 = m) or mutex-guarded pure memos whose values don't depend on which
// goroutine fills them first (band contexts, speed thresholds, period
// snapshots). The per-m work-budget skip replaces the serial loop's early
// break: rectWork grows monotonically with the band, so the skipped set is
// the same.
func solve2D(an *spg.Analysis, pl *platform.Platform, T float64, sc *Scratch, sweeps int) (*plan2D, error) {
	e := newEngine2D(an, pl, T)
	defer e.publishEcal()
	xmax := e.xmax
	vmax := pl.Q
	if xmax < vmax {
		vmax = xmax
	}
	colBudget := float64(pl.P) * e.maxWork

	type outerState struct {
		energy float64
		prevM  int
		cuts   []int
		dist   []distEntry
	}
	newRow := func() []outerState {
		row := make([]outerState, xmax+1)
		for i := range row {
			row[i].energy = math.Inf(1)
			row[i].prevM = -1
		}
		return row
	}

	rows := make([][]outerState, vmax+1)
	rows[0] = newRow() // unused; bands are 1-based in v

	// sweep runs fn(m, w) for every m in [lo..hi], striding the range across
	// up to `sweeps` goroutines, each with its own Scratch child so arena
	// allocation stays lock-free. fn owns rows[·][m] exclusively; the
	// wg.Wait barrier publishes every write before the next layer reads it.
	sweep := func(lo, hi int, fn func(m int, w *Scratch)) {
		n := hi - lo + 1
		if n <= 0 {
			return
		}
		workers := sweeps
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			for m := lo; m <= hi; m++ {
				fn(m, sc)
			}
			return
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ws := sc.Child(w)
				for m := lo + w; m <= hi; m += workers {
					fn(m, ws)
				}
			}(w)
		}
		wg.Wait()
	}

	// v = 1: a single band of levels [1..m]. Overweight bands are skipped
	// per-m (wider bands only grow heavier).
	rows[1] = newRow()
	sweep(1, xmax, func(m int, w *Scratch) {
		if e.rectWork(1, m, 1, e.ymax) > colBudget {
			return
		}
		b := e.band(1, m)
		ir, ok := e.inner(b, nil, w)
		if !ok {
			return
		}
		rows[1][m] = outerState{
			energy: ir.energy,
			prevM:  0,
			cuts:   ir.cuts,
			dist:   e.outDistribution(b, nil, ir.cuts, w),
		}
	})

	for v := 2; v <= vmax; v++ {
		rows[v] = newRow()
		prevRow := rows[v-1]
		sweep(v, xmax, func(m int, w *Scratch) {
			best := &rows[v][m]
			rowLoad := w.F64(pl.P)
			for mp := m - 1; mp >= v-1; mp-- {
				if e.rectWork(mp+1, m, 1, e.ymax) > colBudget {
					break
				}
				prev := &prevRow[mp]
				if math.IsInf(prev.energy, 1) {
					continue
				}
				// Horizontal crossing between columns v-1 and v: check the
				// per-row bandwidth and charge one hop per entry. The loads
				// accumulate into a dense per-row vector (rows are 0..P-1);
				// the overload check is a commutative any-exceeds, so the
				// scan order can't affect the verdict.
				for r := range rowLoad {
					rowLoad[r] = 0
				}
				var commE float64
				feasible := true
				for _, d := range prev.dist {
					vol := e.g.Edges[d.edge].Volume
					rowLoad[d.row] += vol
					commE += vol * pl.EnergyPerGB
				}
				for r := 0; r < pl.P; r++ {
					if rowLoad[r] > e.capL*(1+1e-12) {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				b := e.band(mp+1, m)
				ir, ok := e.inner(b, prev.dist, w)
				if !ok {
					continue
				}
				if cand := prev.energy + commE + ir.energy; cand < best.energy {
					best.energy = cand
					best.prevM = mp
					best.cuts = ir.cuts
				}
			}
			if best.prevM >= 0 {
				b := e.band(best.prevM+1, m)
				best.dist = e.outDistribution(b, prevRow[best.prevM].dist, best.cuts, w)
			}
		})
	}

	bestV, bestE := -1, math.Inf(1)
	for v := 1; v <= vmax; v++ {
		if rows[v][xmax].energy < bestE {
			bestE = rows[v][xmax].energy
			bestV = v
		}
	}
	if bestV < 0 {
		return nil, ErrNoSolution
	}
	plan := &plan2D{
		bandEnd: make([]int, bestV),
		rowCuts: make([][]int, bestV),
		energy:  bestE,
	}
	m := xmax
	for v := bestV; v >= 1; v-- {
		st := rows[v][m]
		plan.bandEnd[v-1] = m
		plan.rowCuts[v-1] = st.cuts
		m = st.prevM
	}
	return plan, nil
}
