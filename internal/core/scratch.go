package core

import "sync"

// Scratch is a per-worker allocation arena for the DP kernels: the buffers a
// single cell solve needs (DPA1D layer tables, DPA2D row/transfer tables,
// row-load vectors) are carved out of a few growable blocks instead of being
// allocated per call, so a long-lived pool worker reaches a steady state
// where solving a cell performs no kernel allocations at all.
//
// Ownership and lifetime rules (also documented in doc.go):
//
//   - A Scratch belongs to exactly one goroutine at a time. Pool workers own
//     one for their whole life (engine.PoolExecutor threads it through
//     ExecuteScratch); everyone else borrows one from the package pool via
//     GetScratch/PutScratch. Sharing a live Scratch across goroutines is a
//     data race.
//   - Reset must be called between cells (the engine does this; solvers
//     never call it). Reset recycles every outstanding buffer at once:
//     nothing handed out before the Reset may be used after it.
//   - Buffers come back dirty. Alloc methods do not zero memory; kernel code
//     fully initializes what it reads, exactly as it had to when the buffers
//     were fresh make() allocations filled with +Inf/-1 sentinels.
//   - Solvers must accept a nil Scratch (they allocate a fresh one), so
//     every call path — pooled or not — runs the same kernel code.
//
// Determinism: the arena only changes where bytes live, never what is
// computed; all results remain bit-identical to per-call allocation.
type Scratch struct {
	f64     arena[float64]
	i32     arena[int32]
	ints    arena[int]
	dist    arena[distEntry]
	f64rows arena[[]float64]
	introws arena[[]int]

	// children are sub-arenas for intra-cell parallel sweeps: each sweep
	// goroutine gets its own child so concurrent allocation needs no locks.
	// Children reset with their parent.
	children []*Scratch
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// Reset recycles every buffer handed out since the last Reset. The largest
// block of each arena is retained (up to a soft cap) so steady-state reuse
// allocates nothing; oversized transients from pathological cells are
// released back to the GC.
func (s *Scratch) Reset() {
	if s == nil {
		return
	}
	s.f64.reset()
	s.i32.reset()
	s.ints.reset()
	s.dist.reset()
	// Row-header arenas hold slice headers: clear them so a retained header
	// block cannot pin element blocks the element arenas just released.
	s.f64rows.resetClear()
	s.introws.resetClear()
	for _, c := range s.children {
		c.Reset()
	}
}

// Child returns the i-th sub-arena, creating it on first use. Parallel
// sweeps hand child i to goroutine i; the parent must not allocate while
// children are live (the children's memory is independent, but the rule
// keeps ownership trivially auditable). Child of a nil Scratch is nil,
// which every alloc method accepts.
func (s *Scratch) Child(i int) *Scratch {
	if s == nil {
		return nil
	}
	for len(s.children) <= i {
		s.children = append(s.children, NewScratch())
	}
	return s.children[i]
}

// Every alloc method accepts a nil receiver and falls back to a plain make,
// so kernel code calls them unconditionally; note the fallback is zeroed
// while arena memory is dirty — callers must fully initialize either way.

// F64 returns an uninitialized []float64 of length n.
func (s *Scratch) F64(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	return s.f64.alloc(n)
}

// I32 returns an uninitialized []int32 of length n.
func (s *Scratch) I32(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	return s.i32.alloc(n)
}

// Ints returns an uninitialized []int of length n.
func (s *Scratch) Ints(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	return s.ints.alloc(n)
}

// distEntries returns an uninitialized distribution buffer of length n.
func (s *Scratch) distEntries(n int) []distEntry {
	if s == nil {
		return make([]distEntry, n)
	}
	return s.dist.alloc(n)
}

// F64Rows returns an r x c matrix as r uninitialized rows carved from one
// backing block; the row-header slice is arena memory too, so a warm matrix
// costs zero allocations.
func (s *Scratch) F64Rows(r, c int) [][]float64 {
	var rows [][]float64
	if s == nil {
		rows = make([][]float64, r)
	} else {
		rows = s.f64rows.alloc(r)
	}
	flat := s.F64(r * c)
	for i := range rows {
		rows[i] = flat[i*c : (i+1)*c : (i+1)*c]
	}
	return rows
}

// IntRows returns an r x c matrix of ints, rows carved from one block.
func (s *Scratch) IntRows(r, c int) [][]int {
	var rows [][]int
	if s == nil {
		rows = make([][]int, r)
	} else {
		rows = s.introws.alloc(r)
	}
	flat := s.Ints(r * c)
	for i := range rows {
		rows[i] = flat[i*c : (i+1)*c : (i+1)*c]
	}
	return rows
}

// arena is a bump allocator over a list of doubling blocks. alloc never
// copies and never zeroes; reset rewinds to the start, keeping only the
// largest block (bounded by arenaMaxRetain) so the steady state is one
// block and zero allocations.
type arena[T any] struct {
	blocks [][]T
	cur    int // block being carved
	off    int // next free element in blocks[cur]
}

// Retention and growth bounds, in elements. A float64 arena retains at most
// 8 MB per worker; transient spikes beyond it are served and then released.
const (
	arenaMinBlock  = 1 << 10
	arenaMaxRetain = 1 << 20
)

func (a *arena[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.blocks) {
			if blk := a.blocks[a.cur]; a.off+n <= len(blk) {
				out := blk[a.off : a.off+n : a.off+n]
				a.off += n
				return out
			}
			a.cur++
			a.off = 0
			continue
		}
		size := arenaMinBlock
		if len(a.blocks) > 0 {
			size = 2 * len(a.blocks[len(a.blocks)-1])
		}
		if size < n {
			size = n
		}
		a.blocks = append(a.blocks, make([]T, size))
	}
}

func (a *arena[T]) reset() {
	if len(a.blocks) > 1 {
		// Blocks double, so the last is the largest: keep just it.
		a.blocks[0] = a.blocks[len(a.blocks)-1]
		a.blocks = a.blocks[:1]
	}
	if len(a.blocks) == 1 && len(a.blocks[0]) > arenaMaxRetain {
		a.blocks = a.blocks[:0]
	}
	a.cur, a.off = 0, 0
}

// resetClear is reset plus a zeroing sweep over the retained block, for
// arenas whose element type contains pointers.
func (a *arena[T]) resetClear() {
	a.reset()
	var zero T
	for _, blk := range a.blocks {
		for i := range blk {
			blk[i] = zero
		}
	}
}

// scratchPool serves call paths without a dedicated worker arena (direct
// SolveCell calls, CampaignExecutor fallbacks): GetScratch borrows an arena,
// PutScratch resets and returns it.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch borrows an arena from the package pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch resets s and returns it to the package pool. No buffer carved
// from s may be used after this call.
func PutScratch(s *Scratch) {
	if s == nil {
		return
	}
	s.Reset()
	scratchPool.Put(s)
}
