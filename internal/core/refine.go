package core

import (
	"sort"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
)

// Refiner is an extension beyond the paper: a deterministic local search
// that post-optimizes any valid mapping. It repeatedly evaluates two kinds
// of moves — migrating a single stage to another core (used or idle) and
// evacuating a whole cluster onto another idle core — and applies the move
// with the largest energy decrease, until no move improves the energy or the
// move budget is exhausted. Every candidate is checked through the
// authoritative evaluator, so validity (DAG-partition rule, period, link
// bandwidth) is preserved by construction.
//
// The paper's specialized heuristics explore structured solution families
// (chains of downsets, label-grid rectangles); the refiner explores their
// local neighbourhood in the unstructured solution space, which is exactly
// what the structured programs cannot reach. The ablation benchmark
// BenchmarkAblationRefinement quantifies the gap it closes.
type Refiner struct {
	// MaxMoves caps the number of applied moves (default 64).
	MaxMoves int
	// MaxCandidates caps evaluator calls (default 50000).
	MaxCandidates int
}

// NewRefiner returns the default configuration.
func NewRefiner() *Refiner { return &Refiner{MaxMoves: 64, MaxCandidates: 50_000} }

// Refine improves the solution in place semantics-wise: it returns a new
// Solution at least as good as the input (never worse), leaving the input
// untouched.
func (r *Refiner) Refine(inst Instance, sol *Solution) *Solution {
	maxMoves := r.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 64
	}
	budget := r.MaxCandidates
	if budget <= 0 {
		budget = 50_000
	}

	g, pl, T := inst.Graph, inst.Platform, inst.Period
	best := &Solution{Heuristic: sol.Heuristic, Mapping: sol.Mapping.Clone(), Result: sol.Result}
	// Pinned paths from 1D heuristics would no longer match after moves;
	// refinement operates in XY-routing space.
	if best.Mapping.Paths != nil {
		best.Mapping.Paths = nil
		res, err := mapping.Evaluate(g, pl, best.Mapping, T)
		if err != nil {
			return sol // snake routing was load-bearing; leave untouched
		}
		if res.Energy > sol.Result.Energy {
			// XY rerouting may overload a link that the snake avoided.
			return sol
		}
		best.Result = res
	}

	try := func(m *mapping.Mapping) *mapping.Result {
		if budget <= 0 {
			return nil
		}
		budget--
		if !m.DowngradeSpeeds(g, pl, T) {
			return nil
		}
		res, err := mapping.Evaluate(g, pl, m, T)
		if err != nil {
			return nil
		}
		return res
	}

	for move := 0; move < maxMoves && budget > 0; move++ {
		var bestCand *Solution
		cores, byCore := best.Mapping.Clusters(pl)

		// Candidate targets: every used core plus one representative idle
		// core adjacent to a used one (by symmetry one idle target per
		// neighbourhood suffices and keeps the scan linear).
		targets := make([]platform.Core, len(cores))
		copy(targets, cores)
		seen := make(map[platform.Core]bool)
		for _, c := range cores {
			seen[c] = true
		}
		for _, c := range cores {
			for _, n := range neighbours(pl, c) {
				if !seen[n] {
					seen[n] = true
					targets = append(targets, n)
				}
			}
		}
		sort.Slice(targets[len(cores):], func(i, j int) bool {
			a, b := targets[len(cores)+i], targets[len(cores)+j]
			if a.U != b.U {
				return a.U < b.U
			}
			return a.V < b.V
		})

		// Single-stage migrations.
		for s := 0; s < g.N() && budget > 0; s++ {
			from := best.Mapping.Alloc[s]
			for _, to := range targets {
				if to == from {
					continue
				}
				cand := best.Mapping.Clone()
				cand.Alloc[s] = to
				if res := try(cand); res != nil && res.Energy < best.Result.Energy-1e-15 {
					if bestCand == nil || res.Energy < bestCand.Result.Energy {
						bestCand = &Solution{Heuristic: best.Heuristic, Mapping: cand, Result: res}
					}
				}
			}
		}
		// Whole-cluster merges: move every stage of one cluster onto
		// another used core (reduces leakage when the period allows).
		for _, from := range cores {
			for _, to := range cores {
				if to == from || budget <= 0 {
					break
				}
				cand := best.Mapping.Clone()
				for _, s := range byCore[from] {
					cand.Alloc[s] = to
				}
				if res := try(cand); res != nil && res.Energy < best.Result.Energy-1e-15 {
					if bestCand == nil || res.Energy < bestCand.Result.Energy {
						bestCand = &Solution{Heuristic: best.Heuristic, Mapping: cand, Result: res}
					}
				}
			}
		}
		if bestCand == nil {
			break
		}
		best = bestCand
	}
	if best.Result.Energy < sol.Result.Energy {
		best.Heuristic = sol.Heuristic + "+refine"
		return best
	}
	return sol
}

func neighbours(pl *platform.Platform, c platform.Core) []platform.Core {
	var out []platform.Core
	for _, n := range []platform.Core{
		{U: c.U - 1, V: c.V}, {U: c.U + 1, V: c.V},
		{U: c.U, V: c.V - 1}, {U: c.U, V: c.V + 1},
	} {
		if pl.InBounds(n) {
			out = append(out, n)
		}
	}
	return out
}
