package core

import "spgcmp/internal/mapping"

// CellOutcome records one heuristic's result on one instance — the unit row
// of every campaign table (the Outcome of the Section 6 figures). Failed
// heuristics keep OK false and the zero Energy/ActiveCores; the paper counts
// them in Tables 2 and 3. The struct is its own stable wire form: every
// field JSON-codes losslessly (float64s round-trip bit-exactly through
// encoding/json), so outcomes survive the shard protocol and service
// responses unchanged.
type CellOutcome struct {
	Heuristic   string  `json:"heuristic"`
	OK          bool    `json:"ok"`
	Energy      float64 `json:"energy,omitempty"`
	ActiveCores int     `json:"active_cores,omitempty"`
	// Mapping is the heuristic's placement in its platform-independent wire
	// form, retained only under Options.KeepMappings (campaign tables drop
	// placements; the mapping service keeps them to answer actionably).
	Mapping *mapping.WireMapping `json:"mapping,omitempty"`
}

// SolveCell runs every heuristic of AllWith(o) on the instance, in the
// paper's presentation order, and returns one outcome per heuristic. It is
// the cell-level solve entry point shared by the campaign engine's executor
// and the period-selection protocol: an analysis cache attached to inst is
// reused by all heuristics (callers that solve a workload more than once
// should attach one with NewInstance or Instance.Analyzed).
func SolveCell(inst Instance, o Options) []CellOutcome {
	hs := AllWith(o)
	out := make([]CellOutcome, len(hs))
	for i, h := range hs {
		out[i].Heuristic = h.Name()
		sol, err := h.Solve(inst)
		if err != nil {
			continue
		}
		out[i].OK = true
		out[i].Energy = sol.Energy()
		out[i].ActiveCores = sol.Result.ActiveCores
		if o.KeepMappings {
			out[i].Mapping = sol.Mapping.Wire(inst.Platform)
		}
	}
	return out
}

// AnyOK reports whether at least one outcome succeeded — the per-period
// continuation test of the Section 6.1.3 protocol.
func AnyOK(outcomes []CellOutcome) bool {
	for _, o := range outcomes {
		if o.OK {
			return true
		}
	}
	return false
}
