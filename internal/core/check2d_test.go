package core

import (
	"math"
	"testing"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// TestDPA2DPredictionMatchesEvaluator: plan energy from the DP must equal the
// independent evaluator's energy on the reconstructed mapping.
func TestDPA2DPredictionMatchesEvaluator(t *testing.T) {
	pl := platform.XScale(4, 4)
	okCount, rejected := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		g := testRandomSPG(t, seed, 40, 1)
		an := spg.NewAnalysis(g)
		for _, T := range []float64{1, 0.3, 0.1} {
			plan, err := solve2D(an, pl, T, nil, 0)
			if err != nil {
				continue
			}
			m := plan.buildMapping(g, pl, T)
			if m == nil {
				t.Errorf("seed %d T=%g: plan exists but speeds infeasible", seed, T)
				continue
			}
			res, err := mapping.Evaluate(g, pl, m, T)
			if err != nil {
				rejected++
				t.Errorf("seed %d T=%g: plan rejected by evaluator: %v", seed, T, err)
				continue
			}
			okCount++
			if math.Abs(res.Energy-plan.energy) > 1e-9*math.Max(1, plan.energy) {
				t.Errorf("seed %d T=%g: DP energy %.9g vs evaluator %.9g", seed, T, plan.energy, res.Energy)
			}
		}
	}
	t.Logf("checked %d plans, %d rejected", okCount, rejected)
	if okCount == 0 {
		t.Error("no plans produced")
	}
}
