package core

import (
	"fmt"

	"spgcmp/internal/platform"
)

// DPA2D1D runs the DPA2D dynamic program on a virtual 1 x (p*q) CMP and maps
// the resulting chain of column-bands along the snake embedding of the real
// grid (Section 5.4). It trades the optimality of DPA1D (which considers
// every admissible split, at exponential cost in the elevation) for the
// polynomial cost of x-level cuts, and is designed for graphs with low
// communication weights or low elevation.
type DPA2D1D struct {
	// Sweeps caps the goroutines of the outer-DP band sweeps, exactly as
	// DPA2D.Sweeps (Options.SweepParallelism); <= 1 runs serially.
	Sweeps int
}

// NewDPA2D1D returns the heuristic.
func NewDPA2D1D() *DPA2D1D { return &DPA2D1D{} }

// Name implements Heuristic.
func (h *DPA2D1D) Name() string { return "DPA2D1D" }

// Solve implements Heuristic.
func (h *DPA2D1D) Solve(inst Instance) (*Solution, error) {
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	pl := inst.Platform
	uniline := &platform.Platform{
		P:             1,
		Q:             pl.NumCores(),
		Speeds:        pl.Speeds,
		DynPower:      pl.DynPower,
		LeakPower:     pl.LeakPower,
		CommLeakPower: pl.CommLeakPower,
		BW:            pl.BW,
		EnergyPerGB:   pl.EnergyPerGB,
	}
	// The virtual uni-line shares the instance's analysis: band contexts are
	// platform-independent, so DPA2D1D reuses whatever DPA2D already built.
	plan, err := solve2D(inst.Analysis, uniline, inst.Period, inst.Scratch, h.Sweeps)
	if err != nil {
		return nil, fmt.Errorf("%w: DPA2D1D found no 1D plan", ErrNoSolution)
	}
	// Band k of the plan occupies snake position k; every stage of the band
	// lands there (the virtual column has a single core).
	chunks := make([][]int, len(plan.bandEnd))
	prevEnd := 0
	for k, end := range plan.bandEnd {
		for i, s := range inst.Graph.Stages {
			if s.Label.X > prevEnd && s.Label.X <= end {
				chunks[k] = append(chunks[k], i)
			}
		}
		prevEnd = end
	}
	return finishSnake(h.Name(), inst, chunks)
}
