package core

import (
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func TestDiagonalSweepOrder(t *testing.T) {
	pl := platform.XScale(3, 3)
	plan := diagonalSweep(pl)
	if len(plan.order) != 9 {
		t.Fatalf("order covers %d cores", len(plan.order))
	}
	pos := make(map[platform.Core]int)
	for i, c := range plan.order {
		pos[c] = i
	}
	// Anti-diagonal monotonicity: core (u,v) comes before (u,v+1) and (u+1,v).
	for _, c := range plan.order {
		for _, tgt := range plan.targets(c) {
			if pos[tgt] <= pos[c] {
				t.Errorf("target %v of %v is not later in the sweep", tgt, c)
			}
		}
	}
	// Corner has no targets.
	if ts := plan.targets(platform.Core{U: 2, V: 2}); len(ts) != 0 {
		t.Errorf("corner targets = %v", ts)
	}
}

func TestSnakeSweepOrder(t *testing.T) {
	pl := platform.XScale(3, 4)
	plan := snakeSweep(pl)
	if len(plan.order) != 12 {
		t.Fatalf("order covers %d cores", len(plan.order))
	}
	for i, c := range plan.order[:len(plan.order)-1] {
		ts := plan.targets(c)
		if len(ts) != 1 || ts[0] != plan.order[i+1] {
			t.Errorf("snake target of %v = %v, want %v", c, ts, plan.order[i+1])
		}
	}
	if ts := plan.targets(plan.order[len(plan.order)-1]); len(ts) != 0 {
		t.Errorf("last snake core has targets %v", ts)
	}
}

// TestGreedySnakeFallbackRescues: an instance engineered so the diagonal
// wavefront cannot place everything (many equal stages, tight per-core
// capacity on a small grid) but the snake sweep can.
func TestGreedySnakeFallbackRescues(t *testing.T) {
	// 2x2 grid, chain of 8 stages, exactly 2 stages per core at full speed.
	g := testChain(t, 8, 0.05, 0.00001)
	pl := platform.XScale(2, 2)
	inst := Instance{Graph: g, Platform: pl, Period: 0.1}

	diag, okDiag := greedyAtSpeed(inst, len(pl.Speeds)-1, diagonalSweep(pl))
	snake, okSnake := greedyAtSpeed(inst, len(pl.Speeds)-1, snakeSweep(pl))
	if okDiag && diag == nil || okSnake && snake == nil {
		t.Fatal("inconsistent sweep results")
	}
	// The snake sweep must place all 8 stages (2 per core); record whether
	// the diagonal one does too — the Solve wrapper must succeed either way.
	if !okSnake {
		t.Fatal("snake sweep failed on a perfectly packable chain")
	}
	if _, err := NewGreedy().Solve(inst); err != nil {
		t.Fatalf("Greedy failed although the snake sweep succeeds: %v", err)
	}
}

// TestGreedyQuotientAcyclicByConstruction: across random workloads, every
// greedy success passes the evaluator (which enforces quotient acyclicity) —
// exercised here at a tighter period than the generic suite.
func TestGreedyQuotientAcyclicByConstruction(t *testing.T) {
	pl := platform.XScale(4, 4)
	for seed := int64(0); seed < 10; seed++ {
		g := testRandomSPG(t, seed, 40, 1)
		for _, T := range []float64{1, 0.3, 0.15} {
			inst := Instance{Graph: g, Platform: pl, Period: T}
			sol, err := NewGreedy().Solve(inst)
			if err != nil {
				continue
			}
			if sol.Result.MaxCycleTime > T*(1+1e-9) {
				t.Errorf("seed %d T=%g: cycle time exceeds period", seed, T)
			}
		}
	}
}

// TestGreedySingleCoreGraph: a two-stage workflow on a 1x1 platform.
func TestGreedySingleCoreGraph(t *testing.T) {
	g := spg.Primitive(0.02, 0.03, 0.001)
	pl := platform.XScale(1, 1)
	inst := Instance{Graph: g, Platform: pl, Period: 0.4}
	sol, err := NewGreedy().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result.ActiveCores != 1 {
		t.Errorf("active cores = %d", sol.Result.ActiveCores)
	}
	if sol.Result.CommDynEnergy != 0 {
		t.Errorf("single-core mapping has comm energy")
	}
}
