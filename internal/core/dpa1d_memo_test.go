package core

import (
	"math"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func memoGraph(t *testing.T) *spg.Graph {
	t.Helper()
	g, err := spg.Chain(
		[]float64{0.05, 0.08, 0.03, 0.06, 0.04, 0.07},
		[]float64{0.2, 0.1, 0.3, 0.1, 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDPA1DSolutionMemoReplay: a repeated solve on the same shared analysis
// replays the memoized chunk sequence — bit-identical energy and allocation,
// but a freshly built mapping each time (no aliasing between callers).
func TestDPA1DSolutionMemoReplay(t *testing.T) {
	g := memoGraph(t)
	pl := platform.XScale(2, 2)
	inst := NewInstance(g, pl, 0.2)
	h := NewDPA1D()

	first, err := h.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(first.Energy()) != math.Float64bits(second.Energy()) {
		t.Fatalf("replayed energy %g != %g", second.Energy(), first.Energy())
	}
	if first.Mapping == second.Mapping {
		t.Fatal("replay aliased the mapping")
	}
	for i := range first.Mapping.Alloc {
		if first.Mapping.Alloc[i] != second.Mapping.Alloc[i] {
			t.Fatalf("stage %d reallocated: %v vs %v", i, first.Mapping.Alloc[i], second.Mapping.Alloc[i])
		}
	}

	// Copy-on-return: corrupting a returned solution must not poison later
	// replays.
	second.Mapping.Alloc[0] = platform.Core{U: 1, V: 1}
	third, err := h.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if third.Mapping.Alloc[0] != first.Mapping.Alloc[0] {
		t.Error("mutating a returned mapping leaked into the memo")
	}
	if math.Float64bits(third.Energy()) != math.Float64bits(first.Energy()) {
		t.Error("post-mutation replay drifted")
	}
}

// TestDPA1DSolutionMemoKeysEnergyModel: two platforms sharing a speed ladder
// but differing in powers must not share memoized solutions — the chunk
// argmin depends on the energy model even when the explored states are
// identical. The shared analysis carries one memo for both, so a missing
// energy fingerprint would replay platform A's chunks for platform B.
func TestDPA1DSolutionMemoKeysEnergyModel(t *testing.T) {
	g := memoGraph(t)
	h := NewDPA1D()
	plA := platform.XScale(2, 2)
	// Same ladder and bandwidth (same exploration), inverted dynamic-power
	// gradient and free communication: a very different objective.
	plB := platform.XScale(2, 2)
	plB.DynPower = []float64{1.600, 0.900, 0.400, 0.170, 0.080}
	plB.EnergyPerGB = 0
	plB.LeakPower = 2.5

	shared := spg.NewAnalysis(g)
	instA := Instance{Graph: g, Platform: plA, Period: 0.2, Analysis: shared}
	instB := Instance{Graph: g, Platform: plB, Period: 0.2, Analysis: shared}

	solA, err := h.Solve(instA) // warms the memo under plA's energy model
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := h.Solve(instB)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := h.Solve(Instance{Graph: g, Platform: plB, Period: 0.2, Analysis: spg.NewAnalysis(g)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gotB.Energy()) != math.Float64bits(wantB.Energy()) {
		t.Fatalf("memo crossed energy models: %g != fresh %g (plA gave %g)",
			gotB.Energy(), wantB.Energy(), solA.Energy())
	}
	for i := range wantB.Mapping.Alloc {
		if gotB.Mapping.Alloc[i] != wantB.Mapping.Alloc[i] {
			t.Fatalf("stage %d: %v != fresh %v", i, gotB.Mapping.Alloc[i], wantB.Mapping.Alloc[i])
		}
	}
}

// TestDPA1DSolutionMemoKeysPeriod: different periods never share solutions.
func TestDPA1DSolutionMemoKeysPeriod(t *testing.T) {
	g := memoGraph(t)
	pl := platform.XScale(2, 2)
	h := NewDPA1D()
	inst := NewInstance(g, pl, 0.5)

	if _, err := h.Solve(inst); err != nil {
		t.Fatal(err)
	}
	tight, err := h.Solve(inst.WithPeriod(0.25))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := h.Solve(Instance{Graph: g, Platform: pl, Period: 0.25, Analysis: spg.NewAnalysis(g)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(tight.Energy()) != math.Float64bits(fresh.Energy()) {
		t.Fatalf("cross-period replay: %g != fresh %g", tight.Energy(), fresh.Energy())
	}
}
