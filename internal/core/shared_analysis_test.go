package core

import (
	"math"
	"sync"
	"testing"

	"spgcmp/internal/platform"
)

// TestDPA1DConcurrentSharedAnalysis: several goroutines solving through one
// shared analysis cache must serialize on the downset space's run lock and
// all produce the solo-run result; run with -race to check the locking.
func TestDPA1DConcurrentSharedAnalysis(t *testing.T) {
	g := testRandomSPG(t, 3, 24, 10)
	inst := NewInstance(g, platform.XScale(4, 4), 0.5)
	solo, soloErr := NewDPA1D().Solve(inst)
	if soloErr != nil {
		t.Fatal(soloErr)
	}
	const workers = 8
	energies := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sol, err := NewDPA1D().Solve(inst)
			if err != nil {
				errs[w] = err
				return
			}
			energies[w] = sol.Energy()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if math.Float64bits(energies[w]) != math.Float64bits(solo.Energy()) {
			t.Fatalf("worker %d energy %.17g != solo %.17g", w, energies[w], solo.Energy())
		}
	}
}
