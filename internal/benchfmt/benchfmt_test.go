package benchfmt

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: spgcmp
cpu: Some CPU @ 2.80GHz
BenchmarkEngineCampaign-8   	       5	 231000000 ns/op	  123456 B/op	     789 allocs/op
BenchmarkMapCell/DCT-8      	     120	  10250000 ns/op	      812.5 cells/s
BenchmarkNoMem-8            	 1000000	      1042 ns/op
PASS
ok  	spgcmp	12.345s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	b := got[0]
	if b.Name != "EngineCampaign-8" || b.Iterations != 5 || b.NsPerOp != 231000000 ||
		b.BytesPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Fatalf("benchmark 0 misparsed: %+v", b)
	}
	if m := got[1]; m.Name != "MapCell/DCT-8" || m.Metrics["cells/s"] != 812.5 {
		t.Fatalf("custom metric misparsed: %+v", m)
	}
	if n := got[2]; n.NsPerOp != 1042 || n.BytesPerOp != 0 || n.Metrics != nil {
		t.Fatalf("plain benchmark misparsed: %+v", n)
	}
}

func TestParseGoBenchIgnoresNoise(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader("BenchmarkBroken-8 FAIL\nrandom line\nBenchmark\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("noise parsed as results: %+v", got)
	}
	if _, err := ParseGoBench(strings.NewReader("BenchmarkBad-8 10 xx ns/op\n")); err == nil {
		t.Fatal("malformed value accepted")
	}
}

// TestFileSchema pins the artifact envelope: the schema tag and the exact
// field spelling CI trend tooling greps for.
func TestFileSchema(t *testing.T) {
	f := New("abc123", "linux", "amd64")
	f.Benchmarks = []Benchmark{{Name: "X-1", Iterations: 2, NsPerOp: 3.5, Metrics: map[string]float64{"qps": 7}}}
	buf, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema":"spgcmp-bench/v1"`,
		`"commit":"abc123"`,
		`"name":"X-1"`,
		`"iterations":2`,
		`"ns_per_op":3.5`,
		`"qps":7`,
	} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("artifact missing %s: %s", want, buf)
		}
	}
	var back File
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Benchmarks) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
