// Package benchfmt defines the one JSON schema every BENCH_* CI artifact
// uses, so the performance trajectory is machine-comparable across PRs: one
// File per artifact, one Benchmark per measured series, all rates as plain
// float64 fields. Producers are cmd/spgbench (which lowers `go test -bench`
// text onto the schema) and cmd/spgload (which emits serving measurements
// natively); consumers are the CI trend scripts and anyone diffing two
// artifacts.
//
// The schema, informally:
//
//	{
//	  "schema": "spgcmp-bench/v1",          // always; consumers must check it
//	  "commit": "<git sha>",                // optional provenance
//	  "goos": "linux", "goarch": "amd64",   // optional environment
//	  "benchmarks": [
//	    {
//	      "name": "EngineCampaign-8",       // series name (Go bench name or load-leg name)
//	      "iterations": 5,                  // Go bench iteration count / load requests
//	      "ns_per_op": 231000000,           // mean latency
//	      "bytes_per_op": 123456,           // optional (Go -benchmem)
//	      "allocs_per_op": 789,             // optional (Go -benchmem)
//	      "metrics": {"qps": 812.5}         // any extra unit -> value pairs
//	    }
//	  ]
//	}
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schema is the version tag carried by every artifact; consumers reject
// files whose schema they do not know instead of misreading them.
const Schema = "spgcmp-bench/v1"

// File is one BENCH_* artifact.
//
//spglint:wire
type File struct {
	Schema string `json:"schema"`
	// Commit is the git revision the numbers describe.
	Commit string `json:"commit,omitempty"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	// Benchmarks is one entry per measured series, in source order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one measured series.
//
//spglint:wire
type Benchmark struct {
	// Name is the series name: a Go benchmark name with its -cpu suffix
	// ("EngineCampaign-8") or a load-generator leg ("map/repeat=0.95").
	Name string `json:"name"`
	// Iterations is b.N for Go benchmarks, completed requests for load legs.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the mean duration per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp carry -benchmem output when present.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every additional unit -> value pair: custom
	// b.ReportMetric series from Go benchmarks, percentiles and rates from
	// the load generator.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// New returns a File tagged with the schema version.
func New(commit, goos, goarch string) *File {
	return &File{Schema: Schema, Commit: commit, GoOS: goos, GoArch: goarch}
}

// ParseGoBench lowers `go test -bench` text output onto the schema: every
// "BenchmarkName-N  iters  v unit  v unit ..." line becomes one Benchmark
// (ns/op, B/op and allocs/op land in their typed fields, anything else in
// Metrics), and every other line — headers, PASS/ok trailers, log noise — is
// ignored. An empty result is not an error; callers decide whether zero
// benchmarks is a failure.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "name iterations" plus (value, unit) pairs:
		// an even field count of at least 4.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "BenchmarkX ... FAIL" and similar non-result lines
		}
		b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: %q: bad value %q: %v", line, fields[i], err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %v", err)
	}
	return out, nil
}
