package experiments

import (
	"fmt"

	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
)

// RandomConfig parameterizes a random-SPG campaign (one panel of
// Figures 10-13 plus its failure statistics).
type RandomConfig struct {
	N             int     // stages per graph: 50 or 150 in the paper
	P, Q          int     // CMP size: 4x4 or 6x6
	CCR           float64 // 10, 1 or 0.1
	MinElevation  int     // first elevation on the x axis (default 1)
	MaxElevation  int     // last elevation: 20 (n=50) or 30 (n=150)
	GraphsPerElev int     // 100 in the paper
	Seed          int64

	// Cache overrides the campaign-scope analysis cache: nil selects the
	// process-wide DefaultAnalysisCache (repeated sweeps over the same
	// configuration — e.g. the 4x4 panel re-run after the 6x6 one on
	// identical seeds, or a service answering the same suite — skip graph
	// generation and analysis entirely); NewAnalysisCache(0) disables the
	// layer.
	Cache *AnalysisCache
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.MinElevation == 0 {
		c.MinElevation = 1
	}
	if c.GraphsPerElev == 0 {
		c.GraphsPerElev = 100
	}
	return c
}

// RandomPoint aggregates one elevation value: the mean normalized inverse
// energy per heuristic (the y axis of Figures 10-13; failures contribute 0,
// so heuristics that stop finding solutions sink towards 0 as in the paper's
// plots) and the failure counts.
type RandomPoint struct {
	Elevation   int
	Graphs      int
	MeanInvNorm map[string]float64
	Failures    map[string]int
}

// RandomResult is a full campaign.
type RandomResult struct {
	Config RandomConfig
	Points []RandomPoint
}

// RunRandom reproduces one panel of Figures 10-13: for each elevation it
// generates GraphsPerElev random SPGs, selects the period per instance, and
// averages the normalized inverse energies.
func RunRandom(cfg RandomConfig) (*RandomResult, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxElevation < cfg.MinElevation {
		return nil, fmt.Errorf("experiments: bad elevation range [%d, %d]", cfg.MinElevation, cfg.MaxElevation)
	}
	type task struct {
		elev  int
		graph int
	}
	var tasks []task
	for e := cfg.MinElevation; e <= cfg.MaxElevation; e++ {
		for k := 0; k < cfg.GraphsPerElev; k++ {
			tasks = append(tasks, task{e, k})
		}
	}
	type cell struct {
		invNorm  map[string]float64
		failures map[string]int
	}
	cells := make([]cell, len(tasks))
	errs := make([]error, len(tasks))

	cache := cfg.Cache
	if cache == nil {
		cache = DefaultAnalysisCache()
	}
	parallelFor(len(tasks), func(i int) {
		tk := tasks[i]
		seed := cfg.Seed + int64(tk.elev)*1_000_003 + int64(tk.graph)*7919
		an, err := cache.Get(randomKey(cfg.N, tk.elev, seed, cfg.CCR), func() (*spg.Analysis, error) {
			g, err := randspg.Generate(randspg.Params{
				N:         cfg.N,
				Elevation: tk.elev,
				Seed:      seed,
				CCR:       cfg.CCR,
			})
			if err != nil {
				return nil, err
			}
			return spg.NewAnalysis(g), nil
		})
		if err != nil {
			errs[i] = err
			return
		}
		pl := platform.XScale(cfg.P, cfg.Q)
		ir, _ := SelectPeriodAnalyzed(an, pl, seed)
		c := cell{invNorm: make(map[string]float64), failures: make(map[string]int)}
		best := ir.BestEnergy()
		for _, o := range ir.Outcomes {
			if !o.OK {
				c.failures[o.Heuristic]++
				c.invNorm[o.Heuristic] += 0
				continue
			}
			// best/energy = normalized inverse energy in (0, 1].
			c.invNorm[o.Heuristic] += best / o.Energy
		}
		cells[i] = c
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &RandomResult{Config: cfg}
	for e := cfg.MinElevation; e <= cfg.MaxElevation; e++ {
		pt := RandomPoint{
			Elevation:   e,
			Graphs:      cfg.GraphsPerElev,
			MeanInvNorm: make(map[string]float64),
			Failures:    make(map[string]int),
		}
		for _, name := range HeuristicNames {
			pt.MeanInvNorm[name] = 0
			pt.Failures[name] = 0
		}
		res.Points = append(res.Points, pt)
	}
	for i, tk := range tasks {
		pt := &res.Points[tk.elev-cfg.MinElevation]
		for name, v := range cells[i].invNorm {
			pt.MeanInvNorm[name] += v
		}
		for name, v := range cells[i].failures {
			pt.Failures[name] += v
		}
	}
	for pi := range res.Points {
		for name := range res.Points[pi].MeanInvNorm {
			res.Points[pi].MeanInvNorm[name] /= float64(cfg.GraphsPerElev)
		}
	}
	return res, nil
}

// TotalFailures sums failures across all elevations — the rows of Table 3
// (the paper counts 2000 instances per CCR: 20 elevations x 100 graphs).
func (r *RandomResult) TotalFailures() map[string]int {
	total := make(map[string]int, len(HeuristicNames))
	for _, name := range HeuristicNames {
		total[name] = 0
	}
	for _, pt := range r.Points {
		for name, v := range pt.Failures {
			total[name] += v
		}
	}
	return total
}

// Instances returns the number of instances in the campaign.
func (r *RandomResult) Instances() int {
	return len(r.Points) * r.Config.GraphsPerElev
}
