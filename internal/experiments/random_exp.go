package experiments

import (
	"context"
	"fmt"

	"spgcmp/internal/engine"
)

// RandomConfig parameterizes a random-SPG campaign (one panel of
// Figures 10-13 plus its failure statistics).
type RandomConfig struct {
	N             int     // stages per graph: 50 or 150 in the paper
	P, Q          int     // CMP size: 4x4 or 6x6
	CCR           float64 // 10, 1 or 0.1
	MinElevation  int     // first elevation on the x axis (default 1)
	MaxElevation  int     // last elevation: 20 (n=50) or 30 (n=150)
	GraphsPerElev int     // 100 in the paper
	Seed          int64

	// Cache overrides the campaign-scope analysis cache: nil selects the
	// process-wide DefaultAnalysisCache (repeated sweeps over the same
	// configuration — e.g. the 4x4 panel re-run after the 6x6 one on
	// identical seeds, or a service answering the same suite — skip graph
	// generation and analysis entirely); NewAnalysisCache(0) disables the
	// layer.
	Cache *engine.AnalysisCache
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.MinElevation == 0 {
		c.MinElevation = 1
	}
	if c.GraphsPerElev == 0 {
		c.GraphsPerElev = 100
	}
	return c
}

func (c RandomConfig) validate() error {
	if c.MaxElevation < c.MinElevation {
		return fmt.Errorf("experiments: bad elevation range [%d, %d]", c.MinElevation, c.MaxElevation)
	}
	return nil
}

// RandomPoint aggregates one elevation value: the mean normalized inverse
// energy per heuristic (the y axis of Figures 10-13; failures contribute 0,
// so heuristics that stop finding solutions sink towards 0 as in the paper's
// plots) and the failure counts.
type RandomPoint struct {
	Elevation   int
	Graphs      int
	MeanInvNorm map[string]float64
	Failures    map[string]int
}

// RandomResult is a full campaign.
type RandomResult struct {
	Config RandomConfig
	Points []RandomPoint
}

// NewRandomCell returns the engine cell of one generated random SPG on a
// p x q grid: the generation parameters are the workload identity (the same
// key always regenerates the identical graph), and the generation seed also
// drives the cell's Random heuristic, exactly as in the legacy loop. The
// CCR is baked into generation, so the cell solves its base analysis as-is.
// The cell is purely declarative (a wire-codable CellSpec), so a shard run
// can ship it to any worker.
func NewRandomCell(n, elevation int, seed int64, ccr float64, p, q int) engine.Cell {
	key := randomKey(n, elevation, seed, ccr)
	return engine.CellSpec{
		Key:      fmt.Sprintf("%s/%dx%d", key, p, q),
		CacheKey: key,
		Workload: engine.WorkloadSpec{Random: &engine.RandomWorkload{
			N:         n,
			Elevation: elevation,
			Seed:      seed,
			CCR:       ccr,
		}},
		P:    p,
		Q:    q,
		Opts: campaignOptions(seed),
	}.Cell()
}

// randomCellSeed is the legacy per-task seed schedule: distinct multipliers
// keep (elevation, graph) pairs from colliding within a campaign.
func randomCellSeed(cfg RandomConfig, elev, graph int) int64 {
	return cfg.Seed + int64(elev)*1_000_003 + int64(graph)*7919
}

// NumCells returns the number of cells the campaign enumerates, with the
// config's defaults applied — computable without materializing anything, so
// admission control (the service's campaign-size limit) can reject oversized
// requests before RandomCells allocates. Zero for an invalid elevation range.
func (c RandomConfig) NumCells() int64 {
	c = c.withDefaults()
	if c.MaxElevation < c.MinElevation {
		return 0
	}
	return int64(c.MaxElevation-c.MinElevation+1) * int64(c.GraphsPerElev)
}

// RandomCells enumerates one Figure 10-13 panel as engine cells, in the
// legacy task order: elevations ascending, GraphsPerElev graphs per
// elevation.
func RandomCells(cfg RandomConfig) ([]engine.Cell, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var cells []engine.Cell
	for e := cfg.MinElevation; e <= cfg.MaxElevation; e++ {
		for k := 0; k < cfg.GraphsPerElev; k++ {
			cells = append(cells, NewRandomCell(cfg.N, e, randomCellSeed(cfg, e, k), cfg.CCR, cfg.P, cfg.Q))
		}
	}
	return cells, nil
}

// ReduceRandom folds indexed engine results into the per-elevation means and
// failure counts. Cell i is elevation MinElevation + i/GraphsPerElev, graph
// i%GraphsPerElev; the fold visits cells in index order with one accumulator
// per (elevation, heuristic), so it is deterministic and independent of the
// executor's completion order, and its floating-point summation order is the
// legacy loop's. The first generation error aborts the reduction.
func ReduceRandom(cfg RandomConfig, results []engine.CellResult) (*RandomResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	elevations := cfg.MaxElevation - cfg.MinElevation + 1
	if len(results) != elevations*cfg.GraphsPerElev {
		return nil, fmt.Errorf("experiments: %d cell results for %d elevations x %d graphs",
			len(results), elevations, cfg.GraphsPerElev)
	}
	res := &RandomResult{Config: cfg}
	for e := cfg.MinElevation; e <= cfg.MaxElevation; e++ {
		pt := RandomPoint{
			Elevation:   e,
			Graphs:      cfg.GraphsPerElev,
			MeanInvNorm: make(map[string]float64),
			Failures:    make(map[string]int),
		}
		for _, name := range HeuristicNames {
			pt.MeanInvNorm[name] = 0
			pt.Failures[name] = 0
		}
		res.Points = append(res.Points, pt)
	}
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		pt := &res.Points[i/cfg.GraphsPerElev]
		best := r.Result.BestEnergy()
		for _, o := range r.Result.Outcomes {
			if !o.OK {
				pt.Failures[o.Heuristic]++
				pt.MeanInvNorm[o.Heuristic] += 0
				continue
			}
			// best/energy = normalized inverse energy in (0, 1].
			pt.MeanInvNorm[o.Heuristic] += best / o.Energy
		}
	}
	for pi := range res.Points {
		for name := range res.Points[pi].MeanInvNorm {
			res.Points[pi].MeanInvNorm[name] /= float64(cfg.GraphsPerElev)
		}
	}
	return res, nil
}

// RunRandom reproduces one panel of Figures 10-13: for each elevation it
// generates GraphsPerElev random SPGs, selects the period per instance, and
// averages the normalized inverse energies. It is a thin adapter over the
// engine: RandomCells enumerates the panel, the in-process pool executor
// solves it, ReduceRandom folds the indexed results.
func RunRandom(cfg RandomConfig) (*RandomResult, error) {
	cfg = cfg.withDefaults()
	cells, err := RandomCells(cfg)
	if err != nil {
		return nil, err
	}
	cache := cfg.Cache
	if cache == nil {
		cache = DefaultAnalysisCache()
	}
	results, err := engine.Run(context.Background(), nil, engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		return nil, err
	}
	return ReduceRandom(cfg, results)
}

// TotalFailures sums failures across all elevations — the rows of Table 3
// (the paper counts 2000 instances per CCR: 20 elevations x 100 graphs).
func (r *RandomResult) TotalFailures() map[string]int {
	total := make(map[string]int, len(HeuristicNames))
	for _, name := range HeuristicNames {
		total[name] = 0
	}
	for _, pt := range r.Points {
		for name, v := range pt.Failures {
			total[name] += v
		}
	}
	return total
}

// Instances returns the number of instances in the campaign.
func (r *RandomResult) Instances() int {
	return len(r.Points) * r.Config.GraphsPerElev
}
