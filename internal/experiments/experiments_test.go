package experiments

import (
	"math"
	"strings"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/streamit"
)

// TestSelectPeriodProtocol: the selected period must admit at least one
// solution while T/10 admits none.
func TestSelectPeriodProtocol(t *testing.T) {
	g, err := randspg.Generate(randspg.Params{N: 20, Elevation: 3, Seed: 5, CCR: 10})
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	ir, ok := SelectPeriod(g, pl, 1)
	if !ok {
		t.Fatal("no heuristic succeeded at T=1s on an easy instance")
	}
	if !anyOK(ir.Outcomes) {
		t.Fatal("selected period has no successful heuristic")
	}
	if ir.Period > 1 || ir.Period <= 0 {
		t.Fatalf("period %g out of range", ir.Period)
	}
	below := runAll(core.NewInstance(g, pl, ir.Period/10), 1)
	if anyOK(below) {
		t.Errorf("period %g is not tight: T/10 still succeeds", ir.Period)
	}
}

// TestRunStreamItSubset runs a 3-app campaign end to end on 4x4.
func TestRunStreamItSubset(t *testing.T) {
	apps := []streamit.App{}
	for _, a := range streamit.Suite() {
		switch a.Name {
		case "DCT", "FFT", "MPEG2-noparser":
			apps = append(apps, a)
		}
	}
	res, err := RunStreamIt(4, 4, apps, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(apps)*4 {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(apps)*4)
	}
	for _, c := range res.Cells {
		if len(c.Result.Outcomes) != 5 {
			t.Fatalf("%s/%s: %d outcomes", c.App.Name, c.CCRLabel, len(c.Result.Outcomes))
		}
		norm := c.NormalizedEnergy()
		for name, v := range norm {
			if v < 1-1e-9 {
				t.Errorf("%s/%s: %s normalized energy %g < 1", c.App.Name, c.CCRLabel, name, v)
			}
		}
	}
	// Rendering must produce the four panels.
	text := RenderStreamIt(res)
	for _, label := range CCRLabels() {
		if !strings.Contains(text, "CCR = "+label) {
			t.Errorf("render missing panel %q", label)
		}
	}
	if csv := CSVStreamIt(res); !strings.Contains(csv, "DCT") {
		t.Error("CSV missing app rows")
	}
	failures := res.FailureCounts()
	if len(failures) != 5 {
		t.Fatalf("failure counts for %d heuristics", len(failures))
	}
}

// TestRunRandomSmall runs a tiny random campaign end to end.
func TestRunRandomSmall(t *testing.T) {
	res, err := RunRandom(RandomConfig{
		N: 20, P: 4, Q: 4, CCR: 10,
		MinElevation: 1, MaxElevation: 4, GraphsPerElev: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, pt := range res.Points {
		for name, v := range pt.MeanInvNorm {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("elev %d: %s mean inv norm %g outside [0,1]", pt.Elevation, name, v)
			}
		}
	}
	text := RenderRandom(res)
	if !strings.Contains(text, "elev") {
		t.Error("render output missing header")
	}
	if csv := CSVRandom(res); !strings.Contains(csv, "DPA2D1D") {
		t.Error("CSV missing heuristic rows")
	}
	if got := res.Instances(); got != 12 {
		t.Errorf("instances = %d, want 12", got)
	}
}

func TestRenderTable1(t *testing.T) {
	text := RenderTable1()
	for _, name := range []string{"Beamformer", "Serpent", "TDE"} {
		if !strings.Contains(text, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestRenderChartHandlesEmpty(t *testing.T) {
	if out := RenderChart("x", map[string][]float64{}, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderFailureTables(t *testing.T) {
	res, err := RunStreamIt(4, 4, []streamit.App{streamit.Suite()[6]}, 3) // DCT
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFailureTable([]*StreamItResult{res})
	if !strings.Contains(out, "4x4") {
		t.Error("failure table missing platform row")
	}
}

func TestCCRLabel(t *testing.T) {
	if got := ccrLabel(537, true); got != "orig" {
		t.Errorf("orig label = %q", got)
	}
	for v, want := range map[float64]string{10: "10", 1: "1", 0.1: "0.1", 2.5: "2.5"} {
		if got := ccrLabel(v, false); got != want {
			t.Errorf("ccrLabel(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestHeuristicsSetMatchesNames(t *testing.T) {
	hs := Heuristics(1)
	if len(hs) != len(HeuristicNames) {
		t.Fatalf("%d heuristics for %d names", len(hs), len(HeuristicNames))
	}
	for i, h := range hs {
		if h.Name() != HeuristicNames[i] {
			t.Errorf("heuristic %d = %s, want %s", i, h.Name(), HeuristicNames[i])
		}
	}
}

func TestInstanceResultBestEnergy(t *testing.T) {
	ir := InstanceResult{Outcomes: []Outcome{
		{Heuristic: "A", OK: true, Energy: 5},
		{Heuristic: "B", OK: false, Energy: 1},
		{Heuristic: "C", OK: true, Energy: 3},
	}}
	if got := ir.BestEnergy(); got != 3 {
		t.Errorf("BestEnergy = %g, want 3 (failed outcomes ignored)", got)
	}
	empty := InstanceResult{Outcomes: []Outcome{{OK: false}}}
	if !math.IsInf(empty.BestEnergy(), 1) {
		t.Error("BestEnergy of all-failed must be +Inf")
	}
}
