package experiments

import (
	"math"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// checkCacheEquivalence solves the workload with every campaign heuristic at
// a descending period sequence twice — once through a shared analysis cache
// (warming it exactly like SelectPeriod does) and once with a fresh,
// cache-free instance per call — and requires bit-identical outcomes.
func checkCacheEquivalence(t *testing.T, name string, g *spg.Graph, pl *platform.Platform, seed int64) {
	t.Helper()
	checkInstanceEquivalence(t, name, core.NewInstance(g, pl, 1.0), g, seed)
}

// checkInstanceEquivalence is the core of the equivalence suite: shared is
// an instance carrying a (possibly family-shared or campaign-cached)
// analysis, uncachedG an independently built copy of the same workload; the
// two must produce bit-identical outcomes for every heuristic at every
// period.
func checkInstanceEquivalence(t *testing.T, name string, shared core.Instance, uncachedG *spg.Graph, seed int64) {
	t.Helper()
	pl := shared.Platform
	for _, T := range []float64{1.0, 0.1, 0.01} {
		cached := Heuristics(seed)
		fresh := Heuristics(seed)
		for i, h := range cached {
			solC, errC := h.Solve(shared.WithPeriod(T))
			solU, errU := fresh[i].Solve(core.Instance{Graph: uncachedG, Platform: pl, Period: T})
			if (errC == nil) != (errU == nil) {
				t.Errorf("%s/%s T=%g: cached err %v, uncached err %v", name, h.Name(), T, errC, errU)
				continue
			}
			if errC != nil {
				continue
			}
			if math.Float64bits(solC.Energy()) != math.Float64bits(solU.Energy()) {
				t.Errorf("%s/%s T=%g: cached energy %.17g != uncached %.17g",
					name, h.Name(), T, solC.Energy(), solU.Energy())
			}
			if solC.Result.ActiveCores != solU.Result.ActiveCores {
				t.Errorf("%s/%s T=%g: cached active cores %d != uncached %d",
					name, h.Name(), T, solC.Result.ActiveCores, solU.Result.ActiveCores)
			}
		}
	}
}

// TestCacheEquivalenceStreamIt: on all 12 StreamIt applications, the shared
// analysis cache must not change any heuristic's result — energies are
// bit-identical with and without it. Under -short the suite shrinks to one
// app per regime (chain, mid, fat, budget-failing) so the race-enabled CI
// run stays fast; the full 12-app proof runs in the default mode.
func TestCacheEquivalenceStreamIt(t *testing.T) {
	pl := platform.XScale(4, 4)
	shortSubset := map[string]bool{"DCT": true, "DES": true, "FMRadio": true, "Vocoder": true}
	for _, a := range streamit.Suite() {
		if testing.Short() && !shortSubset[a.Name] {
			continue
		}
		g, err := a.Graph()
		if err != nil {
			t.Fatal(err)
		}
		checkCacheEquivalence(t, a.Name, g, pl, 42)
	}
}

// TestCacheEquivalenceRandom: same property on a random-SPG sample across
// elevations (including the elevation-1 chains where DPA1D reuses the most
// state across periods).
func TestCacheEquivalenceRandom(t *testing.T) {
	pl := platform.XScale(4, 4)
	maxElev := 6
	if testing.Short() {
		maxElev = 3
	}
	for elev := 1; elev <= maxElev; elev++ {
		g, err := randspg.Generate(randspg.Params{N: 30, Elevation: elev, Seed: int64(100 + elev), CCR: 1})
		if err != nil {
			t.Fatal(err)
		}
		checkCacheEquivalence(t, g.String(), g, pl, int64(elev))
	}
}
