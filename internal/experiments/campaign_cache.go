package experiments

import (
	"fmt"

	"spgcmp/internal/engine"
	"spgcmp/internal/streamit"
)

// AnalysisCache is the campaign-scope analysis cache, now owned by the
// engine (it is threaded through every executor); the name is kept here
// because the experiment entry points are where callers meet it.
type AnalysisCache = engine.AnalysisCache

// NewAnalysisCache returns a cache retaining at most capacity workload
// analyses. A capacity <= 0 disables caching: Get degenerates to calling
// build.
func NewAnalysisCache(capacity int) *AnalysisCache {
	return engine.NewAnalysisCache(capacity)
}

// NewAnalysisCacheBytes additionally bounds the retained
// spg.Analysis.MemoryFootprint bytes (downset lattices dominate); see
// engine.NewAnalysisCacheBytes.
func NewAnalysisCacheBytes(capacity int, maxBytes int64) *AnalysisCache {
	return engine.NewAnalysisCacheBytes(capacity, maxBytes)
}

// defaultCache is the process-wide campaign cache consulted by RunStreamIt
// and RunRandom when the caller does not supply one. Its capacity covers the
// full StreamIt suite and a few random-campaign sweeps' worth of workloads
// while keeping worst-case memory modest.
var defaultCache = NewAnalysisCache(512)

// DefaultAnalysisCache returns the process-wide campaign cache.
func DefaultAnalysisCache() *AnalysisCache { return defaultCache }

// streamItKey identifies a StreamIt workload's base (pre-CCR-scaling)
// analysis; the CCR variants hang off it as scale-family members. It
// delegates to the engine's canonical FamilyKey so campaign cells and wire
// ranges for the same application resolve one shared cache entry.
func streamItKey(a streamit.App) string {
	key, err := (engine.WorkloadSpec{StreamIt: a.Name}).FamilyKey()
	if err != nil {
		// Unreachable for suite applications; fall back to a literal key so
		// a bad app still fails at Build with a real error, not here.
		return "streamit/" + a.Name
	}
	return key
}

// randomKey identifies one generated random SPG. Every generation parameter
// participates: the same key always regenerates the identical graph. Like
// streamItKey, it is the engine's canonical FamilyKey.
func randomKey(n, elevation int, seed int64, ccr float64) string {
	key, err := (engine.WorkloadSpec{Random: &engine.RandomWorkload{
		N: n, Elevation: elevation, Seed: seed, CCR: ccr,
	}}).FamilyKey()
	if err != nil {
		return fmt.Sprintf("randspg/n=%d/y=%d/seed=%d/ccr=%x", n, elevation, seed, ccr)
	}
	return key
}
