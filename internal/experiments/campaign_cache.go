package experiments

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// AnalysisCache is a size-bounded, workload-identity-keyed cache of shared
// graph analyses — the campaign-scope (third) layer of the solver-reuse
// architecture. The first layer is the per-instance spg.Analysis attached by
// core.NewInstance; the second is the scale family sharing one structural
// analysis across a workload's CCR variants; this layer carries whole
// analyses across campaign runs, so repeated sweeps over the same suite
// (the long-running mapping-service pattern) skip workload synthesis and
// analysis entirely.
//
// Keys identify workloads, not graphs: two requests with the same key must
// deterministically build the same graph (StreamIt synthesis and randspg
// generation are both seeded). Values are retained with least-recently-used
// eviction, bounding retained memory by the capacity regardless of how many
// distinct workloads a campaign touches (entries still being built are
// exempt from eviction, so the bound is transiently exceeded while many
// keys build concurrently). Concurrent Gets of the same key build the value
// once — waiters share the first builder's result — and builds of different
// keys never block each other.
//
// The zero-capacity cache and the nil cache both disable this layer: Get
// simply invokes build. Cached analyses may be consulted by several
// campaigns concurrently; every structure they hand out is either immutable
// or internally synchronized, and solvers proved bit-identical against
// cache-free runs (see the cache-equivalence tests).
type AnalysisCache struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	an   *spg.Analysis
	err  error
	// done flips after a successful build; eviction skips in-flight entries
	// so a slow build is never raced by a duplicate rebuild of its key (the
	// cache transiently exceeds capacity instead).
	done atomic.Bool
}

// NewAnalysisCache returns a cache retaining at most capacity workload
// analyses. A capacity <= 0 disables caching: Get degenerates to calling
// build.
func NewAnalysisCache(capacity int) *AnalysisCache {
	return &AnalysisCache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
	}
}

// defaultCache is the process-wide campaign cache consulted by RunStreamIt
// and RunRandom when the caller does not supply one. Its capacity covers the
// full StreamIt suite and a few random-campaign sweeps' worth of workloads
// while keeping worst-case memory modest.
var defaultCache = NewAnalysisCache(512)

// DefaultAnalysisCache returns the process-wide campaign cache.
func DefaultAnalysisCache() *AnalysisCache { return defaultCache }

// Len returns the number of cached workloads.
func (c *AnalysisCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached workload.
func (c *AnalysisCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
}

// Get returns the analysis cached under key, building (and caching) it on
// first use. A failed build is not retained; the next Get retries. Nil and
// zero-capacity caches build unconditionally.
func (c *AnalysisCache) Get(key string, build func() (*spg.Analysis, error)) (*spg.Analysis, error) {
	if c == nil || c.capacity <= 0 {
		return build()
	}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{key: key}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		// Evict least-recently-used completed entries; entries still being
		// built are skipped so their builders keep the single-build
		// guarantee (the cache may transiently exceed capacity while many
		// keys build at once).
		for el := c.lru.Back(); el != nil && c.lru.Len() > c.capacity; {
			prev := el.Prev()
			if old := el.Value.(*cacheEntry); old.done.Load() {
				c.lru.Remove(el)
				delete(c.entries, old.key)
			}
			el = prev
		}
	} else if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.an, e.err = build()
		if e.err == nil {
			e.done.Store(true)
		}
	})
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			if e.elem != nil {
				c.lru.Remove(e.elem)
			}
		}
		c.mu.Unlock()
	}
	return e.an, e.err
}

// streamItKey identifies a StreamIt workload's base (pre-CCR-scaling)
// analysis; the CCR variants hang off it as scale-family members.
func streamItKey(a streamit.App) string {
	return fmt.Sprintf("streamit/%s/n=%d/y=%d/x=%d", a.Name, a.N, a.YMax, a.XMax)
}

// randomKey identifies one generated random SPG. Every generation parameter
// participates: the same key always regenerates the identical graph.
func randomKey(n, elevation int, seed int64, ccr float64) string {
	return fmt.Sprintf("randspg/n=%d/y=%d/seed=%d/ccr=%x", n, elevation, seed, ccr)
}
