package experiments

import (
	"fmt"
	"math"

	"spgcmp/internal/platform"
	"spgcmp/internal/streamit"
)

// StreamItCell is one (application, CCR variant) point of Figures 8-9: the
// heuristic outcomes at the selected period.
type StreamItCell struct {
	App      streamit.App
	CCRLabel string
	Result   InstanceResult
}

// NormalizedEnergy returns, per heuristic, energy divided by the best energy
// on this cell (1 for the winner); failed heuristics are absent.
func (c StreamItCell) NormalizedEnergy() map[string]float64 {
	best := c.Result.BestEnergy()
	norm := make(map[string]float64)
	if math.IsInf(best, 1) {
		return norm
	}
	for _, o := range c.Result.Outcomes {
		if o.OK {
			norm[o.Heuristic] = o.Energy / best
		}
	}
	return norm
}

// StreamItResult is a full campaign on one CMP size: 12 applications times 4
// CCR variants (original, 10, 1, 0.1), 48 instances as in Table 2.
type StreamItResult struct {
	P, Q  int
	Cells []StreamItCell
}

// RunStreamIt reproduces the Figure 8 (4x4) or Figure 9 (6x6) campaign.
// Apps can restrict the applications (nil = full suite). seed drives the
// Random heuristic.
func RunStreamIt(p, q int, apps []streamit.App, seed int64) (*StreamItResult, error) {
	if apps == nil {
		apps = streamit.Suite()
	}
	type variant struct {
		app   streamit.App
		label string
		ccr   float64
	}
	var variants []variant
	for _, a := range apps {
		variants = append(variants,
			variant{a, "orig", a.CCR},
			variant{a, "10", 10},
			variant{a, "1", 1},
			variant{a, "0.1", 0.1},
		)
	}
	res := &StreamItResult{P: p, Q: q, Cells: make([]StreamItCell, len(variants))}
	errs := make([]error, len(variants))
	parallelFor(len(variants), func(i int) {
		v := variants[i]
		g, err := v.app.GraphWithCCR(v.ccr)
		if err != nil {
			errs[i] = err
			return
		}
		pl := platform.XScale(p, q)
		ir, _ := SelectPeriod(g, pl, seed+int64(i))
		res.Cells[i] = StreamItCell{App: v.app, CCRLabel: v.label, Result: ir}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// FailureCounts returns, per heuristic, the number of instances (out of
// len(Cells)) where the heuristic found no valid mapping — the rows of
// Table 2.
func (r *StreamItResult) FailureCounts() map[string]int {
	counts := make(map[string]int, len(HeuristicNames))
	for _, name := range HeuristicNames {
		counts[name] = 0
	}
	for _, c := range r.Cells {
		for _, o := range c.Result.Outcomes {
			if !o.OK {
				counts[o.Heuristic]++
			}
		}
	}
	return counts
}

// CellsFor returns the cells of one CCR variant in application order,
// matching one panel of Figure 8/9.
func (r *StreamItResult) CellsFor(ccrLabel string) []StreamItCell {
	var out []StreamItCell
	for _, c := range r.Cells {
		if c.CCRLabel == ccrLabel {
			out = append(out, c)
		}
	}
	return out
}

// CCRLabels lists the four panels in paper order.
func CCRLabels() []string { return []string{"orig", "10", "1", "0.1"} }

// String summarizes the campaign.
func (r *StreamItResult) String() string {
	return fmt.Sprintf("StreamIt campaign on %dx%d: %d cells", r.P, r.Q, len(r.Cells))
}
