package experiments

import (
	"context"
	"fmt"
	"math"

	"spgcmp/internal/engine"
	"spgcmp/internal/streamit"
)

// StreamItCell is one (application, CCR variant) point of Figures 8-9: the
// heuristic outcomes at the selected period.
type StreamItCell struct {
	App      streamit.App
	CCRLabel string
	Result   InstanceResult
}

// NormalizedEnergy returns, per heuristic, energy divided by the best energy
// on this cell (1 for the winner); failed heuristics are absent.
func (c StreamItCell) NormalizedEnergy() map[string]float64 {
	best := c.Result.BestEnergy()
	norm := make(map[string]float64)
	if math.IsInf(best, 1) {
		return norm
	}
	for _, o := range c.Result.Outcomes {
		if o.OK {
			norm[o.Heuristic] = o.Energy / best
		}
	}
	return norm
}

// StreamItResult is a full campaign on one CMP size: 12 applications times 4
// CCR variants (original, 10, 1, 0.1), 48 instances as in Table 2.
type StreamItResult struct {
	P, Q  int
	Cells []StreamItCell
}

// NewStreamItCell returns the engine cell of one (application, CCR) point on
// a p x q grid: the application's base analysis is keyed in the campaign
// cache and the CCR variant derived as a scale-family member, so every cell
// of the application resolves one shared base. seed drives the cell's Random
// heuristic. The cell is purely declarative (a wire-codable CellSpec), so a
// shard run can ship it to any worker.
func NewStreamItCell(a streamit.App, ccr float64, p, q int, seed int64) engine.Cell {
	key := streamItKey(a)
	return engine.CellSpec{
		Key:      fmt.Sprintf("%s/ccr=%s/%dx%d", key, ccrLabel(ccr, ccr == a.CCR), p, q),
		CacheKey: key,
		Workload: engine.WorkloadSpec{StreamIt: a.Name},
		ScaleCCR: true,
		CCR:      ccr,
		P:        p,
		Q:        q,
		Opts:     campaignOptions(seed),
	}.Cell()
}

// streamItVariants lists the four CCR points of one application in the
// paper's panel order.
func streamItVariants(a streamit.App) []float64 { return []float64{a.CCR, 10, 1, 0.1} }

// StreamItCells enumerates the Figure 8/9 campaign as engine cells: for each
// application (nil = full suite) its four CCR variants in panel order
// (original, 10, 1, 0.1), with the exact per-cell seeds the legacy loop
// used (seed + global variant index).
func StreamItCells(p, q int, apps []streamit.App, seed int64) []engine.Cell {
	if apps == nil {
		apps = streamit.Suite()
	}
	cells := make([]engine.Cell, 0, 4*len(apps))
	for _, a := range apps {
		for _, ccr := range streamItVariants(a) {
			cells = append(cells, NewStreamItCell(a, ccr, p, q, seed+int64(len(cells))))
		}
	}
	return cells
}

// ReduceStreamIt folds indexed engine results back into the campaign table.
// The fold reads only results[i] at Cells[i], so it is order-independent by
// construction: any executor, at any worker count, yields the same table.
// The first build error aborts the reduction, matching the legacy loop.
func ReduceStreamIt(p, q int, apps []streamit.App, results []engine.CellResult) (*StreamItResult, error) {
	if apps == nil {
		apps = streamit.Suite()
	}
	if len(results) != 4*len(apps) {
		return nil, fmt.Errorf("experiments: %d cell results for %d applications", len(results), len(apps))
	}
	res := &StreamItResult{P: p, Q: q, Cells: make([]StreamItCell, len(results))}
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		a := apps[i/4]
		ccr := streamItVariants(a)[i%4]
		res.Cells[i] = StreamItCell{App: a, CCRLabel: ccrLabel(ccr, i%4 == 0), Result: r.Result}
	}
	return res, nil
}

// RunStreamIt reproduces the Figure 8 (4x4) or Figure 9 (6x6) campaign.
// Apps can restrict the applications (nil = full suite). seed drives the
// Random heuristic. Analyses flow through the process-wide campaign cache:
// re-running a campaign (or running the 6x6 grid after the 4x4 one) reuses
// every workload analysis instead of resynthesizing and re-analyzing the
// suite.
func RunStreamIt(p, q int, apps []streamit.App, seed int64) (*StreamItResult, error) {
	return RunStreamItWith(p, q, apps, seed, DefaultAnalysisCache())
}

// RunStreamItWith is RunStreamIt with an explicit campaign cache (nil
// disables the campaign layer; scale-family sharing across the four CCR
// variants of each application is intrinsic and preserved by the engine's
// per-run resolver). It is a thin adapter over the engine: enumerate the
// cells, run them on the in-process pool executor, reduce. Each application
// is analyzed once — through the cache when one is supplied — and its CCR
// variants are derived as scale-family members of that base analysis, so the
// variants share reachability, levels, band shapes, convexity verdicts and
// the interned downset lattice, while seeing bit-identical graphs to a
// from-scratch GraphWithCCR synthesis.
func RunStreamItWith(p, q int, apps []streamit.App, seed int64, cache *engine.AnalysisCache) (*StreamItResult, error) {
	if apps == nil {
		apps = streamit.Suite()
	}
	results, err := engine.Run(context.Background(), nil, engine.Campaign{
		Cells: StreamItCells(p, q, apps, seed),
		Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	return ReduceStreamIt(p, q, apps, results)
}

// FailureCounts returns, per heuristic, the number of instances (out of
// len(Cells)) where the heuristic found no valid mapping — the rows of
// Table 2.
func (r *StreamItResult) FailureCounts() map[string]int {
	counts := make(map[string]int, len(HeuristicNames))
	for _, name := range HeuristicNames {
		counts[name] = 0
	}
	for _, c := range r.Cells {
		for _, o := range c.Result.Outcomes {
			if !o.OK {
				counts[o.Heuristic]++
			}
		}
	}
	return counts
}

// CellsFor returns the cells of one CCR variant in application order,
// matching one panel of Figure 8/9.
func (r *StreamItResult) CellsFor(ccrLabel string) []StreamItCell {
	var out []StreamItCell
	for _, c := range r.Cells {
		if c.CCRLabel == ccrLabel {
			out = append(out, c)
		}
	}
	return out
}

// CCRLabels lists the four panels in paper order.
func CCRLabels() []string { return []string{"orig", "10", "1", "0.1"} }

// String summarizes the campaign.
func (r *StreamItResult) String() string {
	return fmt.Sprintf("StreamIt campaign on %dx%d: %d cells", r.P, r.Q, len(r.Cells))
}
