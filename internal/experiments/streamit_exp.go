package experiments

import (
	"fmt"
	"math"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// StreamItCell is one (application, CCR variant) point of Figures 8-9: the
// heuristic outcomes at the selected period.
type StreamItCell struct {
	App      streamit.App
	CCRLabel string
	Result   InstanceResult
}

// NormalizedEnergy returns, per heuristic, energy divided by the best energy
// on this cell (1 for the winner); failed heuristics are absent.
func (c StreamItCell) NormalizedEnergy() map[string]float64 {
	best := c.Result.BestEnergy()
	norm := make(map[string]float64)
	if math.IsInf(best, 1) {
		return norm
	}
	for _, o := range c.Result.Outcomes {
		if o.OK {
			norm[o.Heuristic] = o.Energy / best
		}
	}
	return norm
}

// StreamItResult is a full campaign on one CMP size: 12 applications times 4
// CCR variants (original, 10, 1, 0.1), 48 instances as in Table 2.
type StreamItResult struct {
	P, Q  int
	Cells []StreamItCell
}

// RunStreamIt reproduces the Figure 8 (4x4) or Figure 9 (6x6) campaign.
// Apps can restrict the applications (nil = full suite). seed drives the
// Random heuristic. Analyses flow through the process-wide campaign cache:
// re-running a campaign (or running the 6x6 grid after the 4x4 one) reuses
// every workload analysis instead of resynthesizing and re-analyzing the
// suite.
func RunStreamIt(p, q int, apps []streamit.App, seed int64) (*StreamItResult, error) {
	return RunStreamItWith(p, q, apps, seed, DefaultAnalysisCache())
}

// RunStreamItWith is RunStreamIt with an explicit campaign cache (nil
// disables the campaign layer; scale-family sharing across the four CCR
// variants of each application is intrinsic). Each application is analyzed
// once — through the cache when one is supplied — and its CCR variants are
// derived as scale-family members of that base analysis, so the variants
// share reachability, levels, band shapes, convexity verdicts and the
// interned downset lattice, while seeing bit-identical graphs to a
// from-scratch GraphWithCCR synthesis.
func RunStreamItWith(p, q int, apps []streamit.App, seed int64, cache *AnalysisCache) (*StreamItResult, error) {
	if apps == nil {
		apps = streamit.Suite()
	}
	bases := make([]*spg.Analysis, len(apps))
	for ai, a := range apps {
		a := a
		an, err := cache.Get(streamItKey(a), func() (*spg.Analysis, error) {
			g, err := a.BaseGraph()
			if err != nil {
				return nil, err
			}
			return spg.NewAnalysis(g), nil
		})
		if err != nil {
			return nil, err
		}
		bases[ai] = an
	}
	type variant struct {
		appIdx int
		label  string
		ccr    float64
	}
	var variants []variant
	for ai, a := range apps {
		variants = append(variants,
			variant{ai, "orig", a.CCR},
			variant{ai, "10", 10},
			variant{ai, "1", 1},
			variant{ai, "0.1", 0.1},
		)
	}
	res := &StreamItResult{P: p, Q: q, Cells: make([]StreamItCell, len(variants))}
	parallelFor(len(variants), func(i int) {
		v := variants[i]
		an := bases[v.appIdx].ScaleToCCR(v.ccr)
		pl := platform.XScale(p, q)
		ir, _ := SelectPeriodAnalyzed(an, pl, seed+int64(i))
		res.Cells[i] = StreamItCell{App: apps[v.appIdx], CCRLabel: v.label, Result: ir}
	})
	return res, nil
}

// FailureCounts returns, per heuristic, the number of instances (out of
// len(Cells)) where the heuristic found no valid mapping — the rows of
// Table 2.
func (r *StreamItResult) FailureCounts() map[string]int {
	counts := make(map[string]int, len(HeuristicNames))
	for _, name := range HeuristicNames {
		counts[name] = 0
	}
	for _, c := range r.Cells {
		for _, o := range c.Result.Outcomes {
			if !o.OK {
				counts[o.Heuristic]++
			}
		}
	}
	return counts
}

// CellsFor returns the cells of one CCR variant in application order,
// matching one panel of Figure 8/9.
func (r *StreamItResult) CellsFor(ccrLabel string) []StreamItCell {
	var out []StreamItCell
	for _, c := range r.Cells {
		if c.CCRLabel == ccrLabel {
			out = append(out, c)
		}
	}
	return out
}

// CCRLabels lists the four panels in paper order.
func CCRLabels() []string { return []string{"orig", "10", "1", "0.1"} }

// String summarizes the campaign.
func (r *StreamItResult) String() string {
	return fmt.Sprintf("StreamIt campaign on %dx%d: %d cells", r.P, r.Q, len(r.Cells))
}
