package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spgcmp/internal/streamit"
)

// RenderTable formats rows as a fixed-width text table.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// RenderTable1 reproduces Table 1 of the paper.
func RenderTable1() string {
	rows := make([][]string, 0, 12)
	for _, a := range streamit.Suite() {
		rows = append(rows, []string{
			fmt.Sprint(a.Index), a.Name, fmt.Sprint(a.N),
			fmt.Sprint(a.YMax), fmt.Sprint(a.XMax), fmt.Sprintf("%.0f", a.CCR),
		})
	}
	return "Table 1: Characteristics of the StreamIt workflows\n" +
		RenderTable([]string{"Index", "Name", "n", "ymax", "xmax", "CCR"}, rows)
}

// RenderStreamIt renders one campaign as the four panels of Figure 8/9:
// normalized energy per application and heuristic ("-" marks a failure).
func RenderStreamIt(r *StreamItResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure panel data: normalized energy on the StreamIt suite, %dx%d CMP grid\n", r.P, r.Q)
	fmt.Fprintf(&b, "(per instance, energy / best heuristic energy; '-' = heuristic failed)\n\n")
	for _, label := range CCRLabels() {
		cells := r.CellsFor(label)
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(&b, "CCR = %s\n", label)
		headers := append([]string{"App", "T (s)"}, HeuristicNames...)
		var rows [][]string
		for _, c := range cells {
			norm := c.NormalizedEnergy()
			row := []string{
				fmt.Sprintf("%d:%s", c.App.Index, c.App.Name),
				fmt.Sprintf("%.0e", c.Result.Period),
			}
			for _, name := range HeuristicNames {
				if v, ok := norm[name]; ok {
					row = append(row, fmt.Sprintf("%.3f", v))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		b.WriteString(RenderTable(headers, rows))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFailureTable renders Table 2 rows for a set of StreamIt campaigns.
func RenderFailureTable(results []*StreamItResult) string {
	headers := append([]string{"Platform size"}, HeuristicNames...)
	var rows [][]string
	for _, r := range results {
		counts := r.FailureCounts()
		row := []string{fmt.Sprintf("%dx%d", r.P, r.Q)}
		for _, name := range HeuristicNames {
			row = append(row, fmt.Sprint(counts[name]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Table 2: Number of failures for each heuristic (out of %d instances per CMP grid size)\n",
		len(results[0].Cells)) + RenderTable(headers, rows)
}

// RenderRandom renders one random-SPG campaign: the mean normalized inverse
// energy per elevation (one panel of Figures 10-13) as a table plus an ASCII
// chart per heuristic.
func RenderRandom(r *RandomResult) string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "Normalized energy inverse vs elevation: %d-node random SPGs, %dx%d CMP, CCR=%g (%d graphs per point)\n\n",
		cfg.N, cfg.P, cfg.Q, cfg.CCR, cfg.GraphsPerElev)
	headers := append([]string{"elev"}, HeuristicNames...)
	var rows [][]string
	for _, pt := range r.Points {
		row := []string{fmt.Sprint(pt.Elevation)}
		for _, name := range HeuristicNames {
			row = append(row, fmt.Sprintf("%.3f", pt.MeanInvNorm[name]))
		}
		rows = append(rows, row)
	}
	b.WriteString(RenderTable(headers, rows))
	b.WriteByte('\n')
	series := make(map[string][]float64)
	for _, name := range HeuristicNames {
		vals := make([]float64, len(r.Points))
		for i, pt := range r.Points {
			vals[i] = pt.MeanInvNorm[name]
		}
		series[name] = vals
	}
	b.WriteString(RenderChart("1/E (normalized, 1.0 = best)", series, 12))
	return b.String()
}

// RenderRandomFailures renders Table 3 for a set of campaigns sharing N and
// platform but differing in CCR.
func RenderRandomFailures(results []*RandomResult) string {
	headers := append([]string{"CCR"}, HeuristicNames...)
	var rows [][]string
	for _, r := range results {
		counts := r.TotalFailures()
		row := []string{fmt.Sprintf("%g", r.Config.CCR)}
		for _, name := range HeuristicNames {
			row = append(row, fmt.Sprint(counts[name]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Table 3: Number of failures (out of %d instances per CCR value)\n", results[0].Instances()) +
		RenderTable(headers, rows)
}

// RenderChart draws each series as a height-banded ASCII plot over the
// common x axis (one column per point).
func RenderChart(title string, series map[string][]float64, height int) string {
	if height < 2 {
		height = 2
	}
	names := make([]string, 0, len(series))
	maxLen := 0
	maxVal := 0.0
	for name, vals := range series {
		names = append(names, name)
		if len(vals) > maxLen {
			maxLen = len(vals)
		}
		for _, v := range vals {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	sort.Strings(names)
	if maxLen == 0 || maxVal == 0 {
		return title + ": (no data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, name := range names {
		vals := series[name]
		fmt.Fprintf(&b, "%-9s |", name)
		for _, v := range vals {
			lvl := int(math.Round(v / maxVal * float64(height)))
			switch {
			case math.IsNaN(v):
				b.WriteByte(' ')
			case lvl <= 0:
				b.WriteByte('_')
			default:
				b.WriteByte("123456789abcdefghijklmnop"[minInt(lvl, height)-1])
			}
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-9s  %s\n", "", "(columns: successive x values; digit = height band, _ = zero)")
	return b.String()
}

// CSVStreamIt renders a campaign as CSV (app, ccr, period, heuristic,
// energy, normalized, active cores, ok).
func CSVStreamIt(r *StreamItResult) string {
	var b strings.Builder
	b.WriteString("grid,app_index,app,ccr,period_s,heuristic,ok,energy_j,normalized,active_cores\n")
	for _, c := range r.Cells {
		norm := c.NormalizedEnergy()
		for _, o := range c.Result.Outcomes {
			n, okN := norm[o.Heuristic]
			normStr := ""
			if okN {
				normStr = fmt.Sprintf("%.6f", n)
			}
			energyStr := ""
			if o.OK {
				energyStr = fmt.Sprintf("%.9g", o.Energy)
			}
			fmt.Fprintf(&b, "%dx%d,%d,%s,%s,%g,%s,%t,%s,%s,%d\n",
				r.P, r.Q, c.App.Index, c.App.Name, c.CCRLabel, c.Result.Period,
				o.Heuristic, o.OK, energyStr, normStr, o.ActiveCores)
		}
	}
	return b.String()
}

// CSVRandom renders a random campaign as CSV (elevation, heuristic,
// mean normalized 1/E, failures).
func CSVRandom(r *RandomResult) string {
	var b strings.Builder
	b.WriteString("n,grid,ccr,elevation,heuristic,mean_inv_norm,failures,graphs\n")
	for _, pt := range r.Points {
		for _, name := range HeuristicNames {
			fmt.Fprintf(&b, "%d,%dx%d,%g,%d,%s,%.6f,%d,%d\n",
				r.Config.N, r.Config.P, r.Config.Q, r.Config.CCR,
				pt.Elevation, name, pt.MeanInvNorm[name], pt.Failures[name], pt.Graphs)
		}
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
