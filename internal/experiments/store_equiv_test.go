package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"spgcmp/internal/engine"
)

// The store equivalence suite proves the content-addressed ResultStore
// invisible at the wire: for every StreamIt (app x CCR) cell of the full
// suite plus the seeded random panel, campaigns run with the store enabled —
// cold (populating) and warm (every cell served from the store) — must
// produce results byte-identical to store-free runs, at 1 and 4 workers.
// Comparison is on the JSON wire encoding of each cell result, so "byte-
// identical" means exactly that: the bytes a service response would carry.

// wireBytes encodes every result in index order; a nil error is required
// first (errors have no canonical wire bytes beyond their message).
func wireBytes(t *testing.T, label string, results []engine.CellResult) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: cell %s: %v", label, r.Key, r.Err)
		}
		if r.Index != i {
			t.Fatalf("%s: result %d carries index %d", label, i, r.Index)
		}
		buf, err := json.Marshal(r.Wire())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(buf)
	}
	return out
}

func requireSameWire(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: cell %d not byte-identical:\n got %s\nwant %s", label, i, got[i], want[i])
		}
	}
}

func runStoreCells(t *testing.T, cells []engine.Cell, workers int, store *engine.ResultStore) []engine.CellResult {
	t.Helper()
	results, err := engine.Run(context.Background(),
		&engine.PoolExecutor{Workers: workers},
		engine.Campaign{Cells: cells, Cache: NewAnalysisCache(128), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestResultStoreEquivalence is the campaign half of the acceptance bar:
// store-on runs (cold and warm) byte-identical to store-off, at 1 and 4
// workers, over the full pinned cell set. Under -short the same reduced set
// as the kernel golden suite is used.
func TestResultStoreEquivalence(t *testing.T) {
	cells := kernelGoldenCells(t)
	if testing.Short() {
		var reduced []engine.Cell
		for _, c := range cells {
			switch {
			case strings.HasPrefix(c.Spec.Key, "streamit/DCT/"),
				strings.HasPrefix(c.Spec.Key, "streamit/DES/"),
				strings.HasPrefix(c.Spec.Key, "streamit/FMRadio/"),
				c.Spec.Workload.Random != nil && c.Spec.Workload.Random.CCR == 1:
				reduced = append(reduced, c)
			}
		}
		cells = reduced
	}
	want := wireBytes(t, "store-off", runStoreCells(t, cells, 4, nil))

	for _, workers := range []int{1, 4} {
		store := engine.NewResultStore(len(cells)+8, 0)
		cold := wireBytes(t, "cold", runStoreCells(t, cells, workers, store))
		requireSameWire(t, "cold", cold, want)
		if store.Len() != len(cells) {
			t.Fatalf("workers=%d: cold run stored %d of %d cells", workers, store.Len(), len(cells))
		}
		warm := wireBytes(t, "warm", runStoreCells(t, cells, workers, store))
		requireSameWire(t, "warm", warm, want)
		if st := store.Stats(); st.Hits != uint64(len(cells)) {
			t.Fatalf("workers=%d: warm run recorded %d hits, want %d", workers, st.Hits, len(cells))
		}
	}
}

// TestResultStoreEquivalenceWithMappings repeats the proof with KeepMappings
// on (the /v1/map request shape): the winning placements — the payload most
// exposed to JSON round-trip drift — must survive the store byte-for-byte.
func TestResultStoreEquivalenceWithMappings(t *testing.T) {
	base := kernelGoldenCells(t)
	var cells []engine.Cell
	for _, c := range base {
		if strings.HasPrefix(c.Spec.Key, "streamit/DCT/") ||
			(c.Spec.Workload.Random != nil && c.Spec.Workload.Random.CCR == 1 && c.Spec.Workload.Random.Elevation <= 2) {
			c.Spec.Opts.KeepMappings = true
			cells = append(cells, c)
		}
	}
	if len(cells) == 0 {
		t.Fatal("empty mapping cell set")
	}
	want := wireBytes(t, "store-off", runStoreCells(t, cells, 4, nil))
	store := engine.NewResultStore(len(cells)+8, 0)
	requireSameWire(t, "cold", wireBytes(t, "cold", runStoreCells(t, cells, 2, store)), want)
	requireSameWire(t, "warm", wireBytes(t, "warm", runStoreCells(t, cells, 2, store)), want)
}
