package experiments

import (
	"context"
	"fmt"
	"math"
	"testing"

	"spgcmp/internal/engine"
	"spgcmp/internal/streamit"
)

// TestEngineStreamItEquivalence: running the enumerated cells through
// engine.Run with explicit executors at several worker counts — with and
// without a warm campaign cache — must reduce to tables bit-identical to the
// RunStreamIt entry point (which itself is proven bit-identical to the
// pre-reuse reference by TestCampaignCacheEquivalenceStreamIt).
func TestEngineStreamItEquivalence(t *testing.T) {
	var apps []streamit.App
	for _, a := range streamit.Suite() {
		if a.Name == "DCT" || a.Name == "FFT" {
			apps = append(apps, a)
		}
	}
	const seed = 21
	want, err := RunStreamItWith(4, 4, apps, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewAnalysisCache(16)
	for _, pass := range []string{"cold", "warm"} {
		for _, workers := range []int{1, 2, 7} {
			results, err := engine.Run(context.Background(),
				&engine.PoolExecutor{Workers: workers},
				engine.Campaign{Cells: StreamItCells(4, 4, apps, seed), Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReduceStreamIt(4, 4, apps, results)
			if err != nil {
				t.Fatal(err)
			}
			requireSameCampaign(t, fmt.Sprintf("%s/workers=%d", pass, workers), got, want)
		}
	}
}

// TestEngineRandomEquivalence: the same property for a random panel, where
// cells are uniquely keyed and the reducer owns all aggregation arithmetic.
func TestEngineRandomEquivalence(t *testing.T) {
	cfg := RandomConfig{
		N: 25, P: 4, Q: 4, CCR: 1,
		MinElevation: 1, MaxElevation: 3, GraphsPerElev: 2, Seed: 13,
		Cache: NewAnalysisCache(0), // campaign layer off for the reference
	}
	want, err := RunRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RandomCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 5} {
		results, err := engine.Run(context.Background(),
			&engine.PoolExecutor{Workers: workers},
			engine.Campaign{Cells: cells, Cache: NewAnalysisCache(16)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReduceRandom(cfg, results)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got.Points), len(want.Points))
		}
		for i, pt := range got.Points {
			wpt := want.Points[i]
			for name := range pt.MeanInvNorm {
				if math.Float64bits(pt.MeanInvNorm[name]) != math.Float64bits(wpt.MeanInvNorm[name]) {
					t.Errorf("workers=%d elev %d %s: %.17g != %.17g",
						workers, pt.Elevation, name, pt.MeanInvNorm[name], wpt.MeanInvNorm[name])
				}
				if pt.Failures[name] != wpt.Failures[name] {
					t.Errorf("workers=%d elev %d %s: failures %d != %d",
						workers, pt.Elevation, name, pt.Failures[name], wpt.Failures[name])
				}
			}
		}
	}
}
