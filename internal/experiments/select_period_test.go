package experiments

import (
	"reflect"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// TestSelectPeriodInfeasibleAtOneSecond: when every heuristic already fails
// at T = 1 s, the protocol reports ok=false with the T=1 outcomes.
func TestSelectPeriodInfeasibleAtOneSecond(t *testing.T) {
	// A stage of 2 Gcycles cannot meet a 1 s period even at the 1 GHz top
	// speed, and single stages are never split, so every heuristic fails.
	g, err := spg.Chain([]float64{2, 2}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := SelectPeriod(g, platform.XScale(4, 4), 1)
	if ok {
		t.Fatal("SelectPeriod reported success on an infeasible instance")
	}
	if ir.Period != 1 {
		t.Errorf("period = %g, want the initial 1 s", ir.Period)
	}
	if len(ir.Outcomes) != len(HeuristicNames) {
		t.Fatalf("%d outcomes, want %d", len(ir.Outcomes), len(HeuristicNames))
	}
	for _, o := range ir.Outcomes {
		if o.OK {
			t.Errorf("%s unexpectedly succeeded", o.Heuristic)
		}
	}
}

// TestSelectPeriodMaxDivisions: an instance feasible at every division must
// stop exactly at the maxDivisions boundary (9 divisions, T = 1e-9 s) rather
// than loop forever or overshoot.
func TestSelectPeriodMaxDivisions(t *testing.T) {
	// Negligible weights and no communication: feasible at any period the
	// protocol will ever try.
	g, err := spg.Chain([]float64{1e-12, 1e-12, 1e-12}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := SelectPeriod(g, platform.XScale(4, 4), 1)
	if !ok {
		t.Fatal("SelectPeriod failed on a trivially feasible instance")
	}
	want := 1.0
	for i := 0; i < 9; i++ {
		want /= 10
	}
	if ir.Period != want {
		t.Errorf("period = %g, want %g after exactly 9 divisions", ir.Period, want)
	}
	if !anyOK(ir.Outcomes) {
		t.Error("selected period has no successful heuristic")
	}
}

// TestRunRandomDeterministic: the per-task seed formula makes a campaign a
// pure function of its config — two runs must agree exactly, including
// energies (the evaluator accumulates in a deterministic order).
func TestRunRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{
		N: 20, P: 4, Q: 4, CCR: 1,
		MinElevation: 1, MaxElevation: 3, GraphsPerElev: 2, Seed: 9,
	}
	first, err := RunRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("two RunRandom campaigns with the same config diverged")
	}
}
