package experiments

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// TestCacheEquivalenceCCRFamily covers the full (app, CCR, period, heuristic)
// matrix of the acceptance bar: every CCR variant derived as a scale-family
// member of one base analysis must produce bit-identical energies to a
// cache-free solve of an independently synthesized GraphWithCCR graph. Under
// -short the suite shrinks to one app per regime; the full 12-app proof runs
// in the default mode.
func TestCacheEquivalenceCCRFamily(t *testing.T) {
	pl := platform.XScale(4, 4)
	shortSubset := map[string]bool{"DCT": true, "DES": true, "FMRadio": true, "Vocoder": true}
	for _, a := range streamit.Suite() {
		if testing.Short() && !shortSubset[a.Name] {
			continue
		}
		baseG, err := a.BaseGraph()
		if err != nil {
			t.Fatal(err)
		}
		base := spg.NewAnalysis(baseG)
		for _, ccr := range []float64{a.CCR, 10, 1, 0.1} {
			an := base.ScaleToCCR(ccr)
			freshG, err := a.GraphWithCCR(ccr)
			if err != nil {
				t.Fatal(err)
			}
			shared := core.Instance{Graph: an.Graph(), Platform: pl, Period: 1, Analysis: an}
			checkInstanceEquivalence(t, fmt.Sprintf("%s/ccr=%g", a.Name, ccr), shared, freshG, 42)
		}
	}
}

// referenceStreamIt reproduces a StreamIt campaign the pre-reuse way: a
// fresh graph synthesis and a fresh analysis per (app, CCR) cell, with the
// exact per-cell seeds RunStreamIt uses.
func referenceStreamIt(t *testing.T, p, q int, apps []streamit.App, seed int64) *StreamItResult {
	t.Helper()
	type variant struct {
		app   streamit.App
		label string
		ccr   float64
	}
	var variants []variant
	for _, a := range apps {
		variants = append(variants,
			variant{a, "orig", a.CCR},
			variant{a, "10", 10},
			variant{a, "1", 1},
			variant{a, "0.1", 0.1},
		)
	}
	res := &StreamItResult{P: p, Q: q, Cells: make([]StreamItCell, len(variants))}
	for i, v := range variants {
		g, err := v.app.GraphWithCCR(v.ccr)
		if err != nil {
			t.Fatal(err)
		}
		ir, _ := SelectPeriod(g, platform.XScale(p, q), seed+int64(i))
		res.Cells[i] = StreamItCell{App: v.app, CCRLabel: v.label, Result: ir}
	}
	return res
}

func requireSameCampaign(t *testing.T, label string, got, want *StreamItResult) {
	t.Helper()
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("%s: %d cells, want %d", label, len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		gc, wc := got.Cells[i], want.Cells[i]
		if gc.App.Name != wc.App.Name || gc.CCRLabel != wc.CCRLabel {
			t.Fatalf("%s cell %d: identity (%s,%s) vs (%s,%s)", label, i, gc.App.Name, gc.CCRLabel, wc.App.Name, wc.CCRLabel)
		}
		cell := fmt.Sprintf("%s cell %s/%s", label, gc.App.Name, gc.CCRLabel)
		if math.Float64bits(gc.Result.Period) != math.Float64bits(wc.Result.Period) {
			t.Errorf("%s: period %g != %g", cell, gc.Result.Period, wc.Result.Period)
			continue
		}
		for j, o := range gc.Result.Outcomes {
			w := wc.Result.Outcomes[j]
			if o.Heuristic != w.Heuristic || o.OK != w.OK || o.ActiveCores != w.ActiveCores ||
				(o.OK && math.Float64bits(o.Energy) != math.Float64bits(w.Energy)) {
				t.Errorf("%s %s: outcome %+v != %+v", cell, o.Heuristic, o, w)
			}
		}
	}
}

// TestCampaignCacheEquivalenceStreamIt: the campaign must produce
// bit-identical results through every cache configuration — no campaign
// cache, a cold cache, a warm cache (second sweep over the same suite) —
// and all must match the pre-reuse per-cell reference.
func TestCampaignCacheEquivalenceStreamIt(t *testing.T) {
	apps := []streamit.App{}
	for _, a := range streamit.Suite() {
		if a.Name == "DCT" || a.Name == "FMRadio" || a.Name == "MPEG2-noparser" {
			apps = append(apps, a)
		}
	}
	const seed = 7
	want := referenceStreamIt(t, 4, 4, apps, seed)

	noCache, err := RunStreamItWith(4, 4, apps, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCampaign(t, "no-cache", noCache, want)

	cache := NewAnalysisCache(32)
	cold, err := RunStreamItWith(4, 4, apps, seed, cache)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCampaign(t, "cold-cache", cold, want)
	if cache.Len() != len(apps) {
		t.Errorf("cache holds %d workloads, want %d", cache.Len(), len(apps))
	}

	warm, err := RunStreamItWith(4, 4, apps, seed, cache)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCampaign(t, "warm-cache", warm, want)

	// A different grid over the same warm cache still matches its reference.
	warm6, err := RunStreamItWith(6, 6, apps, seed, cache)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCampaign(t, "warm-cache-6x6", warm6, referenceStreamIt(t, 6, 6, apps, seed))
}

// TestCampaignCacheEquivalenceRandom: same property for the random-SPG
// campaign, whose cache keys include every generation parameter.
func TestCampaignCacheEquivalenceRandom(t *testing.T) {
	cfg := RandomConfig{
		N: 30, P: 4, Q: 4, CCR: 1,
		MinElevation: 1, MaxElevation: 4, GraphsPerElev: 2, Seed: 3,
		Cache: NewAnalysisCache(0), // layer off
	}
	want, err := RunRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewAnalysisCache(64)
	for _, label := range []string{"cold", "warm"} {
		cfg.Cache = cache
		got, err := RunRandom(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%s: point count drifted", label)
		}
		for i, pt := range got.Points {
			wpt := want.Points[i]
			for name := range pt.MeanInvNorm {
				if math.Float64bits(pt.MeanInvNorm[name]) != math.Float64bits(wpt.MeanInvNorm[name]) {
					t.Errorf("%s elev %d %s: mean %.17g != %.17g",
						label, pt.Elevation, name, pt.MeanInvNorm[name], wpt.MeanInvNorm[name])
				}
				if pt.Failures[name] != wpt.Failures[name] {
					t.Errorf("%s elev %d %s: failures %d != %d",
						label, pt.Elevation, name, pt.Failures[name], wpt.Failures[name])
				}
			}
		}
	}
	if got := cache.Len(); got != 8 {
		t.Errorf("cache holds %d workloads, want 8 (4 elevations x 2 graphs)", got)
	}
}

// TestAnalysisCacheBehavior: LRU bounding, error non-retention, single-build
// under concurrency, and disabled modes.
func TestAnalysisCacheBehavior(t *testing.T) {
	mk := func() (*spg.Analysis, error) { return spg.NewAnalysis(nil), nil }

	c := NewAnalysisCache(2)
	builds := 0
	counted := func() (*spg.Analysis, error) { builds++; return mk() }
	if _, err := c.Get("a", counted); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a", counted); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("hit rebuilt: %d builds", builds)
	}
	if _, err := c.Get("b", counted); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a", counted); err != nil { // refresh a
		t.Fatal(err)
	}
	if _, err := c.Get("c", counted); err != nil { // evicts b (LRU)
		t.Fatal(err)
	}
	if builds != 3 {
		t.Fatalf("unexpected build count %d", builds)
	}
	if _, err := c.Get("a", counted); err != nil {
		t.Fatal(err)
	}
	if builds != 3 {
		t.Fatal("a was evicted but b should have been")
	}
	if _, err := c.Get("b", counted); err != nil {
		t.Fatal(err)
	}
	if builds != 4 {
		t.Fatal("b must have been evicted and rebuilt")
	}
	if c.Len() != 2 {
		t.Fatalf("capacity 2 cache holds %d", c.Len())
	}

	// Errors are not retained.
	fails := 0
	failing := func() (*spg.Analysis, error) { fails++; return nil, fmt.Errorf("boom %d", fails) }
	if _, err := c.Get("err", failing); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.Get("err", failing); err == nil || err.Error() != "boom 2" {
		t.Fatalf("failed build retained: %v", err)
	}

	// Disabled modes build every time.
	for _, dc := range []*AnalysisCache{nil, NewAnalysisCache(0)} {
		n := 0
		for i := 0; i < 3; i++ {
			if _, err := dc.Get("x", func() (*spg.Analysis, error) { n++; return mk() }); err != nil {
				t.Fatal(err)
			}
		}
		if n != 3 {
			t.Fatalf("disabled cache built %d times, want 3", n)
		}
	}

	// Concurrent Gets of one key build once and share the result.
	cc := NewAnalysisCache(8)
	var cbuilds int
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]*spg.Analysis, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			an, err := cc.Get("k", func() (*spg.Analysis, error) {
				mu.Lock()
				cbuilds++
				mu.Unlock()
				return mk()
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = an
		}(i)
	}
	wg.Wait()
	if cbuilds != 1 {
		t.Fatalf("concurrent Gets built %d times", cbuilds)
	}
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatal("concurrent Gets returned different analyses")
		}
	}
}

// TestDefaultAnalysisCacheShared: RunStreamIt without an explicit cache uses
// the process-wide default, so back-to-back campaigns share workloads.
func TestDefaultAnalysisCacheShared(t *testing.T) {
	apps := []streamit.App{}
	for _, a := range streamit.Suite() {
		if a.Name == "DCT" {
			apps = append(apps, a)
		}
	}
	before := DefaultAnalysisCache().Len()
	if _, err := RunStreamIt(2, 2, apps, 1); err != nil {
		t.Fatal(err)
	}
	if DefaultAnalysisCache().Len() < before {
		t.Error("default cache shrank")
	}
	key := streamItKey(apps[0])
	hit := false
	if _, err := DefaultAnalysisCache().Get(key, func() (*spg.Analysis, error) {
		hit = true // build called = miss
		return spg.NewAnalysis(nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("campaign workload missing from the default cache")
	}
}
