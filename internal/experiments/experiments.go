// Package experiments reproduces the evaluation of Section 6: the period
// bound selection protocol, the StreamIt campaigns (Figures 8-9, Table 2) and
// the random-SPG campaigns (Figures 10-13, Table 3). Results are plain data
// structures; render.go turns them into text tables and CSV.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// HeuristicNames lists the five heuristics in the paper's presentation
// order, derived from the authoritative core list so the two can never
// drift.
var HeuristicNames = func() []string {
	hs := core.All(0)
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name()
	}
	return names
}()

// Heuristics returns the heuristic set used by the experiment campaigns: the
// core list with a reduced DPA1D state budget, so that large-elevation
// instances fail fast, mirroring the tractability wall reported in
// Section 6.2 instead of burning hours on doomed enumerations.
func Heuristics(seed int64) []core.Heuristic {
	return core.AllWith(core.Options{Seed: seed, DPA1DMaxStates: 60_000})
}

// Outcome records one heuristic run on one instance.
type Outcome struct {
	Heuristic string
	OK        bool
	Energy    float64
	// ActiveCores is reported for successful runs (used by the analysis of
	// DPA2D's behaviour on pipelines).
	ActiveCores int
}

// InstanceResult is the evaluation of all heuristics on one workload at the
// period selected by the Section 6.1.3 protocol.
type InstanceResult struct {
	Period   float64
	Outcomes []Outcome
}

// BestEnergy returns the minimum energy over successful heuristics, or +Inf.
func (ir InstanceResult) BestEnergy() float64 {
	best := math.Inf(1)
	for _, o := range ir.Outcomes {
		if o.OK && o.Energy < best {
			best = o.Energy
		}
	}
	return best
}

// runAll executes every heuristic on the instance. The instance's analysis
// cache (when attached) is shared by all five heuristics.
func runAll(inst core.Instance, seed int64) []Outcome {
	hs := Heuristics(seed)
	out := make([]Outcome, len(hs))
	for i, h := range hs {
		out[i].Heuristic = h.Name()
		sol, err := h.Solve(inst)
		if err != nil {
			continue
		}
		out[i].OK = true
		out[i].Energy = sol.Energy()
		out[i].ActiveCores = sol.Result.ActiveCores
	}
	return out
}

func anyOK(outcomes []Outcome) bool {
	for _, o := range outcomes {
		if o.OK {
			return true
		}
	}
	return false
}

// SelectPeriod implements the protocol of Section 6.1.3: start at T = 1 s,
// iteratively divide the period by 10 while at least one heuristic still
// succeeds, and retain the last period before total failure, together with
// the heuristic outcomes at that period. ok is false when every heuristic
// already fails at 1 s.
//
// One analysis cache is built per workload and shared across all heuristics
// and all period divisions: validation, reachability, level and band
// structures and the interned downset space are computed once instead of
// once per (heuristic, period) pair.
func SelectPeriod(g *spg.Graph, pl *platform.Platform, seed int64) (InstanceResult, bool) {
	return SelectPeriodAnalyzed(spg.NewAnalysis(g), pl, seed)
}

// SelectPeriodAnalyzed is SelectPeriod over a pre-built (possibly shared)
// analysis: campaigns pass scale-family members and campaign-cache hits here
// so the protocol starts from whatever structures earlier runs on the same
// workload family already built. The analysis is only read through its
// concurrency-safe accessors, so one analysis may serve several concurrent
// calls.
func SelectPeriodAnalyzed(an *spg.Analysis, pl *platform.Platform, seed int64) (InstanceResult, bool) {
	const maxDivisions = 9
	inst := core.Instance{Graph: an.Graph(), Platform: pl, Period: 1.0, Analysis: an}
	outcomes := runAll(inst, seed)
	if !anyOK(outcomes) {
		return InstanceResult{Period: inst.Period, Outcomes: outcomes}, false
	}
	for i := 0; i < maxDivisions; i++ {
		tighter := inst.WithPeriod(inst.Period / 10)
		next := runAll(tighter, seed)
		if !anyOK(next) {
			break
		}
		inst, outcomes = tighter, next
	}
	return InstanceResult{Period: inst.Period, Outcomes: outcomes}, true
}

// parallelFor runs fn(i) for i in [0, n) on all available cores.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ccrLabel names a CCR variant column ("orig", "10", "1", "0.1").
func ccrLabel(v float64, orig bool) string {
	if orig {
		return "orig"
	}
	switch v {
	case 10:
		return "10"
	case 1:
		return "1"
	case 0.1:
		return "0.1"
	default:
		return fmt.Sprintf("%g", v)
	}
}
