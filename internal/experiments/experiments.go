// Package experiments reproduces the evaluation of Section 6: the period
// bound selection protocol, the StreamIt campaigns (Figures 8-9, Table 2) and
// the random-SPG campaigns (Figures 10-13, Table 3). Results are plain data
// structures; render.go turns them into text tables and CSV.
//
// Since the campaign-engine refactor the package is a thin adapter layer:
// each campaign is a cell enumeration (StreamItCells, RandomCells) handed to
// internal/engine for execution plus a deterministic, order-independent
// reducer (ReduceStreamIt, ReduceRandom) folding the indexed cell results
// into the paper's tables. The legacy entry points — RunStreamIt, RunRandom,
// SelectPeriod — keep their exact signatures and bit-identical results; the
// engine is the seam that also serves the HTTP mapping service and, later,
// distributed shard runners.
package experiments

import (
	"fmt"

	"spgcmp/internal/core"
	"spgcmp/internal/engine"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// HeuristicNames lists the five heuristics in the paper's presentation
// order, derived from the authoritative core list so the two can never
// drift.
var HeuristicNames = func() []string {
	hs := core.All(0)
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name()
	}
	return names
}()

// campaignOptions is the heuristic configuration of every experiment cell:
// the core defaults with a reduced DPA1D state budget, so that
// large-elevation instances fail fast, mirroring the tractability wall
// reported in Section 6.2 instead of burning hours on doomed enumerations.
func campaignOptions(seed int64) core.Options {
	return core.Options{Seed: seed, DPA1DMaxStates: 60_000}
}

// Heuristics returns the heuristic set used by the experiment campaigns (see
// campaignOptions).
func Heuristics(seed int64) []core.Heuristic {
	return core.AllWith(campaignOptions(seed))
}

// Outcome records one heuristic run on one instance.
type Outcome = engine.Outcome

// InstanceResult is the evaluation of all heuristics on one workload at the
// period selected by the Section 6.1.3 protocol.
type InstanceResult = engine.InstanceResult

// runAll executes every heuristic on the instance with the campaign
// configuration. The instance's analysis cache (when attached) is shared by
// all five heuristics.
func runAll(inst core.Instance, seed int64) []Outcome {
	return core.SolveCell(inst, campaignOptions(seed))
}

func anyOK(outcomes []Outcome) bool { return engine.AnyOK(outcomes) }

// SelectPeriod implements the protocol of Section 6.1.3: start at T = 1 s,
// iteratively divide the period by 10 while at least one heuristic still
// succeeds, and retain the last period before total failure, together with
// the heuristic outcomes at that period. ok is false when every heuristic
// already fails at 1 s.
//
// One analysis cache is built per workload and shared across all heuristics
// and all period divisions: validation, reachability, level and band
// structures and the interned downset space are computed once instead of
// once per (heuristic, period) pair.
func SelectPeriod(g *spg.Graph, pl *platform.Platform, seed int64) (InstanceResult, bool) {
	return SelectPeriodAnalyzed(spg.NewAnalysis(g), pl, seed)
}

// SelectPeriodAnalyzed is SelectPeriod over a pre-built (possibly shared)
// analysis: campaigns pass scale-family members and campaign-cache hits here
// so the protocol starts from whatever structures earlier runs on the same
// workload family already built. The analysis is only read through its
// concurrency-safe accessors, so one analysis may serve several concurrent
// calls. It is engine.SelectPeriod under the campaign heuristic
// configuration.
func SelectPeriodAnalyzed(an *spg.Analysis, pl *platform.Platform, seed int64) (InstanceResult, bool) {
	return engine.SelectPeriod(an, pl, campaignOptions(seed))
}

// ccrLabel names a CCR variant column ("orig", "10", "1", "0.1").
func ccrLabel(v float64, orig bool) string {
	if orig {
		return "orig"
	}
	switch v {
	case 10:
		return "10"
	case 1:
		return "1"
	case 0.1:
		return "0.1"
	default:
		return fmt.Sprintf("%g", v)
	}
}
