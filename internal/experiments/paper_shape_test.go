package experiments

import (
	"math"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/streamit"
)

// TestPaperShapeStreamIt4x4 runs the full Figure 8 campaign (12 apps, 4 CCR
// variants, 4x4 grid) and asserts the qualitative observations of
// Section 6.2.1. The workloads and the Random seed are deterministic, so the
// assertions are stable.
func TestPaperShapeStreamIt4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped with -short")
	}
	res, err := RunStreamIt(4, 4, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range res.Cells {
		norm := c.NormalizedEnergy()
		outcomes := make(map[string]bool)
		for _, o := range c.Result.Outcomes {
			outcomes[o.Heuristic] = o.OK
		}

		// Paper: DPA1D fails on the high-elevation applications ("too many
		// possible splits to explore" for apps 1-4; our budgeted variant
		// fails from elevation 12 up).
		if c.App.YMax >= 12 && outcomes["DPA1D"] {
			t.Errorf("%s/%s: DPA1D unexpectedly tractable at elevation %d",
				c.App.Name, c.CCRLabel, c.App.YMax)
		}
		// Paper: DPA2D is the best heuristic on fat graphs of large
		// elevation (it should stay close to the winner everywhere).
		if c.App.YMax >= 12 {
			if v, ok := norm["DPA2D"]; ok && v > 1.15 {
				t.Errorf("%s/%s: DPA2D normalized %.3f on a fat graph, expected near 1",
					c.App.Name, c.CCRLabel, v)
			}
		}
		// Paper: DPA1D is optimal for linear chains, so no heuristic may
		// beat it on the three pipeline apps (DCT, FFT, TDE).
		if c.App.YMax == 1 && outcomes["DPA1D"] {
			if v := norm["DPA1D"]; math.Abs(v-1) > 1e-9 {
				t.Errorf("%s/%s: DPA1D normalized %.6f on a chain, want 1.0",
					c.App.Name, c.CCRLabel, v)
			}
		}
		// Random is never meaningfully better than the specialists.
		if v, ok := norm["Random"]; ok && v < 1-1e-9 {
			t.Errorf("%s/%s: Random normalized %.3f < 1", c.App.Name, c.CCRLabel, v)
		}
	}

	// Paper: DPA2D wins the majority of the fat-graph instances it solves.
	fatWins, fatCells := 0, 0
	for _, c := range res.Cells {
		if c.App.YMax < 12 {
			continue
		}
		if v, ok := c.NormalizedEnergy()["DPA2D"]; ok {
			fatCells++
			if v < 1+1e-9 {
				fatWins++
			}
		}
	}
	if fatCells > 0 && fatWins*2 < fatCells {
		t.Errorf("DPA2D wins only %d of %d fat-graph instances", fatWins, fatCells)
	}

	// Aggregate shapes: Random is clearly dominated on average; Greedy is
	// robust (few failures).
	var randSum float64
	var randCount int
	failures := res.FailureCounts()
	for _, c := range res.Cells {
		if v, ok := c.NormalizedEnergy()["Random"]; ok {
			randSum += v
			randCount++
		}
	}
	if randCount > 0 && randSum/float64(randCount) < 1.1 {
		t.Errorf("Random mean normalized energy %.3f, expected clearly above 1.1",
			randSum/float64(randCount))
	}
	if failures["Greedy"] > len(res.Cells)/3 {
		t.Errorf("Greedy failed %d/%d instances, expected robustness", failures["Greedy"], len(res.Cells))
	}
	// The paper's Table 2 shows every heuristic failing somewhere on 4x4.
	total := 0
	for _, v := range failures {
		total += v
	}
	if total == 0 {
		t.Error("no failures at all on 4x4, Table 2 shape not reproduced")
	}
}

// TestPaperShape6x6FailsLess: Table 2's second shape — "because the target
// grid is larger, it is easier to find a mapping that matches the period
// bound". The claim is about a fixed period: the full campaign re-selects
// the period per platform (the larger grid supports tighter bounds), so this
// test compares the two grids at the period selected on 4x4.
func TestPaperShape6x6FailsLess(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped with -short")
	}
	r4, err := RunStreamIt(4, 4, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	f4 := r4.FailureCounts()
	f6 := make(map[string]int)
	pl6 := platform.XScale(6, 6)
	for i, c := range r4.Cells {
		g, err := c.App.GraphWithCCR(ccrValue(c.App, c.CCRLabel))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range runAll(core.NewInstance(g, pl6, c.Result.Period), 1+int64(i)) {
			if !o.OK {
				f6[o.Heuristic]++
			}
		}
	}
	// At matched periods the bigger grid can only help the robust
	// heuristics.
	for _, name := range []string{"Random", "Greedy", "DPA2D1D"} {
		if f6[name] > f4[name] {
			t.Errorf("%s: failures rose from %d (4x4) to %d (6x6) at matched periods",
				name, f4[name], f6[name])
		}
	}
}

func ccrValue(app streamit.App, label string) float64 {
	switch label {
	case "orig":
		return app.CCR
	case "10":
		return 10
	case "1":
		return 1
	default:
		return 0.1
	}
}
