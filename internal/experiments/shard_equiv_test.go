package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"spgcmp/internal/engine"
	"spgcmp/internal/streamit"
)

// shardWorker is an in-process stand-in for a remote spgserve worker: it
// answers the shard protocol by solving received spec ranges on a local pool
// against the given campaign cache — exactly what the service's
// /v1/cells/execute handler does.
func shardWorker(t *testing.T, cache *engine.AnalysisCache) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req engine.ExecuteCellsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := engine.ExecuteSpecs(r.Context(), nil, req.Cells, cache, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(engine.ExecuteCellsResponse{Results: results})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardEquivalenceStreamIt is the PR's acceptance bar: the ShardExecutor
// must reduce every StreamIt cell — all applications, all four CCR variants,
// every heuristic at the selected period — bit-identically to the
// PoolExecutor at 1, 2 and 4 shards, with and without an injected worker
// failure forcing the local-fallback path. Cells cross a real HTTP/JSON
// boundary (httptest workers speaking the spec protocol), so the test also
// proves CellSpec/CellOutcome wire coding lossless end to end.
func TestShardEquivalenceStreamIt(t *testing.T) {
	apps := streamit.Suite()
	if testing.Short() {
		apps = apps[:4]
	}
	const seed = 17
	cells := StreamItCells(2, 2, apps, seed)
	cache := NewAnalysisCache(32)
	want, err := engine.Run(context.Background(), &engine.PoolExecutor{},
		engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	wantTable, err := ReduceStreamIt(2, 2, apps, want)
	if err != nil {
		t.Fatal(err)
	}

	w1 := shardWorker(t, cache)
	w2 := shardWorker(t, cache)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected worker failure", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	for _, tc := range []struct {
		name    string
		workers []string
		shards  int
		wantFB  bool
	}{
		{"1shard", []string{w1.URL}, 1, false},
		{"2shards", []string{w1.URL, w2.URL}, 2, false},
		{"4shards", []string{w1.URL, w2.URL}, 4, false},
		{"4shards+failure", []string{w1.URL, broken.URL}, 4, true},
		{"allbroken", []string{broken.URL}, 2, true},
	} {
		ex := &engine.ShardExecutor{Workers: tc.workers, Shards: tc.shards}
		results, err := engine.Run(context.Background(), ex, engine.Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := ReduceStreamIt(2, 2, apps, results)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		requireSameCampaign(t, "shard/"+tc.name, got, wantTable)
		if fb := ex.Fallbacks() > 0; fb != tc.wantFB {
			t.Errorf("%s: fallbacks=%d, want fallback=%v", tc.name, ex.Fallbacks(), tc.wantFB)
		}
	}
}

// TestShardEquivalenceRandom: the same property over a random-SPG panel,
// where cells are uniquely keyed (no family sharing) and the reducer owns
// the aggregation arithmetic.
func TestShardEquivalenceRandom(t *testing.T) {
	cfg := RandomConfig{
		N: 25, P: 2, Q: 2, CCR: 1,
		MinElevation: 1, MaxElevation: 3, GraphsPerElev: 3, Seed: 29,
	}
	cells, err := RandomCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewAnalysisCache(16)
	results, err := engine.Run(context.Background(), &engine.PoolExecutor{},
		engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReduceRandom(cfg, results)
	if err != nil {
		t.Fatal(err)
	}
	worker := shardWorker(t, cache)
	ex := &engine.ShardExecutor{Workers: []string{worker.URL}, Shards: 3}
	results, err = engine.Run(context.Background(), ex, engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReduceRandom(cfg, results)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range got.Points {
		wpt := want.Points[i]
		for _, name := range HeuristicNames {
			if pt.MeanInvNorm[name] != wpt.MeanInvNorm[name] || pt.Failures[name] != wpt.Failures[name] {
				t.Errorf("elevation %d, %s: shard (%v, %d) vs pool (%v, %d)",
					pt.Elevation, name, pt.MeanInvNorm[name], pt.Failures[name],
					wpt.MeanInvNorm[name], wpt.Failures[name])
			}
		}
	}
}

// TestShardBuildErrorPropagation: a deterministic workload build failure is
// a result, not a worker failure — it must cross the wire as the cell's
// error (message preserved) without tripping the fallback path.
func TestShardBuildErrorPropagation(t *testing.T) {
	// Elevation 30 on 8 stages is unsatisfiable: generation fails.
	bad := NewRandomCell(8, 30, 3, 1, 2, 2)
	good := NewRandomCell(8, 2, 3, 1, 2, 2)
	cells := []engine.Cell{bad, good}
	cache := NewAnalysisCache(4)
	want, err := engine.Run(context.Background(), nil, engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if want[0].Err == nil {
		t.Fatal("expected a build failure for the unsatisfiable cell")
	}
	var served atomic.Int64
	worker := shardWorker(t, cache)
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		worker.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(counting.Close)
	ex := &engine.ShardExecutor{Workers: []string{counting.URL}, Shards: 1}
	got, err := engine.Run(context.Background(), ex, engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("range was not served remotely")
	}
	if ex.Fallbacks() != 0 {
		t.Errorf("build failure triggered %d fallbacks", ex.Fallbacks())
	}
	if got[0].Err == nil || got[0].Err.Error() != want[0].Err.Error() {
		t.Errorf("build error crossed the wire as %v, want %v", got[0].Err, want[0].Err)
	}
	if fmt.Sprint(got[1].Result) != fmt.Sprint(want[1].Result) {
		t.Errorf("sibling cell drifted across the wire")
	}
}

// TestCellCacheKeysAreCanonical: the enumerators' cache keys are exactly
// the engine's FamilyKey, so the worker-side key sanitization of
// ExecuteSpecs is a no-op for honest coordinators — a process serving both
// campaign traffic and shard ranges warms one cache entry per family, and
// the legacy key formats are preserved.
func TestCellCacheKeysAreCanonical(t *testing.T) {
	a, err := streamit.ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	cell := NewStreamItCell(a, 1, 2, 2, 1)
	key, err := cell.Spec.Workload.FamilyKey()
	if err != nil {
		t.Fatal(err)
	}
	if cell.Spec.CacheKey != key {
		t.Errorf("streamit cache key %q != family key %q", cell.Spec.CacheKey, key)
	}
	if want := "streamit/FFT/n=17/y=1/x=17"; key != want {
		t.Errorf("streamit family key %q, want legacy format %q", key, want)
	}
	rcell := NewRandomCell(20, 3, 5, 0.1, 2, 2)
	rkey, err := rcell.Spec.Workload.FamilyKey()
	if err != nil {
		t.Fatal(err)
	}
	if rcell.Spec.CacheKey != rkey {
		t.Errorf("random cache key %q != family key %q", rcell.Spec.CacheKey, rkey)
	}
}
