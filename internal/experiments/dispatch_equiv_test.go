package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/streamit"
)

// dispatchWorker is an in-process spgserve stand-in for dispatcher tests:
// /v1/healthz for the registry's probes and the shard protocol on
// /v1/cells/execute against the shared cache, with switches for going down
// (everything fails), per-request delay, and dying after the first served
// chunk — the knobs the failure-schedule scenarios need.
type dispatchWorker struct {
	srv   *httptest.Server
	cache *engine.AnalysisCache

	mu           sync.Mutex
	down         bool
	delay        time.Duration
	downAfterOne bool
	served       int
}

func newDispatchWorker(t *testing.T, cache *engine.AnalysisCache) *dispatchWorker {
	t.Helper()
	dw := &dispatchWorker{cache: cache}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		dw.mu.Lock()
		down := dw.down
		dw.mu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/cells/execute", func(w http.ResponseWriter, r *http.Request) {
		dw.mu.Lock()
		down, delay := dw.down, dw.delay
		dw.mu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		var req engine.ExecuteCellsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := engine.ExecuteSpecs(r.Context(), nil, req.Cells, dw.cache, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		dw.mu.Lock()
		dw.served++
		if dw.downAfterOne {
			dw.down = true
		}
		dw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(engine.ExecuteCellsResponse{Results: results})
	})
	dw.srv = httptest.NewServer(mux)
	t.Cleanup(dw.srv.Close)
	return dw
}

// TestDispatcherEquivalenceStreamIt is the PR's acceptance bar: the cluster
// dispatcher must reduce every StreamIt cell — all applications, all four
// CCR variants, every heuristic at the selected period — bit-identically to
// the PoolExecutor at 1, 2 and 4 workers under chunk sizes 1, default and
// whole-range, and under each injected failure schedule: a dead worker, a
// slow worker, and a worker that dies mid-campaign and rejoins — with zero
// local fallbacks whenever at least one healthy worker remains.
func TestDispatcherEquivalenceStreamIt(t *testing.T) {
	apps := streamit.Suite()
	if testing.Short() {
		apps = apps[:4]
	}
	const seed = 23
	cells := StreamItCells(2, 2, apps, seed)
	cache := NewAnalysisCache(32)
	want, err := engine.Run(context.Background(), &engine.PoolExecutor{},
		engine.Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	wantTable, err := ReduceStreamIt(2, 2, apps, want)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, d *engine.Dispatcher, wantLocal bool) {
		t.Helper()
		results, err := engine.Run(context.Background(), d, engine.Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReduceStreamIt(2, 2, apps, results)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireSameCampaign(t, "dispatch/"+name, got, wantTable)
		st := d.Stats()
		if local := st.LocalFallbacks > 0; local != wantLocal {
			t.Errorf("%s: local_fallbacks=%d, want local=%v (stats %+v)", name, st.LocalFallbacks, wantLocal, st)
		}
	}

	pool := []*dispatchWorker{
		newDispatchWorker(t, cache), newDispatchWorker(t, cache),
		newDispatchWorker(t, cache), newDispatchWorker(t, cache),
	}
	for _, nw := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 0, len(cells)} {
			urls := make([]string, nw)
			for i := range urls {
				urls[i] = pool[i].srv.URL
			}
			check(fmt.Sprintf("%dworkers/chunk=%d", nw, chunk), &engine.Dispatcher{
				Registry:   engine.NewWorkerRegistry(engine.RegistryConfig{}, urls...),
				ChunkCells: chunk,
			}, false)
		}
	}

	// A dead worker: its chunks re-dispatch to the healthy one, never local.
	deadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadSrv.Close()
	healthy := newDispatchWorker(t, cache)
	deadD := &engine.Dispatcher{
		Registry:   engine.NewWorkerRegistry(engine.RegistryConfig{}, healthy.srv.URL, deadSrv.URL),
		ChunkCells: 1,
	}
	check("dead-worker", deadD, false)
	if st := deadD.Stats(); st.Redispatches == 0 {
		t.Errorf("dead-worker schedule shows no redispatches: %+v", st)
	}

	// A slow worker: stealing drains its backlog through the fast one.
	slow := newDispatchWorker(t, cache)
	slow.mu.Lock()
	slow.delay = 250 * time.Millisecond
	slow.mu.Unlock()
	fast := newDispatchWorker(t, cache)
	slowD := &engine.Dispatcher{
		Registry:   engine.NewWorkerRegistry(engine.RegistryConfig{}, slow.srv.URL, fast.srv.URL),
		ChunkCells: 1,
	}
	check("slow-worker", slowD, false)

	// A worker that dies after its first chunk and rejoins moments later:
	// the probe loop demotes it, redispatch covers its in-flight loss, and
	// recovery puts it back in rotation — still zero local fallbacks.
	flaky := newDispatchWorker(t, cache)
	flaky.mu.Lock()
	flaky.downAfterOne = true
	flaky.mu.Unlock()
	steady := newDispatchWorker(t, cache)
	steady.mu.Lock()
	steady.delay = 25 * time.Millisecond
	steady.mu.Unlock()
	reg := engine.NewWorkerRegistry(engine.RegistryConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DeadAfter:     2,
	}, flaky.srv.URL, steady.srv.URL)
	reg.Start()
	t.Cleanup(reg.Stop)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				flaky.mu.Lock()
				if flaky.down {
					flaky.downAfterOne = false
					go func() {
						time.Sleep(60 * time.Millisecond)
						flaky.mu.Lock()
						flaky.down = false
						flaky.mu.Unlock()
					}()
					flaky.mu.Unlock()
					return
				}
				flaky.mu.Unlock()
			}
		}
	}()
	check("die-rejoin", &engine.Dispatcher{Registry: reg, ChunkCells: 1}, false)
	flaky.mu.Lock()
	servedByFlaky := flaky.served
	flaky.mu.Unlock()
	if servedByFlaky < 2 {
		t.Errorf("rejoining worker served %d chunks, want pre-death and post-rejoin service", servedByFlaky)
	}
}
