package platform

// Snake is the embedding of a 1 x (p*q) uni-line CMP into the 2D grid used by
// the 1D heuristics (Section 5.4): positions wind through the grid row by
// row, alternating direction, so that consecutive positions are always
// physically adjacent:
//
//	C(1,1) -> C(1,2) -> ... -> C(1,q)
//	                              |
//	C(2,1) <- ...       <-     C(2,q)
//	   |
//	C(3,1) -> ...
type Snake struct {
	pl    *Platform
	cores []Core
	index map[Core]int
}

// NewSnake builds the snake embedding for the platform.
func NewSnake(pl *Platform) *Snake {
	s := &Snake{
		pl:    pl,
		cores: make([]Core, 0, pl.NumCores()),
		index: make(map[Core]int, pl.NumCores()),
	}
	for u := 0; u < pl.P; u++ {
		if u%2 == 0 {
			for v := 0; v < pl.Q; v++ {
				s.push(Core{u, v})
			}
		} else {
			for v := pl.Q - 1; v >= 0; v-- {
				s.push(Core{u, v})
			}
		}
	}
	return s
}

func (s *Snake) push(c Core) {
	s.index[c] = len(s.cores)
	s.cores = append(s.cores, c)
}

// Len returns the number of positions (p*q).
func (s *Snake) Len() int { return len(s.cores) }

// Core returns the physical core at snake position k (0-based).
func (s *Snake) Core(k int) Core { return s.cores[k] }

// Position returns the snake position of a physical core.
func (s *Snake) Position(c Core) int { return s.index[c] }

// Path returns the directed links followed when travelling along the snake
// from position i to position j. It supports both directions (the 1D
// heuristics only use forward traffic on a uni-directional configuration, but
// the embedding itself is bidirectional) and is empty when i == j.
func (s *Snake) Path(i, j int) []Link {
	if i == j {
		return nil
	}
	step := 1
	if j < i {
		step = -1
	}
	path := make([]Link, 0, (j-i)*step)
	for k := i; k != j; k += step {
		path = append(path, Link{s.cores[k], s.cores[k+step]})
	}
	return path
}
