package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXScaleModel(t *testing.T) {
	pl := XScale(4, 4)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.NumCores() != 16 {
		t.Errorf("cores = %d", pl.NumCores())
	}
	wantSpeeds := []float64{0.15, 0.4, 0.6, 0.8, 1.0}
	for i, s := range wantSpeeds {
		if pl.Speeds[i] != s {
			t.Errorf("speed[%d] = %g, want %g", i, pl.Speeds[i], s)
		}
	}
	if pl.MaxSpeed() != 1.0 || pl.MinSpeed() != 0.15 {
		t.Errorf("speed extremes wrong: %g %g", pl.MaxSpeed(), pl.MinSpeed())
	}
	// BW = 16 bytes x 1.2 GHz = 19.2 GB/s.
	if math.Abs(pl.BW-19.2) > 1e-12 {
		t.Errorf("BW = %g, want 19.2", pl.BW)
	}
	// E(bit) = 6 pJ -> 0.048 J/GB.
	if math.Abs(pl.EnergyPerGB-0.048) > 1e-12 {
		t.Errorf("EnergyPerGB = %g, want 0.048", pl.EnergyPerGB)
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	cases := []func(*Platform){
		func(p *Platform) { p.P = 0 },
		func(p *Platform) { p.Speeds = nil },
		func(p *Platform) { p.DynPower = p.DynPower[:2] },
		func(p *Platform) { p.Speeds[0], p.Speeds[1] = p.Speeds[1], p.Speeds[0] },
		func(p *Platform) { p.Speeds[0] = p.Speeds[1] },
		func(p *Platform) { p.BW = 0 },
		func(p *Platform) { p.LeakPower = -1 },
		func(p *Platform) { p.DynPower[0] = -1 },
	}
	for i, mutate := range cases {
		pl := XScale(2, 2)
		mutate(pl)
		if err := pl.Validate(); err == nil {
			t.Errorf("case %d: invalid platform accepted", i)
		}
	}
}

func TestMinFeasibleSpeed(t *testing.T) {
	pl := XScale(2, 2)
	tests := []struct {
		work, T float64
		wantIdx int
		wantOK  bool
	}{
		{0.0, 1, 0, true},
		{0.1, 1, 0, true},   // 0.1 <= 0.15
		{0.15, 1, 0, true},  // boundary
		{0.2, 1, 1, true},   // needs 0.4
		{0.5, 1, 2, true},   // needs 0.6
		{0.9, 1, 4, true},   // needs 1.0
		{1.0, 1, 4, true},   // boundary
		{1.01, 1, 0, false}, // impossible
		{0.05, 0.05, 4, true},
		{-1, 1, 0, false},
		{0.1, 0, 0, false},
	}
	for _, tc := range tests {
		_, idx, ok := pl.MinFeasibleSpeed(tc.work, tc.T)
		if ok != tc.wantOK || (ok && idx != tc.wantIdx) {
			t.Errorf("MinFeasibleSpeed(%g, %g) = (%d, %v), want (%d, %v)",
				tc.work, tc.T, idx, ok, tc.wantIdx, tc.wantOK)
		}
	}
}

func TestCoreEnergy(t *testing.T) {
	pl := XScale(2, 2)
	// 0.4 Gcycles at 0.8 GHz for T=1: leak 0.08 + 0.5 s x 0.9 W.
	got := pl.CoreEnergy(0.4, 1, 3)
	want := 0.08 + 0.5*0.9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CoreEnergy = %g, want %g", got, want)
	}
}

func TestLinksEnumeration(t *testing.T) {
	pl := XScale(3, 2)
	links := pl.Links()
	// Grid 3x2: vertical pairs: 2 cols x 2 = 4, horizontal: 3 rows x 1 = 3;
	// each bidirectional -> 14 directed links.
	if len(links) != 14 {
		t.Fatalf("links = %d, want 14", len(links))
	}
	for _, l := range links {
		if !pl.Adjacent(l.From, l.To) {
			t.Errorf("non-adjacent link %v", l)
		}
	}
}

func TestAdjacent(t *testing.T) {
	pl := XScale(3, 3)
	a := Core{1, 1}
	for _, b := range []Core{{0, 1}, {2, 1}, {1, 0}, {1, 2}} {
		if !pl.Adjacent(a, b) {
			t.Errorf("%v and %v should be adjacent", a, b)
		}
	}
	for _, b := range []Core{{1, 1}, {0, 0}, {2, 2}, {3, 1}} {
		if pl.Adjacent(a, b) {
			t.Errorf("%v and %v should not be adjacent", a, b)
		}
	}
}

// TestXYPathProperties: the XY route is connected, minimal (Manhattan
// length), within bounds, and horizontal-first.
func TestXYPathProperties(t *testing.T) {
	pl := XScale(6, 6)
	f := func(au, av, bu, bv uint8) bool {
		a := Core{int(au) % 6, int(av) % 6}
		b := Core{int(bu) % 6, int(bv) % 6}
		path := pl.XYPath(a, b)
		if len(path) != Manhattan(a, b) {
			return false
		}
		if err := pl.ValidatePath(a, b, path); err != nil {
			t.Logf("%v -> %v: %v", a, b, err)
			return false
		}
		// Horizontal-first: once a vertical hop appears, no horizontal hop
		// may follow.
		vertical := false
		for _, l := range path {
			isVert := l.From.V == l.To.V
			if vertical && !isVert {
				return false
			}
			vertical = isVert
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidatePathRejects(t *testing.T) {
	pl := XScale(3, 3)
	a, b := Core{0, 0}, Core{2, 2}
	good := pl.XYPath(a, b)
	if err := pl.ValidatePath(a, b, good); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	// Wrong start.
	bad := append([]Link{{Core{1, 0}, Core{1, 1}}}, good...)
	if err := pl.ValidatePath(a, b, bad); err == nil {
		t.Error("disconnected path accepted")
	}
	// Wrong end.
	if err := pl.ValidatePath(a, Core{1, 1}, good); err == nil {
		t.Error("path to wrong destination accepted")
	}
	// Empty path between distinct cores.
	if err := pl.ValidatePath(a, b, nil); err == nil {
		t.Error("empty path accepted")
	}
	// Non-empty path between identical cores.
	if err := pl.ValidatePath(a, a, good); err == nil {
		t.Error("self-path accepted")
	}
	// Cycle.
	cycle := []Link{
		{Core{0, 0}, Core{0, 1}}, {Core{0, 1}, Core{1, 1}},
		{Core{1, 1}, Core{1, 0}}, {Core{1, 0}, Core{0, 0}},
		{Core{0, 0}, Core{0, 1}},
	}
	if err := pl.ValidatePath(a, Core{0, 1}, cycle); err == nil {
		t.Error("cyclic path accepted")
	}
}

// TestSnakeProperties: the snake is a bijection onto the grid where
// consecutive positions are physically adjacent.
func TestSnakeProperties(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 7}, {4, 4}, {6, 6}, {3, 5}, {5, 3}} {
		pl := XScale(dims[0], dims[1])
		s := NewSnake(pl)
		if s.Len() != pl.NumCores() {
			t.Fatalf("%v: snake length %d", dims, s.Len())
		}
		seen := make(map[Core]bool)
		for k := 0; k < s.Len(); k++ {
			c := s.Core(k)
			if seen[c] {
				t.Fatalf("%v: core %v visited twice", dims, c)
			}
			seen[c] = true
			if s.Position(c) != k {
				t.Fatalf("%v: Position(Core(%d)) = %d", dims, k, s.Position(c))
			}
			if k > 0 && !pl.Adjacent(s.Core(k-1), c) {
				t.Fatalf("%v: snake positions %d and %d not adjacent", dims, k-1, k)
			}
		}
	}
}

func TestSnakePath(t *testing.T) {
	pl := XScale(4, 4)
	s := NewSnake(pl)
	for _, tc := range [][2]int{{0, 5}, {5, 0}, {3, 3}, {0, 15}} {
		path := s.Path(tc[0], tc[1])
		wantLen := tc[1] - tc[0]
		if wantLen < 0 {
			wantLen = -wantLen
		}
		if len(path) != wantLen {
			t.Errorf("Path(%d,%d) length %d, want %d", tc[0], tc[1], len(path), wantLen)
		}
		if err := pl.ValidatePath(s.Core(tc[0]), s.Core(tc[1]), path); err != nil {
			t.Errorf("Path(%d,%d): %v", tc[0], tc[1], err)
		}
	}
}

func TestSpeedIndex(t *testing.T) {
	pl := XScale(2, 2)
	if pl.SpeedIndex(0.6) != 2 {
		t.Errorf("SpeedIndex(0.6) = %d", pl.SpeedIndex(0.6))
	}
	if pl.SpeedIndex(0.55) != -1 {
		t.Errorf("SpeedIndex(0.55) = %d", pl.SpeedIndex(0.55))
	}
}

// TestYXPathProperties mirrors the XY property test for the transposed
// routing: minimal, valid, vertical-first.
func TestYXPathProperties(t *testing.T) {
	pl := XScale(6, 6)
	f := func(au, av, bu, bv uint8) bool {
		a := Core{int(au) % 6, int(av) % 6}
		b := Core{int(bu) % 6, int(bv) % 6}
		path := pl.YXPath(a, b)
		if len(path) != Manhattan(a, b) {
			return false
		}
		if err := pl.ValidatePath(a, b, path); err != nil {
			t.Logf("%v -> %v: %v", a, b, err)
			return false
		}
		horizontal := false
		for _, l := range path {
			isHoriz := l.From.U == l.To.U
			if horizontal && !isHoriz {
				return false
			}
			horizontal = isHoriz
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
