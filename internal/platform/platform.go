// Package platform models the target chip multiprocessor (CMP) of the paper:
// a p x q grid of homogeneous DVFS-capable cores connected by bidirectional
// horizontal and vertical links of identical bandwidth (Section 3.2), with
// the Intel XScale speed/power model used in the simulations (Section 6.1.2).
package platform

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Core identifies one core of the grid by its (row, column) coordinates,
// 0-based. The paper writes C_{u,v} with 1-based u (row) and v (column).
type Core struct {
	U int // row, 0..P-1
	V int // column, 0..Q-1
}

func (c Core) String() string { return fmt.Sprintf("C(%d,%d)", c.U+1, c.V+1) }

// Link is a directed communication link between two neighbouring cores. Each
// physical link of the paper is bidirectional with bandwidth BW in each
// direction, so it is modelled as two Links.
type Link struct {
	From Core
	To   Core
}

func (l Link) String() string { return fmt.Sprintf("%v->%v", l.From, l.To) }

// Platform describes a CMP configuration.
type Platform struct {
	P int // number of rows
	Q int // number of columns

	// Speeds lists the available core speeds in GHz, strictly increasing.
	Speeds []float64
	// DynPower[k] is the dynamic power (W) dissipated by a core running at
	// Speeds[k].
	DynPower []float64
	// LeakPower is P_leak^(comp): the static power (W) of an enrolled core,
	// paid over the whole period.
	LeakPower float64
	// CommLeakPower is P_leak^(comm): the aggregated static power (W) of the
	// routers and links, paid once per platform over the whole period. The
	// paper sets it to 0 without loss of generality.
	CommLeakPower float64
	// BW is the link bandwidth in GB/s, per direction.
	BW float64
	// EnergyPerGB is the dynamic energy (J) to move one GB across one link
	// (the paper's E(bit), converted: 6 pJ/bit = 0.048 J/GB).
	EnergyPerGB float64
}

// XScale returns a p x q platform with the Intel XScale model used throughout
// the paper's simulations: speeds {0.15, 0.4, 0.6, 0.8, 1} GHz with dynamic
// powers {80, 170, 400, 900, 1600} mW, 80 mW leakage per enrolled core,
// 16-byte-wide links at 1.2 GHz (BW = 19.2 GB/s) and E(bit) = 6 pJ.
func XScale(p, q int) *Platform {
	return &Platform{
		P:           p,
		Q:           q,
		Speeds:      []float64{0.15, 0.4, 0.6, 0.8, 1.0},
		DynPower:    []float64{0.080, 0.170, 0.400, 0.900, 1.600},
		LeakPower:   0.080,
		BW:          16 * 1.2,
		EnergyPerGB: 6e-12 * 8e9,
	}
}

// Validate checks the structural consistency of the platform description.
func (pl *Platform) Validate() error {
	if pl.P < 1 || pl.Q < 1 {
		return fmt.Errorf("platform: invalid grid %dx%d", pl.P, pl.Q)
	}
	if len(pl.Speeds) == 0 {
		return errors.New("platform: no speeds")
	}
	if len(pl.DynPower) != len(pl.Speeds) {
		return fmt.Errorf("platform: %d speeds but %d dynamic powers", len(pl.Speeds), len(pl.DynPower))
	}
	if !sort.Float64sAreSorted(pl.Speeds) {
		return errors.New("platform: speeds must be sorted increasing")
	}
	for i, s := range pl.Speeds {
		if s <= 0 {
			return fmt.Errorf("platform: speed %d is not positive", i)
		}
		if i > 0 && pl.Speeds[i] == pl.Speeds[i-1] {
			return fmt.Errorf("platform: duplicate speed %g", s)
		}
	}
	for i, p := range pl.DynPower {
		if p < 0 {
			return fmt.Errorf("platform: dynamic power %d is negative", i)
		}
	}
	if pl.BW <= 0 {
		return errors.New("platform: bandwidth must be positive")
	}
	if pl.EnergyPerGB < 0 || pl.LeakPower < 0 || pl.CommLeakPower < 0 {
		return errors.New("platform: negative energy constants")
	}
	return nil
}

// NumCores returns p*q.
func (pl *Platform) NumCores() int { return pl.P * pl.Q }

// MaxSpeed returns the fastest available speed.
func (pl *Platform) MaxSpeed() float64 { return pl.Speeds[len(pl.Speeds)-1] }

// MinSpeed returns the slowest available speed.
func (pl *Platform) MinSpeed() float64 { return pl.Speeds[0] }

// InBounds reports whether c is a valid core of the grid.
func (pl *Platform) InBounds(c Core) bool {
	return c.U >= 0 && c.U < pl.P && c.V >= 0 && c.V < pl.Q
}

// Adjacent reports whether a and b are distinct neighbouring cores.
func (pl *Platform) Adjacent(a, b Core) bool {
	if !pl.InBounds(a) || !pl.InBounds(b) {
		return false
	}
	du, dv := a.U-b.U, a.V-b.V
	return (du == 0 && (dv == 1 || dv == -1)) || (dv == 0 && (du == 1 || du == -1))
}

// Links enumerates every directed link of the grid.
func (pl *Platform) Links() []Link {
	var links []Link
	for u := 0; u < pl.P; u++ {
		for v := 0; v < pl.Q; v++ {
			c := Core{u, v}
			if u+1 < pl.P {
				d := Core{u + 1, v}
				links = append(links, Link{c, d}, Link{d, c})
			}
			if v+1 < pl.Q {
				d := Core{u, v + 1}
				links = append(links, Link{c, d}, Link{d, c})
			}
		}
	}
	return links
}

// SpeedIndex returns the index of speed s in Speeds, or -1 if s is not an
// available speed (within a small tolerance).
func (pl *Platform) SpeedIndex(s float64) int {
	for i, v := range pl.Speeds {
		if math.Abs(v-s) <= 1e-12*math.Max(1, v) {
			return i
		}
	}
	return -1
}

// MinFeasibleSpeed returns the slowest speed able to process the given work
// (Gcycles) within period T (seconds), i.e. the smallest s with work/s <= T.
// The boolean result is false when even the fastest speed is too slow. This
// is the per-core speed selection rule used by every heuristic: with dynamic
// power superlinear in speed, the slowest feasible speed minimizes energy.
func (pl *Platform) MinFeasibleSpeed(work, T float64) (speed float64, idx int, ok bool) {
	if work < 0 || T <= 0 {
		return 0, -1, false
	}
	for i, s := range pl.Speeds {
		if work <= T*s*(1+1e-12) {
			return s, i, true
		}
	}
	return 0, -1, false
}

// CoreEnergy returns the energy consumed by one enrolled core over a period:
// the leakage term LeakPower*T plus the dynamic term (work/speed)*DynPower.
// idx must be a valid speed index.
func (pl *Platform) CoreEnergy(work, T float64, idx int) float64 {
	return pl.LeakPower*T + work/pl.Speeds[idx]*pl.DynPower[idx]
}

// CommEnergy returns the dynamic energy for moving volume GB across hops
// links.
func (pl *Platform) CommEnergy(volume float64, hops int) float64 {
	return volume * float64(hops) * pl.EnergyPerGB
}

// LinkCapacity returns the volume (GB) one directed link can carry within a
// period T.
func (pl *Platform) LinkCapacity(T float64) float64 { return pl.BW * T }
