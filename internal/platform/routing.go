package platform

import "fmt"

// XYPath returns the XY route from core a to core b: first along the row of a
// (horizontal links) to the column of b, then along that column (vertical
// links) to b. This is the routing used by the Random heuristic (Section 5.1)
// and, implicitly, by the communication accounting of DPA2D (Section 5.3:
// communications leave a column on the source row and are redistributed
// vertically in the destination column). The result is the ordered list of
// directed links; it is empty when a == b.
func (pl *Platform) XYPath(a, b Core) []Link {
	if !pl.InBounds(a) || !pl.InBounds(b) {
		panic(fmt.Sprintf("platform: XYPath out of bounds: %v -> %v", a, b))
	}
	var path []Link
	cur := a
	for cur.V != b.V {
		next := Core{cur.U, cur.V + 1}
		if b.V < cur.V {
			next = Core{cur.U, cur.V - 1}
		}
		path = append(path, Link{cur, next})
		cur = next
	}
	for cur.U != b.U {
		next := Core{cur.U + 1, cur.V}
		if b.U < cur.U {
			next = Core{cur.U - 1, cur.V}
		}
		path = append(path, Link{cur, next})
		cur = next
	}
	return path
}

// YXPath returns the YX route from core a to core b: first along the column
// of a (vertical links) to the row of b, then along that row (horizontal
// links) to b. It is the transpose of XYPath and is used by the transposed
// DPA2D variant, whose bands occupy grid rows instead of columns.
func (pl *Platform) YXPath(a, b Core) []Link {
	if !pl.InBounds(a) || !pl.InBounds(b) {
		panic(fmt.Sprintf("platform: YXPath out of bounds: %v -> %v", a, b))
	}
	var path []Link
	cur := a
	for cur.U != b.U {
		next := Core{cur.U + 1, cur.V}
		if b.U < cur.U {
			next = Core{cur.U - 1, cur.V}
		}
		path = append(path, Link{cur, next})
		cur = next
	}
	for cur.V != b.V {
		next := Core{cur.U, cur.V + 1}
		if b.V < cur.V {
			next = Core{cur.U, cur.V - 1}
		}
		path = append(path, Link{cur, next})
		cur = next
	}
	return path
}

// Manhattan returns the Manhattan distance between two cores, which is the
// number of links on any minimal route between them.
func Manhattan(a, b Core) int {
	return abs(a.U-b.U) + abs(a.V-b.V)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ValidatePath checks that path is a connected sequence of valid directed
// links from a to b, visiting no core twice (cycle-free, as required by the
// ILP's communication constraints).
func (pl *Platform) ValidatePath(a, b Core, path []Link) error {
	if a == b {
		if len(path) != 0 {
			return fmt.Errorf("platform: non-empty path between identical cores")
		}
		return nil
	}
	if len(path) == 0 {
		return fmt.Errorf("platform: empty path between distinct cores %v and %v", a, b)
	}
	visited := map[Core]bool{a: true}
	cur := a
	for i, l := range path {
		if l.From != cur {
			return fmt.Errorf("platform: path hop %d starts at %v, want %v", i, l.From, cur)
		}
		if !pl.Adjacent(l.From, l.To) {
			return fmt.Errorf("platform: path hop %d is not a grid link: %v", i, l)
		}
		if visited[l.To] {
			return fmt.Errorf("platform: path revisits core %v", l.To)
		}
		visited[l.To] = true
		cur = l.To
	}
	if cur != b {
		return fmt.Errorf("platform: path ends at %v, want %v", cur, b)
	}
	return nil
}
