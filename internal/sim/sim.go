// Package sim executes a mapped streaming workflow in steady state and
// measures its achieved period, latency and resource utilization. It
// validates the analytic cycle-time model of Section 3.4: the asymptotic
// inter-departure time of data sets equals the maximum resource cycle-time
// when the input is saturated, and the input period T otherwise.
//
// The simulation works at the granularity the DAG-partition rule guarantees
// to be schedulable: each core executes its whole cluster for one data set as
// one job (the cluster quotient graph is acyclic, so cluster-level jobs have
// well-defined dependencies), and every inter-core communication hops across
// its route one link at a time. Every resource (core or directed link)
// serves its jobs in data-set order (FIFO), which models a pipelined
// execution with unbounded inter-stage buffers.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Options controls a simulation run.
type Options struct {
	// DataSets is the number of data sets pushed through the pipeline.
	DataSets int
	// Saturated ignores the arrival period and makes every data set
	// available at time zero, which measures the intrinsic maximum
	// throughput of the mapping instead of the input-limited one.
	Saturated bool
}

// DefaultOptions simulates 256 data sets with periodic arrivals.
func DefaultOptions() Options { return Options{DataSets: 256} }

// Report is the outcome of a simulation.
type Report struct {
	// MeasuredPeriod is the steady-state inter-departure time at the sink,
	// measured over the second half of the run.
	MeasuredPeriod float64
	// AnalyticPeriod is the maximum resource cycle-time of the mapping (the
	// quantity the paper bounds by T).
	AnalyticPeriod float64
	// MeanLatency is the average sink-completion minus arrival time over the
	// second half of the run (cluster-granularity latency).
	MeanLatency float64
	// Makespan is the completion time of the last data set.
	Makespan float64
	// EnergyPerDataSet is the energy of one period per the Section 3.5 model.
	EnergyPerDataSet float64
	// CoreUtilization maps each active core to busy-time/makespan.
	CoreUtilization map[platform.Core]float64
	// LinkUtilization maps each used directed link to busy-time/makespan.
	LinkUtilization map[platform.Link]float64
	// MaxCoreQueue and MaxLinkQueue report the maximum backlog (jobs ready
	// but not yet started) per resource — the buffer requirement of the
	// mapping. The DAG-partition rule exists precisely to keep these bounded
	// by the elevation (Section 3.3); saturated inputs make them grow with
	// the data-set count instead.
	MaxCoreQueue map[platform.Core]int
	MaxLinkQueue map[platform.Link]int
	// DataSets echoes the number of simulated data sets.
	DataSets int
}

// job is one unit of service on one resource for one data set.
type job struct {
	resource int
	service  float64
	deps     []int // indices of prerequisite jobs within the same data set
	arrival  bool  // depends on the data-set arrival time
}

// Run simulates the mapped workflow. The mapping must be valid for (g, pl, T)
// — Run evaluates it first and returns the evaluation error otherwise.
func Run(g *spg.Graph, pl *platform.Platform, m *mapping.Mapping, T float64, opts Options) (*Report, error) {
	res, err := mapping.Evaluate(g, pl, m, T)
	if err != nil {
		return nil, err
	}
	if opts.DataSets <= 0 {
		return nil, errors.New("sim: DataSets must be positive")
	}

	// Resources: one per active core, one per used directed link.
	resourceID := make(map[interface{}]int)
	var resourceBusy []float64
	getRes := func(key interface{}) int {
		if id, ok := resourceID[key]; ok {
			return id
		}
		id := len(resourceBusy)
		resourceID[key] = id
		resourceBusy = append(resourceBusy, 0)
		return id
	}

	// Cluster jobs, in quotient-topological order.
	cores, byCore := m.Clusters(pl)
	clusterOf := make(map[platform.Core]int, len(cores))
	for idx, c := range cores {
		clusterOf[c] = idx
	}
	order, err := quotientTopoOrder(g, m, cores, clusterOf)
	if err != nil {
		return nil, err
	}

	jobs := make([]job, 0, len(cores)+4*g.M())
	clusterJob := make([]int, len(cores))
	// First pass: create cluster jobs in topological order so that hop jobs
	// can point at them.
	stageCluster := make([]int, g.N())
	for i, c := range m.Alloc {
		stageCluster[i] = clusterOf[c]
	}
	depsOf := make([][]int, len(cores))

	for _, ci := range order {
		c := cores[ci]
		var work float64
		for _, s := range byCore[c] {
			work += g.Stages[s].Weight
		}
		speed := pl.Speeds[m.SpeedOf(pl, c)]
		clusterJob[ci] = len(jobs)
		jobs = append(jobs, job{
			resource: getRes(c),
			service:  work / speed,
			arrival:  stageCluster[g.Source()] == ci,
		})
	}

	// Hop jobs per edge; the final hop feeds the destination cluster.
	for e, edge := range g.Edges {
		a, b := m.Alloc[edge.Src], m.Alloc[edge.Dst]
		if a == b {
			continue
		}
		path := m.PathFor(pl, e, a, b)
		prev := clusterJob[stageCluster[edge.Src]]
		service := edge.Volume / pl.BW
		for _, l := range path {
			id := len(jobs)
			jobs = append(jobs, job{
				resource: getRes(l),
				service:  service,
				deps:     []int{prev},
			})
			prev = id
		}
		depsOf[stageCluster[edge.Dst]] = append(depsOf[stageCluster[edge.Dst]], prev)
	}
	for ci, deps := range depsOf {
		j := clusterJob[ci]
		jobs[j].deps = append(jobs[j].deps, deps...)
	}

	// A processing order valid within one data set: cluster jobs were
	// created in quotient-topological order, but hop jobs were appended
	// afterwards; sort indices so dependencies precede dependents.
	procOrder, err := jobTopoOrder(jobs)
	if err != nil {
		return nil, err
	}

	sinkJob := clusterJob[stageCluster[g.Sink()]]
	avail := make([]float64, len(resourceBusy))
	finish := make([]float64, len(jobs))
	departures := make([]float64, opts.DataSets)
	latencies := make([]float64, opts.DataSets)

	// Waiting intervals [ready, start) per resource, for backlog analysis.
	type waitEvent struct {
		at    float64
		delta int
	}
	waits := make([][]waitEvent, len(resourceBusy))

	for d := 0; d < opts.DataSets; d++ {
		arrivalTime := float64(d) * T
		if opts.Saturated {
			arrivalTime = 0
		}
		for _, j := range procOrder {
			jb := &jobs[j]
			ready := 0.0
			if jb.arrival {
				ready = arrivalTime
			}
			for _, dep := range jb.deps {
				if finish[dep] > ready {
					ready = finish[dep]
				}
			}
			start := ready
			if avail[jb.resource] > start {
				start = avail[jb.resource]
			}
			if start > ready {
				waits[jb.resource] = append(waits[jb.resource],
					waitEvent{ready, +1}, waitEvent{start, -1})
			}
			finish[j] = start + jb.service
			avail[jb.resource] = finish[j]
			resourceBusy[jb.resource] += jb.service
		}
		departures[d] = finish[sinkJob]
		latencies[d] = finish[sinkJob] - arrivalTime
	}

	maxBacklog := make([]int, len(resourceBusy))
	for res, events := range waits {
		sort.Slice(events, func(a, b int) bool {
			if events[a].at != events[b].at {
				return events[a].at < events[b].at
			}
			return events[a].delta < events[b].delta // close before open at ties
		})
		depth, peak := 0, 0
		for _, ev := range events {
			depth += ev.delta
			if depth > peak {
				peak = depth
			}
		}
		maxBacklog[res] = peak
	}

	rep := &Report{
		AnalyticPeriod:   res.MaxCycleTime,
		EnergyPerDataSet: res.Energy,
		Makespan:         departures[opts.DataSets-1],
		DataSets:         opts.DataSets,
		CoreUtilization:  make(map[platform.Core]float64),
		LinkUtilization:  make(map[platform.Link]float64),
		MaxCoreQueue:     make(map[platform.Core]int),
		MaxLinkQueue:     make(map[platform.Link]int),
	}
	half := opts.DataSets / 2
	if half < 1 {
		half = 1
	}
	if opts.DataSets > 1 {
		rep.MeasuredPeriod = (departures[opts.DataSets-1] - departures[half-1]) /
			float64(opts.DataSets-half)
	} else {
		rep.MeasuredPeriod = departures[0]
	}
	var latSum float64
	for d := half - 1; d < opts.DataSets; d++ {
		latSum += latencies[d]
	}
	rep.MeanLatency = latSum / float64(opts.DataSets-half+1)

	if rep.Makespan > 0 {
		for key, id := range resourceID {
			util := resourceBusy[id] / rep.Makespan
			switch k := key.(type) {
			case platform.Core:
				rep.CoreUtilization[k] = util
				rep.MaxCoreQueue[k] = maxBacklog[id]
			case platform.Link:
				rep.LinkUtilization[k] = util
				rep.MaxLinkQueue[k] = maxBacklog[id]
			}
		}
	}
	return rep, nil
}

// quotientTopoOrder orders the clusters topologically; the mapping evaluator
// guarantees acyclicity for valid mappings.
func quotientTopoOrder(g *spg.Graph, m *mapping.Mapping, cores []platform.Core, clusterOf map[platform.Core]int) ([]int, error) {
	k := len(cores)
	adj := make(map[[2]int]bool)
	succ := make([][]int, k)
	indeg := make([]int, k)
	for _, e := range g.Edges {
		a, b := clusterOf[m.Alloc[e.Src]], clusterOf[m.Alloc[e.Dst]]
		if a == b || adj[[2]int{a, b}] {
			continue
		}
		adj[[2]int{a, b}] = true
		succ[a] = append(succ[a], b)
		indeg[b]++
	}
	var queue []int
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != k {
		return nil, fmt.Errorf("sim: cluster quotient graph is cyclic")
	}
	return order, nil
}

// jobTopoOrder orders job indices so that every dependency precedes its
// dependents.
func jobTopoOrder(jobs []job) ([]int, error) {
	n := len(jobs)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for j := range jobs {
		for _, d := range jobs[j].deps {
			succ[d] = append(succ[d], j)
			indeg[j]++
		}
	}
	var queue []int
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			queue = append(queue, j)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("sim: job graph is cyclic")
	}
	return order, nil
}
