package sim

import (
	"math"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func solve(t *testing.T, h core.Heuristic, inst core.Instance) *core.Solution {
	t.Helper()
	sol, err := h.Solve(inst)
	if err != nil {
		t.Fatalf("%s: %v", h.Name(), err)
	}
	return sol
}

func testChain(t *testing.T, k int, w, vol float64) *spg.Graph {
	t.Helper()
	ws := make([]float64, k)
	vs := make([]float64, k-1)
	for i := range ws {
		ws[i] = w
	}
	for i := range vs {
		vs[i] = vol
	}
	g, err := spg.Chain(ws, vs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSaturatedPeriodMatchesAnalytic: under saturation the measured
// steady-state period must converge to the maximum resource cycle-time.
func TestSaturatedPeriodMatchesAnalytic(t *testing.T) {
	g := testChain(t, 8, 0.03, 0.005)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solve(t, core.NewDPA1D(), inst)

	rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 400, Saturated: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.MeasuredPeriod-rep.AnalyticPeriod) / rep.AnalyticPeriod; rel > 1e-6 {
		t.Errorf("saturated period %.9g vs analytic %.9g (rel %.3g)",
			rep.MeasuredPeriod, rep.AnalyticPeriod, rel)
	}
}

// TestArrivalLimitedPeriodEqualsT: with periodic arrivals and a valid
// mapping (max cycle-time <= T), departures settle at exactly T.
func TestArrivalLimitedPeriodEqualsT(t *testing.T) {
	g := testChain(t, 6, 0.02, 0.002)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.05}
	sol := solve(t, core.NewGreedy(), inst)

	rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeasuredPeriod-inst.Period) > 1e-9 {
		t.Errorf("arrival-limited period %.9g, want T=%g", rep.MeasuredPeriod, inst.Period)
	}
	if rep.AnalyticPeriod > inst.Period*(1+1e-9) {
		t.Errorf("analytic period %.9g exceeds T", rep.AnalyticPeriod)
	}
}

// TestSaturatedPeriodAcrossHeuristics runs the property over every heuristic
// and a parallel-structure workload.
func TestSaturatedPeriodAcrossHeuristics(t *testing.T) {
	mid := []float64{0.03, 0.04, 0.02, 0.05}
	vol := []float64{0.002, 0.001, 0.003, 0.002}
	g, err := spg.ForkJoin(0.01, 0.01, mid, vol, vol)
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.06}
	for _, h := range core.All(9) {
		sol, err := h.Solve(inst)
		if err != nil {
			continue
		}
		rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 400, Saturated: true})
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if rel := math.Abs(rep.MeasuredPeriod-rep.AnalyticPeriod) / rep.AnalyticPeriod; rel > 1e-6 {
			t.Errorf("%s: measured %.9g vs analytic %.9g", h.Name(), rep.MeasuredPeriod, rep.AnalyticPeriod)
		}
	}
}

// TestLatencyAtLeastCriticalPath: the steady-state latency can never be
// smaller than the sum of service times along any source-to-sink path.
func TestLatencyAtLeastCriticalPath(t *testing.T) {
	g := testChain(t, 5, 0.04, 0.004)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solve(t, core.NewDPA1D(), inst)

	rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: total work at max speed (communications only add).
	lower := 5 * 0.04 / pl.MaxSpeed()
	if rep.MeanLatency < lower-1e-12 {
		t.Errorf("latency %.9g below physical lower bound %.9g", rep.MeanLatency, lower)
	}
}

// TestUtilizationBounds: utilizations are in (0, 1] and the bottleneck
// resource saturates under a saturated input.
func TestUtilizationBounds(t *testing.T) {
	g := testChain(t, 8, 0.03, 0.003)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.08}
	sol := solve(t, core.NewDPA1D(), inst)

	rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 500, Saturated: true})
	if err != nil {
		t.Fatal(err)
	}
	var maxUtil float64
	for c, u := range rep.CoreUtilization {
		if u <= 0 || u > 1+1e-9 {
			t.Errorf("core %v utilization %g out of range", c, u)
		}
		if u > maxUtil {
			maxUtil = u
		}
	}
	for l, u := range rep.LinkUtilization {
		if u < 0 || u > 1+1e-9 {
			t.Errorf("link %v utilization %g out of range", l, u)
		}
	}
	if maxUtil < 0.9 {
		t.Errorf("bottleneck utilization %g under saturation, expected near 1", maxUtil)
	}
}

// TestEnergyMatchesEvaluator: the per-data-set energy reported by the
// simulator is the evaluator's energy.
func TestEnergyMatchesEvaluator(t *testing.T) {
	g := testChain(t, 6, 0.02, 0.001)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solve(t, core.NewDPA2D1D(), inst)
	rep, err := Run(g, pl, sol.Mapping, inst.Period, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EnergyPerDataSet-sol.Energy()) > 1e-12 {
		t.Errorf("sim energy %.12g vs evaluator %.12g", rep.EnergyPerDataSet, sol.Energy())
	}
}

// TestRunRejectsInvalidMapping: the simulator refuses mappings that fail
// evaluation.
func TestRunRejectsInvalidMapping(t *testing.T) {
	g := testChain(t, 3, 0.5, 0.001)
	pl := platform.XScale(2, 2)
	m := mapping.New(3, pl)
	for i := range m.Alloc {
		m.Alloc[i] = platform.Core{U: 0, V: 0}
	}
	m.SetSpeed(pl, platform.Core{U: 0, V: 0}, 0)
	if _, err := Run(g, pl, m, 0.01, DefaultOptions()); err == nil {
		t.Error("invalid mapping accepted")
	}
}

// TestQueueDepthsBounded: with periodic arrivals and a valid mapping, no
// resource accumulates unbounded backlog — queues stay small (the pipeline
// keeps up). Under saturation the source-side backlog must grow with the
// data-set count instead.
func TestQueueDepthsBounded(t *testing.T) {
	g := testChain(t, 8, 0.03, 0.003)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.08}
	sol := solve(t, core.NewDPA1D(), inst)

	arr, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 300})
	if err != nil {
		t.Fatal(err)
	}
	for c, q := range arr.MaxCoreQueue {
		if q > 3 {
			t.Errorf("core %v backlog %d with periodic arrivals", c, q)
		}
	}
	sat, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 300, Saturated: true})
	if err != nil {
		t.Fatal(err)
	}
	maxQ := 0
	for _, q := range sat.MaxCoreQueue {
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ < 100 {
		t.Errorf("saturated bottleneck backlog %d, expected to scale with 300 data sets", maxQ)
	}
}

// TestSingleDataSet: a single data set measures pure latency; its period
// equals its completion time.
func TestSingleDataSet(t *testing.T) {
	g := testChain(t, 4, 0.02, 0.001)
	pl := platform.XScale(4, 4)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solve(t, core.NewDPA1D(), inst)
	rep, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredPeriod != rep.Makespan {
		t.Errorf("single data set: period %g != makespan %g", rep.MeasuredPeriod, rep.Makespan)
	}
	if rep.MeanLatency != rep.Makespan {
		t.Errorf("single data set: latency %g != makespan %g", rep.MeanLatency, rep.Makespan)
	}
}

// TestZeroDataSetsRejected covers the option validation.
func TestZeroDataSetsRejected(t *testing.T) {
	g := testChain(t, 3, 0.02, 0.001)
	pl := platform.XScale(2, 2)
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.1}
	sol := solve(t, core.NewDPA1D(), inst)
	if _, err := Run(g, pl, sol.Mapping, inst.Period, Options{DataSets: 0}); err == nil {
		t.Error("DataSets=0 accepted")
	}
}
