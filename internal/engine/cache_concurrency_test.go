package engine

import (
	"fmt"
	"sync"
	"testing"

	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// TestAnalysisCacheStatsKeysConcurrent exercises Stats(), Keys(), Len() and
// Purge() against a storm of concurrent Gets (some sharing keys, some
// evicting each other under a tight capacity), on both the count-bounded and
// byte-bounded configurations — the footprint walk in Stats takes per-entry
// locks outside the cache mutex, so this is the interleaving the race
// detector needs to see. Readers assert only invariants that hold at every
// point in time; the detector is the rest of the test.
func TestAnalysisCacheStatsKeysConcurrent(t *testing.T) {
	apps := []string{"DCT", "FFT", "Serpent", "Vocoder"}
	build := func(name string) func() (*spg.Analysis, error) {
		return func() (*spg.Analysis, error) {
			a, err := streamit.ByName(name)
			if err != nil {
				return nil, err
			}
			g, err := a.BaseGraph()
			if err != nil {
				return nil, err
			}
			return spg.NewAnalysis(g), nil
		}
	}
	configs := map[string]*AnalysisCache{
		"count-bounded": NewAnalysisCache(2), // smaller than the key set: constant eviction
		"byte-bounded":  NewAnalysisCacheBytes(0, 1),
	}
	for name, cache := range configs {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						app := apps[(w+i)%len(apps)]
						if _, err := cache.Get("streamit/"+app, build(app)); err != nil {
							t.Errorf("Get(%s): %v", app, err)
							return
						}
						if i%9 == 0 && w == 0 {
							cache.Purge()
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 120; i++ {
					s := cache.Stats()
					if s.Hits+s.Misses == 0 && i > 60 {
						continue // plausible only very early
					}
					if s.Entries < 0 || s.Bytes < 0 {
						t.Errorf("impossible stats snapshot: %+v", s)
						return
					}
					for _, k := range cache.Keys() {
						if k == "" {
							t.Error("empty key in Keys()")
							return
						}
					}
					_ = cache.Len()
				}
			}()
			wg.Wait()
			s := cache.Stats()
			if s.Hits+s.Misses == 0 {
				t.Fatalf("no traffic recorded: %+v", s)
			}
			for _, k := range cache.Keys() {
				if _, err := fmt.Sscanf(k, "streamit/%s", new(string)); err != nil {
					t.Fatalf("unexpected key %q", k)
				}
			}
		})
	}
}
