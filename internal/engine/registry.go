package engine

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerState is a worker's place in the registry's health machine:
//
//	healthy --failure--> suspect --DeadAfter consecutive failures--> dead
//	   ^                    |                                          |
//	   +---- any success ---+------------------------------------------+
//
// Healthy workers receive new chunks and own cache-affinity families.
// Suspect workers lose their affinity ownership but may still pull chunks —
// each pull either succeeds (instantly healthy again; this is how an
// unprobed per-request registry heals after a transient 429 or dropped
// connection) or pushes them toward dead. Dead workers receive nothing but
// keep being probed, so a worker that restarts on the same address rejoins
// without re-registering, and a worker that re-registers (POST /v1/workers)
// rejoins immediately.
type WorkerState int

const (
	WorkerHealthy WorkerState = iota
	WorkerSuspect
	WorkerDead
)

// String returns the wire spelling used by /v1/workers and /v1/healthz.
func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerSuspect:
		return "suspect"
	case WorkerDead:
		return "dead"
	default:
		return fmt.Sprintf("WorkerState(%d)", int(s))
	}
}

// MarshalText makes the state JSON-encode as its string form.
func (s WorkerState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the wire spelling back (clients decoding /v1/workers).
func (s *WorkerState) UnmarshalText(b []byte) error {
	switch string(b) {
	case "healthy":
		*s = WorkerHealthy
	case "suspect":
		*s = WorkerSuspect
	case "dead":
		*s = WorkerDead
	default:
		return fmt.Errorf("engine: unknown worker state %q", b)
	}
	return nil
}

// BreakerState is the circuit-breaker reading of a worker's health machine —
// the operator-facing vocabulary reported by /v1/workers and /v1/healthz:
//
//	closed    the circuit passes traffic: the worker (healthy or suspect)
//	          may receive chunks
//	open      the circuit is tripped: DeadAfter consecutive failures retired
//	          the worker from dispatch; only probes reach it
//	half-open an open breaker's trial probe is in flight — one success closes
//	          the circuit (full readmission), one failure re-opens it
//
// The breaker is derived, not stored: open <=> WorkerDead, half-open <=> a
// dead worker currently under probe, closed otherwise. Re-registration (POST
// /v1/workers) closes an open breaker immediately — the worker itself is the
// most authoritative probe there is.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the wire spelling used by /v1/workers and /v1/healthz.
func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(b))
	}
}

// MarshalText makes the state JSON-encode as its string form.
func (b BreakerState) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// UnmarshalText parses the wire spelling back (clients decoding /v1/workers).
func (b *BreakerState) UnmarshalText(data []byte) error {
	switch string(data) {
	case "closed":
		*b = BreakerClosed
	case "open":
		*b = BreakerOpen
	case "half-open":
		*b = BreakerHalfOpen
	default:
		return fmt.Errorf("engine: unknown breaker state %q", data)
	}
	return nil
}

// WorkerInfo is one worker's point-in-time registry snapshot.
type WorkerInfo struct {
	URL   string      `json:"url"`
	State WorkerState `json:"state"`
	// Breaker is the circuit-breaker reading of State (see BreakerState).
	Breaker BreakerState `json:"breaker"`
	// Draining marks a worker that announced a graceful shutdown: it stays
	// in whatever health state it had (its probes still answer), but it is
	// ineligible for new chunks and affinity ownership until it re-registers
	// or deregisters.
	Draining bool `json:"draining,omitempty"`
	// ConsecutiveFailures counts probe/dispatch failures since the last
	// success; DeadAfter of them turn a suspect worker dead.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent probe or dispatch failure, cleared on
	// recovery.
	LastError string `json:"last_error,omitempty"`
}

// RegistryConfig parameterizes a WorkerRegistry; the zero value selects the
// defaults documented on each field.
type RegistryConfig struct {
	// ProbeInterval spaces the background health sweeps (default 5 s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one GET /v1/healthz probe (default 2 s).
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive failures turn a worker dead
	// (default 3). The first failure always turns a healthy worker suspect.
	DeadAfter int
	// Client issues the probes; nil selects http.DefaultClient.
	Client *http.Client
}

// WorkerRegistry tracks the worker processes of a mapping cluster: which
// exist (static seeds from -worker flags plus runtime self-registrations via
// POST /v1/workers), and which are currently usable (periodic health probes
// against each worker's /v1/healthz, plus dispatch outcomes reported by the
// Dispatcher). It is the membership half of the cluster scheduler: the
// Dispatcher consults Healthy() for every chunk placement, so workers leave
// the rotation within one failed request and rejoin within one probe
// interval of recovering.
type WorkerRegistry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	workers map[string]*workerEntry // guarded by mu
	stop    chan struct{}           // guarded by mu; non-nil while the probe loop runs
}

type workerEntry struct {
	url      string
	state    WorkerState
	failures int
	lastErr  string
	// probing marks a health probe currently in flight against this worker;
	// on a dead worker that probe is the breaker's half-open trial.
	probing bool
	// draining marks a worker that announced a graceful shutdown (see
	// WorkerInfo.Draining).
	draining bool
}

// breaker derives the circuit-breaker reading of the entry's state.
func (e *workerEntry) breaker() BreakerState {
	switch {
	case e.state == WorkerDead && e.probing:
		return BreakerHalfOpen
	case e.state == WorkerDead:
		return BreakerOpen
	default:
		return BreakerClosed
	}
}

// NewWorkerRegistry returns a registry holding the given seed workers, all
// initially healthy (they were configured deliberately; the probe loop
// demotes unreachable ones within DeadAfter sweeps). Probing does not start
// until Start is called — a registry without a probe loop still tracks
// dispatch-reported failures, which is how per-request ephemeral clusters
// use it.
func NewWorkerRegistry(cfg RegistryConfig, seeds ...string) *WorkerRegistry {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	r := &WorkerRegistry{cfg: cfg, workers: make(map[string]*workerEntry)}
	for _, u := range seeds {
		_ = r.Register(u)
	}
	return r
}

// workerKey normalizes a worker URL to its registry identity (scheme, host
// and path; query/fragment dropped), so Register and Deregister agree on the
// key whatever spelling the caller used.
func workerKey(rawURL string) (string, error) {
	u, err := url.Parse(strings.TrimRight(rawURL, "/"))
	if err != nil {
		return "", fmt.Errorf("engine: worker URL %q: %w", rawURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("engine: worker URL %q is not absolute http(s)", rawURL)
	}
	return u.Scheme + "://" + u.Host + u.Path, nil
}

// Register adds a worker (or re-announces an existing one). A new or dead
// worker turns healthy — registration is the worker saying "I am up", which
// is how a restarted worker rejoins ahead of the next probe — while a
// suspect worker keeps its state for the probe loop to settle (a worker that
// can reach the coordinator is not necessarily reachable from it).
// Registration is idempotent; the URL must parse as absolute http(s).
func (r *WorkerRegistry) Register(rawURL string) error {
	key, err := workerKey(rawURL)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[key]
	if e == nil {
		r.workers[key] = &workerEntry{url: key, state: WorkerHealthy}
		return nil
	}
	if e.state == WorkerDead {
		e.state = WorkerHealthy
		e.failures = 0
		e.lastErr = ""
	}
	// Registration also says "I am serving": a worker that drained and came
	// back (or aborted its drain) rejoins the rotation.
	e.draining = false
	return nil
}

// MarkDraining flags (or unflags) a worker as draining: it keeps its health
// state and keeps answering probes, but Healthy() — and with it affinity
// ownership and new chunk placement — excludes it until it re-registers or
// deregisters. Reports whether the worker is registered.
func (r *WorkerRegistry) MarkDraining(rawURL string, draining bool) bool {
	key, err := workerKey(rawURL)
	if err != nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[key]
	if e == nil {
		return false
	}
	e.draining = draining
	return true
}

// Deregister removes a worker (matched under the same normalization as
// Register); reports whether it was registered.
func (r *WorkerRegistry) Deregister(rawURL string) bool {
	key, err := workerKey(rawURL)
	if err != nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[key]; !ok {
		return false
	}
	delete(r.workers, key)
	return true
}

// IsDraining reports whether the worker is currently marked draining.
func (r *WorkerRegistry) IsDraining(url string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[url]
	return e != nil && e.draining
}

// State returns a worker's current state and whether it is registered.
func (r *WorkerRegistry) State(url string) (WorkerState, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[url]
	if e == nil {
		return 0, false
	}
	return e.state, true
}

// Len returns the number of registered workers in any state.
func (r *WorkerRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// Healthy returns the URLs of the workers currently eligible for new chunks,
// sorted for deterministic rendezvous routing.
func (r *WorkerRegistry) Healthy() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, e := range r.workers {
		if e.state == WorkerHealthy && !e.draining {
			out = append(out, e.url)
		}
	}
	sort.Strings(out)
	return out
}

// URLs returns every registered worker URL regardless of state, sorted.
func (r *WorkerRegistry) URLs() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for u := range r.workers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Workers returns a snapshot of every worker, sorted by URL.
func (r *WorkerRegistry) Workers() []WorkerInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, e := range r.workers {
		out = append(out, WorkerInfo{
			URL:                 e.url,
			State:               e.state,
			Breaker:             e.breaker(),
			Draining:            e.draining,
			ConsecutiveFailures: e.failures,
			LastError:           e.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// ReportSuccess records a successful probe or chunk dispatch: the worker is
// healthy again from any state.
func (r *WorkerRegistry) ReportSuccess(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[url]; e != nil {
		e.state = WorkerHealthy
		e.failures = 0
		e.lastErr = ""
	}
}

// ReportFailure records a failed probe or chunk dispatch: a healthy worker
// turns suspect immediately, and DeadAfter consecutive failures turn it
// dead. Both still get probed, so recovery is always one success away.
func (r *WorkerRegistry) ReportFailure(url string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[url]
	if e == nil {
		return
	}
	e.failures++
	if err != nil {
		e.lastErr = err.Error()
	}
	if e.state == WorkerHealthy {
		e.state = WorkerSuspect
	}
	if e.failures >= r.cfg.DeadAfter {
		e.state = WorkerDead
	}
}

// Probe runs one health sweep: every registered worker's /v1/healthz is
// fetched concurrently under ProbeTimeout and the outcome reported. While a
// dead worker's probe is in flight its breaker reads half-open — the trial
// request that decides between readmission (success closes the breaker) and
// staying retired (failure re-opens it). Exported so tests (and operators
// embedding the registry) can force a deterministic sweep without waiting for
// the probe loop.
func (r *WorkerRegistry) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, u := range r.URLs() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.setProbing(u, true)
			err := r.probeOne(ctx, u)
			if err != nil {
				r.ReportFailure(u, err)
			} else {
				r.ReportSuccess(u)
			}
			r.setProbing(u, false)
		}()
	}
	wg.Wait()
}

// setProbing flags a probe in flight against the worker (the half-open window
// of an open breaker).
func (r *WorkerRegistry) setProbing(url string, probing bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[url]; e != nil {
		e.probing = probing
	}
}

func (r *WorkerRegistry) probeOne(ctx context.Context, worker string) error {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe answered %s", resp.Status)
	}
	return nil
}

// Start launches the background probe loop (one sweep every ProbeInterval).
// Idempotent; stop it with Stop. Registries that are never started still
// work — they just learn about failures only from dispatch outcomes.
func (r *WorkerRegistry) Start() {
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	r.stop = stop
	r.mu.Unlock()
	go func() {
		ticker := time.NewTicker(r.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				//spglint:ignore ctxflow probes are registry-lifecycle, not request-scoped; the loop is stopped via Stop
				r.Probe(context.Background())
			}
		}
	}()
}

// Stop halts the probe loop started by Start. Idempotent.
func (r *WorkerRegistry) Stop() {
	r.mu.Lock()
	stop := r.stop
	r.stop = nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}
