package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/spg"
)

func storedResult(index int, key string, energy float64) CellResult {
	return CellResult{
		Index:    index,
		Key:      key,
		Feasible: true,
		Result: InstanceResult{
			Period:   1,
			Outcomes: []Outcome{{Heuristic: "H", OK: true, Energy: energy, ActiveCores: 2}},
		},
	}
}

func TestResultStoreRoundTrip(t *testing.T) {
	st := NewResultStore(4, 0)
	if _, ok := st.Get("k"); ok {
		t.Fatal("empty store hit")
	}
	put := storedResult(7, "cell-key", 42.5)
	st.Put("k", put)
	got, ok := st.Get("k")
	if !ok {
		t.Fatal("stored key missed")
	}
	// Addressing is stripped: the caller stamps Index/Key from the
	// requesting cell.
	if got.Index != 0 || got.Key != "" {
		t.Fatalf("stored result carries addressing: index=%d key=%q", got.Index, got.Key)
	}
	got.Index, got.Key = put.Index, put.Key
	g, _ := json.Marshal(got.Wire())
	w, _ := json.Marshal(put.Wire())
	if string(g) != string(w) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", g, w)
	}
	// Copies are fresh: mutating one hit must not leak into the next.
	got.Result.Outcomes[0].Energy = -1
	again, _ := st.Get("k")
	if again.Result.Outcomes[0].Energy != 42.5 {
		t.Fatal("stored entry aliased a caller's mutation")
	}
}

func TestResultStoreDisabledAndErrors(t *testing.T) {
	for _, st := range []*ResultStore{nil, NewResultStore(0, 0)} {
		if st.Enabled() {
			t.Fatal("store should be disabled")
		}
		st.Put("k", storedResult(0, "x", 1))
		if _, ok := st.Get("k"); ok {
			t.Fatal("disabled store served a hit")
		}
		if st.Len() != 0 {
			t.Fatal("disabled store retained an entry")
		}
	}
	st := NewResultStore(4, 0)
	st.Put("", storedResult(0, "x", 1)) // empty key opts out
	st.Put("bad", CellResult{Err: fmt.Errorf("build failed")})
	if st.Len() != 0 {
		t.Fatalf("unstorable results were retained: %d entries", st.Len())
	}
}

func TestResultStoreLRUEviction(t *testing.T) {
	st := NewResultStore(2, 0)
	st.Put("a", storedResult(0, "a", 1))
	st.Put("b", storedResult(1, "b", 2))
	if _, ok := st.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missed")
	}
	st.Put("c", storedResult(2, "c", 3))
	if _, ok := st.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	s := st.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", s)
	}
}

func TestResultStoreByteBound(t *testing.T) {
	probe, _ := json.Marshal(WireStoredResult{Feasible: true, Result: storedResult(0, "", 1).Result})
	entry := int64(len(probe))
	st := NewResultStore(0, 2*entry) // room for two entries, not three
	st.Put("a", storedResult(0, "a", 1))
	st.Put("b", storedResult(1, "b", 1))
	st.Put("c", storedResult(2, "c", 1))
	s := st.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("byte bound not enforced: %+v", s)
	}
	if s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d over bound %d", s.Bytes, s.MaxBytes)
	}
	// Replacing an entry adjusts the account instead of double-counting.
	st.Put("b", storedResult(1, "b", 2))
	if got := st.Stats().Bytes; got > s.MaxBytes {
		t.Fatalf("replace leaked bytes: %d", got)
	}
}

// TestResultStoreConcurrent hammers Get/Put/Stats/Len from many goroutines
// under a small bound so eviction runs constantly; the race detector is the
// assertion.
func TestResultStoreConcurrent(t *testing.T) {
	st := NewResultStore(8, 4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%16)
				if r, ok := st.Get(key); ok {
					if !r.Feasible || len(r.Result.Outcomes) != 1 {
						t.Errorf("torn read: %+v", r)
						return
					}
				} else {
					st.Put(key, storedResult(i, key, float64(i)))
				}
				if i%17 == 0 {
					_ = st.Stats()
					_ = st.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	s := st.Stats()
	if s.Entries > 8 {
		t.Fatalf("capacity exceeded at rest: %+v", s)
	}
}

// TestRunWithStore: the store path must be invisible in the results — cold
// (populating) and warm (serving) runs are bit-identical to a store-free
// run, hits never reach the executor, and every completed solve lands in
// the store.
func TestRunWithStore(t *testing.T) {
	cells := testCells(t)
	want, err := Run(context.Background(), &PoolExecutor{Workers: 2}, Campaign{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	st := NewResultStore(64, 0)
	cold, err := Run(context.Background(), &PoolExecutor{Workers: 2}, Campaign{Cells: cells, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "cold", cold, want)
	if st.Len() != len(cells) {
		t.Fatalf("cold run stored %d of %d cells", st.Len(), len(cells))
	}
	var executed atomic.Int64
	counting := &countingExecutor{n: &executed}
	warm, err := Run(context.Background(), counting, Campaign{Cells: cells, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "warm", warm, want)
	if executed.Load() != 0 {
		t.Fatalf("warm run executed %d cells; all %d should have been store hits", executed.Load(), len(cells))
	}
	s := st.Stats()
	if s.Hits != uint64(len(cells)) {
		t.Fatalf("warm run recorded %d hits, want %d", s.Hits, len(cells))
	}
	// A partial warm run: evict-free store with one novel cell appended —
	// only the novel cell executes, and indexes stay absolute.
	extra := append(append([]Cell{}, cells...), CellSpec{
		Key:      "novel",
		CacheKey: "streamit/Serpent",
		Workload: WorkloadSpec{StreamIt: "Serpent"},
		ScaleCCR: true,
		CCR:      1,
		P:        2,
		Q:        2,
		Opts:     core.Options{Seed: 99, DPA1DMaxStates: 60_000},
	}.Cell())
	mixed, err := Run(context.Background(), &PoolExecutor{Workers: 2}, Campaign{Cells: extra, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "mixed-prefix", mixed[:len(cells)], want)
	last := mixed[len(cells)]
	if last.Index != len(cells) || last.Key != "novel" || last.Err != nil {
		t.Fatalf("novel cell misrecorded: %+v", last)
	}
}

// countingExecutor counts the cells the executor actually ran.
type countingExecutor struct{ n *atomic.Int64 }

func (e *countingExecutor) Execute(ctx context.Context, n int, fn func(int)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.n.Add(1)
		fn(i)
	}
	return nil
}

// TestRunStoreSkipsBuildCells: closure-backed cells have no wire identity,
// so they must bypass the store entirely — solved every run, never stored.
func TestRunStoreSkipsBuildCells(t *testing.T) {
	cells := testCells(t)
	spec := cells[0].Spec
	built := 0
	cells[0].Build = func() (*spg.Analysis, error) { built++; return spec.Workload.Build() }
	st := NewResultStore(64, 0)
	for run := 0; run < 2; run++ {
		if _, err := Run(context.Background(), &PoolExecutor{Workers: 1}, Campaign{Cells: cells, Store: st}); err != nil {
			t.Fatal(err)
		}
	}
	if built != 2 {
		t.Fatalf("Build cell built %d times, want 2 (one per run)", built)
	}
	if st.Len() != len(cells)-1 {
		t.Fatalf("store holds %d entries; the Build cell must not be one of %d", st.Len(), len(cells))
	}
}
