// Package engine decomposes the paper's evaluation campaigns into
// deterministic, individually-addressable cells and executes them through a
// pluggable Executor, folding results with order-independent reducers so an
// engine-run campaign is bit-identical to the legacy monolithic loops it
// replaced (see the equivalence tests in internal/experiments).
//
// A cell is one (workload identity x CCR x platform x solver options) point:
// solving it runs the Section 6.1.3 period-selection protocol over all five
// heuristics, so every (app, CCR, period division, heuristic) outcome of the
// paper's figures is addressable as (cell key, period, heuristic) in the
// cell's result. Cells are self-contained — a declarative, JSON-serializable
// CellSpec from which the workload registry regenerates the seeded instance —
// which is what lets an executor place them anywhere: the in-process
// PoolExecutor, or the ShardExecutor, which ships spec ranges to remote
// worker processes over HTTP/JSON and reassembles their wire results,
// bit-identical to a local run at any shard count (cells are deterministic,
// so retries after worker failures are safe).
//
// The engine threads the campaign-scope AnalysisCache through the executor:
// cells sharing a workload family (the CCR variants of one application)
// resolve one base analysis and derive their variants as scale-family
// members, exactly as the pre-engine campaign path did. When the campaign
// layer is disabled the engine still shares family bases within the run —
// scale-family sharing is intrinsic to a campaign, not a caching policy —
// through a private per-run resolver that retains only keys used by more
// than one cell.
package engine

import (
	"context"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Cell is one deterministic, individually-addressable unit of campaign work:
// a declarative CellSpec, optionally overridden by a builder closure. The
// spec alone describes the work — workload identity, CCR, grid, period
// divisions, heuristic options — and the workload registry rebuilds the
// seeded instance from it, so a spec-only cell can be re-executed anywhere
// (any process, any number of times) with bit-identical results; that is the
// property the ShardExecutor ships over the wire. The closure path remains
// for cells whose workload cannot be named declaratively (tests, ad-hoc
// graphs): Build, when set, replaces the registry synthesis and is required
// to be a pure function of the cell's identity, but pins the cell to this
// process.
type Cell struct {
	// Spec is the cell's declarative identity and wire form.
	Spec CellSpec
	// Build, when non-nil, overrides the registry synthesis of the family-
	// base analysis (the legacy closure path). Cells with a Build are not
	// wire-codable: a shard run executes them locally.
	Build func() (*spg.Analysis, error)
}

// WireCodable reports whether the cell can be shipped to a remote worker as
// its spec alone.
func (c Cell) WireCodable() bool { return c.Build == nil }

// build synthesizes the family-base analysis: the closure override when set,
// the workload registry otherwise.
func (c Cell) build() (*spg.Analysis, error) {
	if c.Build != nil {
		return c.Build()
	}
	return c.Spec.Workload.Build()
}

// CellResult is one solved cell. Err is a workload build failure; Feasible
// is the period protocol's verdict (false when every heuristic fails at 1 s).
type CellResult struct {
	Index    int            `json:"index"`
	Key      string         `json:"key"`
	Feasible bool           `json:"feasible"`
	Result   InstanceResult `json:"result"`
	Err      error          `json:"-"`
}

// Campaign is a batch of cells plus the shared resources of their run.
type Campaign struct {
	Cells []Cell
	// Cache is the campaign-scope analysis cache threaded through the
	// executor. nil or disabled keeps family sharing within this run only
	// (see the package comment).
	Cache *AnalysisCache
	// OnCell, when set, observes every completed cell (called from executor
	// goroutines, possibly concurrently; results arrive in completion order,
	// not index order). Progress reporting for the mapping service.
	OnCell func(CellResult)
	// Store is the content-addressed cell-outcome store consulted before any
	// cell reaches the executor and populated as cells complete: a stored
	// outcome is served in place of a re-solve (byte-identical, by per-cell
	// determinism), so only the genuinely novel cells are dispatched. nil or
	// disabled solves every cell. Cells with a Build override are not
	// content-addressable and always solve (see Run).
	Store *ResultStore
}

// Run executes every cell of the campaign through ex (nil selects an
// in-process PoolExecutor at GOMAXPROCS) and returns the results indexed by
// cell, so any fold over them is deterministic and order-independent
// regardless of worker count or completion order. A CampaignExecutor (the
// ShardExecutor) receives the cells themselves so it can ship their specs to
// remote workers; a plain Executor receives the index space. On context
// cancellation the indexed slice is returned alongside the context error
// with the unstarted cells zero-valued (Key empty).
//
// With an enabled Campaign.Store, every wire-codable cell is first looked up
// by its canonical content hash: hits are recorded immediately (OnCell fires
// as usual) and never reach the executor, and the misses that do run
// populate the store on completion. Cells with a Build override — whose work
// a spec cannot describe — and cells whose spec fails to hash bypass the
// store entirely and always solve.
func Run(ctx context.Context, ex Executor, c Campaign) ([]CellResult, error) {
	if ctx == nil {
		//spglint:ignore ctxflow nil-ctx compatibility default for library callers; request paths always pass a real context
		ctx = context.Background()
	}
	if ex == nil {
		ex = &PoolExecutor{}
	}
	results := make([]CellResult, len(c.Cells))
	record := func(r CellResult) {
		if r.Index >= 0 && r.Index < len(results) {
			results[r.Index] = r
		}
		if c.OnCell != nil {
			c.OnCell(r)
		}
	}
	// The executor sees only the store misses, at sub-campaign indexes;
	// missIdx maps them back to absolute cell indexes and missKey remembers
	// each runnable cell's content hash ("" = not storable) for the Put on
	// completion. With the store disabled the sub-campaign is the campaign.
	run := c.Cells
	var (
		missIdx []int
		missKey []string
	)
	if c.Store.enabled() {
		run = nil
		missIdx = make([]int, 0, len(c.Cells))
		missKey = make([]string, 0, len(c.Cells))
		for i, cell := range c.Cells {
			key := ""
			if cell.WireCodable() {
				if k, err := cell.Spec.ContentKey(); err == nil {
					key = k
					if r, ok := c.Store.Get(k); ok {
						r.Index = i
						r.Key = cell.Spec.Key
						record(r)
						continue
					}
				}
			}
			run = append(run, cell)
			missIdx = append(missIdx, i)
			missKey = append(missKey, key)
		}
		if len(run) == 0 {
			return results, ctx.Err()
		}
	}
	resolve := newResolver(run, c.Cache)
	solve := func(i int) CellResult { return solveCell(i, run[i], resolve) }
	rec := record
	if missIdx != nil {
		rec = func(r CellResult) {
			if r.Index >= 0 && r.Index < len(missIdx) {
				if key := missKey[r.Index]; key != "" {
					c.Store.Put(key, r)
				}
				r.Index = missIdx[r.Index]
			}
			record(r)
		}
	}
	if ce, ok := ex.(CampaignExecutor); ok {
		return results, ce.ExecuteCampaign(ctx, run, solve, rec)
	}
	if se, ok := ex.(ScratchExecutor); ok {
		// Worker-owned arenas: each pool worker keeps one Scratch for its
		// lifetime and the executor resets it between cells, so a warmed
		// worker solves cells without kernel allocations. Results are
		// identical to the plain path (Scratch's determinism contract).
		err := se.ExecuteScratch(ctx, len(run), func(i int, sc *core.Scratch) {
			rec(solveCellScratch(i, run[i], resolve, sc))
		})
		return results, err
	}
	err := ex.Execute(ctx, len(run), func(i int) { rec(solve(i)) })
	return results, err
}

// Solve executes one cell against the given cache — the single-workload
// entry point the mapping service's /v1/map handler shares with campaign
// runs.
func Solve(cell Cell, cache *AnalysisCache) CellResult {
	return solveCell(0, cell, func(c Cell) (*spg.Analysis, error) {
		return cache.Get(c.Spec.CacheKey, c.build)
	})
}

// solveCell solves one cell with a borrowed arena from the package scratch
// pool — the path for executors without worker-owned arenas (remote shards,
// custom executors, single-cell Solve calls).
func solveCell(i int, cell Cell, resolve func(Cell) (*spg.Analysis, error)) CellResult {
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	return solveCellScratch(i, cell, resolve, sc)
}

// solveCellScratch solves one cell with the caller-owned arena sc; the caller
// resets sc afterwards (nothing arena-backed survives in the CellResult —
// outcomes carry scalars and wire-form copies only).
func solveCellScratch(i int, cell Cell, resolve func(Cell) (*spg.Analysis, error), sc *core.Scratch) CellResult {
	r := CellResult{Index: i, Key: cell.Spec.Key}
	an, err := resolve(cell)
	if err != nil {
		r.Err = err
		return r
	}
	if cell.Spec.ScaleCCR {
		an = an.ScaleToCCR(cell.Spec.CCR)
	}
	pl := platform.XScale(cell.Spec.P, cell.Spec.Q)
	r.Result, r.Feasible = selectPeriodDivisionsScratch(an, pl, cell.Spec.Opts, cell.Spec.maxDivisions(), sc)
	return r
}

// newResolver chooses how cells obtain their family-base analyses. With an
// enabled campaign cache every cell consults it. Otherwise the campaign
// layer is off, but cells of one run that share a CacheKey still share the
// base — the pre-engine loops built each application's base once and derived
// the CCR variants from it, and the engine preserves that resource shape —
// through a private cache holding only the keys used by more than one cell
// (uniquely-keyed workloads, e.g. random-SPG cells, build directly and are
// not retained).
func newResolver(cells []Cell, cache *AnalysisCache) func(Cell) (*spg.Analysis, error) {
	if cache.enabled() {
		return func(c Cell) (*spg.Analysis, error) {
			return cache.Get(c.Spec.CacheKey, c.build)
		}
	}
	counts := make(map[string]int)
	for _, c := range cells {
		if c.Spec.CacheKey != "" {
			counts[c.Spec.CacheKey]++
		}
	}
	shared := 0
	for _, n := range counts {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		return func(c Cell) (*spg.Analysis, error) { return c.build() }
	}
	run := NewAnalysisCache(shared)
	return func(c Cell) (*spg.Analysis, error) {
		if counts[c.Spec.CacheKey] > 1 {
			return run.Get(c.Spec.CacheKey, c.build)
		}
		return c.build()
	}
}
