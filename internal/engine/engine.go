// Package engine decomposes the paper's evaluation campaigns into
// deterministic, individually-addressable cells and executes them through a
// pluggable Executor, folding results with order-independent reducers so an
// engine-run campaign is bit-identical to the legacy monolithic loops it
// replaced (see the equivalence tests in internal/experiments).
//
// A cell is one (workload identity x CCR x platform x solver options) point:
// solving it runs the Section 6.1.3 period-selection protocol over all five
// heuristics, so every (app, CCR, period division, heuristic) outcome of the
// paper's figures is addressable as (cell key, period, heuristic) in the
// cell's result. Cells are self-contained — a deterministic builder
// regenerates the workload from its identity — which is what lets an executor
// place them anywhere: the in-process PoolExecutor today, a distributed shard
// runner behind the same Executor interface tomorrow (the ROADMAP's scaling
// step; cache keys are already deterministic workload identities).
//
// The engine threads the campaign-scope AnalysisCache through the executor:
// cells sharing a workload family (the CCR variants of one application)
// resolve one base analysis and derive their variants as scale-family
// members, exactly as the pre-engine campaign path did. When the campaign
// layer is disabled the engine still shares family bases within the run —
// scale-family sharing is intrinsic to a campaign, not a caching policy —
// through a private per-run resolver that retains only keys used by more
// than one cell.
package engine

import (
	"context"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Cell is one deterministic, individually-addressable unit of campaign work:
// a workload identity plus the configuration of its solve. The zero-valued
// fields of two equal cells must describe the same work — Build is required
// to be a pure function of the cell's identity (seeded synthesis), so a cell
// can be re-executed anywhere, any number of times, with bit-identical
// results.
type Cell struct {
	// Key addresses the cell within its campaign (unique per campaign).
	Key string
	// CacheKey is the workload family identity consulted in the
	// AnalysisCache — the base (pre-CCR-scaling) analysis shared by every
	// cell of the family. Empty opts the cell out of analysis sharing.
	CacheKey string
	// Build deterministically synthesizes the family-base analysis.
	Build func() (*spg.Analysis, error)
	// ScaleCCR derives this cell's analysis as the CCR scale-family member
	// of the base; false solves the base as-is (random-SPG cells bake their
	// CCR into generation instead).
	ScaleCCR bool
	CCR      float64
	// P, Q select the CMP grid (the paper's XScale model).
	P, Q int
	// Opts configures the heuristic set; Opts.Seed drives the Random
	// heuristic of this cell.
	Opts core.Options
}

// CellResult is one solved cell. Err is a workload build failure; Feasible
// is the period protocol's verdict (false when every heuristic fails at 1 s).
type CellResult struct {
	Index    int            `json:"index"`
	Key      string         `json:"key"`
	Feasible bool           `json:"feasible"`
	Result   InstanceResult `json:"result"`
	Err      error          `json:"-"`
}

// Campaign is a batch of cells plus the shared resources of their run.
type Campaign struct {
	Cells []Cell
	// Cache is the campaign-scope analysis cache threaded through the
	// executor. nil or disabled keeps family sharing within this run only
	// (see the package comment).
	Cache *AnalysisCache
	// OnCell, when set, observes every completed cell (called from executor
	// goroutines, possibly concurrently; results arrive in completion order,
	// not index order). Progress reporting for the mapping service.
	OnCell func(CellResult)
}

// Run executes every cell of the campaign through ex (nil selects an
// in-process PoolExecutor at GOMAXPROCS) and returns the results indexed by
// cell, so any fold over them is deterministic and order-independent
// regardless of worker count or completion order. On context cancellation
// the indexed slice is returned alongside the context error with the
// unstarted cells zero-valued (Key empty).
func Run(ctx context.Context, ex Executor, c Campaign) ([]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ex == nil {
		ex = &PoolExecutor{}
	}
	resolve := newResolver(c.Cells, c.Cache)
	results := make([]CellResult, len(c.Cells))
	err := ex.Execute(ctx, len(c.Cells), func(i int) {
		results[i] = solveCell(i, c.Cells[i], resolve)
		if c.OnCell != nil {
			c.OnCell(results[i])
		}
	})
	return results, err
}

// Solve executes one cell against the given cache — the single-workload
// entry point the mapping service's /v1/map handler shares with campaign
// runs.
func Solve(cell Cell, cache *AnalysisCache) CellResult {
	return solveCell(0, cell, func(c Cell) (*spg.Analysis, error) {
		return cache.Get(c.CacheKey, c.Build)
	})
}

func solveCell(i int, cell Cell, resolve func(Cell) (*spg.Analysis, error)) CellResult {
	r := CellResult{Index: i, Key: cell.Key}
	an, err := resolve(cell)
	if err != nil {
		r.Err = err
		return r
	}
	if cell.ScaleCCR {
		an = an.ScaleToCCR(cell.CCR)
	}
	pl := platform.XScale(cell.P, cell.Q)
	r.Result, r.Feasible = SelectPeriod(an, pl, cell.Opts)
	return r
}

// newResolver chooses how cells obtain their family-base analyses. With an
// enabled campaign cache every cell consults it. Otherwise the campaign
// layer is off, but cells of one run that share a CacheKey still share the
// base — the pre-engine loops built each application's base once and derived
// the CCR variants from it, and the engine preserves that resource shape —
// through a private cache holding only the keys used by more than one cell
// (uniquely-keyed workloads, e.g. random-SPG cells, build directly and are
// not retained).
func newResolver(cells []Cell, cache *AnalysisCache) func(Cell) (*spg.Analysis, error) {
	if cache.enabled() {
		return func(c Cell) (*spg.Analysis, error) {
			return cache.Get(c.CacheKey, c.Build)
		}
	}
	counts := make(map[string]int)
	for _, c := range cells {
		if c.CacheKey != "" {
			counts[c.CacheKey]++
		}
	}
	shared := 0
	for _, n := range counts {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		return func(c Cell) (*spg.Analysis, error) { return c.Build() }
	}
	run := NewAnalysisCache(shared)
	return func(c Cell) (*spg.Analysis, error) {
		if counts[c.CacheKey] > 1 {
			return run.Get(c.CacheKey, c.Build)
		}
		return c.Build()
	}
}
