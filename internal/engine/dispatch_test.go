package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spgcmp/internal/core"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// clusterWorker is an in-process spgserve stand-in for dispatcher tests: it
// answers GET /v1/healthz (so the registry can probe it) and the shard
// protocol on POST /v1/cells/execute against its own cache, and can be
// flipped down (both endpoints fail), delayed per request, or set to go
// down automatically after its first served chunk.
type clusterWorker struct {
	srv   *httptest.Server
	cache *AnalysisCache

	mu            sync.Mutex
	down          bool
	delay         time.Duration
	downAfterOne  bool
	served        int
	servedByStart map[int]bool
}

func newClusterWorker(t *testing.T, cache *AnalysisCache) *clusterWorker {
	t.Helper()
	if cache == nil {
		cache = NewAnalysisCache(32)
	}
	cw := &clusterWorker{cache: cache}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		cw.mu.Lock()
		down := cw.down
		cw.mu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/cells/execute", func(w http.ResponseWriter, r *http.Request) {
		cw.mu.Lock()
		down, delay := cw.down, cw.delay
		cw.mu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		var req ExecuteCellsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := ExecuteSpecs(r.Context(), &PoolExecutor{}, req.Cells, cw.cache, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		cw.mu.Lock()
		cw.served++
		if cw.downAfterOne {
			cw.down = true
		}
		cw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(ExecuteCellsResponse{Results: results})
	})
	cw.srv = httptest.NewServer(mux)
	t.Cleanup(cw.srv.Close)
	return cw
}

func (cw *clusterWorker) URL() string { return cw.srv.URL }

func (cw *clusterWorker) setDown(v bool) {
	cw.mu.Lock()
	cw.down = v
	cw.mu.Unlock()
}

func (cw *clusterWorker) setDelay(d time.Duration) {
	cw.mu.Lock()
	cw.delay = d
	cw.mu.Unlock()
}

func (cw *clusterWorker) servedCount() int {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.served
}

// bigTestCells is a larger wire-codable campaign than testCells — four
// applications with four CCR variants each (sixteen cells, four workload
// families) — big enough for mid-campaign failure/rejoin choreography.
func bigTestCells(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, name := range []string{"DCT", "FFT", "Serpent", "FMRadio"} {
		a, err := streamit.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ccr := range []float64{a.CCR, 0.1, 1, 10} {
			cells = append(cells, CellSpec{
				Key:      fmt.Sprintf("%s/ccr=%g", a.Name, ccr),
				CacheKey: "streamit/" + a.Name,
				Workload: WorkloadSpec{StreamIt: a.Name},
				ScaleCCR: true,
				CCR:      ccr,
				P:        2,
				Q:        2,
				Opts:     core.Options{Seed: 90 + int64(len(cells)), DPA1DMaxStates: 60_000},
			}.Cell())
		}
	}
	return cells
}

// cellFamilies returns each cell's affinity family, in cell order.
func cellFamilies(t *testing.T, cells []Cell) []string {
	t.Helper()
	fams := make([]string, len(cells))
	for i, c := range cells {
		key, err := c.Spec.Workload.FamilyKey()
		if err != nil {
			t.Fatal(err)
		}
		fams[i] = key
	}
	return fams
}

// TestChunkCampaign: chunks are contiguous, exhaustive, never straddle a
// family boundary, and long family runs split into balanced pieces.
func TestChunkCampaign(t *testing.T) {
	cells := testCells(t) // 2 families x 2 cells
	fams := cellFamilies(t, cells)
	for _, size := range []int{1, 2, 3, 0, len(cells)} {
		chunks := chunkCampaign(cells, size)
		want := size
		if want <= 0 {
			want = DefaultChunkCells
		}
		next := 0
		for _, c := range chunks {
			if c.start != next || c.end <= c.start {
				t.Fatalf("size=%d: chunk [%d,%d) does not continue at %d", size, c.start, c.end, next)
			}
			if c.end-c.start > want {
				t.Fatalf("size=%d: chunk [%d,%d) oversized", size, c.start, c.end)
			}
			for i := c.start; i < c.end; i++ {
				if fams[i] != c.family {
					t.Fatalf("size=%d: chunk [%d,%d) labeled %q contains cell of family %q", size, c.start, c.end, c.family, fams[i])
				}
			}
			next = c.end
		}
		if next != len(cells) {
			t.Fatalf("size=%d: chunks end at %d of %d", size, next, len(cells))
		}
	}
	// A 4-cell family split at size 3 balances 2+2 rather than 3+1.
	four := bigTestCells(t)[:4]
	chunks := chunkCampaign(four, 3)
	if len(chunks) != 2 || chunks[0].end-chunks[0].start != 2 {
		t.Errorf("4-cell family at size 3 chunked %+v, want balanced halves", chunks)
	}
}

// TestDispatcherMatchesPool is the acceptance bar's engine half: dispatcher
// campaigns must be bit-identical to the PoolExecutor at every worker count
// and chunk size — 1, the default, and the whole range.
func TestDispatcherMatchesPool(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	workers := []*clusterWorker{
		newClusterWorker(t, cache), newClusterWorker(t, cache),
		newClusterWorker(t, cache), newClusterWorker(t, cache),
	}
	for _, nw := range []int{1, 2, 4} {
		for _, chunkSize := range []int{1, 0, len(cells)} {
			name := fmt.Sprintf("%dworkers/chunk=%d", nw, chunkSize)
			urls := make([]string, nw)
			for i := range urls {
				urls[i] = workers[i].URL()
			}
			d := &Dispatcher{
				Registry:   NewWorkerRegistry(RegistryConfig{}, urls...),
				ChunkCells: chunkSize,
			}
			got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			requireSameResults(t, name, got, want)
			st := d.Stats()
			if st.LocalFallbacks != 0 {
				t.Errorf("%s: %d local fallbacks with healthy workers", name, st.LocalFallbacks)
			}
			if st.RemoteChunks == 0 || st.Chunks != st.RemoteChunks {
				t.Errorf("%s: stats %+v, want all chunks remote", name, st)
			}
		}
	}
}

// TestDispatcherAffinity: with stealing effectively disabled, every workload
// family's cells land exclusively on its rendezvous owner — each worker's
// AnalysisCache holds exactly its assigned families and nothing else.
func TestDispatcherAffinity(t *testing.T) {
	cells := bigTestCells(t)
	refCache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: refCache})
	if err != nil {
		t.Fatal(err)
	}
	w1 := newClusterWorker(t, nil)
	w2 := newClusterWorker(t, nil)
	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{}, w1.URL(), w2.URL()),
		ChunkCells: 2,
		StealDelay: time.Hour, // healthy owners keep their chunks
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "affinity", got, want)
	st := d.Stats()
	if st.Steals != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("stats %+v, want zero steals and fallbacks", st)
	}

	healthy := d.Registry.Healthy()
	owned := map[string]map[string]bool{w1.URL(): {}, w2.URL(): {}}
	for _, fam := range cellFamilies(t, cells) {
		owned[rendezvousOwner(fam, healthy)][fam] = true
	}
	for _, w := range []*clusterWorker{w1, w2} {
		keys := w.cache.Keys()
		if len(keys) != len(owned[w.URL()]) {
			t.Errorf("worker %s cached %v, want exactly its %d assigned families %v",
				w.URL(), keys, len(owned[w.URL()]), owned[w.URL()])
			continue
		}
		for _, k := range keys {
			if !owned[w.URL()][k] {
				t.Errorf("worker %s cached foreign family %q", w.URL(), k)
			}
		}
	}
}

// TestDispatcherRedispatch: a dead worker's chunks are re-dispatched to the
// surviving worker — never to the local pool while a healthy worker remains
// — and the registry demotes the dead one.
func TestDispatcherRedispatch(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	good := newClusterWorker(t, cache)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{DeadAfter: 2}, good.URL(), dead.URL),
		ChunkCells: 1,
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "redispatch", got, want)
	st := d.Stats()
	if st.LocalFallbacks != 0 {
		t.Errorf("%d local fallbacks despite a healthy worker", st.LocalFallbacks)
	}
	if st.Redispatches == 0 {
		t.Error("dead worker's chunks were never re-dispatched")
	}
	if st.WorkerChunks[good.URL()] != int64(len(cells)) {
		t.Errorf("surviving worker served %d of %d chunks", st.WorkerChunks[good.URL()], len(cells))
	}
	if s := workerState(t, d.Registry, dead.URL); s == WorkerHealthy {
		t.Error("dead worker still marked healthy after failed dispatches")
	}
}

// TestDispatcherAllWorkersDead: with no healthy worker left, every chunk
// falls back to the local pool — still bit-identical.
func TestDispatcherAllWorkersDead(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	erroring := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(erroring.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	var fellBack int
	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{DeadAfter: 1}, erroring.URL, dead.URL),
		ChunkCells: 2,
		OnFallback: func(start, end int, err error) {
			if err == nil {
				t.Error("fallback observed without an error")
			}
			fellBack++
		},
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "all-dead", got, want)
	st := d.Stats()
	if st.LocalFallbacks == 0 || st.RemoteChunks != 0 {
		t.Errorf("stats %+v, want everything local", st)
	}
	if fellBack == 0 {
		t.Error("OnFallback never observed a chunk")
	}
}

// TestDispatcherSteal: an idle fast worker steals a slow worker's pending
// chunks, so the campaign finishes without local fallbacks and the fast
// worker serves most of it.
func TestDispatcherSteal(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	slow := newClusterWorker(t, cache)
	slow.setDelay(400 * time.Millisecond)
	fast := newClusterWorker(t, cache)

	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{}, slow.URL(), fast.URL()),
		ChunkCells: 1,
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "steal", got, want)
	st := d.Stats()
	if st.LocalFallbacks != 0 {
		t.Errorf("%d local fallbacks", st.LocalFallbacks)
	}
	if st.Steals == 0 {
		t.Error("no steals despite one slow worker")
	}
	if st.WorkerChunks[fast.URL()] < 2 {
		t.Errorf("fast worker served only %d chunks: %+v", st.WorkerChunks[fast.URL()], st)
	}
}

// TestDispatcherStealEWMAGate: the steal-benefit gate. With every owner
// known-fast (seeded service-time EWMAs far below the threshold's worth of
// backlog), idle workers must leave affinity intact — zero steals; with the
// gate sized normally and a slow owner, stealing proceeds as before. Either
// way results stay bit-identical to the pool run and the EWMAs surface in
// the stats snapshot.
func TestDispatcherStealEWMAGate(t *testing.T) {
	cells := bigTestCells(t)
	cache := NewAnalysisCache(32)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fast owners keep affinity", func(t *testing.T) {
		a := newClusterWorker(t, cache)
		b := newClusterWorker(t, cache)
		d := &Dispatcher{
			Registry:   NewWorkerRegistry(RegistryConfig{}, a.URL(), b.URL()),
			ChunkCells: 1,
			// An hour of required benefit: with any owner EWMA on record, no
			// realistic backlog clears the bar, so the gate must block every
			// steal outright.
			StealMinBenefit: time.Hour,
		}
		d.counters.mu.Lock()
		d.counters.ewma = map[string]float64{a.URL(): 1, b.URL(): 1}
		d.counters.mu.Unlock()
		got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "gated", got, want)
		st := d.Stats()
		if st.Steals != 0 {
			t.Errorf("gate on known-fast owners: %d steals, want 0", st.Steals)
		}
		if st.LocalFallbacks != 0 {
			t.Errorf("%d local fallbacks", st.LocalFallbacks)
		}
		if len(st.WorkerEWMAMillis) != 2 {
			t.Errorf("WorkerEWMAMillis has %d entries, want 2: %+v", len(st.WorkerEWMAMillis), st.WorkerEWMAMillis)
		}
		for url, ms := range st.WorkerEWMAMillis {
			if ms <= 0 {
				t.Errorf("EWMA for %s is %g ms, want > 0", url, ms)
			}
		}
	})

	t.Run("slow owner still stolen from", func(t *testing.T) {
		slow := newClusterWorker(t, cache)
		slow.setDelay(400 * time.Millisecond)
		fast := newClusterWorker(t, cache)
		d := &Dispatcher{
			Registry:   NewWorkerRegistry(RegistryConfig{}, slow.URL(), fast.URL()),
			ChunkCells: 1,
			// Default-sized gate, with the slow owner's sluggishness already
			// on record: backlog x 500ms clears 20ms immediately, so the
			// idle fast worker must still steal.
			StealMinBenefit: DefaultStealMinBenefit,
		}
		d.counters.mu.Lock()
		d.counters.ewma = map[string]float64{slow.URL(): 500}
		d.counters.mu.Unlock()
		got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "ungated", got, want)
		st := d.Stats()
		if st.Steals == 0 {
			t.Error("no steals despite a slow owner with a recorded EWMA")
		}
		if st.LocalFallbacks != 0 {
			t.Errorf("%d local fallbacks", st.LocalFallbacks)
		}
	})
}

// TestDispatcherSuspectRecovers: in a registry with no probe loop (the
// per-request workers path), a transient failure must not exile the worker
// or drain the campaign to local execution — the suspect worker keeps
// pulling, its next success heals it, and only the chunk it actually failed
// (which no other worker could take) falls back.
func TestDispatcherSuspectRecovers(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	flaky := newClusterWorker(t, cache)
	var failed atomic.Bool
	transient := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && failed.CompareAndSwap(false, true) {
			http.Error(w, "transient blip", http.StatusTooManyRequests)
			return
		}
		flaky.srv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(transient.Close)

	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{}, transient.URL), // never Started: no probes
		ChunkCells: 1,
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "suspect-recovers", got, want)
	st := d.Stats()
	if st.LocalFallbacks != 1 {
		t.Errorf("local fallbacks = %d, want exactly the one failed chunk (stats %+v)", st.LocalFallbacks, st)
	}
	if st.RemoteChunks != int64(len(cells)-1) {
		t.Errorf("remote chunks = %d, want %d served by the recovered worker", st.RemoteChunks, len(cells)-1)
	}
	if s, _ := d.Registry.State(transient.URL); s != WorkerHealthy {
		t.Errorf("worker state %v after successful dispatches, want healthy", s)
	}
}

// TestDispatcherRejoin: a worker that dies mid-campaign and comes back is
// demoted by the probe loop, its chunks re-dispatched to the survivor, and
// on recovery it rejoins the rotation and serves again — all without a
// single local fallback.
func TestDispatcherRejoin(t *testing.T) {
	cells := bigTestCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	flaky := newClusterWorker(t, cache)
	flaky.mu.Lock()
	flaky.downAfterOne = true // dies right after its first served chunk
	flaky.mu.Unlock()
	steady := newClusterWorker(t, cache)
	steady.setDelay(40 * time.Millisecond) // slow enough that rejoining matters

	reg := NewWorkerRegistry(RegistryConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DeadAfter:     2,
	}, flaky.URL(), steady.URL())
	reg.Start()
	t.Cleanup(reg.Stop)

	// Revive the flaky worker shortly after it goes down.
	done := make(chan struct{})
	defer close(done)
	go func() {
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				flaky.mu.Lock()
				if flaky.down {
					flaky.downAfterOne = false
					go func() {
						time.Sleep(80 * time.Millisecond)
						flaky.setDown(false)
					}()
					flaky.mu.Unlock()
					return
				}
				flaky.mu.Unlock()
			}
		}
	}()

	d := &Dispatcher{Registry: reg, ChunkCells: 1}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "rejoin", got, want)
	st := d.Stats()
	if st.LocalFallbacks != 0 {
		t.Errorf("%d local fallbacks despite a steady worker", st.LocalFallbacks)
	}
	if flaky.servedCount() < 2 {
		t.Errorf("flaky worker served %d chunks, want pre-death + post-rejoin service", flaky.servedCount())
	}
	if steady.servedCount() == 0 {
		t.Error("steady worker served nothing")
	}
}

// TestDispatcherLateRegistration: a worker registered while the campaign is
// already running gets a pull loop and serves chunks.
func TestDispatcherLateRegistration(t *testing.T) {
	cells := bigTestCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	slow := newClusterWorker(t, cache)
	slow.setDelay(50 * time.Millisecond)
	late := newClusterWorker(t, cache)

	reg := NewWorkerRegistry(RegistryConfig{}, slow.URL())
	go func() {
		time.Sleep(120 * time.Millisecond)
		_ = reg.Register(late.URL())
	}()
	d := &Dispatcher{Registry: reg, ChunkCells: 1}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "late-registration", got, want)
	if late.servedCount() == 0 {
		t.Error("late-registered worker never served a chunk")
	}
}

// TestDispatcherLocalPaths: closure-backed campaigns and empty registries
// run entirely on the local pool, and the plain Execute contract holds.
func TestDispatcherLocalPaths(t *testing.T) {
	cells := testCells(t)
	closure := Cell{
		Spec:  cells[0].Spec,
		Build: func() (*spg.Analysis, error) { return streamitBase(cells[0].Spec.Workload.StreamIt) },
	}
	mixed := append([]Cell{closure}, cells[1:]...)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	refuse := newClusterWorker(t, nil)
	d := &Dispatcher{Registry: NewWorkerRegistry(RegistryConfig{}, refuse.URL())}
	got, err := Run(context.Background(), d, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "closure-cells", got, want)
	if refuse.servedCount() != 0 {
		t.Error("closure-backed campaign was dispatched remotely")
	}

	noWorkers := &Dispatcher{Registry: NewWorkerRegistry(RegistryConfig{})}
	got, err = Run(context.Background(), noWorkers, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "empty-registry", got, want)

	nilRegistry := &Dispatcher{}
	got, err = Run(context.Background(), nilRegistry, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "nil-registry", got, want)

	ran := 0
	var mu sync.Mutex
	if err := nilRegistry.Execute(context.Background(), 7, func(i int) { mu.Lock(); ran++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if ran != 7 {
		t.Errorf("plain Execute ran %d of 7", ran)
	}
}

// TestDispatcherCancellation: cancelling the campaign context aborts
// in-flight chunks (the workers see their request contexts die), triggers no
// local fallbacks, and surfaces context.Canceled.
func TestDispatcherCancellation(t *testing.T) {
	cells := testCells(t)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	})
	mux.HandleFunc("POST /v1/cells/execute", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		once.Do(cancel) // first chunk to arrive kills the campaign
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	hung := httptest.NewServer(mux)
	t.Cleanup(func() { close(release); hung.Close() })

	d := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{}, hung.URL),
		ChunkCells: 1,
	}
	_, err := Run(ctx, d, Campaign{Cells: cells})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dispatcher run returned %v", err)
	}
	if st := d.Stats(); st.LocalFallbacks != 0 {
		t.Errorf("cancellation triggered %d local fallbacks", st.LocalFallbacks)
	}
}

// TestDispatcherTotals: per-campaign clones accumulate into the shared
// process-lifetime totals while keeping their own counters separate.
func TestDispatcherTotals(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	w := newClusterWorker(t, cache)
	totals := &DispatcherTotals{}
	proto := &Dispatcher{
		Registry:   NewWorkerRegistry(RegistryConfig{}, w.URL()),
		ChunkCells: 1,
		Totals:     totals,
	}
	first := proto.Clone()
	if _, err := Run(context.Background(), first, Campaign{Cells: cells, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	second := proto.Clone()
	if _, err := Run(context.Background(), second, Campaign{Cells: cells, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got := first.Stats().Chunks; got != int64(len(cells)) {
		t.Errorf("first campaign chunks = %d, want %d", got, len(cells))
	}
	if got := totals.Stats().Chunks; got != int64(2*len(cells)) {
		t.Errorf("totals chunks = %d, want %d", got, 2*len(cells))
	}
	if got := totals.Stats().WorkerChunks[w.URL()]; got != int64(2*len(cells)) {
		t.Errorf("totals attribute %d chunks to the worker, want %d", got, 2*len(cells))
	}
}
