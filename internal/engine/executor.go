package engine

import (
	"context"
	"runtime"
	"sync"
)

// Executor schedules the independent cells of a campaign run. Execute must
// call run(i) exactly once for every index in [0, n) that it starts, from any
// number of goroutines (run is safe for concurrent use), and returns once
// every started cell has finished. A cancelled context stops the executor
// from starting further cells; Execute then returns the context's error after
// draining the in-flight ones, leaving unstarted cells untouched.
//
// The interface is the distribution seam of the engine: the in-process
// PoolExecutor is the only implementation today, and a future shard runner
// distributing index ranges across machines implements the same contract —
// the cells themselves are self-contained (deterministic workload identities
// and builders), so where run(i) executes never affects the result.
type Executor interface {
	Execute(ctx context.Context, n int, run func(i int)) error
}

// PoolExecutor runs cells on an in-process worker pool.
type PoolExecutor struct {
	// Workers caps the number of concurrent cells; 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count (see the engine
	// determinism tests), so the knob trades memory for throughput only.
	Workers int
}

// Execute implements Executor.
func (p *PoolExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i)
		}
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
