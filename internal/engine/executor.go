package engine

import (
	"context"
	"runtime"
	"sync"

	"spgcmp/internal/core"
)

// Executor schedules the independent cells of a campaign run. Execute must
// call run(i) exactly once for every index in [0, n) that it starts, from any
// number of goroutines (run is safe for concurrent use), and returns once
// every started cell has finished. A cancelled context stops the executor
// from starting further cells; Execute then returns the context's error after
// draining the in-flight ones, leaving unstarted cells untouched.
//
// The interface is the distribution seam of the engine: the in-process
// PoolExecutor implements it directly, and the ShardExecutor implements the
// richer CampaignExecutor below — the cells themselves are self-contained
// (deterministic workload identities and builders), so where run(i) executes
// never affects the result.
type Executor interface {
	Execute(ctx context.Context, n int, run func(i int)) error
}

// CampaignExecutor is an Executor that schedules whole cells rather than an
// opaque index space — the distributed seam. engine.Run hands a
// CampaignExecutor the campaign's cells (so it can ship wire-codable specs
// to remote workers), a solve function executing cell i locally, and a
// record sink. The executor must deliver exactly one result per cell it
// starts — either record(solve(i)) computed locally or a remotely-computed
// CellResult carrying the cell's absolute index — and return once every
// started cell's result is recorded. record is safe for concurrent use. A
// cancelled context stops the executor from starting further cells;
// ExecuteCampaign then returns the context's error after draining in-flight
// work, leaving unstarted cells unrecorded.
type CampaignExecutor interface {
	Executor
	ExecuteCampaign(ctx context.Context, cells []Cell, solve func(i int) CellResult, record func(CellResult)) error
}

// ScratchExecutor is an Executor whose workers are long-lived enough to own a
// per-worker solver arena: ExecuteScratch is Execute with a core.Scratch
// threaded into each run call, owned by the calling worker for its lifetime
// and reset between cells (the executor performs the reset, so run must not
// let arena-backed memory outlive its return). engine.Run prefers this seam
// when the executor offers it; plain executors fall back to the package
// scratch pool. Scratch placement never affects results — the arenas only
// move allocations, Scratch's documented determinism contract.
type ScratchExecutor interface {
	Executor
	ExecuteScratch(ctx context.Context, n int, run func(i int, sc *core.Scratch)) error
}

// PoolExecutor runs cells on an in-process worker pool.
type PoolExecutor struct {
	// Workers caps the number of concurrent cells; 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count (see the engine
	// determinism tests), so the knob trades memory for throughput only.
	Workers int
}

// Execute implements Executor.
func (p *PoolExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i)
		}
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// ExecuteScratch implements ScratchExecutor: identical scheduling to Execute,
// with one arena per worker goroutine, reset after every cell.
func (p *PoolExecutor) ExecuteScratch(ctx context.Context, n int, run func(i int, sc *core.Scratch)) error {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := core.NewScratch()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i, sc)
			sc.Reset()
		}
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := core.NewScratch()
			for i := range next {
				run(i, sc)
				sc.Reset()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
