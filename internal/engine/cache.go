package engine

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"spgcmp/internal/spg"
)

// AnalysisCache is a bounded, workload-identity-keyed cache of shared graph
// analyses — the campaign-scope (third) layer of the solver-reuse
// architecture. The first layer is the per-instance spg.Analysis attached by
// core.NewInstance; the second is the scale family sharing one structural
// analysis across a workload's CCR variants; this layer carries whole
// analyses across campaign runs, so repeated sweeps over the same suite
// (the long-running mapping-service pattern) skip workload synthesis and
// analysis entirely.
//
// Keys identify workloads, not graphs: two requests with the same key must
// deterministically build the same graph (StreamIt synthesis and randspg
// generation are both seeded). Values are retained with least-recently-used
// eviction under two independent bounds — an entry count and, when
// configured, a byte account fed by spg.Analysis.MemoryFootprint (downset
// lattices dominate, and they grow as solvers run, so footprints are
// re-estimated on every hit). Entries still being built are exempt from
// eviction, so the bounds are transiently exceeded while many keys build
// concurrently. Concurrent Gets of the same key build the value once —
// waiters share the first builder's result — and builds of different keys
// never block each other.
//
// The nil cache and a cache with no positive bound both disable this layer:
// Get simply invokes build. Cached analyses may be consulted by several
// campaigns concurrently; every structure they hand out is either immutable
// or internally synchronized, and solvers proved bit-identical against
// cache-free runs (see the cache-equivalence tests).
type AnalysisCache struct {
	capacity int
	maxBytes int64

	hits, misses atomic.Uint64

	mu         sync.Mutex
	entries    map[string]*cacheEntry // guarded by mu
	lru        *list.List             // guarded by mu; front = most recently used; values are *cacheEntry
	totalBytes int64                  // guarded by mu; sum of entry footprints, tracked when maxBytes > 0
}

type cacheEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	an   *spg.Analysis
	err  error
	// done flips after a successful build; eviction skips in-flight entries
	// so a slow build is never raced by a duplicate rebuild of its key (the
	// cache transiently exceeds its bounds instead).
	done atomic.Bool
	// bytes is the entry's last recorded footprint, included in totalBytes.
	// Mutated and read only under the owning cache's mu (the entry itself
	// has no lock to hang a guarded-by annotation on).
	bytes int64
}

// NewAnalysisCache returns a cache retaining at most capacity workload
// analyses, with no byte bound. A capacity <= 0 disables caching: Get
// degenerates to calling build.
func NewAnalysisCache(capacity int) *AnalysisCache {
	return NewAnalysisCacheBytes(capacity, 0)
}

// NewAnalysisCacheBytes returns a cache bounded by both an entry count and a
// byte account: eviction runs while either configured bound is exceeded. A
// bound <= 0 is disabled; with both disabled the cache itself is disabled.
// Bytes are spg.Analysis.MemoryFootprint estimates, refreshed on every Get of
// an entry because interned downset lattices keep growing while solvers run.
// A capacity <= 0 with a positive maxBytes bounds retained memory alone,
// leaving the entry count free.
func NewAnalysisCacheBytes(capacity int, maxBytes int64) *AnalysisCache {
	return &AnalysisCache{
		capacity: capacity,
		maxBytes: maxBytes,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
	}
}

func (c *AnalysisCache) enabled() bool {
	return c != nil && (c.capacity > 0 || c.maxBytes > 0)
}

// Len returns the number of cached workloads.
func (c *AnalysisCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the keys of every completed cached workload, sorted — how
// the affinity tests (and operators) inspect which workload families a
// worker's cache actually holds.
func (c *AnalysisCache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	var keys []string
	for k, e := range c.entries {
		if e.done.Load() {
			keys = append(keys, k)
		}
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Purge drops every cached workload.
func (c *AnalysisCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	c.totalBytes = 0
}

// CacheStats is a point-in-time snapshot of the cache, as served by the
// mapping service's health endpoint.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// Stats returns the cache's current size, bounds and hit counters. Without a
// byte bound the byte total is estimated on the fly (footprints are otherwise
// only tracked when they feed eviction): the entry list is snapshotted under
// the cache lock but the footprint walk runs outside it — the walk takes
// each analysis's own fine-grained locks, and holding the cache-wide mutex
// across it would stall every concurrent Get behind a health poll. Stats is
// O(entries) and meant for health endpoints, not hot paths.
func (c *AnalysisCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	s := CacheStats{
		Entries:  len(c.entries),
		Capacity: c.capacity,
		MaxBytes: c.maxBytes,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
	}
	var walk []*spg.Analysis
	if c.maxBytes > 0 {
		s.Bytes = c.totalBytes
	} else {
		walk = make([]*spg.Analysis, 0, len(c.entries))
		//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
		for _, e := range c.entries {
			if e.done.Load() {
				walk = append(walk, e.an)
			}
		}
	}
	c.mu.Unlock()
	for _, an := range walk {
		s.Bytes += an.MemoryFootprint()
	}
	return s
}

// Get returns the analysis cached under key, building (and caching) it on
// first use. A failed build is not retained; the next Get retries. Disabled
// caches — and the empty key, which cells use to opt a workload out of the
// campaign layer — build unconditionally.
func (c *AnalysisCache) Get(key string, build func() (*spg.Analysis, error)) (*spg.Analysis, error) {
	if !c.enabled() || key == "" {
		return build()
	}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		c.misses.Add(1)
		e = &cacheEntry{key: key}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.evictLocked()
	} else {
		c.hits.Add(1)
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.an, e.err = build()
		if e.err == nil {
			e.done.Store(true)
		}
	})
	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			if e.elem != nil {
				c.lru.Remove(e.elem)
			}
		}
		c.mu.Unlock()
		return e.an, e.err
	}
	if c.maxBytes > 0 {
		// Refresh the byte account outside the cache lock (the footprint walk
		// takes the analysis's own fine-grained locks), then settle under it.
		// The entry may have been evicted meanwhile; its footprint then no
		// longer participates.
		fp := e.an.MemoryFootprint()
		c.mu.Lock()
		if c.entries[key] == e {
			c.totalBytes += fp - e.bytes
			e.bytes = fp
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	return e.an, e.err
}

// evictLocked drops least-recently-used completed entries while either bound
// is exceeded; entries still being built are skipped so their builders keep
// the single-build guarantee (the cache may transiently exceed its bounds
// while many keys build at once). Callers hold c.mu.
func (c *AnalysisCache) evictLocked() {
	over := func() bool {
		return (c.capacity > 0 && c.lru.Len() > c.capacity) ||
			(c.maxBytes > 0 && c.totalBytes > c.maxBytes)
	}
	for el := c.lru.Back(); el != nil && over(); {
		prev := el.Prev()
		if old := el.Value.(*cacheEntry); old.done.Load() {
			c.lru.Remove(el)
			delete(c.entries, old.key)
			c.totalBytes -= old.bytes
		}
		el = prev
	}
}
