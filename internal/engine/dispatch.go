package engine

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultChunkCells is the dispatcher's default chunk size: the number of
// CCR variants in a StreamIt family, so the default chunking ships one whole
// workload family per request.
const DefaultChunkCells = 4

// Retry-discipline defaults: a failed chunk waits a seeded, jittered
// exponential backoff before its next dispatch attempt instead of hammering
// the next worker immediately, and a campaign stops retrying altogether once
// it has spent its retry budget (DefaultRetryBudgetPerChunk attempts per
// chunk by default), degrading to the local pool rather than retrying
// forever.
const (
	DefaultRetryBaseDelay      = 50 * time.Millisecond
	DefaultRetryMaxDelay       = 2 * time.Second
	DefaultRetryBudgetPerChunk = 4
)

// DefaultStealMinBenefit is the steal-benefit gate's default threshold
// (Dispatcher.StealMinBenefit): a steal must save at least this much
// expected owner-queue wait to be worth breaking cache affinity. Sized at a
// few times a warm-cache chunk's service time, so affinity survives
// transient idleness but real backlogs still spread.
const DefaultStealMinBenefit = 20 * time.Millisecond

// retryDelay computes the backoff before retry number attempt (1-based) of
// the chunk starting at cell index start: base doubled per prior attempt,
// jittered into [0.5, 1.5) of itself by a pure FNV hash of (seed, start,
// attempt), clamped to max. The jitter decorrelates chunks that failed
// together (one dead worker fails many chunks at once) without math/rand:
// the same (seed, chunk, attempt) always backs off identically, so a chaos
// schedule replays exactly.
func retryDelay(seed int64, start, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = DefaultRetryBaseDelay
	}
	if max <= 0 {
		max = DefaultRetryMaxDelay
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(start))
	binary.LittleEndian.PutUint64(buf[16:], uint64(attempt))
	h.Write(buf[:])
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	jittered := time.Duration((0.5 + frac) * float64(d))
	if jittered > max {
		jittered = max
	}
	return jittered
}

// rendezvousOwner picks the worker that owns a workload family under
// highest-random-weight (rendezvous) hashing: every (family, worker) pair is
// hashed independently and the highest hash wins. The scheme's point is
// membership stability — when a worker dies, only the families it owned move
// (to their second-highest worker), and when it rejoins they move back — so
// a workload family keeps landing on the worker whose AnalysisCache already
// holds its analysis. An empty family or worker list owns nothing.
func rendezvousOwner(family string, workers []string) string {
	if family == "" || len(workers) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, w := range workers {
		h := fnv.New64a()
		h.Write([]byte(family))
		h.Write([]byte{0})
		h.Write([]byte(w))
		score := h.Sum64()
		if best == "" || score > bestScore || (score == bestScore && w < best) {
			best, bestScore = w, score
		}
	}
	return best
}

// chunk is one schedulable unit of a dispatched campaign: a contiguous cell
// range that never straddles a workload-family boundary, so affinity routing
// places whole families.
type chunk struct {
	start, end int
	family     string // FamilyKey shared by every cell; "" = no affinity
	// attempted records workers that already failed this chunk; re-dispatch
	// only considers workers outside it.
	attempted map[string]bool
	// lastErr is the most recent dispatch failure, reported if the chunk
	// falls back to local execution.
	lastErr error
	// stealable marks a requeued chunk immediately eligible for stealing
	// regardless of StealDelay — it already waited its turn once.
	stealable bool
	// pendingSince feeds the StealDelay grace period.
	pendingSince time.Time
	// attempts counts failed dispatches of this chunk; it is the exponent of
	// the next backoff.
	attempts int
	// notBefore is the end of the chunk's current backoff: no worker may
	// take it earlier. Orphan detection ignores it — a chunk no worker can
	// serve goes to the local pool immediately, backing off or not.
	notBefore time.Time
	// exhausted marks a chunk the campaign may no longer retry remotely
	// (retry budget spent): only the local pool will serve it.
	exhausted bool
}

// chunkCampaign splits the cell index space into dispatchable chunks of at
// most size cells. Chunk boundaries never cross a family boundary (the
// FamilyKey derived from each cell's workload; empty cache keys and
// non-derivable workloads count as family-less), and family runs longer than
// size split into balanced pieces — so a StreamIt campaign yields
// family-pure chunks that affinity routing can pin to one worker's warm
// cache, while uniquely-keyed panels (random SPGs) degrade to per-family
// (per-cell) chunks that spread by work stealing alone.
func chunkCampaign(cells []Cell, size int) []*chunk {
	if size <= 0 {
		size = DefaultChunkCells
	}
	family := func(c Cell) string {
		if c.Spec.CacheKey == "" {
			return ""
		}
		key, err := c.Spec.Workload.FamilyKey()
		if err != nil {
			return ""
		}
		return key
	}
	var chunks []*chunk
	for start := 0; start < len(cells); {
		fam := family(cells[start])
		end := start + 1
		for end < len(cells) && family(cells[end]) == fam {
			end++
		}
		// Split the family run into balanced pieces of at most size cells.
		n := end - start
		pieces := (n + size - 1) / size
		for k := 0; k < pieces; k++ {
			s, e := shardRange(n, pieces, k)
			chunks = append(chunks, &chunk{start: start + s, end: start + e, family: fam})
		}
		start = end
	}
	return chunks
}

// DispatcherStats is a point-in-time snapshot of a dispatcher's (or the
// process-lifetime DispatcherTotals') scheduling counters.
type DispatcherStats struct {
	// Chunks counts every chunk served, remotely or locally.
	Chunks int64 `json:"chunks"`
	// RemoteChunks counts chunks served by a worker.
	RemoteChunks int64 `json:"remote_chunks"`
	// Redispatches counts chunks that failed on one worker and were then
	// served by a different worker — the recovery path that used to collapse
	// straight to local execution.
	Redispatches int64 `json:"redispatches"`
	// LocalFallbacks counts chunks executed on the local pool after every
	// healthy worker failed them (or none remained).
	LocalFallbacks int64 `json:"local_fallbacks"`
	// Steals counts chunks served by a worker other than their affinity
	// owner — idle workers overriding affinity so nobody starves.
	Steals int64 `json:"steals"`
	// Retries counts dispatch attempts consumed from the retry budget: every
	// time a failed chunk was requeued for another remote attempt.
	Retries int64 `json:"retries"`
	// RetryBudget is the campaign's total retry allowance (0 when the
	// snapshot aggregates many campaigns, as DispatcherTotals does). Once
	// Retries reaches it, further failures go straight to the local pool.
	RetryBudget int64 `json:"retry_budget,omitempty"`
	// WorkerChunks attributes served chunks to worker URLs.
	WorkerChunks map[string]int64 `json:"worker_chunks,omitempty"`
	// WorkerEWMAMillis is the per-worker exponentially-weighted moving
	// average of remote chunk service times, in milliseconds — the estimate
	// the steal-benefit gate (Dispatcher.StealMinBenefit) weighs backlogs
	// with.
	WorkerEWMAMillis map[string]float64 `json:"worker_ewma_millis,omitempty"`
}

// stealEWMAAlpha is the weight of the newest service-time sample in the
// per-worker EWMA: high enough to track a worker that suddenly slows down
// within a few chunks, low enough that one outlier chunk does not flip the
// steal policy.
const stealEWMAAlpha = 0.3

// dispatchCounters is the shared counter implementation behind per-campaign
// dispatcher stats and the process-lifetime totals.
type dispatchCounters struct {
	chunks, remote, redispatch, local, steals, retries atomic.Int64

	mu        sync.Mutex
	perWorker map[string]int64
	// ewma is the per-worker EWMA of remote chunk service times in
	// milliseconds (guarded by mu); absent until a worker's first success.
	ewma map[string]float64
}

func (c *dispatchCounters) retried() { c.retries.Add(1) }

func (c *dispatchCounters) servedRemote(worker string, redispatched, stolen bool, elapsed time.Duration) {
	c.chunks.Add(1)
	c.remote.Add(1)
	if redispatched {
		c.redispatch.Add(1)
	}
	if stolen {
		c.steals.Add(1)
	}
	c.mu.Lock()
	if c.perWorker == nil {
		c.perWorker = make(map[string]int64)
	}
	c.perWorker[worker]++
	ms := float64(elapsed) / float64(time.Millisecond)
	if c.ewma == nil {
		c.ewma = make(map[string]float64)
	}
	if prev, ok := c.ewma[worker]; ok {
		c.ewma[worker] = prev + stealEWMAAlpha*(ms-prev)
	} else {
		c.ewma[worker] = ms
	}
	c.mu.Unlock()
}

// serviceEWMA returns the worker's EWMA chunk service time; ok is false
// before the worker's first successful chunk.
func (c *dispatchCounters) serviceEWMA(worker string) (time.Duration, bool) {
	c.mu.Lock()
	ms, ok := c.ewma[worker]
	c.mu.Unlock()
	return time.Duration(ms * float64(time.Millisecond)), ok
}

func (c *dispatchCounters) servedLocal(n int64) {
	c.chunks.Add(n)
	c.local.Add(n)
}

func (c *dispatchCounters) stats() DispatcherStats {
	s := DispatcherStats{
		Chunks:         c.chunks.Load(),
		RemoteChunks:   c.remote.Load(),
		Redispatches:   c.redispatch.Load(),
		LocalFallbacks: c.local.Load(),
		Steals:         c.steals.Load(),
		Retries:        c.retries.Load(),
	}
	c.mu.Lock()
	if len(c.perWorker) > 0 {
		s.WorkerChunks = make(map[string]int64, len(c.perWorker))
		for k, v := range c.perWorker {
			s.WorkerChunks[k] = v
		}
	}
	if len(c.ewma) > 0 {
		s.WorkerEWMAMillis = make(map[string]float64, len(c.ewma))
		for k, v := range c.ewma {
			s.WorkerEWMAMillis[k] = v
		}
	}
	c.mu.Unlock()
	return s
}

// DispatcherTotals accumulates scheduling counters across every campaign of
// a process — the coordinator hands one to each per-job dispatcher clone so
// /v1/healthz can report lifetime dispatcher activity next to the per-job
// numbers.
type DispatcherTotals struct{ dispatchCounters }

// Stats snapshots the accumulated totals.
func (t *DispatcherTotals) Stats() DispatcherStats {
	if t == nil {
		return DispatcherStats{}
	}
	return t.stats()
}

// Dispatcher is the cluster scheduler: a pull-based, work-stealing
// CampaignExecutor that replaces the ShardExecutor's fire-once range
// shipping. The cell index space is split into small family-aligned chunks
// (chunkCampaign) and workers pull chunks as they free up — a fast worker
// simply pulls more often, so heterogeneous workers even out without any
// up-front balancing. Placement is cache-affine: each chunk's workload
// family has a rendezvous-hash owner among the currently-healthy workers
// (rendezvousOwner), and a worker prefers chunks it owns, so one family's
// analyses warm one worker's AnalysisCache; an idle worker steals foreign
// chunks (after StealDelay, immediately by default) so affinity never
// starves anyone. A chunk whose dispatch fails or times out is re-dispatched
// to a different worker after a seeded exponential backoff (retryDelay; a
// campaign-wide RetryBudget bounds the total attempts) — falling back to the
// local pool when every live (non-dead, non-draining) worker has already
// failed it or the budget is spent — and the registry is told
// about every outcome, so a flapping worker leaves and rejoins the rotation
// between chunks: suspect workers keep pulling (a success instantly heals
// them, DeadAfter failures retire them), which is also how per-request
// registries without a probe loop recover from transient errors. Cells are
// deterministic, so every re-placement is bit-identical to the pool run
// (see the dispatcher equivalence tests).
type Dispatcher struct {
	// Registry names and health-tracks the workers. nil or empty runs every
	// campaign on the local pool.
	Registry *WorkerRegistry
	// ChunkCells bounds the cells per chunk (0 selects DefaultChunkCells).
	// Chunks never straddle workload-family boundaries regardless.
	ChunkCells int
	// Client issues the worker requests; nil selects http.DefaultClient.
	Client *http.Client
	// RequestTimeout bounds one chunk request (default
	// DefaultRequestTimeout); a deadline already on the campaign context
	// tightens it further, and the effective budget is advertised to the
	// worker via DeadlineHeader. On expiry the chunk is re-dispatched
	// elsewhere.
	RequestTimeout time.Duration
	// Seed drives the deterministic retry jitter (retryDelay). Any fixed
	// seed yields a replayable backoff schedule; results never depend on it.
	Seed int64
	// RetryBaseDelay is the backoff before a chunk's first retry (default
	// DefaultRetryBaseDelay), doubling per subsequent attempt.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff (default DefaultRetryMaxDelay).
	RetryMaxDelay time.Duration
	// RetryBudget caps the campaign's total remote retries; once spent,
	// failed chunks go straight to the local pool. 0 selects
	// DefaultRetryBudgetPerChunk times the campaign's chunk count; negative
	// disables retries entirely (every failure falls back).
	RetryBudget int
	// StealDelay is how long a pending chunk is reserved for its healthy
	// affinity owner before an idle worker may steal it. 0 steals
	// immediately; chunks whose owner is unhealthy (or that already failed
	// somewhere) are always taken immediately.
	StealDelay time.Duration
	// StealMinBenefit gates steal-on-idle on expected wait: an idle worker
	// may steal a chunk from its healthy affinity owner only when the
	// owner's estimated time to reach it — its pending backlog times the
	// EWMA of its recent chunk service times — is at least this long.
	// Short queues on fast owners thus keep their cache affinity (the steal
	// would save less than the warm-cache analysis it throws away), while a
	// backlog behind a slow owner is stolen as before. 0 selects
	// DefaultStealMinBenefit; negative disables the gate (always steal, the
	// legacy policy). Chunks that already failed somewhere, or whose owner
	// has no service-time sample yet, bypass the gate.
	StealMinBenefit time.Duration
	// LocalFallback configures the in-process pool executing local-fallback
	// chunks and non-wire-codable campaigns; its zero value runs at
	// GOMAXPROCS.
	LocalFallback PoolExecutor
	// OnFallback, when set, observes every chunk that fell back to local
	// execution (called from the scheduling goroutine).
	OnFallback func(start, end int, err error)
	// Totals, when set, additionally accumulates this dispatcher's counters
	// into a process-lifetime aggregate.
	Totals *DispatcherTotals

	counters dispatchCounters
	// resolvedBudget is the concrete retry allowance of the most recent
	// campaign (RetryBudget, or the per-chunk default times its chunk
	// count), surfaced through Stats.
	resolvedBudget atomic.Int64
}

// Stats snapshots this dispatcher's scheduling counters (per-campaign when
// the coordinator clones a dispatcher per job).
func (d *Dispatcher) Stats() DispatcherStats {
	s := d.counters.stats()
	s.RetryBudget = d.resolvedBudget.Load()
	return s
}

// Clone returns a dispatcher with the same configuration (sharing the
// registry and totals) and fresh per-campaign counters.
func (d *Dispatcher) Clone() *Dispatcher {
	return &Dispatcher{
		Registry:        d.Registry,
		ChunkCells:      d.ChunkCells,
		Client:          d.Client,
		RequestTimeout:  d.RequestTimeout,
		Seed:            d.Seed,
		RetryBaseDelay:  d.RetryBaseDelay,
		RetryMaxDelay:   d.RetryMaxDelay,
		RetryBudget:     d.RetryBudget,
		StealDelay:      d.StealDelay,
		StealMinBenefit: d.StealMinBenefit,
		LocalFallback:   d.LocalFallback,
		OnFallback:      d.OnFallback,
		Totals:          d.Totals,
	}
}

// Execute implements the plain Executor contract on the local pool (without
// cells there is nothing to ship); engine.Run always hands a Dispatcher the
// cells via ExecuteCampaign.
func (d *Dispatcher) Execute(ctx context.Context, n int, run func(i int)) error {
	return d.LocalFallback.Execute(ctx, n, run)
}

// schedulerPoll is how often idle scheduling loops re-check registry state
// (worker rejoins, steal-delay expiry, late registrations); queue changes
// wake them immediately.
const schedulerPoll = 15 * time.Millisecond

// ExecuteCampaign implements CampaignExecutor: chunk, dispatch pull-based
// with affinity and stealing, re-dispatch failures, fall back locally only
// when no healthy worker can take a chunk.
func (d *Dispatcher) ExecuteCampaign(ctx context.Context, cells []Cell, solve func(i int) CellResult, record func(CellResult)) error {
	n := len(cells)
	remote := d.Registry.Len() > 0
	for _, c := range cells {
		if !c.WireCodable() {
			remote = false
			break
		}
	}
	if !remote {
		return d.LocalFallback.Execute(ctx, n, func(i int) { record(solve(i)) })
	}
	run := &dispatchRun{
		d:      d,
		ctx:    ctx,
		cells:  cells,
		solve:  solve,
		record: record,
		wake:   make(chan struct{}),
		loops:  make(map[string]bool),
	}
	run.pending = chunkCampaign(cells, d.ChunkCells)
	now := time.Now()
	for _, c := range run.pending {
		c.pendingSince = now
	}
	run.remaining = len(run.pending)
	switch {
	case d.RetryBudget > 0:
		run.budget = d.RetryBudget
	case d.RetryBudget == 0:
		run.budget = DefaultRetryBudgetPerChunk * len(run.pending)
	default:
		run.budget = 0
	}
	d.resolvedBudget.Store(int64(run.budget))
	run.supervise()
	run.wg.Wait()
	return ctx.Err()
}

// dispatchRun is the per-campaign scheduling state: a pending-chunk queue
// guarded by one mutex, a broadcast channel waking idle loops on every queue
// change, and one pull loop per registered worker.
type dispatchRun struct {
	d      *Dispatcher
	ctx    context.Context
	cells  []Cell
	solve  func(i int) CellResult
	record func(CellResult)

	mu        sync.Mutex
	wake      chan struct{} // closed and replaced on every queue change
	pending   []*chunk
	remaining int // chunks not yet completed (pending + in flight)
	// budget is the total remote retries the campaign may spend — resolved
	// once in ExecuteCampaign before supervise() starts any loop, immutable
	// afterwards, so reads need no lock.
	budget  int
	retries int // guarded by mu; remote retries spent so far
	loops   map[string]bool
	wg      sync.WaitGroup
}

// bcastLocked wakes every waiting loop. Callers hold mu.
func (r *dispatchRun) bcastLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// supervise is the campaign's scheduling main loop: it keeps one pull loop
// alive per registered worker (spawning loops for workers that register
// mid-campaign), drains chunks that no healthy worker can serve onto the
// local pool, and returns when every chunk is done or the context is
// cancelled.
func (r *dispatchRun) supervise() {
	for {
		if r.ctx.Err() != nil {
			return
		}
		r.mu.Lock()
		if r.remaining == 0 {
			r.mu.Unlock()
			return
		}
		for _, u := range r.d.Registry.URLs() {
			if !r.loops[u] {
				r.loops[u] = true
				r.wg.Add(1)
				go r.workerLoop(u)
			}
		}
		orphans := r.takeLocalEligibleLocked(r.availableWorkers())
		wake := r.wake
		r.mu.Unlock()
		if len(orphans) > 0 {
			r.runLocal(orphans)
			continue
		}
		select {
		case <-wake:
		case <-r.ctx.Done():
			return
		case <-time.After(schedulerPoll):
		}
	}
}

// availableWorkers returns the workers the scheduler may still try: every
// registered worker not yet dead (open breaker) and not draining. Suspect
// workers count — they keep pulling chunks (one success heals them,
// DeadAfter failures finish them), so a transient failure or a momentary
// all-suspect blip never drains a campaign to local execution. Draining
// workers do not: they announced they will stop serving, so giving them new
// chunks only manufactures failures.
func (r *dispatchRun) availableWorkers() []string {
	infos := r.d.Registry.Workers()
	out := make([]string, 0, len(infos))
	for _, w := range infos {
		if w.State != WorkerDead && !w.Draining {
			out = append(out, w.URL)
		}
	}
	return out
}

// takeLocalEligibleLocked removes and returns every pending chunk that no
// available (non-dead, non-draining) worker can still serve — each already
// failed it, every worker is dead or draining, or the retry budget retired
// the chunk from remote dispatch. Callers hold mu.
func (r *dispatchRun) takeLocalEligibleLocked(available []string) []*chunk {
	var eligible []*chunk
	keep := r.pending[:0]
	for _, c := range r.pending {
		viable := false
		if !c.exhausted {
			for _, w := range available {
				if !c.attempted[w] {
					viable = true
					break
				}
			}
		}
		if viable {
			keep = append(keep, c)
		} else {
			eligible = append(eligible, c)
		}
	}
	r.pending = keep
	return eligible
}

// runLocal executes orphaned chunks on the local fallback pool as one batch,
// so a fully-degraded cluster still runs at the pool's full parallelism.
func (r *dispatchRun) runLocal(orphans []*chunk) {
	var idx []int
	for _, c := range orphans {
		if r.d.OnFallback != nil {
			r.d.OnFallback(c.start, c.end, c.lastErr)
		}
		for i := c.start; i < c.end; i++ {
			idx = append(idx, i)
		}
	}
	_ = r.d.LocalFallback.Execute(r.ctx, len(idx), func(k int) { r.record(r.solve(idx[k])) })
	if r.ctx.Err() != nil {
		return
	}
	r.d.counters.servedLocal(int64(len(orphans)))
	if r.d.Totals != nil {
		r.d.Totals.servedLocal(int64(len(orphans)))
	}
	r.mu.Lock()
	r.remaining -= len(orphans)
	r.bcastLocked()
	r.mu.Unlock()
}

// workerLoop is one worker's pull loop: take the next chunk this worker
// should serve (own affinity first, steals when idle), ship it, and report
// the outcome. The loop parks while its worker is unhealthy and resumes when
// it rejoins; it exits when the campaign completes, the context is
// cancelled, or the worker is deregistered.
func (r *dispatchRun) workerLoop(worker string) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.loops, worker)
		r.mu.Unlock()
	}()
	for {
		c, stolen := r.next(worker)
		if c == nil {
			return
		}
		specs := make([]CellSpec, c.end-c.start)
		for i := range specs {
			specs[i] = r.cells[c.start+i].Spec
		}
		reqStart := time.Now()
		results, err := postCellRange(r.ctx, r.d.Client, worker, specs, r.d.RequestTimeout)
		elapsed := time.Since(reqStart)
		if err == nil {
			r.d.Registry.ReportSuccess(worker)
			for j, w := range results {
				r.record(w.CellResult(c.start + j))
			}
			redispatched := len(c.attempted) > 0
			r.d.counters.servedRemote(worker, redispatched, stolen, elapsed)
			if r.d.Totals != nil {
				r.d.Totals.servedRemote(worker, redispatched, stolen, elapsed)
			}
			r.mu.Lock()
			r.remaining--
			r.bcastLocked()
			r.mu.Unlock()
			continue
		}
		if r.ctx.Err() != nil {
			// Campaign cancelled, not worker lost: leave the chunk
			// unrecorded, as the executor contract requires.
			return
		}
		r.d.Registry.ReportFailure(worker, err)
		if c.attempted == nil {
			c.attempted = make(map[string]bool)
		}
		c.attempted[worker] = true
		c.lastErr = err
		c.stealable = true
		c.attempts++
		r.mu.Lock()
		if r.retries < r.budget {
			// Spend one retry: the chunk re-enters the queue after a seeded
			// backoff instead of hitting the next worker immediately.
			r.retries++
			r.d.counters.retried()
			if r.d.Totals != nil {
				r.d.Totals.retried()
			}
			c.notBefore = time.Now().Add(retryDelay(r.d.Seed, c.start, c.attempts, r.d.RetryBaseDelay, r.d.RetryMaxDelay))
		} else {
			// Budget spent: retire the chunk from remote dispatch — the
			// supervisor routes exhausted chunks to the local pool.
			c.exhausted = true
		}
		r.pending = append(r.pending, c)
		r.bcastLocked()
		r.mu.Unlock()
	}
}

// next blocks until there is a chunk this worker should serve, returning it
// plus whether taking it overrides another healthy worker's affinity (a
// steal). nil means the loop should exit.
func (r *dispatchRun) next(worker string) (*chunk, bool) {
	for {
		if r.ctx.Err() != nil {
			return nil, false
		}
		r.mu.Lock()
		if r.remaining == 0 {
			r.mu.Unlock()
			return nil, false
		}
		state, registered := r.d.Registry.State(worker)
		if !registered {
			r.mu.Unlock()
			return nil, false
		}
		// Healthy workers pull normally; suspect workers pull too (with no
		// affinity ownership), so one successful chunk heals them even in a
		// registry with no probe loop. Dead workers park until the probe
		// loop or a re-registration revives them; draining workers park
		// until they re-register or deregister.
		if state != WorkerDead && !r.d.Registry.IsDraining(worker) {
			if c, stolen := r.takeLocked(worker, r.d.Registry.Healthy()); c != nil {
				r.mu.Unlock()
				return c, stolen
			}
		}
		wake := r.wake
		r.mu.Unlock()
		select {
		case <-wake:
		case <-r.ctx.Done():
			return nil, false
		case <-time.After(schedulerPoll):
		}
	}
}

// takeLocked picks this worker's next chunk under mu: first a chunk it owns
// (or that owns nobody), then — once the owner's StealDelay grace expired,
// or immediately for requeued/ownerless chunks — a steal worth its cost:
// the steal-benefit gate (StealMinBenefit) skips chunks whose healthy owner
// would reach them quickly anyway, judged by the owner's pending backlog
// times the EWMA of its recent chunk service times. Ownership is recomputed
// against the current healthy set on every take (a suspect worker owns
// nothing, so its takes are steals), which is what re-routes an unhealthy
// worker's families to their rendezvous successor and hands them back on
// recovery.
func (r *dispatchRun) takeLocked(worker string, healthy []string) (*chunk, bool) {
	steal := -1
	now := time.Now()
	// backlogs caches per-owner pending-queue depths for the benefit gate;
	// computed at most once per owner per take.
	var backlogs map[string]int
	ownerBacklog := func(owner string) int {
		if b, ok := backlogs[owner]; ok {
			return b
		}
		b := 0
		for _, c := range r.pending {
			if !c.exhausted && !c.attempted[owner] && rendezvousOwner(c.family, healthy) == owner {
				b++
			}
		}
		if backlogs == nil {
			backlogs = make(map[string]int)
		}
		backlogs[owner] = b
		return b
	}
	for i, c := range r.pending {
		if c.attempted[worker] || c.exhausted || now.Before(c.notBefore) {
			continue
		}
		owner := rendezvousOwner(c.family, healthy)
		if owner == "" || owner == worker {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return c, false
		}
		if steal < 0 && (c.stealable || r.d.StealDelay <= 0 || time.Since(c.pendingSince) >= r.d.StealDelay) {
			// Requeued chunks already failed somewhere and bypass the
			// benefit gate — waiting on a flaky owner is never the cheap
			// option.
			if c.stealable || r.stealWorth(owner, ownerBacklog(owner)) {
				steal = i
			}
		}
	}
	if steal >= 0 {
		c := r.pending[steal]
		r.pending = append(r.pending[:steal], r.pending[steal+1:]...)
		return c, true
	}
	return nil, false
}

// stealWorth is the steal-benefit predicate: stealing from owner is worth it
// when the owner's expected time to drain its backlog (queue depth times its
// EWMA chunk service time) meets StealMinBenefit. With no service-time
// sample yet the gate allows the steal — the legacy policy — since there is
// no evidence the owner is fast.
func (r *dispatchRun) stealWorth(owner string, backlog int) bool {
	minBenefit := r.d.StealMinBenefit
	if minBenefit < 0 {
		return true
	}
	if minBenefit == 0 {
		minBenefit = DefaultStealMinBenefit
	}
	ewma, ok := r.d.counters.serviceEWMA(owner)
	if !ok {
		return true
	}
	return time.Duration(backlog)*ewma >= minBenefit
}
