package engine

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// WireStoredResult is the stored (and wire) form of one cell outcome in the
// ResultStore: the result-bearing fields of a CellResult without its
// campaign-local addressing (Index and Key are stamped by the reader from
// the requesting cell). Entries are retained as their JSON encoding, so a
// Get decodes a fresh copy and cached outcomes can never alias a caller's
// mutation — and because float64s round-trip bit-exactly through
// encoding/json, a stored outcome re-serializes byte-identically to the
// solve that produced it.
type WireStoredResult struct {
	Feasible bool           `json:"feasible"`
	Result   InstanceResult `json:"result"`
}

// ResultStore is a bounded, concurrency-safe, content-addressed store of
// solved cell outcomes — the dedup layer that turns a repeated request from
// a full DP solve into an O(1) lookup. Keys are canonical CellSpec content
// hashes (CellSpec.ContentKey); per-cell determinism is proven by the
// equivalence suites, so a stored outcome is safe to serve byte-identically
// in place of a re-solve.
//
// Entries are retained with least-recently-used eviction under two
// independent bounds, an entry count and a byte account (the encoded entry
// sizes), mirroring the AnalysisCache. The nil store and a store with no
// positive bound are both disabled: Get always misses and Put is a no-op.
// Unlike the AnalysisCache the store does not deduplicate concurrent builds
// of one key — in-flight dedup is the service coalescer's job — so Put is a
// plain last-writer-wins insert (all writers of one key insert identical
// bytes, by determinism).
type ResultStore struct {
	capacity int
	maxBytes int64

	hits, misses, puts, evictions atomic.Uint64

	mu         sync.Mutex
	entries    map[string]*storeEntry // guarded by mu
	lru        *list.List             // guarded by mu; front = most recently used; values are *storeEntry
	totalBytes int64                  // guarded by mu; sum of encoded entry sizes
}

type storeEntry struct {
	key  string
	elem *list.Element
	data []byte // immutable once inserted; read outside mu by Get
}

// NewResultStore returns a store retaining at most capacity outcomes and at
// most maxBytes of encoded results. A bound <= 0 is disabled; with both
// disabled the store itself is disabled (Get misses, Put no-ops).
func NewResultStore(capacity int, maxBytes int64) *ResultStore {
	return &ResultStore{
		capacity: capacity,
		maxBytes: maxBytes,
		entries:  make(map[string]*storeEntry),
		lru:      list.New(),
	}
}

// Enabled reports whether the store retains anything — how callers decide
// whether to surface its stats.
func (s *ResultStore) Enabled() bool { return s.enabled() }

func (s *ResultStore) enabled() bool {
	return s != nil && (s.capacity > 0 || s.maxBytes > 0)
}

// Len returns the number of stored outcomes.
func (s *ResultStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Purge drops every stored outcome (counters are retained).
func (s *ResultStore) Purge() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*storeEntry)
	s.lru.Init()
	s.totalBytes = 0
}

// Get returns a fresh copy of the outcome stored under key. The returned
// result carries Index 0 and an empty Key — the caller stamps both from the
// cell it is answering. A disabled store always misses without counting.
func (s *ResultStore) Get(key string) (CellResult, bool) {
	if !s.enabled() || key == "" {
		return CellResult{}, false
	}
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		s.misses.Add(1)
		return CellResult{}, false
	}
	s.lru.MoveToFront(e.elem)
	data := e.data
	s.mu.Unlock()
	var w WireStoredResult
	if err := json.Unmarshal(data, &w); err != nil {
		// Unreachable for entries this store encoded; treated as a miss so a
		// corrupted entry degrades to a re-solve, never a wrong answer.
		s.misses.Add(1)
		return CellResult{}, false
	}
	s.hits.Add(1)
	return CellResult{Feasible: w.Feasible, Result: w.Result}, true
}

// Put stores the outcome under key. Failed cells (Err set) are never
// retained — a build failure may be environmental and must stay retryable.
// Disabled stores and the empty key no-op.
func (s *ResultStore) Put(key string, r CellResult) {
	if !s.enabled() || key == "" || r.Err != nil {
		return
	}
	data, err := json.Marshal(WireStoredResult{Feasible: r.Feasible, Result: r.Result})
	if err != nil {
		return // InstanceResult is wire-codable by construction; defensive only
	}
	s.puts.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		s.totalBytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.lru.MoveToFront(e.elem)
		s.evictLocked()
		return
	}
	e := &storeEntry{key: key, data: data}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.totalBytes += int64(len(data))
	s.evictLocked()
}

// evictLocked drops least-recently-used entries while either configured
// bound is exceeded. Callers hold s.mu.
func (s *ResultStore) evictLocked() {
	over := func() bool {
		return (s.capacity > 0 && s.lru.Len() > s.capacity) ||
			(s.maxBytes > 0 && s.totalBytes > s.maxBytes)
	}
	for el := s.lru.Back(); el != nil && over(); {
		prev := el.Prev()
		old := el.Value.(*storeEntry)
		s.lru.Remove(el)
		delete(s.entries, old.key)
		s.totalBytes -= int64(len(old.data))
		s.evictions.Add(1)
		el = prev
	}
}

// ResultStoreStats is a point-in-time snapshot of the store, as served by
// the mapping service's health endpoint.
type ResultStoreStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity,omitempty"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the store's current size, bounds and traffic counters.
func (s *ResultStore) Stats() ResultStoreStats {
	if s == nil {
		return ResultStoreStats{}
	}
	s.mu.Lock()
	st := ResultStoreStats{
		Entries:  len(s.entries),
		Capacity: s.capacity,
		Bytes:    s.totalBytes,
		MaxBytes: s.maxBytes,
	}
	s.mu.Unlock()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.Puts = s.puts.Load()
	st.Evictions = s.evictions.Load()
	return st
}
