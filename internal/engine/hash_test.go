package engine

import (
	"reflect"
	"testing"

	"spgcmp/internal/core"
)

// TestContentKeyGolden pins the canonical CellSpec content hash. These
// digests are the result store's address space: if any of them changes, the
// serialization drifted and every stored outcome in a running fleet would be
// silently orphaned (or worse, re-keyed). Bump contentKeyVersion and update
// the digests only with a deliberate, documented format change.
func TestContentKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		spec CellSpec
		want string
	}{
		{
			name: "streamit",
			spec: CellSpec{Key: "a", CacheKey: "x", Workload: WorkloadSpec{StreamIt: "DCT"}, ScaleCCR: true, CCR: 0.5, P: 2, Q: 2, Opts: core.Options{Seed: 42}},
			want: "v1-918b6c21f5b8bdb7193ab689ea372ae8",
		},
		{
			name: "random",
			spec: CellSpec{Workload: WorkloadSpec{Random: &RandomWorkload{N: 12, Elevation: 3, Seed: 7, CCR: 1}}, P: 3, Q: 3, Opts: core.Options{Seed: 1, RandomTrials: 5, KeepMappings: true}},
			want: "v1-5befbba41edd23dcf499af6f7d75ee6e",
		},
		{
			name: "streamit-budgets",
			spec: CellSpec{Workload: WorkloadSpec{StreamIt: "FFT"}, ScaleCCR: true, CCR: 2, P: 4, Q: 4, MaxDivisions: 9, Opts: core.Options{DPA1DMaxStates: 100, DPA1DMaxTransitions: 200}},
			want: "v1-2f5e1ad2f1d71241ca76b182c2c473b7",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.spec.ContentKey()
			if err != nil {
				t.Fatalf("ContentKey: %v", err)
			}
			if got != tc.want {
				t.Fatalf("ContentKey drifted: got %q, want %q — if this change is deliberate, bump contentKeyVersion and repin", got, tc.want)
			}
		})
	}
}

// TestContentKeyExclusions: the addressing fields (Key, CacheKey) and the
// latency-only SweepParallelism knob must not reach the hash, so identical
// work deduplicates across campaigns regardless of how it was addressed or
// parallelized; MaxDivisions hashes resolved, so 0 and the explicit default
// describe the same work.
func TestContentKeyExclusions(t *testing.T) {
	base := CellSpec{Key: "k1", CacheKey: "c1", Workload: WorkloadSpec{StreamIt: "FFT"}, ScaleCCR: true, CCR: 2, P: 4, Q: 4, MaxDivisions: DefaultMaxDivisions, Opts: core.Options{DPA1DMaxStates: 100}}
	want, err := base.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.Key = "k2"
	same.CacheKey = "c2"
	same.MaxDivisions = 0
	same.Opts.SweepParallelism = 8
	if got, err := same.ContentKey(); err != nil || got != want {
		t.Fatalf("excluded fields changed the key: %q vs %q (err %v)", got, want, err)
	}
}

// TestContentKeySensitivity: every result-affecting field must move the key.
func TestContentKeySensitivity(t *testing.T) {
	base := CellSpec{Workload: WorkloadSpec{StreamIt: "FFT"}, ScaleCCR: true, CCR: 2, P: 4, Q: 4, Opts: core.Options{Seed: 1}}
	want, err := base.ContentKey()
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*CellSpec){
		"workload":      func(s *CellSpec) { s.Workload = WorkloadSpec{StreamIt: "DCT"} },
		"scale_ccr":     func(s *CellSpec) { s.ScaleCCR = false },
		"ccr":           func(s *CellSpec) { s.CCR = 2.5 },
		"p":             func(s *CellSpec) { s.P = 3 },
		"q":             func(s *CellSpec) { s.Q = 3 },
		"max_divisions": func(s *CellSpec) { s.MaxDivisions = 5 },
		"seed":          func(s *CellSpec) { s.Opts.Seed = 2 },
		"random_trials": func(s *CellSpec) { s.Opts.RandomTrials = 3 },
		"dpa1d_states":  func(s *CellSpec) { s.Opts.DPA1DMaxStates = 10 },
		"dpa1d_trans":   func(s *CellSpec) { s.Opts.DPA1DMaxTransitions = 10 },
		"keep_mappings": func(s *CellSpec) { s.Opts.KeepMappings = true },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		got, err := s.ContentKey()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == want {
			t.Errorf("mutating %s did not change the content key", name)
		}
	}
}

// TestContentKeyCoversOptions fails when core.Options gains a field, forcing
// whoever adds one to decide whether it affects results (hash it in
// ContentKey) or not (add it to the exclusion list there) — and to extend
// this list either way. Silent drift here would alias distinct work in the
// result store.
func TestContentKeyCoversOptions(t *testing.T) {
	known := map[string]bool{
		"Seed":                true,  // hashed
		"RandomTrials":        true,  // hashed
		"DPA1DMaxStates":      true,  // hashed
		"DPA1DMaxTransitions": true,  // hashed
		"SweepParallelism":    false, // excluded: bit-identical at any setting
		"KeepMappings":        true,  // hashed: changes the result payload
	}
	rt := reflect.TypeOf(core.Options{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if _, ok := known[name]; !ok {
			t.Errorf("core.Options.%s is not accounted for in CellSpec.ContentKey — hash it or document its exclusion, then extend this list", name)
		}
		delete(known, name)
	}
	for name := range known {
		t.Errorf("core.Options.%s no longer exists; prune it from ContentKey and this list", name)
	}
}

// TestContentKeyMalformed: a workload that cannot be lowered onto the
// registry plane cannot be content-addressed.
func TestContentKeyMalformed(t *testing.T) {
	s := CellSpec{P: 2, Q: 2} // no workload variant set
	if _, err := s.ContentKey(); err == nil {
		t.Fatal("expected an error for a spec without a workload")
	}
	s.Workload = WorkloadSpec{Kind: "no-such-kind"}
	if _, err := s.ContentKey(); err == nil {
		t.Fatal("expected an error for an unregistered kind")
	}
}
