package engine

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spgcmp/internal/core"
	"spgcmp/internal/spg"
)

// newTestWorker starts an in-process worker speaking the shard protocol the
// way the service's /v1/cells/execute handler does: decode specs, solve on a
// local pool against the given cache, answer wire results in request order.
func newTestWorker(t *testing.T, cache *AnalysisCache) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ExecuteCellsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := ExecuteSpecs(r.Context(), &PoolExecutor{}, req.Cells, cache, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(ExecuteCellsResponse{Results: results})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestShardExecutorMatchesPool: the acceptance bar's engine half — shard
// runs at 1, 2 and 4 shards, across 1 and 2 workers, must be bit-identical
// to the in-process pool on the same cells.
func TestShardExecutorMatchesPool(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	w1 := newTestWorker(t, cache)
	w2 := newTestWorker(t, cache)
	for _, tc := range []struct {
		name    string
		workers []string
		shards  int
	}{
		{"1worker/1shard", []string{w1.URL}, 1},
		{"1worker/2shards", []string{w1.URL}, 2},
		{"2workers/2shards", []string{w1.URL, w2.URL}, 2},
		{"2workers/4shards", []string{w1.URL, w2.URL}, 4},
		{"2workers/defaultshards", []string{w1.URL, w2.URL}, 0},
	} {
		ex := &ShardExecutor{Workers: tc.workers, Shards: tc.shards}
		got, err := Run(context.Background(), ex, Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		requireSameResults(t, tc.name, got, want)
		if n := ex.Fallbacks(); n != 0 {
			t.Errorf("%s: %d unexpected local fallbacks", tc.name, n)
		}
	}
}

// TestShardExecutorFallback: a worker that errors, answers garbage, dies
// mid-range, or is simply unreachable makes its ranges fall back to local
// execution — with results still bit-identical to the pool.
func TestShardExecutorFallback(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	good := newTestWorker(t, cache)

	erroring := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(erroring.Close)
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"results": [{"key": "not-your-cell"`)) // dies mid-response
	}))
	t.Cleanup(garbage.Close)
	wrongKeys := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ExecuteCellsRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		resp := ExecuteCellsResponse{Results: make([]WireCellResult, len(req.Cells))}
		for i := range resp.Results {
			resp.Results[i].Key = "imposter"
		}
		_ = json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(wrongKeys.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	for _, tc := range []struct {
		name    string
		workers []string
	}{
		{"erroring+good", []string{erroring.URL, good.URL}},
		{"garbage+good", []string{garbage.URL, good.URL}},
		{"wrongkeys+good", []string{wrongKeys.URL, good.URL}},
		{"dead+good", []string{dead.URL, good.URL}},
		{"all-bad", []string{erroring.URL, dead.URL}},
	} {
		ex := &ShardExecutor{Workers: tc.workers, Shards: 4}
		got, err := Run(context.Background(), ex, Campaign{Cells: cells, Cache: cache})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		requireSameResults(t, tc.name, got, want)
		if n := ex.Fallbacks(); n == 0 {
			t.Errorf("%s: no fallbacks despite a broken worker", tc.name)
		}
	}
}

// TestShardExecutorTimeout: a worker that hangs past RequestTimeout is
// abandoned and its range recomputed locally.
func TestShardExecutorTimeout(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body) // unblock the server's close detection
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); hung.Close() })
	ex := &ShardExecutor{Workers: []string{hung.URL}, Shards: 2, RequestTimeout: 50 * time.Millisecond}
	got, err := Run(context.Background(), ex, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "timeout", got, want)
	if n := ex.Fallbacks(); n != 2 {
		t.Errorf("expected both ranges to fall back, got %d", n)
	}
}

// TestShardExecutorLocalPaths: campaigns with closure-backed cells (not
// wire-codable) and executors without workers run entirely on the local
// pool; the plain Execute path does too.
func TestShardExecutorLocalPaths(t *testing.T) {
	cells := testCells(t)
	closure := Cell{
		Spec:  cells[0].Spec,
		Build: func() (*spg.Analysis, error) { return streamitBase(cells[0].Spec.Workload.StreamIt) },
	}
	mixed := append([]Cell{closure}, cells[1:]...)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	var dispatched atomic.Int64
	refuse := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dispatched.Add(1)
		http.Error(w, "should not be called", http.StatusTeapot)
	}))
	t.Cleanup(refuse.Close)

	ex := &ShardExecutor{Workers: []string{refuse.URL}}
	got, err := Run(context.Background(), ex, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "closure-cells", got, want)
	if dispatched.Load() != 0 {
		t.Error("closure-backed campaign was dispatched remotely")
	}

	noWorkers := &ShardExecutor{}
	got, err = Run(context.Background(), noWorkers, Campaign{Cells: mixed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "no-workers", got, want)

	var ran atomic.Int64
	if err := noWorkers.Execute(context.Background(), 7, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 7 {
		t.Errorf("plain Execute ran %d of 7", ran.Load())
	}
}

// TestShardExecutorCancellation: cancelling the campaign context surfaces
// context.Canceled and does not fall back the in-flight ranges.
func TestShardExecutorCancellation(t *testing.T) {
	cells := testCells(t)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body) // unblock the server's close detection
		once.Do(cancel)                    // first range to arrive kills the campaign
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); hung.Close() })
	ex := &ShardExecutor{Workers: []string{hung.URL}, Shards: 2}
	_, err := Run(ctx, ex, Campaign{Cells: cells})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shard run returned %v", err)
	}
	if n := ex.Fallbacks(); n != 0 {
		t.Errorf("cancellation triggered %d local fallbacks", n)
	}
}

// TestShardRange: the partition is balanced, contiguous and exhaustive.
func TestShardRange(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {4, 4}, {7, 2}, {1, 1}, {100, 16}} {
		prevEnd := 0
		for k := 0; k < tc.shards; k++ {
			start, end := shardRange(tc.n, tc.shards, k)
			if start != prevEnd {
				t.Fatalf("n=%d shards=%d: range %d starts at %d, want %d", tc.n, tc.shards, k, start, prevEnd)
			}
			if size := end - start; size < tc.n/tc.shards || size > tc.n/tc.shards+1 {
				t.Fatalf("n=%d shards=%d: range %d unbalanced (%d cells)", tc.n, tc.shards, k, size)
			}
			prevEnd = end
		}
		if prevEnd != tc.n {
			t.Fatalf("n=%d shards=%d: ranges end at %d", tc.n, tc.shards, prevEnd)
		}
	}
}

// TestExecuteSpecsSanitizesCacheKeys: a wire spec claiming another family's
// cache key must not poison the shared cache — the worker path re-derives
// the key from the workload content, so the later honest FFT solve still
// sees FFT, bit-identically to a cache-free run.
func TestExecuteSpecsSanitizesCacheKeys(t *testing.T) {
	cache := NewAnalysisCache(8)
	poison := CellSpec{
		Key:      "poison",
		CacheKey: "streamit/FFT",                // claims FFT's family...
		Workload: WorkloadSpec{StreamIt: "DCT"}, // ...but names DCT
		ScaleCCR: true, CCR: 1,
		P: 2, Q: 2,
		Opts: core.Options{Seed: 1},
	}
	if _, err := ExecuteSpecs(context.Background(), nil, []CellSpec{poison}, cache, nil); err != nil {
		t.Fatal(err)
	}
	fft := CellSpec{
		Key:      "fft",
		CacheKey: "streamit/FFT",
		Workload: WorkloadSpec{StreamIt: "FFT"},
		ScaleCCR: true, CCR: 1,
		P: 2, Q: 2,
		Opts: core.Options{Seed: 2},
	}.Cell()
	got := Solve(fft, cache)
	want := Solve(fft, nil)
	requireSameResults(t, "post-poison-fft", []CellResult{got}, []CellResult{want})

	// Equal workloads still share one derived key (sharing is preserved).
	k1, err := (WorkloadSpec{StreamIt: "DCT"}).FamilyKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := (WorkloadSpec{StreamIt: "DCT"}).FamilyKey()
	if err != nil || k1 != k2 {
		t.Fatalf("family keys not stable: %q vs %q (%v)", k1, k2, err)
	}
	k3, err := (WorkloadSpec{Random: &RandomWorkload{N: 10, Elevation: 2, Seed: 5}}).FamilyKey()
	if err != nil || k3 == k1 {
		t.Fatalf("distinct workloads share key %q (%v)", k3, err)
	}
}
