package engine

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spgcmp/internal/chaos"
)

// TestRetryDelayDeterministic: the backoff is a pure function of (seed,
// chunk, attempt) — replayable, jittered within [0.5, 1.5) of the exponential
// curve, and clamped.
func TestRetryDelayDeterministic(t *testing.T) {
	base, max := 10*time.Millisecond, 200*time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := retryDelay(42, 3, attempt, base, max)
		d2 := retryDelay(42, 3, attempt, base, max)
		if d1 != d2 {
			t.Fatalf("attempt %d: retryDelay not deterministic: %v vs %v", attempt, d1, d2)
		}
		exp := base << uint(attempt-1)
		lo, hi := exp/2, max
		if exp > max {
			lo = max / 2
		}
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, lo, hi)
		}
	}
	if d := retryDelay(7, 0, 1, 0, 0); d < DefaultRetryBaseDelay/2 || d > DefaultRetryMaxDelay {
		t.Fatalf("zero-config delay %v outside defaults", d)
	}
	if retryDelay(1, 5, 2, base, max) == retryDelay(2, 5, 2, base, max) &&
		retryDelay(1, 6, 2, base, max) == retryDelay(2, 6, 2, base, max) &&
		retryDelay(1, 7, 2, base, max) == retryDelay(2, 7, 2, base, max) {
		t.Fatal("jitter ignores the seed")
	}
}

// TestDispatcherChaosEquivalence is the acceptance bar of the resilience
// layer: under every injected fault class — dropped connections, delays
// pushed past the request deadline, 5xx answers, garbage payloads, truncated
// bodies — a dispatched campaign returns byte-identical results to the
// PoolExecutor, with retries bounded by the campaign's budget.
func TestDispatcherChaosEquivalence(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		rules   []chaos.Rule
		timeout time.Duration // dispatcher RequestTimeout (0 = default)
	}{
		{
			name:  "drop",
			rules: []chaos.Rule{{Fault: chaos.Drop, Path: "/v1/cells/execute", Every: 2}},
		},
		{
			name:    "delay-past-deadline",
			rules:   []chaos.Rule{{Fault: chaos.Delay, Delay: 2 * time.Second, Path: "/v1/cells/execute", Every: 2, Count: 3}},
			timeout: 150 * time.Millisecond,
		},
		{
			name:  "5xx",
			rules: []chaos.Rule{{Fault: chaos.Status, Code: 500, Path: "/v1/cells/execute", Every: 2}},
		},
		{
			name:  "garbage",
			rules: []chaos.Rule{{Fault: chaos.Garbage, Path: "/v1/cells/execute", Every: 2}},
		},
		{
			name:  "partial-body",
			rules: []chaos.Rule{{Fault: chaos.Truncate, Path: "/v1/cells/execute", Every: 2}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w1 := newClusterWorker(t, cache)
			w2 := newClusterWorker(t, cache)
			faults := &chaos.Transport{Seed: 11, Rules: tc.rules}
			d := &Dispatcher{
				Registry:       NewWorkerRegistry(RegistryConfig{}, w1.URL(), w2.URL()),
				ChunkCells:     1,
				Client:         &http.Client{Transport: faults},
				RequestTimeout: tc.timeout,
				Seed:           11,
				RetryBaseDelay: time.Millisecond,
				RetryMaxDelay:  20 * time.Millisecond,
			}
			got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, tc.name, got, want)
			if faults.Injected() == 0 {
				t.Fatal("no faults were injected; the schedule tested nothing")
			}
			st := d.Stats()
			if st.RetryBudget == 0 {
				t.Fatalf("stats carry no retry budget: %+v", st)
			}
			if st.Retries > st.RetryBudget {
				t.Fatalf("retries %d exceed budget %d", st.Retries, st.RetryBudget)
			}
			if st.Retries == 0 && st.LocalFallbacks == 0 {
				t.Fatalf("faults injected but neither retried nor fell back: %+v", st)
			}
		})
	}
}

// TestDispatcherRetryBudgetExhaustion: once the campaign's retry budget is
// spent, failed chunks stop being re-dispatched and degrade to the local pool
// — still byte-identical, with the spend visible in the stats.
func TestDispatcherRetryBudgetExhaustion(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	w := newClusterWorker(t, cache)
	// Every execute request fails: each failure either spends a retry or
	// exhausts its chunk.
	faults := &chaos.Transport{Rules: []chaos.Rule{{Fault: chaos.Drop, Path: "/v1/cells/execute", Every: 1}}}
	d := &Dispatcher{
		Registry:       NewWorkerRegistry(RegistryConfig{DeadAfter: 100}, w.URL()),
		ChunkCells:     1,
		Client:         &http.Client{Transport: faults},
		RetryBudget:    2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "budget-exhaustion", got, want)
	st := d.Stats()
	if st.RetryBudget != 2 {
		t.Errorf("retry budget = %d, want 2", st.RetryBudget)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want the full budget of 2", st.Retries)
	}
	if st.LocalFallbacks != int64(len(cells)) {
		t.Errorf("local fallbacks = %d, want all %d chunks", st.LocalFallbacks, len(cells))
	}
	if st.RemoteChunks != 0 {
		t.Errorf("remote chunks = %d with every request dropped", st.RemoteChunks)
	}
}

// TestDispatcherChaosBreaker: persistent faults trip the worker's circuit
// breaker (open in the registry snapshot), and a probe against the recovered
// worker closes it again — the dispatch path and the probe path drive one
// machine.
func TestDispatcherChaosBreaker(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	w := newClusterWorker(t, cache)
	faults := &chaos.Transport{Rules: []chaos.Rule{{Fault: chaos.Status, Code: 502, Path: "/v1/cells/execute", Every: 1, Count: 3}}}
	reg := NewWorkerRegistry(RegistryConfig{DeadAfter: 3, ProbeTimeout: time.Second}, w.URL())
	d := &Dispatcher{
		Registry:       reg,
		ChunkCells:     1,
		Client:         &http.Client{Transport: faults},
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	}
	if _, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Three consecutive injected 502s opened the breaker mid-campaign. (The
	// rule's Count has expired by now, so later probes bypass the faults.)
	infos := reg.Workers()
	if len(infos) != 1 || infos[0].Breaker == BreakerClosed {
		t.Fatalf("breaker after persistent faults = %+v, want open", infos)
	}
	reg.Probe(context.Background())
	if got := breakerOf(t, reg, w.URL()); got != BreakerClosed {
		t.Fatalf("breaker after recovery probe = %v, want closed", got)
	}
}

// TestDispatcherSkipsDrainingWorker: a draining worker is ineligible for new
// chunks — the other worker serves the whole campaign — without being marked
// dead.
func TestDispatcherSkipsDrainingWorker(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	want, err := Run(context.Background(), &PoolExecutor{}, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	draining := newClusterWorker(t, cache)
	steady := newClusterWorker(t, cache)
	reg := NewWorkerRegistry(RegistryConfig{}, draining.URL(), steady.URL())
	if !reg.MarkDraining(draining.URL(), true) {
		t.Fatal("MarkDraining failed")
	}
	d := &Dispatcher{Registry: reg, ChunkCells: 1}
	got, err := Run(context.Background(), d, Campaign{Cells: cells, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "draining", got, want)
	if draining.servedCount() != 0 {
		t.Errorf("draining worker served %d chunks", draining.servedCount())
	}
	if steady.servedCount() == 0 {
		t.Error("steady worker served nothing")
	}
	if st := d.Stats(); st.LocalFallbacks != 0 {
		t.Errorf("%d local fallbacks despite a healthy peer", st.LocalFallbacks)
	}
	if s := workerState(t, reg, draining.URL()); s != WorkerHealthy {
		t.Errorf("draining worker state %v, want healthy (drain is not death)", s)
	}
}

// TestDispatcherDeadlineHeader: every dispatched execute request advertises
// its effective budget — min(campaign deadline, request timeout) — via
// DeadlineHeader, and the advertised value honors whichever is tighter.
func TestDispatcherDeadlineHeader(t *testing.T) {
	cells := testCells(t)
	cache := NewAnalysisCache(16)
	w := newClusterWorker(t, cache)

	var mu sync.Mutex
	var budgets []time.Duration
	proxy := httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			b, ok, err := ParseDeadlineHeader(r.Header)
			if err != nil || !ok {
				t.Errorf("execute request without a valid deadline header: ok=%v err=%v", ok, err)
			} else {
				mu.Lock()
				budgets = append(budgets, b)
				mu.Unlock()
			}
		}
		w.srv.Config.Handler.ServeHTTP(wr, r)
	}))
	t.Cleanup(proxy.Close)

	d := &Dispatcher{
		Registry:       NewWorkerRegistry(RegistryConfig{}, proxy.URL),
		ChunkCells:     1,
		RequestTimeout: 5 * time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if _, err := Run(ctx, d, Campaign{Cells: cells, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(budgets) != len(cells) {
		t.Fatalf("recorded %d deadline budgets for %d chunks", len(budgets), len(cells))
	}
	for _, b := range budgets {
		// The 5s request timeout is tighter than the 90s campaign deadline.
		if b <= 0 || b > 5*time.Second {
			t.Errorf("advertised budget %v, want within (0, 5s]", b)
		}
	}
}
