package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// testCells builds a small StreamIt-backed campaign without importing the
// experiments adapters (which sit above this package): two applications,
// two CCR variants each, on a 2x2 grid. The cells are purely declarative
// (wire-codable specs resolved through the workload registry), so shard
// tests can reuse them.
func testCells(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, name := range []string{"DCT", "FFT"} {
		a, err := streamit.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ccr := range []float64{a.CCR, 1} {
			cells = append(cells, CellSpec{
				Key:      fmt.Sprintf("%s/ccr=%g", a.Name, ccr),
				CacheKey: "streamit/" + a.Name,
				Workload: WorkloadSpec{StreamIt: a.Name},
				ScaleCCR: true,
				CCR:      ccr,
				P:        2,
				Q:        2,
				Opts:     core.Options{Seed: 40 + int64(len(cells)), DPA1DMaxStates: 60_000},
			}.Cell())
		}
	}
	return cells
}

func requireSameResults(t *testing.T, label string, got, want []CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key != w.Key || g.Feasible != w.Feasible || g.Index != w.Index {
			t.Fatalf("%s[%d]: identity (%s,%v,%d) vs (%s,%v,%d)",
				label, i, g.Key, g.Feasible, g.Index, w.Key, w.Feasible, w.Index)
		}
		if math.Float64bits(g.Result.Period) != math.Float64bits(w.Result.Period) {
			t.Errorf("%s[%s]: period %g != %g", label, g.Key, g.Result.Period, w.Result.Period)
		}
		for j, o := range g.Result.Outcomes {
			wo := w.Result.Outcomes[j]
			if o.Heuristic != wo.Heuristic || o.OK != wo.OK || o.ActiveCores != wo.ActiveCores ||
				(o.OK && math.Float64bits(o.Energy) != math.Float64bits(wo.Energy)) {
				t.Errorf("%s[%s] %s: outcome %+v != %+v", label, g.Key, o.Heuristic, o, wo)
			}
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts: the same campaign must yield
// bit-identical indexed results at every worker count, with and without a
// warm campaign cache — the engine half of the acceptance bar.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := testCells(t)
	want, err := Run(context.Background(), &PoolExecutor{Workers: 1}, Campaign{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := Run(context.Background(), &PoolExecutor{Workers: workers}, Campaign{Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, fmt.Sprintf("workers=%d", workers), got, want)
	}

	cache := NewAnalysisCache(8)
	for _, pass := range []string{"cold", "warm"} {
		for _, workers := range []int{1, 4} {
			got, err := Run(context.Background(), &PoolExecutor{Workers: workers}, Campaign{Cells: cells, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, fmt.Sprintf("%s-cache/workers=%d", pass, workers), got, want)
		}
	}
}

// TestRunSharesFamilyBasesWithoutCache: with the campaign layer disabled,
// cells sharing a CacheKey must still resolve one base per family within the
// run (the legacy loops' intrinsic sharing), while uniquely-keyed cells are
// built directly.
func TestRunSharesFamilyBasesWithoutCache(t *testing.T) {
	var builds atomic.Int64
	mk := func(key string) Cell {
		return Cell{
			Spec: CellSpec{Key: key + "/cell", CacheKey: key, P: 2, Q: 2},
			Build: func() (*spg.Analysis, error) {
				builds.Add(1)
				g, _ := spg.Chain([]float64{0.01, 0.01}, []float64{0.01})
				return spg.NewAnalysis(g), nil
			},
		}
	}
	shared1, shared2 := mk("fam"), mk("fam")
	shared2.Spec.Key = "fam/cell2"
	unique := mk("solo")
	if _, err := Run(context.Background(), &PoolExecutor{Workers: 1}, Campaign{Cells: []Cell{shared1, shared2, unique}}); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("disabled-cache run built %d analyses, want 2 (one shared family + one unique)", got)
	}
}

// TestRunBuildErrors: a failing builder surfaces as the cell's Err without
// aborting sibling cells.
func TestRunBuildErrors(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Spec: CellSpec{Key: "bad", P: 2, Q: 2}, Build: func() (*spg.Analysis, error) { return nil, boom }},
		testCells(t)[0],
	}
	results, err := Run(context.Background(), &PoolExecutor{Workers: 2}, Campaign{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, boom) {
		t.Errorf("bad cell error = %v, want boom", results[0].Err)
	}
	if results[1].Err != nil || !results[1].Feasible {
		t.Errorf("sibling cell was disturbed: %+v", results[1])
	}
}

// TestPoolExecutorContract: every index runs exactly once at any worker
// count; a cancelled context stops scheduling and surfaces the error.
func TestPoolExecutorContract(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		var counts [n]atomic.Int64
		ex := &PoolExecutor{Workers: workers}
		if err := ex.Execute(context.Background(), n, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	ex := &PoolExecutor{Workers: 2}
	err := ex.Execute(ctx, 10_000, func(i int) {
		ran.Add(1)
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Execute returned %v", err)
	}
	if got := ran.Load(); got == 0 || got == 10_000 {
		t.Errorf("cancellation ran %d cells, want some but not all", got)
	}
}

// TestOnCellObservesEveryResult: the progress hook sees each completed cell
// exactly once.
func TestOnCellObservesEveryResult(t *testing.T) {
	cells := testCells(t)
	var mu sync.Mutex
	seen := make(map[string]int)
	_, err := Run(context.Background(), &PoolExecutor{Workers: 3}, Campaign{
		Cells: cells,
		OnCell: func(r CellResult) {
			mu.Lock()
			seen[r.Key]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("OnCell saw %d distinct cells, want %d", len(seen), len(cells))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %s observed %d times", k, n)
		}
	}
}

// TestAnalysisCacheByteBound: with a byte bound configured, completed
// entries are evicted LRU-first until the footprint estimate fits, and the
// stats expose the tracked account.
func TestAnalysisCacheByteBound(t *testing.T) {
	build := func(n int) func() (*spg.Analysis, error) {
		return func() (*spg.Analysis, error) {
			weights := make([]float64, n)
			vols := make([]float64, n-1)
			for i := range weights {
				weights[i] = 0.01
			}
			g, err := spg.Chain(weights, vols)
			if err != nil {
				return nil, err
			}
			an := spg.NewAnalysis(g)
			an.Reachability() // force some footprint beyond the graph
			return an, nil
		}
	}
	probe, err := build(64)()
	if err != nil {
		t.Fatal(err)
	}
	one := probe.MemoryFootprint()
	if one <= 0 {
		t.Fatalf("footprint of a built analysis = %d", one)
	}

	// Room for about two entries: inserting a third must evict the LRU one.
	c := NewAnalysisCacheBytes(0, one*2+one/2)
	for _, key := range []string{"a", "b", "c"} {
		if _, err := c.Get(key, build(64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("byte-bounded cache holds %d entries, want 2", got)
	}
	if _, err := c.Get("a", func() (*spg.Analysis, error) {
		return spg.NewAnalysis(nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bytes <= 0 || st.Bytes > 3*one {
		t.Errorf("tracked bytes %d implausible for bound %d", st.Bytes, one*2+one/2)
	}
	if st.Misses < 3 {
		t.Errorf("misses = %d, want >= 3", st.Misses)
	}

	// An entry-only cache still reports estimated bytes in Stats.
	ec := NewAnalysisCache(4)
	if _, err := ec.Get("k", build(32)); err != nil {
		t.Fatal(err)
	}
	if st := ec.Stats(); st.Bytes <= 0 || st.Hits != 0 || st.Misses != 1 {
		t.Errorf("entry-bound stats = %+v", st)
	}
}

// TestSolveMatchesRun: the single-cell entry point used by /v1/map answers
// bit-identically to the same cell inside a campaign.
func TestSolveMatchesRun(t *testing.T) {
	cells := testCells(t)[:1]
	want, err := Run(context.Background(), nil, Campaign{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	got := Solve(cells[0], NewAnalysisCache(4))
	requireSameResults(t, "solve-vs-run", []CellResult{got}, want)
}
