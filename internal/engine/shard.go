package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WireCellResult is the wire form of a CellResult: the error crosses process
// boundaries as its message, and the index is positional (a worker answers a
// spec range in request order; the coordinator re-derives absolute indexes
// from the range it dispatched, so a confused worker can never scatter
// results into foreign cells).
type WireCellResult struct {
	Key      string         `json:"key"`
	Feasible bool           `json:"feasible"`
	Result   InstanceResult `json:"result"`
	Error    string         `json:"error,omitempty"`
}

// Wire converts the result for transport.
func (r CellResult) Wire() WireCellResult {
	w := WireCellResult{Key: r.Key, Feasible: r.Feasible, Result: r.Result}
	if r.Err != nil {
		w.Error = r.Err.Error()
	}
	return w
}

// CellResult rebuilds the executable-side result at the given absolute cell
// index.
func (w WireCellResult) CellResult(index int) CellResult {
	r := CellResult{Index: index, Key: w.Key, Feasible: w.Feasible, Result: w.Result}
	if w.Error != "" {
		r.Err = errors.New(w.Error)
	}
	return r
}

// ExecuteCellsRequest is the body of the worker endpoint
// POST /v1/cells/execute: a range of cell specs to solve.
type ExecuteCellsRequest struct {
	Cells []CellSpec `json:"cells"`
}

// ExecuteCellsResponse answers an ExecuteCellsRequest with one result per
// requested cell, in request order.
type ExecuteCellsResponse struct {
	Results []WireCellResult `json:"results"`
}

// ExecuteSpecs solves a batch of wire-received cell specs on the local
// engine — the worker half of the shard protocol, shared by the service's
// /v1/cells/execute handler. Results are returned in request order. The
// executor must not be a CampaignExecutor pointing back at this process
// (callers pass their local pool).
//
// Because the specs cross a trust boundary, their CacheKeys are not honored
// as sent: every caching cell resolves under the canonical FamilyKey derived
// from its workload content, so a request can never alias another family's
// entry in the shared cache (sharing semantics are unchanged — equal
// workloads still share one base). An empty CacheKey still opts out.
//
// store, when enabled, is the worker's own content-addressed result store:
// a dispatched cell this worker has already solved is answered from it
// without re-solving (the content hash is derived from the spec locally, so
// a request can no more alias a foreign outcome than a foreign analysis).
func ExecuteSpecs(ctx context.Context, ex Executor, specs []CellSpec, cache *AnalysisCache, store *ResultStore) ([]WireCellResult, error) {
	cells := make([]Cell, len(specs))
	for i, sp := range specs {
		if sp.CacheKey != "" {
			if key, err := sp.Workload.FamilyKey(); err == nil {
				sp.CacheKey = key
			} else {
				sp.CacheKey = "" // malformed workload: Build will report it
			}
		}
		cells[i] = sp.Cell()
	}
	results, err := Run(ctx, ex, Campaign{Cells: cells, Cache: cache, Store: store})
	if err != nil {
		return nil, err
	}
	wire := make([]WireCellResult, len(results))
	for i, r := range results {
		wire[i] = r.Wire()
	}
	return wire, nil
}

// ShardExecutor distributes a campaign across remote worker processes: the
// cell index space is partitioned into contiguous ranges, each range's specs
// are POSTed to a worker's /v1/cells/execute endpoint, and the wire results
// are reassembled at their absolute indexes — order-independent, exactly as
// the PoolExecutor's. Cells are deterministic, so a range whose worker
// fails, times out or dies mid-request is simply re-executed locally
// (LocalFallback pool) with bit-identical results: a shard run can degrade
// worker by worker all the way down to a plain local run without changing a
// single bit of the campaign's outcome.
//
// Campaigns containing closure-backed cells (Cell.Build set) cannot cross
// process boundaries and run entirely on the local pool.
type ShardExecutor struct {
	// Workers are the base URLs of the worker processes
	// (e.g. "http://10.0.0.2:8080"). Empty runs everything locally.
	Workers []string
	// Shards is the number of index ranges to partition a campaign into;
	// ranges are assigned to workers round-robin. 0 selects len(Workers).
	// More shards than workers pipelines ranges per worker and narrows the
	// blast radius of one failed request.
	Shards int
	// Client issues the worker requests; nil selects http.DefaultClient.
	Client *http.Client
	// RequestTimeout bounds one range request (default DefaultRequestTimeout).
	// On expiry the range falls back to local execution.
	RequestTimeout time.Duration
	// LocalFallback configures the in-process pool executing failed ranges
	// and non-wire-codable campaigns; its zero value runs at GOMAXPROCS.
	LocalFallback PoolExecutor
	// OnFallback, when set, observes every range that fell back to local
	// execution (called from dispatch goroutines, possibly concurrently).
	OnFallback func(start, end int, err error)

	// fallbacks counts ranges executed locally after a worker failure.
	fallbacks atomic.Int64
}

// Fallbacks returns how many ranges fell back to local execution since the
// executor was created — the coordinator's health signal for its workers.
func (s *ShardExecutor) Fallbacks() int64 { return s.fallbacks.Load() }

// Clone returns an executor with the same configuration and fresh counters.
// A coordinator serving many campaigns clones its configured executor per
// job so each job accounts its own fallbacks.
func (s *ShardExecutor) Clone() *ShardExecutor {
	return &ShardExecutor{
		Workers:        s.Workers,
		Shards:         s.Shards,
		Client:         s.Client,
		RequestTimeout: s.RequestTimeout,
		LocalFallback:  s.LocalFallback,
		OnFallback:     s.OnFallback,
	}
}

// Execute implements the plain Executor contract. Without access to the
// cells an index space cannot be shipped anywhere, so this path runs
// entirely on the local fallback pool; engine.Run always hands a
// ShardExecutor the cells via ExecuteCampaign instead.
func (s *ShardExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	return s.LocalFallback.Execute(ctx, n, run)
}

// ExecuteCampaign implements CampaignExecutor: partition, dispatch, reassemble,
// fall back.
func (s *ShardExecutor) ExecuteCampaign(ctx context.Context, cells []Cell, solve func(i int) CellResult, record func(CellResult)) error {
	n := len(cells)
	remote := len(s.Workers) > 0
	for _, c := range cells {
		if !c.WireCodable() {
			remote = false
			break
		}
	}
	if !remote {
		return s.LocalFallback.Execute(ctx, n, func(i int) { record(solve(i)) })
	}
	shards := s.Shards
	if shards <= 0 {
		shards = len(s.Workers)
	}
	if shards > n {
		shards = n
	}
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		start, end := shardRange(n, shards, k)
		worker := s.Workers[k%len(s.Workers)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runRange(ctx, worker, cells[start:end], start, solve, record)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// shardRange returns the half-open index range of shard k when n cells are
// split into `shards` balanced contiguous ranges (the first n%shards ranges
// hold one extra cell).
func shardRange(n, shards, k int) (start, end int) {
	size, rem := n/shards, n%shards
	start = k*size + min(k, rem)
	end = start + size
	if k < rem {
		end++
	}
	return start, end
}

// runRange executes one contiguous range: remotely when the worker answers,
// locally otherwise. base is the absolute index of cells[0].
func (s *ShardExecutor) runRange(ctx context.Context, worker string, cells []Cell, base int, solve func(i int) CellResult, record func(CellResult)) {
	results, err := s.dispatch(ctx, worker, cells)
	if err == nil {
		for j, w := range results {
			record(w.CellResult(base + j))
		}
		return
	}
	if ctx.Err() != nil {
		// The campaign was cancelled, not the worker lost: leave the range
		// unstarted, as the Executor contract requires.
		return
	}
	s.fallbacks.Add(1)
	if s.OnFallback != nil {
		s.OnFallback(base, base+len(cells), err)
	}
	// Deterministic cells make the retry safe; running it on the fallback
	// pool means a lost worker costs its share of the cluster's throughput,
	// not this process's parallelism.
	_ = s.LocalFallback.Execute(ctx, len(cells), func(j int) { record(solve(base + j)) })
}

// dispatch ships one spec range to a worker. Any transport error, non-200
// status, timeout or malformed response makes the range fall back.
func (s *ShardExecutor) dispatch(ctx context.Context, worker string, cells []Cell) ([]WireCellResult, error) {
	specs := make([]CellSpec, len(cells))
	for i, c := range cells {
		specs[i] = c.Spec
	}
	return postCellRange(ctx, s.Client, worker, specs, s.RequestTimeout)
}

// DefaultRequestTimeout bounds one /v1/cells/execute range request when the
// sender configured no explicit RequestTimeout (a range is many full
// period-selection solves, so the default is generous). It is the sender's
// own patience, not the campaign's: when the caller propagated a tighter
// deadline through ctx, context.WithTimeout below keeps the earlier of the
// two, so the effective budget is min(campaign deadline, request timeout).
const DefaultRequestTimeout = 10 * time.Minute

// postCellRange ships one spec range to a worker's /v1/cells/execute and
// validates the response shape: a result per cell, keys matching in order —
// the sender half of the shard protocol, shared by the ShardExecutor and the
// Dispatcher. A timeout <= 0 selects DefaultRequestTimeout; a nil client
// selects http.DefaultClient. The request's effective deadline — the earlier
// of ctx's propagated deadline and the timeout — is advertised to the worker
// via DeadlineHeader so it can refuse ranges it cannot finish in time.
func postCellRange(ctx context.Context, client *http.Client, worker string, specs []CellSpec, timeout time.Duration) ([]WireCellResult, error) {
	body, err := json.Marshal(ExecuteCellsRequest{Cells: specs})
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	url := strings.TrimRight(worker, "/") + "/v1/cells/execute"
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	stampDeadline(req)
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker %s answered %s: %s", worker, resp.Status, bytes.TrimSpace(msg))
	}
	var out ExecuteCellsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("worker %s: bad response: %w", worker, err)
	}
	if len(out.Results) != len(specs) {
		return nil, fmt.Errorf("worker %s answered %d results for %d cells", worker, len(out.Results), len(specs))
	}
	for i := range out.Results {
		if out.Results[i].Key != specs[i].Key {
			return nil, fmt.Errorf("worker %s: result %d keyed %q, want %q", worker, i, out.Results[i].Key, specs[i].Key)
		}
	}
	return out.Results, nil
}
