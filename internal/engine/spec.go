package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"spgcmp/internal/core"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// CellSpec is the declarative, JSON-serializable identity of one campaign
// cell: everything solveCell needs — workload identity, CCR, grid, period
// divisions, heuristic options — as plain data. Two equal specs describe the
// same work and, because workload synthesis is seeded, produce bit-identical
// results wherever they execute; that is what lets the ShardExecutor ship
// specs to remote workers and treat retries as free. CellSpec is the wire
// form of a Cell; a Cell without a closure override is exactly its spec.
type CellSpec struct {
	// Key addresses the cell within its campaign (unique per campaign).
	Key string `json:"key"`
	// CacheKey is the workload family identity consulted in the
	// AnalysisCache — the base (pre-CCR-scaling) analysis shared by every
	// cell of the family. Empty opts the cell out of analysis sharing.
	CacheKey string `json:"cache_key,omitempty"`
	// Workload identifies the workload; the registry rebuilds the seeded
	// instance from it.
	Workload WorkloadSpec `json:"workload"`
	// ScaleCCR derives this cell's analysis as the CCR scale-family member
	// of the base; false solves the base as-is (random-SPG cells bake their
	// CCR into generation instead).
	ScaleCCR bool    `json:"scale_ccr,omitempty"`
	CCR      float64 `json:"ccr,omitempty"`
	// P, Q select the CMP grid (the paper's XScale model).
	P int `json:"p"`
	Q int `json:"q"`
	// MaxDivisions caps the period-selection protocol's divisions; 0 selects
	// the paper's DefaultMaxDivisions.
	MaxDivisions int `json:"max_divisions,omitempty"`
	// Opts configures the heuristic set; Opts.Seed drives the Random
	// heuristic of this cell.
	Opts core.Options `json:"opts"`
}

// Validate checks that the spec is well-formed and its workload kind is
// registered, without building anything.
func (s CellSpec) Validate() error {
	if s.P < 1 || s.Q < 1 {
		return fmt.Errorf("engine: cell %q has invalid grid %dx%d", s.Key, s.P, s.Q)
	}
	if _, _, err := s.Workload.kindParams(); err != nil {
		return fmt.Errorf("engine: cell %q: %w", s.Key, err)
	}
	return nil
}

// Cell wraps the spec into an executable cell.
func (s CellSpec) Cell() Cell { return Cell{Spec: s} }

func (s CellSpec) maxDivisions() int {
	if s.MaxDivisions > 0 {
		return s.MaxDivisions
	}
	return DefaultMaxDivisions
}

// WorkloadSpec declaratively identifies one workload. Exactly one variant
// must be set: a StreamIt application name (Table 1), random-SPG generation
// parameters, an inline SPG graph, or a custom registered kind with raw
// parameters. The built-in variants resolve through the same registry as
// custom kinds, so every workload a cell can name is rebuildable from its
// JSON form alone.
type WorkloadSpec struct {
	// StreamIt names a Table 1 application; the cell solves its base
	// (pre-CCR-scaling) synthesis, with the CCR variant derived via
	// CellSpec.ScaleCCR.
	StreamIt string `json:"streamit,omitempty"`
	// Random regenerates a seeded random SPG.
	Random *RandomWorkload `json:"random,omitempty"`
	// Inline carries the SPG itself (the spg JSON graph form) for workloads
	// that have no generative identity.
	Inline *spg.Graph `json:"inline,omitempty"`
	// Kind/Params name a custom workload kind registered with
	// RegisterWorkload.
	Kind   string          `json:"kind,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
}

// RandomWorkload are the randspg generation parameters of one random SPG;
// the same values always regenerate the identical graph.
type RandomWorkload struct {
	N         int     `json:"n"`
	Elevation int     `json:"elevation"`
	Seed      int64   `json:"seed"`
	CCR       float64 `json:"ccr,omitempty"`
	WeightMin float64 `json:"weight_min,omitempty"`
	WeightMax float64 `json:"weight_max,omitempty"`
}

// kindParams lowers the spec onto the registry's (kind, params) plane. The
// built-in variants marshal their typed parameters; a custom kind passes
// Kind/Params through verbatim.
func (w WorkloadSpec) kindParams() (string, json.RawMessage, error) {
	set := 0
	if w.StreamIt != "" {
		set++
	}
	if w.Random != nil {
		set++
	}
	if w.Inline != nil {
		set++
	}
	if w.Kind != "" {
		set++
	}
	if set != 1 {
		return "", nil, fmt.Errorf("engine: workload spec must set exactly one variant, has %d", set)
	}
	var (
		kind string
		v    any
	)
	switch {
	case w.StreamIt != "":
		kind, v = KindStreamIt, w.StreamIt
	case w.Random != nil:
		kind, v = KindRandom, w.Random
	case w.Inline != nil:
		kind, v = KindInline, w.Inline
	default:
		if lookupWorkload(w.Kind) == nil {
			return "", nil, fmt.Errorf("engine: unknown workload kind %q", w.Kind)
		}
		return w.Kind, w.Params, nil
	}
	params, err := json.Marshal(v)
	if err != nil {
		return "", nil, err
	}
	return kind, params, nil
}

// FamilyKey derives the canonical campaign-cache identity from the workload
// itself — a pure function of the spec's content, so two specs share a key
// exactly when they describe the same workload family. ExecuteSpecs replaces
// client-supplied cache keys with it, which is what keeps a wire request
// from ever aliasing a foreign family in the shared cache (a spec claiming
// FFT's key while naming DCT would otherwise poison every later FFT solve
// on that worker). It is the single key authority: the experiment
// enumerators delegate here, so a process serving both campaign traffic and
// shard ranges warms exactly one cache entry per family.
func (w WorkloadSpec) FamilyKey() (string, error) {
	kind, params, err := w.kindParams()
	if err != nil {
		return "", err
	}
	switch kind {
	case KindStreamIt:
		var name string
		if err := json.Unmarshal(params, &name); err != nil {
			return "", err
		}
		a, err := streamit.ByName(name)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("streamit/%s/n=%d/y=%d/x=%d", a.Name, a.N, a.YMax, a.XMax), nil
	case KindRandom:
		var rw RandomWorkload
		if err := json.Unmarshal(params, &rw); err != nil {
			return "", err
		}
		key := fmt.Sprintf("randspg/n=%d/y=%d/seed=%d/ccr=%x", rw.N, rw.Elevation, rw.Seed, rw.CCR)
		// Non-default weight bounds change the generated graph, so they are
		// part of the identity; the default keeps the legacy key unchanged.
		if rw.WeightMin != 0 || rw.WeightMax != 0 {
			key += fmt.Sprintf("/w=%x-%x", rw.WeightMin, rw.WeightMax)
		}
		return key, nil
	default:
		sum := sha256.Sum256(params)
		return "spec/" + kind + "/" + hex.EncodeToString(sum[:16]), nil
	}
}

// Build deterministically synthesizes the workload's family-base analysis by
// resolving the spec through the workload registry.
func (w WorkloadSpec) Build() (*spg.Analysis, error) {
	kind, params, err := w.kindParams()
	if err != nil {
		return nil, err
	}
	b := lookupWorkload(kind)
	if b == nil {
		return nil, fmt.Errorf("engine: unknown workload kind %q", kind)
	}
	return b(params)
}

// Built-in workload kinds.
const (
	KindStreamIt = "streamit"
	KindRandom   = "random"
	KindInline   = "inline"
)

// WorkloadBuilder synthesizes the family-base analysis of one workload kind
// from its JSON parameters. Builders must be pure: the same parameters must
// always produce a bit-identical graph, because a spec may be rebuilt on any
// worker of a shard run, several times (retries after worker failures).
type WorkloadBuilder func(params json.RawMessage) (*spg.Analysis, error)

var workloadRegistry = struct {
	mu sync.RWMutex
	m  map[string]WorkloadBuilder
}{m: map[string]WorkloadBuilder{
	KindStreamIt: buildStreamIt,
	KindRandom:   buildRandom,
	KindInline:   buildInline,
}}

// RegisterWorkload adds a custom workload kind to the registry, making cells
// naming it wire-codable. Registering an empty kind, a nil builder or a
// duplicate kind panics — kinds are program wiring, not data. For a kind to
// work across a shard cluster every worker process must register it too.
func RegisterWorkload(kind string, b WorkloadBuilder) {
	if kind == "" || b == nil {
		panic("engine: RegisterWorkload with empty kind or nil builder")
	}
	workloadRegistry.mu.Lock()
	defer workloadRegistry.mu.Unlock()
	if _, dup := workloadRegistry.m[kind]; dup {
		panic(fmt.Sprintf("engine: workload kind %q registered twice", kind))
	}
	workloadRegistry.m[kind] = b
}

func lookupWorkload(kind string) WorkloadBuilder {
	workloadRegistry.mu.RLock()
	defer workloadRegistry.mu.RUnlock()
	return workloadRegistry.m[kind]
}

func buildStreamIt(params json.RawMessage) (*spg.Analysis, error) {
	var name string
	if err := json.Unmarshal(params, &name); err != nil {
		return nil, fmt.Errorf("engine: streamit workload: %w", err)
	}
	a, err := streamit.ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := a.BaseGraph()
	if err != nil {
		return nil, err
	}
	return spg.NewAnalysis(g), nil
}

func buildRandom(params json.RawMessage) (*spg.Analysis, error) {
	var rw RandomWorkload
	if err := json.Unmarshal(params, &rw); err != nil {
		return nil, fmt.Errorf("engine: random workload: %w", err)
	}
	g, err := randspg.Generate(randspg.Params{
		N:         rw.N,
		Elevation: rw.Elevation,
		Seed:      rw.Seed,
		CCR:       rw.CCR,
		WeightMin: rw.WeightMin,
		WeightMax: rw.WeightMax,
	})
	if err != nil {
		return nil, err
	}
	return spg.NewAnalysis(g), nil
}

func buildInline(params json.RawMessage) (*spg.Analysis, error) {
	var g spg.Graph
	if err := json.Unmarshal(params, &g); err != nil {
		return nil, fmt.Errorf("engine: inline workload: %w", err)
	}
	an := spg.NewAnalysis(&g)
	if err := an.Validate(); err != nil {
		return nil, fmt.Errorf("engine: inline workload: %w", err)
	}
	return an, nil
}
