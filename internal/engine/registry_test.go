package engine

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flappableHealthz is a worker stand-in whose /v1/healthz can be switched
// off and on, for driving the registry's state machine deterministically.
func flappableHealthz(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &down
}

func workerState(t *testing.T, r *WorkerRegistry, url string) WorkerState {
	t.Helper()
	for _, w := range r.Workers() {
		if w.URL == url {
			return w.State
		}
	}
	t.Fatalf("worker %s not registered", url)
	return 0
}

// TestWorkerRegistryStates drives the full health machine through probes:
// healthy -> suspect on the first failure -> dead after DeadAfter
// consecutive failures -> healthy again on the first success (rejoin).
func TestWorkerRegistryStates(t *testing.T) {
	srv, down := flappableHealthz(t)
	r := NewWorkerRegistry(RegistryConfig{DeadAfter: 2, ProbeTimeout: time.Second}, srv.URL)
	ctx := context.Background()

	if got := workerState(t, r, srv.URL); got != WorkerHealthy {
		t.Fatalf("seed state %v, want healthy", got)
	}
	r.Probe(ctx)
	if got := workerState(t, r, srv.URL); got != WorkerHealthy {
		t.Fatalf("after good probe: %v", got)
	}

	down.Store(true)
	r.Probe(ctx)
	if got := workerState(t, r, srv.URL); got != WorkerSuspect {
		t.Fatalf("after one failed probe: %v, want suspect", got)
	}
	if len(r.Healthy()) != 0 {
		t.Fatal("suspect worker still listed healthy")
	}
	r.Probe(ctx)
	if got := workerState(t, r, srv.URL); got != WorkerDead {
		t.Fatalf("after DeadAfter failures: %v, want dead", got)
	}
	if info := r.Workers()[0]; info.ConsecutiveFailures != 2 || info.LastError == "" {
		t.Errorf("dead worker info %+v lacks failure detail", info)
	}

	// Dead workers keep being probed: recovery is one success away.
	down.Store(false)
	r.Probe(ctx)
	if got := workerState(t, r, srv.URL); got != WorkerHealthy {
		t.Fatalf("after recovery probe: %v, want healthy", got)
	}
	if info := r.Workers()[0]; info.ConsecutiveFailures != 0 || info.LastError != "" {
		t.Errorf("recovered worker info %+v retains failure detail", info)
	}
}

// TestWorkerRegistryDispatchReports: ReportFailure/ReportSuccess drive the
// same machine without probes (the per-request ephemeral registry path).
func TestWorkerRegistryDispatchReports(t *testing.T) {
	r := NewWorkerRegistry(RegistryConfig{DeadAfter: 3}, "http://w1:1", "http://w2:1")
	boom := errors.New("connection refused")
	r.ReportFailure("http://w1:1", boom)
	if got := workerState(t, r, "http://w1:1"); got != WorkerSuspect {
		t.Fatalf("after dispatch failure: %v", got)
	}
	if h := r.Healthy(); len(h) != 1 || h[0] != "http://w2:1" {
		t.Fatalf("healthy = %v", h)
	}
	r.ReportFailure("http://w1:1", boom)
	r.ReportFailure("http://w1:1", boom)
	if got := workerState(t, r, "http://w1:1"); got != WorkerDead {
		t.Fatalf("after three failures: %v", got)
	}
	r.ReportSuccess("http://w1:1")
	if got := workerState(t, r, "http://w1:1"); got != WorkerHealthy {
		t.Fatalf("after success: %v", got)
	}
	// Reports about unknown workers are ignored, not invented.
	r.ReportFailure("http://nobody:1", boom)
	if n := r.Len(); n != 2 {
		t.Fatalf("unknown-worker report grew the registry to %d", n)
	}
}

// TestWorkerRegistryRegistration: registration is idempotent and validating;
// re-registration revives dead workers but leaves suspect ones for the probe
// loop; deregistration removes.
func TestWorkerRegistryRegistration(t *testing.T) {
	r := NewWorkerRegistry(RegistryConfig{DeadAfter: 1})
	if err := r.Register("http://w:8080/"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("http://w:8080"); err != nil || r.Len() != 1 {
		t.Fatalf("trailing-slash re-register: err=%v len=%d", err, r.Len())
	}
	for _, bad := range []string{"", "w:8080", "ftp://w:1", "http://"} {
		if err := r.Register(bad); err == nil {
			t.Errorf("Register(%q) accepted", bad)
		}
	}

	r.ReportFailure("http://w:8080", errors.New("x")) // DeadAfter=1: straight to dead
	if got := workerState(t, r, "http://w:8080"); got != WorkerDead {
		t.Fatalf("state %v", got)
	}
	if err := r.Register("http://w:8080"); err != nil {
		t.Fatal(err)
	}
	if got := workerState(t, r, "http://w:8080"); got != WorkerHealthy {
		t.Fatalf("re-registration left dead worker %v", got)
	}

	r2 := NewWorkerRegistry(RegistryConfig{DeadAfter: 2}, "http://w:1")
	r2.ReportFailure("http://w:1", errors.New("x"))
	if err := r2.Register("http://w:1"); err != nil {
		t.Fatal(err)
	}
	if got := workerState(t, r2, "http://w:1"); got != WorkerSuspect {
		t.Fatalf("re-registration flipped suspect worker to %v", got)
	}

	// Deregistration normalizes the same way registration does, so any
	// spelling that registers a worker can also remove it.
	if !r.Deregister("HTTP://w:8080/") {
		t.Error("deregister under an equivalent spelling reported false")
	}
	if err := r.Register("http://w:8080"); err != nil {
		t.Fatal(err)
	}
	if !r.Deregister("http://w:8080") {
		t.Error("deregister of known worker reported false")
	}
	if r.Deregister("http://w:8080") {
		t.Error("double deregister reported true")
	}
	if r.Len() != 0 {
		t.Errorf("registry holds %d after deregister", r.Len())
	}
}

// TestWorkerRegistryProbeLoop: Start probes on the interval (a downed worker
// is demoted without any dispatch traffic); Stop halts the loop and both are
// idempotent.
func TestWorkerRegistryProbeLoop(t *testing.T) {
	srv, down := flappableHealthz(t)
	r := NewWorkerRegistry(RegistryConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DeadAfter:     2,
	}, srv.URL)
	r.Start()
	r.Start() // idempotent
	defer r.Stop()

	down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for workerState(t, r, srv.URL) != WorkerDead {
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never demoted the worker (state %v)", workerState(t, r, srv.URL))
		}
		time.Sleep(5 * time.Millisecond)
	}
	down.Store(false)
	for workerState(t, r, srv.URL) != WorkerHealthy {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never revived the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
}

// TestRendezvousOwner: ownership is deterministic, only reassigns families
// that belonged to a removed worker (minimal disruption — the property that
// makes rendezvous routing cache-friendly), and spreads families across
// workers.
func TestRendezvousOwner(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	families := make([]string, 60)
	for i := range families {
		families[i] = "streamit/app" + string(rune('A'+i%26)) + "/" + string(rune('0'+i/26))
	}
	counts := make(map[string]int)
	owners := make(map[string]string)
	for _, f := range families {
		o := rendezvousOwner(f, workers)
		if o == "" {
			t.Fatalf("family %q unowned", f)
		}
		if again := rendezvousOwner(f, workers); again != o {
			t.Fatalf("owner of %q not deterministic: %q vs %q", f, o, again)
		}
		owners[f] = o
		counts[o]++
	}
	for _, w := range workers {
		if counts[w] == 0 {
			t.Errorf("worker %s owns no families (distribution %v)", w, counts)
		}
	}
	// Remove one worker: only its families move.
	gone := workers[1]
	survivors := []string{workers[0], workers[2]}
	for _, f := range families {
		o := rendezvousOwner(f, survivors)
		if owners[f] != gone && o != owners[f] {
			t.Errorf("family %q moved from %q to %q though its owner survived", f, owners[f], o)
		}
		if owners[f] == gone && o == gone {
			t.Errorf("family %q still owned by removed worker", f)
		}
	}
	if rendezvousOwner("", workers) != "" {
		t.Error("empty family has an owner")
	}
	if rendezvousOwner("fam", nil) != "" {
		t.Error("empty worker set has an owner")
	}
}

// breakerOf reads a worker's breaker state from the registry snapshot.
func breakerOf(t *testing.T, r *WorkerRegistry, url string) BreakerState {
	t.Helper()
	for _, w := range r.Workers() {
		if w.URL == url {
			return w.Breaker
		}
	}
	t.Fatalf("worker %s not registered", url)
	return 0
}

// TestWorkerBreakerTransitions drives the circuit breaker through its full
// cycle with deterministic Probe sweeps (no sleeps, no probe loop): closed
// while healthy and suspect, open after DeadAfter consecutive failures, and —
// per case — a half-open trial probe that either fails (breaker re-opens) or
// succeeds (breaker closes with full readmission).
func TestWorkerBreakerTransitions(t *testing.T) {
	cases := []struct {
		name        string
		trialUp     bool // whether the half-open trial probe succeeds
		wantBreaker BreakerState
		wantState   WorkerState
		wantHealthy int // len(Healthy()) after the trial
	}{
		{name: "half-open trial fails, breaker re-opens", trialUp: false, wantBreaker: BreakerOpen, wantState: WorkerDead, wantHealthy: 0},
		{name: "half-open trial succeeds, breaker closes", trialUp: true, wantBreaker: BreakerClosed, wantState: WorkerHealthy, wantHealthy: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, down := flappableHealthz(t)
			r := NewWorkerRegistry(RegistryConfig{DeadAfter: 2, ProbeTimeout: time.Second}, srv.URL)
			ctx := context.Background()

			if got := breakerOf(t, r, srv.URL); got != BreakerClosed {
				t.Fatalf("fresh worker breaker %v, want closed", got)
			}
			down.Store(true)
			r.Probe(ctx)
			if got := breakerOf(t, r, srv.URL); got != BreakerClosed {
				t.Fatalf("suspect worker breaker %v, want closed (suspects still pass traffic)", got)
			}
			r.Probe(ctx)
			if got := breakerOf(t, r, srv.URL); got != BreakerOpen {
				t.Fatalf("after DeadAfter failures breaker %v, want open", got)
			}

			down.Store(!tc.trialUp)
			r.Probe(ctx) // the half-open trial
			if got := breakerOf(t, r, srv.URL); got != tc.wantBreaker {
				t.Fatalf("after trial probe breaker %v, want %v", got, tc.wantBreaker)
			}
			if got := workerState(t, r, srv.URL); got != tc.wantState {
				t.Fatalf("after trial probe state %v, want %v", got, tc.wantState)
			}
			if got := len(r.Healthy()); got != tc.wantHealthy {
				t.Fatalf("after trial probe len(Healthy()) = %d, want %d", got, tc.wantHealthy)
			}

			// A failed trial leaves the breaker one good probe away from
			// closing; a successful one leaves nothing to re-open it.
			down.Store(false)
			r.Probe(ctx)
			if got := breakerOf(t, r, srv.URL); got != BreakerClosed {
				t.Fatalf("follow-up good probe left breaker %v", got)
			}
		})
	}
}

// TestWorkerBreakerHalfOpenWindow observes the half-open state from inside
// the trial itself: the probed worker's healthz handler snapshots the
// registry mid-probe, so the assertion needs no sleeps and no timing window —
// if the probe is in flight against an open breaker, the snapshot must say
// half-open.
func TestWorkerBreakerHalfOpenWindow(t *testing.T) {
	var regHolder atomic.Pointer[WorkerRegistry]
	var seen atomic.Value // BreakerState observed during the trial probe
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r := regHolder.Load(); r != nil {
			for _, wi := range r.Workers() {
				seen.Store(wi.Breaker)
			}
		}
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(srv.Close)

	r := NewWorkerRegistry(RegistryConfig{DeadAfter: 1, ProbeTimeout: time.Second}, srv.URL)
	regHolder.Store(r)
	ctx := context.Background()

	down.Store(true)
	r.Probe(ctx) // DeadAfter=1: straight to dead, breaker open
	if got := breakerOf(t, r, srv.URL); got != BreakerOpen {
		t.Fatalf("breaker %v, want open", got)
	}

	down.Store(false)
	r.Probe(ctx) // the readmission trial
	if got, ok := seen.Load().(BreakerState); !ok || got != BreakerHalfOpen {
		t.Fatalf("breaker observed during trial probe = %v, want half-open", seen.Load())
	}
	if got := breakerOf(t, r, srv.URL); got != BreakerClosed {
		t.Fatalf("breaker after successful trial %v, want closed", got)
	}
}

// TestWorkerRegistryDraining: a draining worker keeps its health state and
// visibility but leaves the dispatchable set, and re-registration (the worker
// coming back) clears the flag.
func TestWorkerRegistryDraining(t *testing.T) {
	r := NewWorkerRegistry(RegistryConfig{DeadAfter: 3}, "http://w1:1", "http://w2:1")
	if !r.MarkDraining("http://w1:1/", true) { // normalized like Register
		t.Fatal("MarkDraining of registered worker reported false")
	}
	if r.MarkDraining("http://nobody:1", true) {
		t.Fatal("MarkDraining of unknown worker reported true")
	}
	if h := r.Healthy(); len(h) != 1 || h[0] != "http://w2:1" {
		t.Fatalf("Healthy() with one draining worker = %v", h)
	}
	if got := workerState(t, r, "http://w1:1"); got != WorkerHealthy {
		t.Fatalf("draining flipped health state to %v", got)
	}
	var info WorkerInfo
	for _, w := range r.Workers() {
		if w.URL == "http://w1:1" {
			info = w
		}
	}
	if !info.Draining || info.Breaker != BreakerClosed {
		t.Fatalf("draining worker snapshot %+v", info)
	}

	// Un-mark restores eligibility; so does re-registration.
	if !r.MarkDraining("http://w1:1", false) {
		t.Fatal("un-mark reported false")
	}
	if h := r.Healthy(); len(h) != 2 {
		t.Fatalf("Healthy() after un-mark = %v", h)
	}
	r.MarkDraining("http://w1:1", true)
	if err := r.Register("http://w1:1"); err != nil {
		t.Fatal(err)
	}
	if h := r.Healthy(); len(h) != 2 {
		t.Fatalf("Healthy() after re-registration = %v", h)
	}
}

// TestBreakerStateText: the breaker's wire spellings round-trip, matching the
// /v1/workers JSON contract.
func TestBreakerStateText(t *testing.T) {
	for _, b := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		text, err := b.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back BreakerState
		if err := back.UnmarshalText(text); err != nil || back != b {
			t.Fatalf("round-trip of %v: got %v, err %v", b, back, err)
		}
	}
	var bad BreakerState
	if err := bad.UnmarshalText([]byte("fried")); err == nil {
		t.Fatal("unknown spelling accepted")
	}
}
