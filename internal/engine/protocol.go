package engine

import (
	"math"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Outcome is one heuristic's result on one instance. It is core's cell-level
// outcome re-exported under the name the experiment tables use.
type Outcome = core.CellOutcome

// InstanceResult is the evaluation of all heuristics on one workload at the
// period selected by the Section 6.1.3 protocol.
type InstanceResult struct {
	Period   float64   `json:"period"`
	Outcomes []Outcome `json:"outcomes"`
}

// BestEnergy returns the minimum energy over successful heuristics, or +Inf.
func (ir InstanceResult) BestEnergy() float64 {
	best := math.Inf(1)
	for _, o := range ir.Outcomes {
		if o.OK && o.Energy < best {
			best = o.Energy
		}
	}
	return best
}

// AnyOK reports whether at least one outcome succeeded.
func AnyOK(outcomes []Outcome) bool { return core.AnyOK(outcomes) }

// SelectPeriod implements the protocol of Section 6.1.3 over a pre-built
// (possibly shared) analysis: start at T = 1 s, iteratively divide the period
// by 10 while at least one heuristic still succeeds, and retain the last
// period before total failure together with the heuristic outcomes at that
// period. ok is false when every heuristic already fails at 1 s.
//
// opts configures the heuristic set (core.AllWith); opts.Seed drives the
// Random heuristic. The analysis is only read through its concurrency-safe
// accessors, so one analysis may serve several concurrent calls; campaigns
// pass scale-family members and campaign-cache hits here so the protocol
// starts from whatever structures earlier runs on the same workload family
// already built.
func SelectPeriod(an *spg.Analysis, pl *platform.Platform, opts core.Options) (InstanceResult, bool) {
	return SelectPeriodDivisions(an, pl, opts, DefaultMaxDivisions)
}

// DefaultMaxDivisions is the paper's cap on the period-selection protocol:
// at most nine divisions by 10 below the 1 s starting period.
const DefaultMaxDivisions = 9

// SelectPeriodDivisions is SelectPeriod with an explicit cap on the number
// of period divisions (<= 0 selects DefaultMaxDivisions) — the knob a
// CellSpec carries so a cell's whole solve is declarative.
func SelectPeriodDivisions(an *spg.Analysis, pl *platform.Platform, opts core.Options, maxDivisions int) (InstanceResult, bool) {
	return selectPeriodDivisionsScratch(an, pl, opts, maxDivisions, nil)
}

// selectPeriodDivisionsScratch is the protocol with a caller-owned solver
// arena threaded through every period's instance (nil allocates normally).
// The arena is reset between periods: a period's outcomes carry only scalars
// and wire-form copies, so nothing handed to the caller is arena-backed.
func selectPeriodDivisionsScratch(an *spg.Analysis, pl *platform.Platform, opts core.Options, maxDivisions int, sc *core.Scratch) (InstanceResult, bool) {
	if maxDivisions <= 0 {
		maxDivisions = DefaultMaxDivisions
	}
	inst := core.Instance{Graph: an.Graph(), Platform: pl, Period: 1.0, Analysis: an, Scratch: sc}
	outcomes := core.SolveCell(inst, opts)
	if !core.AnyOK(outcomes) {
		return InstanceResult{Period: inst.Period, Outcomes: outcomes}, false
	}
	for i := 0; i < maxDivisions; i++ {
		sc.Reset()
		tighter := inst.WithPeriod(inst.Period / 10)
		next := core.SolveCell(tighter, opts)
		if !core.AnyOK(next) {
			break
		}
		inst, outcomes = tighter, next
	}
	return InstanceResult{Period: inst.Period, Outcomes: outcomes}, true
}
