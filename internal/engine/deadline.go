package engine

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries a request's remaining deadline budget across process
// boundaries as a positive integer millisecond count. Go contexts stop at the
// process edge, so the coordinator stamps every outbound /v1/cells/execute
// POST with the time left until its request context's deadline — which
// context.WithTimeout has already min-combined from the client's campaign
// budget and the dispatcher's per-request timeout — and the worker rebuilds
// an equivalent deadline on its own solve context. A worker that cannot
// finish inside the advertised budget rejects the range up front instead of
// burning it (see the service's MinRangeBudget), and a worker mid-solve stops
// at the deadline rather than completing work nobody is waiting for.
//
// The value is a relative budget, not an absolute timestamp, so propagation
// never depends on clock agreement between processes; the cost is that queue
// time on the receiver eats into the budget only after parsing, which is the
// conservative direction.
const DeadlineHeader = "X-SPG-Deadline"

// stampDeadline records the request context's deadline, if any, on the
// outbound request as a DeadlineHeader budget. An already-expired deadline
// stamps the minimum budget of 1ms — the send is about to fail locally
// anyway, and a zero or negative header would be rejected as malformed.
func stampDeadline(req *http.Request) {
	dl, ok := req.Context().Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// ParseDeadlineHeader reads a propagated deadline budget from inbound request
// headers: (budget, true, nil) when present and valid, (0, false, nil) when
// absent, and an error for a malformed value — the receiver answers 400
// rather than guessing whether a garbled budget meant 1ms or 1h.
func ParseDeadlineHeader(h http.Header) (time.Duration, bool, error) {
	raw := h.Get(DeadlineHeader)
	if raw == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false, fmt.Errorf("malformed %s header %q: want a positive integer millisecond budget", DeadlineHeader, raw)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}
