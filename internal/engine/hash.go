package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// contentKeyVersion tags the canonical CellSpec serialization. Bump it
// whenever the serialization below changes — the golden test in hash_test.go
// pins the exact digests, so any drift (a new hashed field, a reordering, a
// framing change) fails loudly instead of silently splitting or, worse,
// aliasing the content-addressed result store.
const contentKeyVersion = "spgcell/v1"

// ContentKey returns the canonical content hash of the spec: a stable,
// versioned digest of every field that can influence the solved result, and
// of nothing else. Two specs share a ContentKey exactly when solving them
// produces byte-identical CellResults (per-cell determinism is proven by the
// equivalence suites), which is what makes the key safe to address the
// ResultStore with.
//
// Hashed: the workload's (kind, params) lowering, ScaleCCR, CCR, the grid,
// the resolved division cap, and the result-affecting Options fields (Seed,
// RandomTrials, DPA1DMaxStates, DPA1DMaxTransitions, KeepMappings).
//
// Excluded on purpose:
//   - Key and CacheKey — campaign-local addressing; hashing them would stop
//     identical work from ever deduplicating across campaigns.
//   - Opts.SweepParallelism — documented bit-identical at any setting; it
//     trades cores for latency, never bits.
//
// Every field is written length- or width-framed (no delimiter ambiguity):
// strings and raw params as u32 length + bytes, integers as fixed 8-byte
// little-endian, floats as their IEEE-754 bit patterns, booleans as one
// byte. MaxDivisions is hashed resolved (0 and DefaultMaxDivisions collide
// deliberately — they describe the same work).
//
// The error is a malformed workload spec (zero or several variants set, or
// an unregistered kind); such a cell cannot be addressed and must bypass the
// store.
func (s CellSpec) ContentKey() (string, error) {
	kind, params, err := s.Workload.kindParams()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	w := contentHasher{h: h}
	w.str(contentKeyVersion)
	w.str(kind)
	w.str(string(params))
	w.boolean(s.ScaleCCR)
	w.f64(s.CCR)
	w.i64(int64(s.P))
	w.i64(int64(s.Q))
	w.i64(int64(s.maxDivisions()))
	w.i64(s.Opts.Seed)
	w.i64(int64(s.Opts.RandomTrials))
	w.i64(int64(s.Opts.DPA1DMaxStates))
	w.i64(int64(s.Opts.DPA1DMaxTransitions))
	w.boolean(s.Opts.KeepMappings)
	sum := h.Sum(nil)
	return "v1-" + hex.EncodeToString(sum[:16]), nil
}

// contentHasher frames primitive values into a hash so that no two distinct
// field sequences share an input stream.
type contentHasher struct {
	h   hash.Hash
	buf [8]byte
}

func (w *contentHasher) str(s string) {
	binary.LittleEndian.PutUint32(w.buf[:4], uint32(len(s)))
	w.h.Write(w.buf[:4])
	w.h.Write([]byte(s))
}

func (w *contentHasher) i64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *contentHasher) f64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:], math.Float64bits(v))
	w.h.Write(w.buf[:])
}

func (w *contentHasher) boolean(v bool) {
	w.buf[0] = 0
	if v {
		w.buf[0] = 1
	}
	w.h.Write(w.buf[:1])
}
