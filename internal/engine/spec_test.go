package engine

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/spg"
)

// TestCellSpecJSONRoundTrip: every workload variant must survive the wire
// bit-exactly — the spec is the shard protocol's unit of work.
func TestCellSpecJSONRoundTrip(t *testing.T) {
	inline, err := spg.Chain([]float64{0.02, 0.03, 0.04}, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	specs := []CellSpec{
		{
			Key:      "streamit/FFT/ccr=1/2x2",
			CacheKey: "streamit/FFT",
			Workload: WorkloadSpec{StreamIt: "FFT"},
			ScaleCCR: true,
			CCR:      1,
			P:        2, Q: 2,
			Opts: core.Options{Seed: 42, DPA1DMaxStates: 60_000},
		},
		{
			Key:      "randspg/n=20/y=3/seed=7/2x2",
			CacheKey: "randspg/n=20/y=3/seed=7",
			Workload: WorkloadSpec{Random: &RandomWorkload{N: 20, Elevation: 3, Seed: 7, CCR: 0.1}},
			P:        2, Q: 2,
			MaxDivisions: 3,
			Opts:         core.Options{Seed: 7, KeepMappings: true},
		},
		{
			Key:      "inline/chain3",
			Workload: WorkloadSpec{Inline: inline},
			P:        1, Q: 2,
			Opts: core.Options{Seed: 1},
		},
	}
	for _, want := range specs {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Key, err)
		}
		var got CellSpec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", want.Key, err)
		}
		if !reflect.DeepEqual(stripInline(got), stripInline(want)) {
			t.Errorf("%s: round trip drifted:\n got %+v\nwant %+v", want.Key, got, want)
		}
		if want.Workload.Inline != nil {
			// Graphs compare by content, not pointer.
			gi, wi := got.Workload.Inline, want.Workload.Inline
			if !reflect.DeepEqual(gi.Stages, wi.Stages) || !reflect.DeepEqual(gi.Edges, wi.Edges) {
				t.Errorf("%s: inline graph drifted", want.Key)
			}
		}
		if err := got.Validate(); err != nil {
			t.Errorf("%s: round-tripped spec invalid: %v", want.Key, err)
		}
	}
}

// stripInline clears the inline graph pointer so DeepEqual compares the rest
// of the spec (graphs carry private lazily-built caches).
func stripInline(s CellSpec) CellSpec {
	s.Workload.Inline = nil
	return s
}

// TestSpecMatchesClosure: a registry-resolved spec cell must solve
// bit-identically to the legacy closure cell describing the same work.
func TestSpecMatchesClosure(t *testing.T) {
	for _, cell := range testCells(t) {
		name := cell.Spec.Workload.StreamIt
		legacy := Cell{Spec: cell.Spec, Build: func() (*spg.Analysis, error) { return streamitBase(name) }}
		got := Solve(cell, nil)
		want := Solve(legacy, nil)
		requireSameResults(t, "spec-vs-closure/"+name, []CellResult{got}, []CellResult{want})
	}
}

// streamitBase rebuilds a StreamIt family base the way the pre-spec closures
// did, bypassing the registry.
func streamitBase(name string) (*spg.Analysis, error) {
	return buildStreamIt(json.RawMessage(`"` + name + `"`))
}

// TestSpecValidate: malformed specs are rejected without building anything.
func TestSpecValidate(t *testing.T) {
	ok := CellSpec{Key: "k", Workload: WorkloadSpec{StreamIt: "FFT"}, P: 2, Q: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []CellSpec{
		{Key: "no-workload", P: 2, Q: 2},
		{Key: "two-variants", Workload: WorkloadSpec{StreamIt: "FFT", Random: &RandomWorkload{N: 5, Elevation: 1}}, P: 2, Q: 2},
		{Key: "unknown-kind", Workload: WorkloadSpec{Kind: "no-such-kind"}, P: 2, Q: 2},
		{Key: "bad-grid", Workload: WorkloadSpec{StreamIt: "FFT"}, P: 0, Q: 2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", s.Key)
		}
	}
	if _, err := (WorkloadSpec{StreamIt: "NoSuchApp"}).Build(); err == nil {
		t.Error("unknown StreamIt app built")
	}
}

// TestRegisterWorkload: custom kinds resolve through the registry and make
// their cells wire-codable; re-registration panics.
func TestRegisterWorkload(t *testing.T) {
	RegisterWorkload("test-chain", func(params json.RawMessage) (*spg.Analysis, error) {
		var n int
		if err := json.Unmarshal(params, &n); err != nil {
			return nil, err
		}
		w := make([]float64, n)
		v := make([]float64, n-1)
		rng := rand.New(rand.NewSource(99))
		for i := range w {
			w[i] = 0.01 + 0.09*rng.Float64()
		}
		for i := range v {
			v[i] = 0.5 + rng.Float64()
		}
		g, err := spg.Chain(w, v)
		if err != nil {
			return nil, err
		}
		return spg.NewAnalysis(g), nil
	})
	cell := CellSpec{
		Key:      "custom/chain4",
		Workload: WorkloadSpec{Kind: "test-chain", Params: json.RawMessage(`4`)},
		P:        2, Q: 2,
		Opts: core.Options{Seed: 3},
	}.Cell()
	if !cell.WireCodable() {
		t.Fatal("custom-kind cell not wire-codable")
	}
	res := Solve(cell, nil)
	if res.Err != nil || !res.Feasible {
		t.Fatalf("custom-kind cell failed: %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterWorkload did not panic")
		}
	}()
	RegisterWorkload("test-chain", func(json.RawMessage) (*spg.Analysis, error) { return nil, nil })
}

// TestSpecMaxDivisions: the period-division cap is part of the declarative
// identity — on a workload light enough that divisions keep succeeding, a
// capped spec must stop exactly where its cap says, above where the default
// protocol descends to.
func TestSpecMaxDivisions(t *testing.T) {
	tiny, err := spg.Chain([]float64{1e-6, 1e-6}, []float64{1e-9})
	if err != nil {
		t.Fatal(err)
	}
	base := CellSpec{
		Key:      "inline/tiny",
		Workload: WorkloadSpec{Inline: tiny},
		P:        2, Q: 2,
		Opts: core.Options{Seed: 1},
	}
	full := Solve(base.Cell(), nil)
	capped := base
	capped.MaxDivisions = 1
	one := Solve(capped.Cell(), nil)
	if full.Err != nil || one.Err != nil || !full.Feasible || !one.Feasible {
		t.Fatalf("solves failed: %+v / %+v", full, one)
	}
	if one.Result.Period != 0.1 {
		t.Errorf("one-division protocol stopped at period %g, want 0.1", one.Result.Period)
	}
	if full.Result.Period >= one.Result.Period {
		t.Errorf("default protocol stopped at %g, expected below the capped %g", full.Result.Period, one.Result.Period)
	}
}

// TestWireCellResultRoundTrip: results survive the wire bit-exactly,
// including the error-as-message lowering.
func TestWireCellResultRoundTrip(t *testing.T) {
	cells := testCells(t)
	want := Solve(cells[0], nil)
	data, err := json.Marshal(want.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireCellResult
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	got := w.CellResult(want.Index)
	requireSameResults(t, "wire-round-trip", []CellResult{got}, []CellResult{want})

	bad := Cell{Spec: CellSpec{Key: "bad", P: 2, Q: 2}, Build: func() (*spg.Analysis, error) {
		return nil, errTest
	}}
	res := Solve(bad, nil)
	wireBad := res.Wire()
	data, err = json.Marshal(wireBad)
	if err != nil {
		t.Fatal(err)
	}
	var wb WireCellResult
	if err := json.Unmarshal(data, &wb); err != nil {
		t.Fatal(err)
	}
	back := wb.CellResult(0)
	if back.Err == nil || back.Err.Error() != "test build failure" {
		t.Errorf("error crossed the wire as %v", back.Err)
	}
}

var errTest = errInline("test build failure")

type errInline string

func (e errInline) Error() string { return string(e) }

// TestKeepMappingsWire: with KeepMappings the outcomes carry placements that
// survive the wire and rebuild into valid mappings; without it the outcome
// JSON stays lean.
func TestKeepMappingsWire(t *testing.T) {
	spec := testCells(t)[0].Spec
	spec.Opts.KeepMappings = true
	res := Solve(spec.Cell(), nil)
	if res.Err != nil || !res.Feasible {
		t.Fatalf("solve failed: %+v", res)
	}
	data, err := json.Marshal(res.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireCellResult
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	for _, o := range w.Result.Outcomes {
		if !o.OK {
			continue
		}
		if o.Mapping == nil {
			t.Fatalf("%s: OK outcome without mapping", o.Heuristic)
		}
		if o.Mapping.P != spec.P || o.Mapping.Q != spec.Q {
			t.Errorf("%s: mapping targets %dx%d, want %dx%d", o.Heuristic, o.Mapping.P, o.Mapping.Q, spec.P, spec.Q)
		}
		if len(o.Mapping.Alloc) == 0 || len(o.Mapping.Cores) == 0 {
			t.Errorf("%s: empty wire mapping", o.Heuristic)
		}
	}
	plain := Solve(testCells(t)[0], nil)
	for _, o := range plain.Result.Outcomes {
		if o.Mapping != nil {
			t.Errorf("%s: mapping retained without KeepMappings", o.Heuristic)
		}
	}
}
