package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadStreamIt(t *testing.T) {
	g, err := Load("streamit:DCT", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.Elevation() != 1 {
		t.Errorf("DCT: n=%d ymax=%d", g.N(), g.Elevation())
	}
}

func TestLoadRandom(t *testing.T) {
	g, err := Load("random:n=30,elev=4,seed=9", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || g.Elevation() != 4 {
		t.Errorf("random: n=%d ymax=%d", g.N(), g.Elevation())
	}
}

func TestLoadRandomDefaults(t *testing.T) {
	g, err := Load("random:", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 || g.Elevation() != 5 {
		t.Errorf("defaults: n=%d ymax=%d", g.N(), g.Elevation())
	}
}

func TestLoadChain(t *testing.T) {
	g, err := Load("chain:n=7,seed=2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.Elevation() != 1 {
		t.Errorf("chain: n=%d ymax=%d", g.N(), g.Elevation())
	}
}

func TestLoadWithCCR(t *testing.T) {
	g, err := Load("chain:n=7,seed=2", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := g.TotalWork() / g.TotalVolume()
	if ratio < 2.49 || ratio > 2.51 {
		t.Errorf("CCR = %g, want 2.5", ratio)
	}
}

func TestLoadFileRoundTrip(t *testing.T) {
	g, err := Load("random:n=12,elev=3,seed=4", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := Load("file:"+path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Errorf("round trip lost structure: %v vs %v", g2, g)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"nocolon",
		"unknown:x",
		"streamit:NoSuchApp",
		"random:n=abc",
		"random:badpair",
		"chain:n=1",
		"file:/does/not/exist.json",
	}
	for _, spec := range cases {
		if _, err := Load(spec, 0); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseGrid(t *testing.T) {
	p, q, err := ParseGrid("4x6")
	if err != nil || p != 4 || q != 6 {
		t.Errorf("ParseGrid(4x6) = %d,%d,%v", p, q, err)
	}
	for _, bad := range []string{"4", "x4", "4x", "0x4", "axb"} {
		if _, _, err := ParseGrid(bad); err == nil {
			t.Errorf("grid %q accepted", bad)
		}
	}
}

func TestLoadErrorMentionsSpec(t *testing.T) {
	_, err := Load("bogus", 0)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %v does not mention the spec", err)
	}
}
