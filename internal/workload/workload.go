// Package workload resolves textual workload specifications shared by the
// command-line tools:
//
//	streamit:<Name>            one of the 12 Table 1 workflows
//	random:n=50,elev=8,seed=1  a random SPG (randspg)
//	chain:n=10,seed=1          a linear chain
//	file:<path>                a JSON graph written by spggen / Graph.WriteJSON
package workload

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// Load resolves a workload spec. ccr > 0 rescales the communication volumes
// after loading.
func Load(spec string, ccr float64) (*spg.Graph, error) {
	kind, rest, found := strings.Cut(spec, ":")
	if !found {
		return nil, fmt.Errorf("workload: spec %q must look like kind:args (streamit:, random:, chain:, file:)", spec)
	}
	var g *spg.Graph
	var err error
	switch kind {
	case "streamit":
		var app streamit.App
		app, err = streamit.ByName(rest)
		if err == nil {
			g, err = app.Graph()
		}
	case "random":
		g, err = loadRandom(rest)
	case "chain":
		g, err = loadChain(rest)
	case "file":
		g, err = loadFile(rest)
	default:
		err = fmt.Errorf("workload: unknown kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if ccr > 0 {
		spg.ScaleToCCR(g, ccr)
	}
	return g, nil
}

func parseKV(args string) (map[string]string, error) {
	kv := make(map[string]string)
	if args == "" {
		return kv, nil
	}
	for _, part := range strings.Split(args, ",") {
		k, v, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("workload: bad argument %q (want key=value)", part)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

func intArg(kv map[string]string, key string, def int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	return strconv.Atoi(v)
}

func loadRandom(args string) (*spg.Graph, error) {
	kv, err := parseKV(args)
	if err != nil {
		return nil, err
	}
	n, err := intArg(kv, "n", 50)
	if err != nil {
		return nil, err
	}
	elev, err := intArg(kv, "elev", 5)
	if err != nil {
		return nil, err
	}
	seed, err := intArg(kv, "seed", 1)
	if err != nil {
		return nil, err
	}
	return randspg.Generate(randspg.Params{N: n, Elevation: elev, Seed: int64(seed)})
}

func loadChain(args string) (*spg.Graph, error) {
	kv, err := parseKV(args)
	if err != nil {
		return nil, err
	}
	n, err := intArg(kv, "n", 10)
	if err != nil {
		return nil, err
	}
	seed, err := intArg(kv, "seed", 1)
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("workload: chain needs n >= 2")
	}
	w := make([]float64, n)
	v := make([]float64, n-1)
	g, err := spg.Chain(w, v)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	spg.RandomizeWeights(g, rng, 0.01, 0.1)
	spg.RandomizeVolumes(g, rng, 0.5, 1.5)
	return g, nil
}

func loadFile(path string) (*spg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return spg.ReadJSON(f)
}

// ParseGrid parses "4x4" into (4, 4).
func ParseGrid(s string) (p, q int, err error) {
	a, b, found := strings.Cut(s, "x")
	if !found {
		return 0, 0, fmt.Errorf("workload: grid %q must look like PxQ", s)
	}
	p, err = strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	q, err = strconv.Atoi(b)
	if err != nil {
		return 0, 0, err
	}
	if p < 1 || q < 1 {
		return 0, 0, fmt.Errorf("workload: grid %dx%d out of range", p, q)
	}
	return p, q, nil
}
