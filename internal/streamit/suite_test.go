package streamit

import (
	"math"
	"strings"
	"testing"

	"spgcmp/internal/spg"
)

// TestTable1Characteristics: every synthesized workflow must reproduce its
// Table 1 row exactly — size, elevation, depth and CCR.
func TestTable1Characteristics(t *testing.T) {
	for _, a := range Suite() {
		g, err := a.Graph()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if g.N() != a.N {
			t.Errorf("%s: n = %d, want %d", a.Name, g.N(), a.N)
		}
		if g.Elevation() != a.YMax {
			t.Errorf("%s: ymax = %d, want %d", a.Name, g.Elevation(), a.YMax)
		}
		if g.Depth() != a.XMax {
			t.Errorf("%s: xmax = %d, want %d", a.Name, g.Depth(), a.XMax)
		}
		if ccr := spg.CCR(g); math.Abs(ccr-a.CCR)/a.CCR > 1e-9 {
			t.Errorf("%s: CCR = %g, want %g", a.Name, ccr, a.CCR)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid SPG: %v", a.Name, err)
		}
	}
}

func TestSuiteSize(t *testing.T) {
	if len(Suite()) != 12 {
		t.Fatalf("suite has %d workflows, want 12", len(Suite()))
	}
}

func TestGraphDeterministic(t *testing.T) {
	a := Suite()[4] // Vocoder
	g1, err := a.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := a.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatal("structure not deterministic")
	}
	for i := range g1.Stages {
		if g1.Stages[i].Weight != g2.Stages[i].Weight {
			t.Fatalf("stage %d weight differs", i)
		}
	}
	for i := range g1.Edges {
		if g1.Edges[i].Volume != g2.Edges[i].Volume {
			t.Fatalf("edge %d volume differs", i)
		}
	}
}

func TestGraphWithCCRRescales(t *testing.T) {
	for _, target := range []float64{10, 1, 0.1} {
		a := Suite()[0]
		g, err := a.GraphWithCCR(target)
		if err != nil {
			t.Fatal(err)
		}
		if ccr := spg.CCR(g); math.Abs(ccr-target)/target > 1e-9 {
			t.Errorf("CCR = %g, want %g", ccr, target)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("Serpent")
	if err != nil {
		t.Fatal(err)
	}
	if a.Index != 11 || a.N != 120 {
		t.Errorf("Serpent lookup wrong: %+v", a)
	}
	if _, err := ByName("NoSuchApp"); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestSuiteStreamItGraphsAreSeriesParallel verifies the synthesized shapes
// are genuine SPGs.
func TestSuiteStreamItGraphsAreSeriesParallel(t *testing.T) {
	for _, a := range Suite() {
		g, err := a.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !spg.IsSeriesParallel(g) {
			t.Errorf("%s: not series-parallel", a.Name)
		}
	}
}

func TestTableRowFormat(t *testing.T) {
	row := Suite()[0].TableRow()
	for _, want := range []string{"Beamformer", "57", "12", "537"} {
		if !strings.Contains(row, want) {
			t.Errorf("TableRow missing %q: %s", want, row)
		}
	}
}
