// Package streamit reproduces the 12 workflows of the StreamIt benchmark
// suite used in Section 6 of the paper, at the level of detail that drives
// every reported result: the exact size n, elevation y_max, depth x_max and
// computation-to-communication ratio (CCR) of Table 1.
//
// The original StreamIt graph files are not redistributable here, so each
// workflow is synthesized deterministically: a main chain of x_max stages
// composed in parallel with y_max - 1 branches carrying the remaining
// stages, with seeded stage weights in [0.01, 0.1] Gcycles and communication
// volumes scaled to hit the exact CCR. The heuristics only observe
// (structure, w, delta), and Section 6 itself rescales every workflow to
// CCRs 10, 1 and 0.1, so the comparison retains the paper's shape.
package streamit

import (
	"fmt"
	"math/rand"

	"spgcmp/internal/spg"
)

// App describes one StreamIt workflow with its Table 1 characteristics.
type App struct {
	Index int // 1-based position in Table 1
	Name  string
	N     int     // number of stages
	YMax  int     // maximum elevation
	XMax  int     // depth (maximum x label)
	CCR   float64 // original computation-to-communication ratio
}

// Suite returns the 12 workflows of Table 1.
func Suite() []App {
	return []App{
		{1, "Beamformer", 57, 12, 12, 537},
		{2, "ChannelVocoder", 55, 17, 8, 453},
		{3, "Filterbank", 85, 16, 14, 535},
		{4, "FMRadio", 43, 12, 12, 330},
		{5, "Vocoder", 114, 17, 32, 38},
		{6, "BitonicSort", 40, 4, 23, 6},
		{7, "DCT", 8, 1, 8, 68},
		{8, "DES", 53, 3, 45, 7},
		{9, "FFT", 17, 1, 17, 17},
		{10, "MPEG2-noparser", 23, 5, 18, 9},
		{11, "Serpent", 120, 2, 111, 9},
		{12, "TDE", 29, 1, 29, 12},
	}
}

// ByName returns the workflow with the given (case-sensitive) name.
func ByName(name string) (App, error) {
	for _, a := range Suite() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("streamit: unknown workflow %q", name)
}

// Graph synthesizes the workflow with its original CCR.
func (a App) Graph() (*spg.Graph, error) { return a.GraphWithCCR(a.CCR) }

// BaseGraph synthesizes the workflow with its raw, pre-scaling communication
// volumes — the common ancestor of every CCR variant. Campaigns analyze the
// base once and derive the variants through spg.Analysis.ScaleToCCR, which
// shares the structural analysis across the whole family; GraphWithCCR(c) is
// exactly BaseGraph followed by spg.ScaleToCCR(g, c), so both routes yield
// bit-identical graphs.
func (a App) BaseGraph() (*spg.Graph, error) {
	rng := rand.New(rand.NewSource(int64(a.Index) * 7919))
	g, err := spg.BuildShape(a.N, a.YMax, a.XMax, rng)
	if err != nil {
		return nil, fmt.Errorf("streamit: %s: %w", a.Name, err)
	}
	spg.RandomizeWeights(g, rng, 0.01, 0.1)
	spg.RandomizeVolumes(g, rng, 0.5, 1.5)
	g.Stages[0].Name = a.Name
	return g, nil
}

// GraphWithCCR synthesizes the workflow and rescales its communication
// volumes so that the total-computation over total-communication ratio
// equals ccr, as done in Section 6.1.1.
func (a App) GraphWithCCR(ccr float64) (*spg.Graph, error) {
	g, err := a.BaseGraph()
	if err != nil {
		return nil, err
	}
	spg.ScaleToCCR(g, ccr)
	return g, nil
}

// TableRow formats the workflow like a row of Table 1.
func (a App) TableRow() string {
	return fmt.Sprintf("%-2d %-15s %4d %5d %5d %6.0f", a.Index, a.Name, a.N, a.YMax, a.XMax, a.CCR)
}
