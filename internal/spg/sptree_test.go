package spg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposePrimitive(t *testing.T) {
	tree, err := Decompose(Primitive(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Kind != DecompLeaf || tree.Edge != 0 {
		t.Fatalf("primitive decomposition: %+v", tree)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("leaves = %d", tree.Leaves())
	}
}

func TestDecomposeChain(t *testing.T) {
	g := mustChain(t, 4)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	// A chain of 4 stages has 3 edges -> 3 leaves, all series nodes inside.
	if tree.Leaves() != 3 {
		t.Fatalf("leaves = %d, want 3", tree.Leaves())
	}
	var countParallel func(*DecompNode) int
	countParallel = func(d *DecompNode) int {
		if d == nil || d.Kind == DecompLeaf {
			return 0
		}
		c := countParallel(d.Left) + countParallel(d.Right)
		if d.Kind == DecompParallel {
			c++
		}
		return c
	}
	if c := countParallel(tree); c != 0 {
		t.Errorf("chain decomposition contains %d parallel nodes", c)
	}
}

func TestDecomposeForkJoin(t *testing.T) {
	fj, _ := ForkJoin(0, 0, []float64{1, 1, 1}, []float64{1, 1, 1}, []float64{1, 1, 1})
	tree, err := Decompose(fj)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != fj.M() {
		t.Fatalf("leaves = %d, want %d", tree.Leaves(), fj.M())
	}
	if tree.Src != fj.Source() || tree.Dst != fj.Sink() {
		t.Errorf("root terminals (%d,%d), want (%d,%d)", tree.Src, tree.Dst, fj.Source(), fj.Sink())
	}
}

// TestDecomposeRejectsNonSP: the "N graph" (a -> c, a -> d, b -> d with
// terminals added) is the canonical non-series-parallel DAG.
func TestDecomposeRejectsNonSP(t *testing.T) {
	// Stages: 0=source, 1=a, 2=b, 3=c, 4=d, 5=sink. The inner pattern
	// a->c, a->d, b->d forms the forbidden "N".
	g := &Graph{
		Stages: []Stage{
			{Label: Label{1, 1}}, {Label: Label{2, 1}}, {Label: Label{2, 2}},
			{Label: Label{3, 1}}, {Label: Label{3, 2}}, {Label: Label{4, 1}},
		},
		Edges: []Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 2},
			{Src: 1, Dst: 3}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4},
			{Src: 3, Dst: 5}, {Src: 4, Dst: 5},
		},
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	if IsSeriesParallel(g) {
		t.Error("N-graph recognized as series-parallel")
	}
}

func TestDecomposeLeafCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(35))
		tree, err := Decompose(g)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return tree.Leaves() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(&Graph{Stages: []Stage{{}}}); err == nil {
		t.Error("single-node graph accepted")
	}
	cyclic := &Graph{
		Stages: []Stage{{Label: Label{1, 1}}, {Label: Label{2, 1}}},
		Edges:  []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
	}
	if _, err := Decompose(cyclic); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestDecompKindString(t *testing.T) {
	if DecompLeaf.String() != "leaf" || DecompSeries.String() != "series" ||
		DecompParallel.String() != "parallel" {
		t.Error("DecompKind strings wrong")
	}
	if DecompKind(9).String() == "" {
		t.Error("unknown kind has empty string")
	}
}
