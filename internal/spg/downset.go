package spg

import (
	"errors"
	"fmt"
	"sync"
)

// ErrStateLimit is returned when enumerating the admissible subgraphs of an
// SPG would exceed the configured state budget. The paper's DPA1D heuristic
// exhibits exactly this failure mode on graphs of large elevation ("there are
// too many possible splits to explore", Section 6.2.1); callers treat it as a
// heuristic failure.
var ErrStateLimit = errors.New("spg: admissible-subgraph state limit exceeded")

// DownsetSpace enumerates the admissible subgraphs of an SPG as defined in
// the proof of Theorem 1: a subgraph is admissible if it can be obtained from
// the full graph by repeatedly deleting a stage without successors. These are
// exactly the predecessor-closed stage sets (downsets, or order ideals) of
// the dependence partial order.
//
// Because stages of equal elevation are pairwise comparable in an SPG, a
// downset is uniquely identified by how many stages of each elevation level
// it contains, which bounds the number of downsets by n^y_max (the bound used
// in the paper's complexity analysis). Downsets are interned lazily and
// addressed by dense integer ids.
//
// A space may be reused across several solver runs (Analysis.DownsetSpace
// hands the same space to every DPA1D run on a workload): interned states
// persist, while the state budget is accounted per run. A run is the span
// between two BeginRun calls; the budget bounds the number of distinct
// downsets the run touches, so a warmed space fails (or succeeds) exactly
// where a freshly built one would, regardless of how many states earlier
// runs left behind. Without any BeginRun call the whole lifetime is one run,
// which matches the historical total-cap semantics.
//
// All methods are safe for concurrent use.
type DownsetSpace struct {
	g          *Graph
	levels     [][]int // stages per elevation level, in chain (x) order
	levelOf    []int   // stage -> level index (y-1)
	posInLevel []int   // stage -> position within its level chain
	preds      [][]int // stage -> distinct predecessors

	// runMu serializes whole runs: per-method locking (mu) keeps the data
	// structures consistent, but a run's indices are only meaningful within
	// its own epoch, so BeginRun through the last RunID/CoutRun/
	// ExpansionsInRun call must not interleave with another run. Solvers
	// hold it for the duration of a Solve via LockRun/UnlockRun.
	runMu sync.Mutex

	mu        sync.Mutex
	ids       map[string]int
	counts    [][]uint8 // id -> per-level inclusion counts
	size      []int     // id -> number of included stages
	coutCache []float64 // id -> outgoing cut volume (negative = uncomputed)

	lastSeen   []int // id -> epoch that last touched it
	epoch      int
	runIDs     []int // run index -> id, in touch order for the current epoch
	runIndexOf []int // id -> run index (valid only when lastSeen[id] == epoch)

	// expCache memoizes enumerations per source downset, tagged with the
	// work budget they were computed at. A query at a smaller budget is
	// served by filtering: pruning only removes chunks heavier than the
	// budget (every path to a light chunk has light prefixes), so the
	// smaller-budget DFS tree is a prefix-closed subtree of the larger one
	// and the filtered list preserves both membership and order. SelectPeriod
	// descends from the largest period, so one enumeration per downset
	// serves every later period.
	expCache map[int]expEntry

	maxStates int
	emptyID   int
	fullID    int
}

type expEntry struct {
	maxWork float64
	exps    []Expansion
}

// normalizeStateBudget maps the "use the default cap" sentinel to its value;
// every consumer of a state budget (space construction, the Analysis memo
// key) must agree on it so equal budgets share one space.
func normalizeStateBudget(maxStates int) int {
	if maxStates <= 0 {
		return 1 << 20
	}
	return maxStates
}

// Expansion describes one admissible superset reachable from a downset: the
// added chunk is exactly the stage set that a single additional processor of
// the uni-directional uni-line CMP would execute.
type Expansion struct {
	To        int     // id of the superset downset
	ChunkWork float64 // total weight of the added stages
}

// NewDownsetSpace prepares downset enumeration for g. maxStates caps the
// number of distinct downsets a run may touch; enumeration beyond the cap
// fails with ErrStateLimit.
func NewDownsetSpace(g *Graph, maxStates int) (*DownsetSpace, error) {
	return newDownsetSpace(g, Levels(g), maxStates)
}

// newDownsetSpace is NewDownsetSpace with the elevation levels supplied by
// the caller (Analysis passes its memoized copy; the space only reads them).
func newDownsetSpace(g *Graph, levels [][]int, maxStates int) (*DownsetSpace, error) {
	maxStates = normalizeStateBudget(maxStates)
	for _, lv := range levels {
		if len(lv) > 255 {
			return nil, fmt.Errorf("spg: elevation level with %d stages exceeds uint8 count encoding", len(lv))
		}
	}
	n := g.N()
	ds := &DownsetSpace{
		g:          g,
		levels:     levels,
		levelOf:    make([]int, n),
		posInLevel: make([]int, n),
		preds:      make([][]int, n),
		ids:        make(map[string]int),
		maxStates:  maxStates,
		epoch:      1,
		expCache:   make(map[int]expEntry),
	}
	for y, lv := range levels {
		for p, s := range lv {
			ds.levelOf[s] = y
			ds.posInLevel[s] = p
		}
	}
	for i := 0; i < n; i++ {
		ds.preds[i] = g.Predecessors(i)
	}
	empty := make([]uint8, len(levels))
	var err error
	ds.emptyID, err = ds.visit(empty)
	if err != nil {
		return nil, err
	}
	full := make([]uint8, len(levels))
	for y, lv := range levels {
		full[y] = uint8(len(lv))
	}
	ds.fullID, err = ds.visit(full)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// BeginRun opens a fresh budget epoch: the run that follows may touch up to
// maxStates distinct downsets (the empty and full sets count, as they do for
// a freshly constructed space). Solvers call it once per Solve so that a
// space shared across periods behaves exactly like a per-run space.
//
// Within an epoch every touched downset also receives a dense run index
// (its position in touch order, empty = 0, full = 1). Because touches happen
// in the same order whether the space is fresh or warmed, run indices are
// history-independent: the DPA1D dynamic program uses them as state keys so
// that its tables, iteration order and floating-point tie-breaking are
// identical either way — and sized by this run's states, not by whatever
// earlier runs left interned.
func (ds *DownsetSpace) BeginRun() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.epoch++
	ds.runIDs = ds.runIDs[:0]
	// The constructor counts the empty and full sets; mirror that here so a
	// warmed run's accounting matches a fresh space's.
	_ = ds.touch(ds.emptyID)
	_ = ds.touch(ds.fullID)
}

// LockRun gives the caller exclusive use of the run-scoped API — BeginRun,
// RunCount, RunID, CoutRun, ExpansionsInRun — until UnlockRun. Run indices
// are only meaningful within their own epoch, so a solver sharing the space
// with other goroutines must hold the run lock for its whole Solve; the
// per-method mutex alone cannot prevent a concurrent BeginRun from
// invalidating indices mid-run.
func (ds *DownsetSpace) LockRun() { ds.runMu.Lock() }

// UnlockRun releases the exclusivity acquired by LockRun.
func (ds *DownsetSpace) UnlockRun() { ds.runMu.Unlock() }

// RunCount returns the number of distinct downsets touched in the current
// run (epoch).
func (ds *DownsetSpace) RunCount() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.runIDs)
}

// RunID returns the global id of the downset with run index k.
func (ds *DownsetSpace) RunID(k int) int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.runIDs[k]
}

// EmptyID returns the id of the empty downset.
func (ds *DownsetSpace) EmptyID() int { return ds.emptyID }

// FullID returns the id of the complete stage set.
func (ds *DownsetSpace) FullID() int { return ds.fullID }

// NumStates returns the number of downsets interned so far.
func (ds *DownsetSpace) NumStates() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.counts)
}

// Size returns the number of stages in downset id.
func (ds *DownsetSpace) Size(id int) int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.size[id]
}

// touch records that the current run uses downset id, charging the run
// budget and assigning the run index on the first touch. Callers hold ds.mu.
func (ds *DownsetSpace) touch(id int) error {
	if ds.lastSeen[id] == ds.epoch {
		return nil
	}
	if len(ds.runIDs) >= ds.maxStates {
		return ErrStateLimit
	}
	ds.lastSeen[id] = ds.epoch
	ds.runIndexOf[id] = len(ds.runIDs)
	ds.runIDs = append(ds.runIDs, id)
	return nil
}

// visit returns the id of the downset with the given counts, interning it if
// new, and charges the run budget (through touch, the single charging path).
// Callers hold ds.mu.
func (ds *DownsetSpace) visit(counts []uint8) (int, error) {
	key := string(counts)
	if id, ok := ds.ids[key]; ok {
		return id, ds.touch(id)
	}
	// Check the budget before interning so a rejected state is not retained;
	// with ds.mu held, touch below then succeeds on the same condition.
	if len(ds.runIDs) >= ds.maxStates {
		return -1, ErrStateLimit
	}
	id := len(ds.counts)
	cp := make([]uint8, len(counts))
	copy(cp, counts)
	ds.ids[key] = id
	ds.counts = append(ds.counts, cp)
	sz := 0
	for _, c := range cp {
		sz += int(c)
	}
	ds.size = append(ds.size, sz)
	ds.coutCache = append(ds.coutCache, -1)
	ds.lastSeen = append(ds.lastSeen, 0) // 0 predates every epoch: untouched
	ds.runIndexOf = append(ds.runIndexOf, 0)
	return id, ds.touch(id)
}

// Contains reports whether stage s belongs to downset id.
func (ds *DownsetSpace) Contains(id, s int) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.contains(id, s)
}

func (ds *DownsetSpace) contains(id, s int) bool {
	return ds.posInLevel[s] < int(ds.counts[id][ds.levelOf[s]])
}

// Members returns the stages of downset id in no particular order.
func (ds *DownsetSpace) Members(id int) []int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]int, 0, ds.size[id])
	for y, c := range ds.counts[id] {
		for p := 0; p < int(c); p++ {
			out = append(out, ds.levels[y][p])
		}
	}
	return out
}

// Diff returns the stages of downset to that are not in downset from. It is
// only meaningful when from is a subset of to, which holds for ids produced
// by Expansions.
func (ds *DownsetSpace) Diff(from, to int) []int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	cf, ct := ds.counts[from], ds.counts[to]
	var out []int
	for y := range cf {
		for p := int(cf[y]); p < int(ct[y]); p++ {
			out = append(out, ds.levels[y][p])
		}
	}
	return out
}

// Cout returns the aggregated volume of the edges leaving downset id (source
// inside, destination outside). On a uni-directional uni-line CMP this is
// exactly the load of the link separating the downset's processors from the
// rest, the quantity bounded by BW*T in Theorem 1. Values are graph-only and
// cached for the lifetime of the space, across runs.
func (ds *DownsetSpace) Cout(id int) float64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.coutLocked(id)
}

// CoutRun is Cout keyed by the run index of the downset.
func (ds *DownsetSpace) CoutRun(k int) float64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.coutLocked(ds.runIDs[k])
}

func (ds *DownsetSpace) coutLocked(id int) float64 {
	if v := ds.coutCache[id]; v >= 0 {
		return v
	}
	var total float64
	for _, e := range ds.g.Edges {
		if ds.contains(id, e.Src) && !ds.contains(id, e.Dst) {
			total += e.Volume
		}
	}
	ds.coutCache[id] = total
	return total
}

// Expansions enumerates every downset obtainable from id by adding stages
// whose total weight does not exceed maxWork (at least one stage is added).
// The run budget is charged for id and every returned downset, in
// enumeration order, so replays and fresh enumerations account identically.
func (ds *DownsetSpace) Expansions(id int, maxWork float64) ([]Expansion, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	entry, err := ds.ensureExpansionsLocked(id, maxWork)
	if err != nil {
		return nil, err
	}
	if entry.maxWork == maxWork {
		if err := ds.replayLocked(entry, maxWork, func(Expansion) {}); err != nil {
			return nil, err
		}
		return entry.exps, nil
	}
	out := make([]Expansion, 0, len(entry.exps))
	err = ds.replayLocked(entry, maxWork, func(ex Expansion) { out = append(out, ex) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExpansionsInRun is Expansions keyed by run indices: k is the run index of
// the source downset, and To in the returned expansions is a run index too.
// This is the DPA1D entry point: run indices are dense and identical between
// fresh and warmed spaces, so the DP can key its tables by them directly.
func (ds *DownsetSpace) ExpansionsInRun(k int, maxWork float64) ([]Expansion, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	entry, err := ds.ensureExpansionsLocked(ds.runIDs[k], maxWork)
	if err != nil {
		return nil, err
	}
	out := make([]Expansion, 0, len(entry.exps))
	err = ds.replayLocked(entry, maxWork, func(ex Expansion) {
		// Every emitted To was just touched, so its run index is current.
		out = append(out, Expansion{To: ds.runIndexOf[ex.To], ChunkWork: ex.ChunkWork})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replayLocked replays a cached enumeration at a (possibly smaller) work
// budget: it charges the run budget for every fitting expansion in
// enumeration order — the exact accounting a fresh DFS would perform, which
// is what keeps warmed and fresh spaces bit-identical — and hands each one
// to emit. Callers hold ds.mu.
func (ds *DownsetSpace) replayLocked(entry expEntry, maxWork float64, emit func(Expansion)) error {
	for _, ex := range entry.exps {
		if ex.ChunkWork > maxWork {
			continue
		}
		if err := ds.touch(ex.To); err != nil {
			return err
		}
		emit(ex)
	}
	return nil
}

// ensureExpansionsLocked returns the cached enumeration for id, running the
// depth-first enumeration at maxWork when no entry at that budget (or a
// larger one) exists. The DFS charges the run budget for every state it
// visits; replayed entries charge only id here, leaving the per-expansion
// touches to the caller's filter loop so the accounting order matches a
// fresh enumeration. Callers hold ds.mu and must not modify entry.exps.
func (ds *DownsetSpace) ensureExpansionsLocked(id int, maxWork float64) (expEntry, error) {
	if e, ok := ds.expCache[id]; ok && e.maxWork >= maxWork {
		return e, ds.touch(id)
	}
	if err := ds.touch(id); err != nil {
		return expEntry{}, err
	}
	counts := make([]uint8, len(ds.counts[id]))
	copy(counts, ds.counts[id])
	seen := map[string]bool{string(counts): true}
	var res []Expansion
	var err error
	var dfs func(work float64)
	dfs = func(work float64) {
		if err != nil {
			return
		}
		for y := range counts {
			p := int(counts[y])
			if p >= len(ds.levels[y]) {
				continue
			}
			s := ds.levels[y][p]
			w := work + ds.g.Stages[s].Weight
			if w > maxWork {
				continue
			}
			if !ds.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			key := string(counts)
			if !seen[key] {
				seen[key] = true
				var to int
				to, err = ds.visit(counts)
				if err != nil {
					counts[y]--
					return
				}
				res = append(res, Expansion{To: to, ChunkWork: w})
				dfs(w)
			}
			counts[y]--
		}
	}
	dfs(0)
	if err != nil {
		return expEntry{}, err
	}
	e := expEntry{maxWork: maxWork, exps: res}
	ds.expCache[id] = e
	return e, nil
}

func (ds *DownsetSpace) predsIncluded(counts []uint8, s int) bool {
	for _, p := range ds.preds[s] {
		if ds.posInLevel[p] >= int(counts[ds.levelOf[p]]) {
			return false
		}
	}
	return true
}

// AllDownsets enumerates every downset of the graph (subject to the state
// cap). It is primarily used by tests and by the exact solver on small
// instances.
func (ds *DownsetSpace) AllDownsets() ([]int, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	// BFS from the empty downset adding one stage at a time.
	var queue []int
	queue = append(queue, ds.emptyID)
	visited := map[int]bool{ds.emptyID: true}
	counts := make([]uint8, len(ds.levels))
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		copy(counts, ds.counts[id])
		for y := range counts {
			p := int(counts[y])
			if p >= len(ds.levels[y]) {
				continue
			}
			s := ds.levels[y][p]
			if !ds.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			to, err := ds.visit(counts)
			counts[y]--
			if err != nil {
				return nil, err
			}
			if !visited[to] {
				visited[to] = true
				queue = append(queue, to)
			}
		}
	}
	return queue, nil
}
