package spg

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// ErrStateLimit is returned when enumerating the admissible subgraphs of an
// SPG would exceed the configured state budget. The paper's DPA1D heuristic
// exhibits exactly this failure mode on graphs of large elevation ("there are
// too many possible splits to explore", Section 6.2.1); callers treat it as a
// heuristic failure.
var ErrStateLimit = errors.New("spg: admissible-subgraph state limit exceeded")

// DownsetSpace enumerates the admissible subgraphs of an SPG as defined in
// the proof of Theorem 1: a subgraph is admissible if it can be obtained from
// the full graph by repeatedly deleting a stage without successors. These are
// exactly the predecessor-closed stage sets (downsets, or order ideals) of
// the dependence partial order.
//
// Because stages of equal elevation are pairwise comparable in an SPG, a
// downset is uniquely identified by how many stages of each elevation level
// it contains, which bounds the number of downsets by n^y_max (the bound used
// in the paper's complexity analysis). Downsets are interned lazily and
// addressed by dense integer ids.
//
// A DownsetSpace is a view over a shared structural core. The core holds
// everything that depends only on the graph's shape and stage weights — the
// interned states, the expansion enumerations (chunk works are weight sums)
// and the run-budget accounting — and is shared across every volume scale of
// a graph family: the CCR variants of a workload enumerate one lattice. The
// view owns the volume-dependent outgoing-cut cache (Cout), recomputed per
// scale from its own graph with the same arithmetic a fresh space would use,
// so scaled views answer bit-identically to freshly built spaces.
//
// A space may be reused across several solver runs (Analysis.DownsetSpace
// hands the same space to every DPA1D run on a workload): interned states
// persist, while the state budget is accounted per run. A run is the span
// between two BeginRun calls; the budget bounds the number of distinct
// downsets the run touches, so a warmed space fails (or succeeds) exactly
// where a freshly built one would, regardless of how many states earlier
// runs left behind. Without any BeginRun call the whole lifetime is one run,
// which matches the historical total-cap semantics.
//
// All methods are safe for concurrent use.
type DownsetSpace struct {
	core *downsetCore
	g    *Graph // this scale's graph: volumes for Cout

	// coutCache memoizes, per downset id, the aggregated volume of the edges
	// leaving the downset under this scale's volumes (negative = uncomputed).
	// Guarded by core.mu, like every other per-id table.
	coutCache []float64
}

// downsetCore is the scale-independent half of a DownsetSpace: interning,
// expansion enumeration and run accounting. Views sharing a core serialize
// their runs through the core's run lock.
//
// States live in flat arenas addressed by id so the enumeration inner loop
// touches no per-state allocations and no hashed containers: the per-level
// count vectors sit back to back in one []uint8 (stride bytes each), the
// stage-membership bitsets in one []uint64 (words words each), and interning
// goes through an open-addressed table that probes the counts arena directly
// instead of materializing string keys.
type downsetCore struct {
	g          *Graph  // structure/weight authority (any family member)
	levels     [][]int // stages per elevation level, in chain (x) order
	levelOf    []int   // stage -> level index (y-1)
	posInLevel []int   // stage -> position within its level chain
	preds      [][]int // stage -> distinct predecessors

	// runMu serializes whole runs: per-method locking (mu) keeps the data
	// structures consistent, but a run's indices are only meaningful within
	// its own epoch, so BeginRun through the last RunID/CoutRun/
	// ExpansionsInRun call must not interleave with another run. Solvers
	// hold it for the duration of a Solve via LockRun/UnlockRun.
	runMu sync.Mutex

	mu     sync.Mutex
	stride int     // bytes per state in counts: one per elevation level
	words  int     // uint64 words per state in bits: (n+63)/64
	counts []uint8 // flat id-indexed per-level inclusion counts (stride each)
	bits   []uint64
	size   []int // id -> number of included stages

	// table is the open-addressed intern index (FNV-1a over the count bytes,
	// linear probing, power-of-two capacity, -1 = empty slot): it replaces
	// the old map[string]int and its per-lookup key materialization.
	table []int32

	lastSeen   []int // id -> epoch that last touched it
	epoch      int
	runIDs     []int // run index -> id, in touch order for the current epoch
	runIndexOf []int // id -> run index (valid only when lastSeen[id] == epoch)

	// exp memoizes enumerations per source downset (id-indexed; valid marks
	// computed entries), tagged with the work budget they were computed at. A
	// query at a smaller budget is served by filtering: pruning only removes
	// chunks heavier than the budget (every path to a light chunk has light
	// prefixes), so the smaller-budget DFS tree is a prefix-closed subtree of
	// the larger one and the filtered list preserves both membership and
	// order. SelectPeriod descends from the largest period, so one
	// enumeration per downset serves every later period.
	exp []expEntry

	// dfsSeen deduplicates states within one expansion DFS (stamped with
	// dfsEpoch, so clearing between enumerations is a counter bump, not a
	// sweep). It replaces the per-DFS map[string]bool.
	dfsSeen  []int
	dfsEpoch int

	maxStates int
	emptyID   int
	fullID    int
}

type expEntry struct {
	maxWork float64
	exps    []Expansion
	valid   bool
}

// normalizeStateBudget maps the "use the default cap" sentinel to its value;
// every consumer of a state budget (space construction, the Analysis memo
// key) must agree on it so equal budgets share one space.
func normalizeStateBudget(maxStates int) int {
	if maxStates <= 0 {
		return 1 << 20
	}
	return maxStates
}

// Expansion describes one admissible superset reachable from a downset: the
// added chunk is exactly the stage set that a single additional processor of
// the uni-directional uni-line CMP would execute.
type Expansion struct {
	To        int     // id of the superset downset
	ChunkWork float64 // total weight of the added stages
}

// NewDownsetSpace prepares downset enumeration for g. maxStates caps the
// number of distinct downsets a run may touch; enumeration beyond the cap
// fails with ErrStateLimit.
func NewDownsetSpace(g *Graph, maxStates int) (*DownsetSpace, error) {
	return newDownsetSpace(g, Levels(g), maxStates)
}

// newDownsetSpace is NewDownsetSpace with the elevation levels supplied by
// the caller (Analysis passes its memoized copy; the space only reads them).
func newDownsetSpace(g *Graph, levels [][]int, maxStates int) (*DownsetSpace, error) {
	core, err := newDownsetCore(g, levels, maxStates)
	if err != nil {
		return nil, err
	}
	return core.viewFor(g), nil
}

func newDownsetCore(g *Graph, levels [][]int, maxStates int) (*downsetCore, error) {
	maxStates = normalizeStateBudget(maxStates)
	for _, lv := range levels {
		if len(lv) > 255 {
			return nil, fmt.Errorf("spg: elevation level with %d stages exceeds uint8 count encoding", len(lv))
		}
	}
	n := g.N()
	c := &downsetCore{
		g:          g,
		levels:     levels,
		levelOf:    make([]int, n),
		posInLevel: make([]int, n),
		preds:      make([][]int, n),
		stride:     len(levels),
		words:      (n + 63) / 64,
		table:      newInternTable(1 << 8),
		maxStates:  maxStates,
		epoch:      1,
	}
	for y, lv := range levels {
		for p, s := range lv {
			c.levelOf[s] = y
			c.posInLevel[s] = p
		}
	}
	for i := 0; i < n; i++ {
		c.preds[i] = g.Predecessors(i)
	}
	empty := make([]uint8, len(levels))
	var err error
	c.emptyID, err = c.visit(empty)
	if err != nil {
		return nil, err
	}
	full := make([]uint8, len(levels))
	for y, lv := range levels {
		full[y] = uint8(len(lv))
	}
	c.fullID, err = c.visit(full)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// viewFor binds the core to one volume scale. The view starts with an empty
// cut cache; the interned lattice and run accounting are the core's.
func (c *downsetCore) viewFor(g *Graph) *DownsetSpace {
	return &DownsetSpace{core: c, g: g}
}

// BeginRun opens a fresh budget epoch: the run that follows may touch up to
// maxStates distinct downsets (the empty and full sets count, as they do for
// a freshly constructed space). Solvers call it once per Solve so that a
// space shared across periods — or across the volume scales of a graph
// family — behaves exactly like a per-run space.
//
// Within an epoch every touched downset also receives a dense run index
// (its position in touch order, empty = 0, full = 1). Because touches happen
// in the same order whether the space is fresh or warmed, run indices are
// history-independent: the DPA1D dynamic program uses them as state keys so
// that its tables, iteration order and floating-point tie-breaking are
// identical either way — and sized by this run's states, not by whatever
// earlier runs left interned.
func (ds *DownsetSpace) BeginRun() {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.runIDs = c.runIDs[:0]
	// The constructor counts the empty and full sets; mirror that here so a
	// warmed run's accounting matches a fresh space's.
	_ = c.touch(c.emptyID)
	_ = c.touch(c.fullID)
}

// LockRun gives the caller exclusive use of the run-scoped API — BeginRun,
// RunCount, RunID, CoutRun, ExpansionsInRun — until UnlockRun. Run indices
// are only meaningful within their own epoch, so a solver sharing the space
// with other goroutines (or sharing its core with sibling volume scales)
// must hold the run lock for its whole Solve; the per-method mutex alone
// cannot prevent a concurrent BeginRun from invalidating indices mid-run.
func (ds *DownsetSpace) LockRun() { ds.core.runMu.Lock() }

// UnlockRun releases the exclusivity acquired by LockRun.
func (ds *DownsetSpace) UnlockRun() { ds.core.runMu.Unlock() }

// RunCount returns the number of distinct downsets touched in the current
// run (epoch).
func (ds *DownsetSpace) RunCount() int {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return len(ds.core.runIDs)
}

// RunID returns the global id of the downset with run index k.
func (ds *DownsetSpace) RunID(k int) int {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return ds.core.runIDs[k]
}

// EmptyID returns the id of the empty downset.
func (ds *DownsetSpace) EmptyID() int { return ds.core.emptyID }

// FullID returns the id of the complete stage set.
func (ds *DownsetSpace) FullID() int { return ds.core.fullID }

// NumStates returns the number of downsets interned so far.
func (ds *DownsetSpace) NumStates() int {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return len(ds.core.size)
}

// Size returns the number of stages in downset id.
func (ds *DownsetSpace) Size(id int) int {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return ds.core.size[id]
}

// countsOf returns downset id's per-level count vector as a window into the
// flat arena. Callers hold c.mu and must not retain or modify the slice.
func (c *downsetCore) countsOf(id int) []uint8 {
	return c.counts[id*c.stride : (id+1)*c.stride]
}

// newInternTable returns an empty open-addressed index of the given
// power-of-two capacity (every slot -1).
func newInternTable(capacity int) []int32 {
	t := make([]int32, capacity)
	for i := range t {
		t[i] = -1
	}
	return t
}

// hashCounts is FNV-1a over a count vector, the intern table's hash.
func hashCounts(counts []uint8) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range counts {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// lookup finds the id interned for counts, if any, without touching the run
// budget. Callers hold c.mu.
func (c *downsetCore) lookup(counts []uint8) (int, bool) {
	mask := uint64(len(c.table) - 1)
	for i := hashCounts(counts) & mask; ; i = (i + 1) & mask {
		t := c.table[i]
		if t < 0 {
			return -1, false
		}
		if bytes.Equal(c.countsOf(int(t)), counts) {
			return int(t), true
		}
	}
}

// growTable doubles the intern index and re-inserts every id (hashes are
// recomputed from the counts arena; ids never move). Callers hold c.mu.
func (c *downsetCore) growTable() {
	nt := newInternTable(2 * len(c.table))
	mask := uint64(len(nt) - 1)
	for id := 0; id < len(c.size); id++ {
		i := hashCounts(c.countsOf(id)) & mask
		for nt[i] >= 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(id)
	}
	c.table = nt
}

// intern appends a new downset to the arenas and charges the run budget.
// The budget is checked before any state is written so a rejected downset is
// not retained; with c.mu held, the touch below then succeeds on the same
// condition. Callers hold c.mu and have established that counts is not yet
// interned.
func (c *downsetCore) intern(counts []uint8) (int, error) {
	if len(c.runIDs) >= c.maxStates {
		return -1, ErrStateLimit
	}
	id := len(c.size)
	// Keep the open-addressed table below 75% load.
	if (id+1)*4 > len(c.table)*3 {
		c.growTable()
	}
	mask := uint64(len(c.table) - 1)
	i := hashCounts(counts) & mask
	for c.table[i] >= 0 {
		i = (i + 1) & mask
	}
	c.table[i] = int32(id)

	c.counts = append(c.counts, counts...)
	base := len(c.bits)
	for w := 0; w < c.words; w++ {
		c.bits = append(c.bits, 0)
	}
	sz := 0
	for y, cnt := range counts {
		sz += int(cnt)
		for p := 0; p < int(cnt); p++ {
			s := c.levels[y][p]
			c.bits[base+(s>>6)] |= 1 << (uint(s) & 63)
		}
	}
	c.size = append(c.size, sz)
	c.lastSeen = append(c.lastSeen, 0) // 0 predates every epoch: untouched
	c.runIndexOf = append(c.runIndexOf, 0)
	c.exp = append(c.exp, expEntry{})
	c.dfsSeen = append(c.dfsSeen, 0)
	return id, c.touch(id)
}

// touch records that the current run uses downset id, charging the run
// budget and assigning the run index on the first touch. Callers hold c.mu.
func (c *downsetCore) touch(id int) error {
	if c.lastSeen[id] == c.epoch {
		return nil
	}
	if len(c.runIDs) >= c.maxStates {
		return ErrStateLimit
	}
	c.lastSeen[id] = c.epoch
	c.runIndexOf[id] = len(c.runIDs)
	c.runIDs = append(c.runIDs, id)
	return nil
}

// visit returns the id of the downset with the given counts, interning it if
// new, and charges the run budget (through touch, the single charging path).
// Callers hold c.mu.
func (c *downsetCore) visit(counts []uint8) (int, error) {
	if id, ok := c.lookup(counts); ok {
		return id, c.touch(id)
	}
	return c.intern(counts)
}

// Contains reports whether stage s belongs to downset id.
func (ds *DownsetSpace) Contains(id, s int) bool {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return ds.core.contains(id, s)
}

// contains answers membership from the per-state bitset: one word load
// instead of the level/position translation, which is what the Cout edge
// loop spends its time on.
func (c *downsetCore) contains(id, s int) bool {
	return c.bits[id*c.words+(s>>6)]>>(uint(s)&63)&1 != 0
}

// Members returns the stages of downset id in no particular order.
func (ds *DownsetSpace) Members(id int) []int {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, c.size[id])
	for y, cnt := range c.countsOf(id) {
		for p := 0; p < int(cnt); p++ {
			out = append(out, c.levels[y][p])
		}
	}
	return out
}

// Diff returns the stages of downset to that are not in downset from. It is
// only meaningful when from is a subset of to, which holds for ids produced
// by Expansions.
func (ds *DownsetSpace) Diff(from, to int) []int {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	cf, ct := c.countsOf(from), c.countsOf(to)
	var out []int
	for y := range cf {
		for p := int(cf[y]); p < int(ct[y]); p++ {
			out = append(out, c.levels[y][p])
		}
	}
	return out
}

// Cout returns the aggregated volume of the edges leaving downset id (source
// inside, destination outside). On a uni-directional uni-line CMP this is
// exactly the load of the link separating the downset's processors from the
// rest, the quantity bounded by BW*T in Theorem 1. Values are cached per
// volume scale for the lifetime of the view, across runs; each scale's cache
// is filled by summing that scale's edge volumes in edge order — the same
// arithmetic a fresh space would use.
func (ds *DownsetSpace) Cout(id int) float64 {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return ds.coutLocked(id)
}

// CoutRun is Cout keyed by the run index of the downset.
func (ds *DownsetSpace) CoutRun(k int) float64 {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return ds.coutLocked(ds.core.runIDs[k])
}

func (ds *DownsetSpace) coutLocked(id int) float64 {
	for len(ds.coutCache) <= id {
		ds.coutCache = append(ds.coutCache, -1)
	}
	if v := ds.coutCache[id]; v >= 0 {
		return v
	}
	c := ds.core
	var total float64
	for _, e := range ds.g.Edges {
		if c.contains(id, e.Src) && !c.contains(id, e.Dst) {
			total += e.Volume
		}
	}
	ds.coutCache[id] = total
	return total
}

// Expansions enumerates every downset obtainable from id by adding stages
// whose total weight does not exceed maxWork (at least one stage is added).
// The run budget is charged for id and every returned downset, in
// enumeration order, so replays and fresh enumerations account identically.
func (ds *DownsetSpace) Expansions(id int, maxWork float64) ([]Expansion, error) {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, err := c.ensureExpansionsLocked(id, maxWork)
	if err != nil {
		return nil, err
	}
	if entry.maxWork == maxWork {
		if err := c.replayLocked(entry, maxWork, func(Expansion) {}); err != nil {
			return nil, err
		}
		return entry.exps, nil
	}
	out := make([]Expansion, 0, len(entry.exps))
	err = c.replayLocked(entry, maxWork, func(ex Expansion) { out = append(out, ex) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExpansionsInRun is Expansions keyed by run indices: k is the run index of
// the source downset, and To in the returned expansions is a run index too.
// This is the DPA1D entry point: run indices are dense and identical between
// fresh and warmed spaces, so the DP can key its tables by them directly.
func (ds *DownsetSpace) ExpansionsInRun(k int, maxWork float64) ([]Expansion, error) {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, err := c.ensureExpansionsLocked(c.runIDs[k], maxWork)
	if err != nil {
		return nil, err
	}
	out := make([]Expansion, 0, len(entry.exps))
	err = c.replayLocked(entry, maxWork, func(ex Expansion) {
		// Every emitted To was just touched, so its run index is current.
		out = append(out, Expansion{To: c.runIndexOf[ex.To], ChunkWork: ex.ChunkWork})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replayLocked replays a cached enumeration at a (possibly smaller) work
// budget: it charges the run budget for every fitting expansion in
// enumeration order — the exact accounting a fresh DFS would perform, which
// is what keeps warmed and fresh spaces bit-identical — and hands each one
// to emit. Callers hold c.mu.
func (c *downsetCore) replayLocked(entry expEntry, maxWork float64, emit func(Expansion)) error {
	for _, ex := range entry.exps {
		if ex.ChunkWork > maxWork {
			continue
		}
		if err := c.touch(ex.To); err != nil {
			return err
		}
		emit(ex)
	}
	return nil
}

// ensureExpansionsLocked returns the cached enumeration for id, running the
// depth-first enumeration at maxWork when no entry at that budget (or a
// larger one) exists. The DFS charges the run budget for every state it
// visits — a state already interned by an earlier run is touched without
// re-interning, a genuinely new one is interned, and a state already seen by
// this DFS is skipped without a charge, exactly the accounting the old
// string-keyed walk performed. Replayed entries charge only id here, leaving
// the per-expansion touches to the caller's filter loop so the accounting
// order matches a fresh enumeration. Chunk works are stage-weight sums, so
// one enumeration serves every volume scale sharing the core. Callers hold
// c.mu and must not modify entry.exps (the cached slice is returned without
// copying; every caller in this file only reads or re-filters it).
func (c *downsetCore) ensureExpansionsLocked(id int, maxWork float64) (expEntry, error) {
	if e := c.exp[id]; e.valid && e.maxWork >= maxWork {
		return e, c.touch(id)
	}
	if err := c.touch(id); err != nil {
		return expEntry{}, err
	}
	counts := make([]uint8, c.stride)
	copy(counts, c.countsOf(id))
	c.dfsEpoch++
	c.dfsSeen[id] = c.dfsEpoch
	var res []Expansion
	var err error
	var dfs func(work float64)
	dfs = func(work float64) {
		if err != nil {
			return
		}
		for y := range counts {
			p := int(counts[y])
			if p >= len(c.levels[y]) {
				continue
			}
			s := c.levels[y][p]
			w := work + c.g.Stages[s].Weight
			if w > maxWork {
				continue
			}
			if !c.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			to, ok := c.lookup(counts)
			if !ok || c.dfsSeen[to] != c.dfsEpoch {
				if ok {
					err = c.touch(to)
				} else {
					to, err = c.intern(counts)
				}
				if err != nil {
					counts[y]--
					return
				}
				c.dfsSeen[to] = c.dfsEpoch
				res = append(res, Expansion{To: to, ChunkWork: w})
				dfs(w)
			}
			counts[y]--
		}
	}
	dfs(0)
	if err != nil {
		return expEntry{}, err
	}
	e := expEntry{maxWork: maxWork, exps: res, valid: true}
	c.exp[id] = e
	return e, nil
}

func (c *downsetCore) predsIncluded(counts []uint8, s int) bool {
	for _, p := range c.preds[s] {
		if c.posInLevel[p] >= int(counts[c.levelOf[p]]) {
			return false
		}
	}
	return true
}

// AllDownsets enumerates every downset of the graph (subject to the state
// cap). It is primarily used by tests and by the exact solver on small
// instances.
func (ds *DownsetSpace) AllDownsets() ([]int, error) {
	c := ds.core
	c.mu.Lock()
	defer c.mu.Unlock()
	// BFS from the empty downset adding one stage at a time.
	var queue []int
	queue = append(queue, c.emptyID)
	visited := map[int]bool{c.emptyID: true}
	counts := make([]uint8, c.stride)
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		copy(counts, c.countsOf(id))
		for y := range counts {
			p := int(counts[y])
			if p >= len(c.levels[y]) {
				continue
			}
			s := c.levels[y][p]
			if !c.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			to, err := c.visit(counts)
			counts[y]--
			if err != nil {
				return nil, err
			}
			if !visited[to] {
				visited[to] = true
				queue = append(queue, to)
			}
		}
	}
	return queue, nil
}
