package spg

import (
	"errors"
	"fmt"
)

// ErrStateLimit is returned when enumerating the admissible subgraphs of an
// SPG would exceed the configured state budget. The paper's DPA1D heuristic
// exhibits exactly this failure mode on graphs of large elevation ("there are
// too many possible splits to explore", Section 6.2.1); callers treat it as a
// heuristic failure.
var ErrStateLimit = errors.New("spg: admissible-subgraph state limit exceeded")

// DownsetSpace enumerates the admissible subgraphs of an SPG as defined in
// the proof of Theorem 1: a subgraph is admissible if it can be obtained from
// the full graph by repeatedly deleting a stage without successors. These are
// exactly the predecessor-closed stage sets (downsets, or order ideals) of
// the dependence partial order.
//
// Because stages of equal elevation are pairwise comparable in an SPG, a
// downset is uniquely identified by how many stages of each elevation level
// it contains, which bounds the number of downsets by n^y_max (the bound used
// in the paper's complexity analysis). Downsets are interned lazily and
// addressed by dense integer ids.
type DownsetSpace struct {
	g          *Graph
	levels     [][]int // stages per elevation level, in chain (x) order
	levelOf    []int   // stage -> level index (y-1)
	posInLevel []int   // stage -> position within its level chain
	preds      [][]int // stage -> distinct predecessors

	ids       map[string]int
	counts    [][]uint8 // id -> per-level inclusion counts
	size      []int     // id -> number of included stages
	coutCache []float64 // id -> outgoing cut volume (NaN sentinel via negative)

	expCache map[int][]Expansion
	expWork  float64 // maxWork the cache was built with

	maxStates int
	emptyID   int
	fullID    int
}

// Expansion describes one admissible superset reachable from a downset: the
// added chunk is exactly the stage set that a single additional processor of
// the uni-directional uni-line CMP would execute.
type Expansion struct {
	To        int     // id of the superset downset
	ChunkWork float64 // total weight of the added stages
}

// NewDownsetSpace prepares downset enumeration for g. maxStates caps the
// number of distinct downsets that may be interned; enumeration beyond the
// cap fails with ErrStateLimit.
func NewDownsetSpace(g *Graph, maxStates int) (*DownsetSpace, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	levels := Levels(g)
	for _, lv := range levels {
		if len(lv) > 255 {
			return nil, fmt.Errorf("spg: elevation level with %d stages exceeds uint8 count encoding", len(lv))
		}
	}
	n := g.N()
	ds := &DownsetSpace{
		g:          g,
		levels:     levels,
		levelOf:    make([]int, n),
		posInLevel: make([]int, n),
		preds:      make([][]int, n),
		ids:        make(map[string]int),
		maxStates:  maxStates,
		expCache:   make(map[int][]Expansion),
	}
	for y, lv := range levels {
		for p, s := range lv {
			ds.levelOf[s] = y
			ds.posInLevel[s] = p
		}
	}
	for i := 0; i < n; i++ {
		ds.preds[i] = g.Predecessors(i)
	}
	empty := make([]uint8, len(levels))
	var err error
	ds.emptyID, err = ds.intern(empty)
	if err != nil {
		return nil, err
	}
	full := make([]uint8, len(levels))
	for y, lv := range levels {
		full[y] = uint8(len(lv))
	}
	ds.fullID, err = ds.intern(full)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// EmptyID returns the id of the empty downset.
func (ds *DownsetSpace) EmptyID() int { return ds.emptyID }

// FullID returns the id of the complete stage set.
func (ds *DownsetSpace) FullID() int { return ds.fullID }

// NumStates returns the number of downsets interned so far.
func (ds *DownsetSpace) NumStates() int { return len(ds.counts) }

// Size returns the number of stages in downset id.
func (ds *DownsetSpace) Size(id int) int { return ds.size[id] }

func (ds *DownsetSpace) intern(counts []uint8) (int, error) {
	key := string(counts)
	if id, ok := ds.ids[key]; ok {
		return id, nil
	}
	if len(ds.counts) >= ds.maxStates {
		return -1, ErrStateLimit
	}
	id := len(ds.counts)
	cp := make([]uint8, len(counts))
	copy(cp, counts)
	ds.ids[key] = id
	ds.counts = append(ds.counts, cp)
	sz := 0
	for _, c := range cp {
		sz += int(c)
	}
	ds.size = append(ds.size, sz)
	ds.coutCache = append(ds.coutCache, -1)
	return id, nil
}

// Contains reports whether stage s belongs to downset id.
func (ds *DownsetSpace) Contains(id, s int) bool {
	return ds.posInLevel[s] < int(ds.counts[id][ds.levelOf[s]])
}

// Members returns the stages of downset id in no particular order.
func (ds *DownsetSpace) Members(id int) []int {
	out := make([]int, 0, ds.size[id])
	for y, c := range ds.counts[id] {
		for p := 0; p < int(c); p++ {
			out = append(out, ds.levels[y][p])
		}
	}
	return out
}

// Diff returns the stages of downset to that are not in downset from. It is
// only meaningful when from is a subset of to, which holds for ids produced
// by Expansions.
func (ds *DownsetSpace) Diff(from, to int) []int {
	cf, ct := ds.counts[from], ds.counts[to]
	var out []int
	for y := range cf {
		for p := int(cf[y]); p < int(ct[y]); p++ {
			out = append(out, ds.levels[y][p])
		}
	}
	return out
}

// Cout returns the aggregated volume of the edges leaving downset id (source
// inside, destination outside). On a uni-directional uni-line CMP this is
// exactly the load of the link separating the downset's processors from the
// rest, the quantity bounded by BW*T in Theorem 1.
func (ds *DownsetSpace) Cout(id int) float64 {
	if v := ds.coutCache[id]; v >= 0 {
		return v
	}
	var total float64
	for _, e := range ds.g.Edges {
		if ds.Contains(id, e.Src) && !ds.Contains(id, e.Dst) {
			total += e.Volume
		}
	}
	ds.coutCache[id] = total
	return total
}

// Expansions enumerates every downset obtainable from id by adding stages
// whose total weight does not exceed maxWork (at least one stage is added).
// Results are cached per id; maxWork must be the same across calls on one
// DownsetSpace (it is fixed to T*s_max for a whole DPA1D run).
func (ds *DownsetSpace) Expansions(id int, maxWork float64) ([]Expansion, error) {
	if cached, ok := ds.expCache[id]; ok && ds.expWork == maxWork {
		return cached, nil
	}
	if len(ds.expCache) == 0 {
		ds.expWork = maxWork
	} else if ds.expWork != maxWork {
		// Reset the cache when the budget changes (new run on same space).
		ds.expCache = make(map[int][]Expansion)
		ds.expWork = maxWork
	}
	counts := make([]uint8, len(ds.counts[id]))
	copy(counts, ds.counts[id])
	seen := map[string]bool{string(counts): true}
	var res []Expansion
	var err error
	var dfs func(work float64)
	dfs = func(work float64) {
		if err != nil {
			return
		}
		for y := range counts {
			p := int(counts[y])
			if p >= len(ds.levels[y]) {
				continue
			}
			s := ds.levels[y][p]
			w := work + ds.g.Stages[s].Weight
			if w > maxWork {
				continue
			}
			if !ds.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			key := string(counts)
			if !seen[key] {
				seen[key] = true
				var to int
				to, err = ds.intern(counts)
				if err != nil {
					counts[y]--
					return
				}
				res = append(res, Expansion{To: to, ChunkWork: w})
				dfs(w)
			}
			counts[y]--
		}
	}
	dfs(0)
	if err != nil {
		return nil, err
	}
	ds.expCache[id] = res
	return res, nil
}

func (ds *DownsetSpace) predsIncluded(counts []uint8, s int) bool {
	for _, p := range ds.preds[s] {
		if ds.posInLevel[p] >= int(counts[ds.levelOf[p]]) {
			return false
		}
	}
	return true
}

// AllDownsets enumerates every downset of the graph (subject to the state
// cap). It is primarily used by tests and by the exact solver on small
// instances.
func (ds *DownsetSpace) AllDownsets() ([]int, error) {
	// BFS from the empty downset adding one stage at a time.
	var queue []int
	queue = append(queue, ds.emptyID)
	visited := map[int]bool{ds.emptyID: true}
	counts := make([]uint8, len(ds.levels))
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		copy(counts, ds.counts[id])
		for y := range counts {
			p := int(counts[y])
			if p >= len(ds.levels[y]) {
				continue
			}
			s := ds.levels[y][p]
			if !ds.predsIncluded(counts, s) {
				continue
			}
			counts[y]++
			to, err := ds.intern(counts)
			counts[y]--
			if err != nil {
				return nil, err
			}
			if !visited[to] {
				visited[to] = true
				queue = append(queue, to)
			}
		}
	}
	return queue, nil
}
