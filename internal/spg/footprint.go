package spg

// Memory footprint estimation for the campaign-scope cache: the engine's
// AnalysisCache bounds retained bytes with these estimates, refreshing them
// as analyses keep growing (interned downset lattices and band tables are
// built lazily while solvers run). The numbers are deliberate approximations
// — slice headers, map buckets and allocator slack are modelled with flat
// constants — because the bound they feed is a capacity policy, not an
// allocator: being ~20% off never changes which workloads a campaign can
// hold by an order of magnitude, while an exact accounting would need
// unsafe.Sizeof walks over every private structure.

// Per-entry approximations, in bytes.
const (
	sliceHeaderBytes = 24 // pointer + len + cap
	mapEntryBytes    = 48 // bucket share + key/value overhead for small keys
	stageBytes       = 40 // Weight + Label + Name header
	edgeBytes        = 24 // Src + Dst + Volume
)

// Footprinter lets values attached through Analysis.Aux and
// Analysis.MemberAux participate in MemoryFootprint: auxiliary caches that
// implement it (e.g. downstream solver tables) report their retained bytes,
// all others are counted as zero.
type Footprinter interface {
	MemoryFootprint() int64
}

// MemoryFootprint estimates the heap bytes retained by this analysis: the
// wrapped graph, every structure built so far (unbuilt slots cost nothing —
// probing never forces a build), and — on a scale-family base — the
// volume-dependent halves of every scaled member derived from it, since
// those are retained by the base's scale memo. The structural half shared
// by the family is charged once, on whichever member the caller asks
// (cache-bound callers hold family bases, so in practice: once per family).
// The interned downset lattices dominate on large-elevation workloads.
//
// The method is safe for concurrent use and takes only the analysis's own
// short-lived locks; it never blocks a build in progress (in-flight
// structures simply don't count yet).
func (a *Analysis) MemoryFootprint() int64 {
	if a == nil {
		return 0
	}
	return a.shared.footprint() + a.memberFootprint()
}

// memberFootprint sums the volume-dependent, per-member structures of this
// analysis and (recursively) of every scaled member hanging off it.
func (a *Analysis) memberFootprint() int64 {
	b := graphFootprint(a.g)
	if _, ok := a.ccr.value(); ok {
		b += 8
	}
	if iv, ok := a.inVol.value(); ok {
		b += sliceHeaderBytes + int64(len(iv))*8
	}

	a.bandMu.Lock()
	bands := append([]*lazySlot[*Band](nil), a.bands...)
	a.bandMu.Unlock()
	for _, cell := range bands {
		if cell == nil {
			continue
		}
		if band, ok := cell.value(); ok && band != nil {
			// The structural half is shared with the family's bandShape and
			// counted there; only the per-member crossing volumes are ours.
			b += 2 * (sliceHeaderBytes + int64(len(band.UpInt))*8)
		}
	}

	a.downMu.Lock()
	views := make([]*DownsetSpace, 0, len(a.downsets))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, slot := range a.downsets {
		slot.mu.Lock()
		if slot.built && slot.ds != nil {
			views = append(views, slot.ds)
		}
		slot.mu.Unlock()
	}
	a.downMu.Unlock()
	for _, ds := range views {
		b += ds.viewFootprint()
	}

	a.auxMu.Lock()
	auxen := make([]*lazySlot[any], 0, len(a.aux))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, cell := range a.aux {
		auxen = append(auxen, cell)
	}
	a.auxMu.Unlock()
	for _, cell := range auxen {
		if v, ok := cell.value(); ok {
			if fp, ok := v.(Footprinter); ok {
				b += fp.MemoryFootprint()
			}
		}
	}

	a.scaleMu.Lock()
	scaled := make([]*Analysis, 0, len(a.scaled))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, v := range a.scaled {
		scaled = append(scaled, v)
	}
	a.scaleMu.Unlock()
	for _, v := range scaled {
		b += v.memberFootprint()
	}
	return b
}

// footprint sums the structure-and-weight half shared by the scale family.
func (sh *analysisShared) footprint() int64 {
	var b int64
	if r, ok := sh.reach.value(); ok && r != nil {
		b += sliceHeaderBytes + int64(len(r.bits))*8
	}
	if lv, ok := sh.levels.value(); ok {
		b += nestedIntFootprint(lv)
	}
	if gr, ok := sh.grid.value(); ok {
		b += nestedIntFootprint(gr)
	}
	if t, ok := sh.topo.value(); ok {
		b += sliceHeaderBytes + int64(len(t.order))*8
	}
	if p, ok := sh.preds.value(); ok {
		b += sliceHeaderBytes + int64(len(p))*8
	}
	if m, ok := sh.prefix.value(); ok {
		for _, row := range m.w {
			b += sliceHeaderBytes + int64(len(row))*8
		}
		for _, row := range m.c {
			b += sliceHeaderBytes + int64(len(row))*8
		}
	}

	sh.bandMu.Lock()
	shapes := append([]*lazySlot[*bandShape](nil), sh.bandShapes...)
	sh.bandMu.Unlock()
	for _, cell := range shapes {
		if cell == nil {
			continue
		}
		if s, ok := cell.value(); ok && s != nil {
			b += s.footprint()
		}
	}

	sh.coreMu.Lock()
	cores := make([]*downsetCore, 0, len(sh.downsetCores))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, cell := range sh.downsetCores {
		cell.mu.Lock()
		if cell.built && cell.core != nil {
			cores = append(cores, cell.core)
		}
		cell.mu.Unlock()
	}
	sh.coreMu.Unlock()
	for _, core := range cores {
		b += core.footprint()
	}

	sh.auxMu.Lock()
	auxen := make([]*lazySlot[any], 0, len(sh.aux))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, cell := range sh.aux {
		auxen = append(auxen, cell)
	}
	sh.auxMu.Unlock()
	for _, cell := range auxen {
		if v, ok := cell.value(); ok {
			if fp, ok := v.(Footprinter); ok {
				b += fp.MemoryFootprint()
			}
		}
	}
	return b
}

// graphFootprint estimates a graph's stages, edges and adjacency caches.
func graphFootprint(g *Graph) int64 {
	if g == nil {
		return 0
	}
	n, e := int64(len(g.Stages)), int64(len(g.Edges))
	b := n*stageBytes + e*edgeBytes
	// out and in: one header per stage plus one int per edge in each.
	b += 2 * (n*sliceHeaderBytes + e*8)
	return b
}

func nestedIntFootprint(rows [][]int) int64 {
	b := int64(sliceHeaderBytes)
	for _, row := range rows {
		b += sliceHeaderBytes + int64(len(row))*8
	}
	return b
}

// footprint estimates the structure-only band analysis: index slices, the
// local map, the ancestor/descendant masks (one backing array) and the
// memoized convexity verdicts.
func (s *bandShape) footprint() int64 {
	b := int64(3*sliceHeaderBytes) + int64(len(s.internal)+len(s.outgoing)+len(s.nodes))*8
	b += int64(len(s.local)) * mapEntryBytes
	b += int64(2*len(s.anc)) * sliceHeaderBytes
	b += int64(2*len(s.anc)*s.words) * 8 // anc and desc share one mask array
	b += int64(len(s.convex))
	return b
}

// footprint estimates the interned lattice: the flat count/bitset arenas,
// the open-addressed intern table, run accounting and the memoized expansion
// enumerations. This is the dominant term on large-elevation workloads (a
// 150k-state space with its enumerations runs to hundreds of MB), which is
// exactly why the campaign cache re-estimates footprints as spaces grow.
func (c *downsetCore) footprint() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	states := int64(len(c.size))
	var b int64
	// Flat arenas: counts bytes, membership bitset words, intern table slots.
	b += int64(cap(c.counts)) + int64(cap(c.bits))*8 + int64(cap(c.table))*4
	// size, lastSeen, runIndexOf, dfsSeen, runIDs.
	b += states*4*8 + int64(cap(c.runIDs))*8
	// Expansion memo: one fixed entry per state plus the cached enumerations.
	b += states * (sliceHeaderBytes + 16)
	for i := range c.exp {
		b += int64(len(c.exp[i].exps)) * 16
	}
	// Static per-stage tables: levelOf, posInLevel, preds.
	nStages := int64(len(c.levelOf))
	b += nStages * 2 * 8
	for _, p := range c.preds {
		b += sliceHeaderBytes + int64(len(p))*8
	}
	return b
}

// viewFootprint estimates the per-scale half of a downset view (the cut
// cache); the shared core is counted by the family.
func (ds *DownsetSpace) viewFootprint() int64 {
	ds.core.mu.Lock()
	defer ds.core.mu.Unlock()
	return sliceHeaderBytes + int64(cap(ds.coutCache))*8
}
