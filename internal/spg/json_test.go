package spg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(30))
		RandomizeWeights(g, rng, 0.1, 2)
		RandomizeVolumes(g, rng, 0.1, 2)
		g.Stages[0].Name = "source"

		var sb strings.Builder
		if err := g.WriteJSON(&sb); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		g2, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for i := range g.Stages {
			if g.Stages[i] != g2.Stages[i] {
				t.Logf("seed %d: stage %d differs", seed, i)
				return false
			}
		}
		for i := range g.Edges {
			if g.Edges[i] != g2.Edges[i] {
				t.Logf("seed %d: edge %d differs", seed, i)
				return false
			}
		}
		return g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		`not json at all`,
		`{"stages":[{"weight":1,"x":1,"y":1}],"edges":[{"src":0,"dst":5,"volume":1}]}`,
		`{"stages":[{"weight":1,"x":1,"y":1}],"edges":[{"src":-1,"dst":0,"volume":1}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Primitive(1, 2, 3)
	g.Stages[0].Name = "src"
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "n0 -> n1", "rankdir=LR", "src", "(1,1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	var sb strings.Builder
	if err := Primitive(1, 1, 1).WriteDOT(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"spg"`) {
		t.Error("default graph name missing")
	}
}
