package spg

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Stages []jsonStage `json:"stages"`
	Edges  []jsonEdge  `json:"edges"`
}

type jsonStage struct {
	Weight float64 `json:"weight"`
	X      int     `json:"x"`
	Y      int     `json:"y"`
	Name   string  `json:"name,omitempty"`
}

type jsonEdge struct {
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Volume float64 `json:"volume"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Stages: make([]jsonStage, g.N()),
		Edges:  make([]jsonEdge, g.M()),
	}
	for i, s := range g.Stages {
		jg.Stages[i] = jsonStage{Weight: s.Weight, X: s.Label.X, Y: s.Label.Y, Name: s.Name}
	}
	for i, e := range g.Edges {
		jg.Edges[i] = jsonEdge{Src: e.Src, Dst: e.Dst, Volume: e.Volume}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	g.Stages = make([]Stage, len(jg.Stages))
	g.Edges = make([]Edge, len(jg.Edges))
	for i, s := range jg.Stages {
		g.Stages[i] = Stage{Weight: s.Weight, Label: Label{X: s.X, Y: s.Y}, Name: s.Name}
	}
	for i, e := range jg.Edges {
		if e.Src < 0 || e.Src >= len(jg.Stages) || e.Dst < 0 || e.Dst >= len(jg.Stages) {
			return fmt.Errorf("spg: edge %d endpoints out of range", i)
		}
		g.Edges[i] = Edge{Src: e.Src, Dst: e.Dst, Volume: e.Volume}
	}
	g.invalidate()
	return nil
}

// WriteJSON writes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph from JSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// WriteDOT writes the graph in Graphviz DOT format, with labels, weights and
// volumes annotated. Useful for eyeballing generated workloads.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "spg"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for i, s := range g.Stages {
		label := fmt.Sprintf("S%d\\n(%d,%d)\\nw=%.3g", i+1, s.Label.X, s.Label.Y, s.Weight)
		if s.Name != "" {
			label = s.Name + "\\n" + label
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", i, label); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%.3g\"];\n", e.Src, e.Dst, e.Volume); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
