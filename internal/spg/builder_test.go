package spg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildShapeExact(t *testing.T) {
	cases := []struct{ n, ymax, xmax int }{
		{8, 1, 8},     // pure chain (DCT)
		{57, 12, 12},  // Beamformer
		{55, 17, 8},   // ChannelVocoder (tight branches)
		{120, 2, 111}, // Serpent
		{114, 17, 32}, // Vocoder
		{23, 5, 18},   // MPEG2
	}
	for _, tc := range cases {
		g, err := BuildShape(tc.n, tc.ymax, tc.xmax, nil)
		if err != nil {
			t.Fatalf("BuildShape(%v): %v", tc, err)
		}
		if g.N() != tc.n || g.Elevation() != tc.ymax || g.Depth() != tc.xmax {
			t.Fatalf("BuildShape(%v) = (n=%d, y=%d, x=%d)", tc, g.N(), g.Elevation(), g.Depth())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("BuildShape(%v): invalid: %v", tc, err)
		}
		if !IsSeriesParallel(g) {
			t.Fatalf("BuildShape(%v): not series-parallel", tc)
		}
	}
}

func TestBuildShapeSeeded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xmax := 3 + rng.Intn(30)
		ymax := 1 + rng.Intn(8)
		maxExtra := (ymax - 1) * (xmax - 2)
		extra := 0
		if ymax > 1 {
			extra = (ymax - 1) + rng.Intn(maxExtra-(ymax-1)+1)
		}
		n := xmax + extra
		g, err := BuildShape(n, ymax, xmax, rng)
		if err != nil {
			t.Logf("seed %d (n=%d y=%d x=%d): %v", seed, n, ymax, xmax, err)
			return false
		}
		return g.N() == n && g.Elevation() == ymax && g.Depth() == xmax && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildShapeErrors(t *testing.T) {
	cases := []struct{ n, ymax, xmax int }{
		{5, 1, 1},   // xmax too small
		{5, 0, 5},   // ymax too small
		{4, 1, 5},   // n < xmax
		{5, 3, 5},   // not enough spare stages (needs 2, has 0)
		{10, 2, 2},  // xmax too small for branches
		{100, 2, 5}, // too many spare stages for one branch
		{6, 1, 5},   // ymax=1 requires n == xmax
	}
	for _, tc := range cases {
		if _, err := BuildShape(tc.n, tc.ymax, tc.xmax, nil); err == nil {
			t.Errorf("BuildShape(%v) accepted", tc)
		}
	}
}

func TestRandomizeBounds(t *testing.T) {
	g := mustChain(t, 10)
	rng := rand.New(rand.NewSource(5))
	RandomizeWeights(g, rng, 2, 3)
	RandomizeVolumes(g, rng, 7, 8)
	for i, s := range g.Stages {
		if s.Weight < 2 || s.Weight >= 3 {
			t.Errorf("stage %d weight %g outside [2,3)", i, s.Weight)
		}
	}
	for i, e := range g.Edges {
		if e.Volume < 7 || e.Volume >= 8 {
			t.Errorf("edge %d volume %g outside [7,8)", i, e.Volume)
		}
	}
}
