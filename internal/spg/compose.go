package spg

import "fmt"

// MergePolicy controls the weight of a node created by merging two nodes
// during composition (the sink of the first graph with the source of the
// second for series composition; the two sources and the two sinks for
// parallel composition).
type MergePolicy int

const (
	// MergeSum gives the merged node the sum of the two weights. This is the
	// default: the merged stage performs the work of both original stages.
	MergeSum MergePolicy = iota
	// MergeKeepFirst keeps the weight of the node from the first graph,
	// matching the paper's label bookkeeping where S_i = S^(1)_i survives.
	MergeKeepFirst
	// MergeMax keeps the larger of the two weights.
	MergeMax
)

func (p MergePolicy) merge(a, b float64) float64 {
	switch p {
	case MergeKeepFirst:
		return a
	case MergeMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Series returns the series composition of g1 and g2 under the default
// MergeSum policy. See SeriesWith.
func Series(g1, g2 *Graph) *Graph { return SeriesWith(g1, g2, MergeSum) }

// SeriesWith merges the sink of g1 with the source of g2 and relabels the
// stages of g2 following Section 3.1 of the paper: the x coordinates of g2
// are shifted by x(sink of g1) - 1 and the y coordinates are kept. The inputs
// are not modified. The resulting graph has n1+n2-1 stages: the stages of g1
// keep their indices, and stage j>0 of g2 becomes stage n1+j-1.
func SeriesWith(g1, g2 *Graph, policy MergePolicy) *Graph {
	sink1 := g1.Sink()
	if sink1 < 0 {
		panic("spg: series composition of graph without unique sink")
	}
	xShift := g1.Stages[sink1].Label.X - 1

	res := g1.Clone()
	res.invalidate()
	res.Stages[sink1].Weight = policy.merge(g1.Stages[sink1].Weight, g2.Stages[0].Weight)
	if res.Stages[sink1].Name == "" {
		res.Stages[sink1].Name = g2.Stages[0].Name
	}

	// remap[j] = index in res of stage j of g2.
	remap := make([]int, g2.N())
	remap[0] = sink1
	for j := 1; j < g2.N(); j++ {
		s := g2.Stages[j]
		s.Label.X += xShift
		remap[j] = len(res.Stages)
		res.Stages = append(res.Stages, s)
	}
	for _, e := range g2.Edges {
		res.Edges = append(res.Edges, Edge{Src: remap[e.Src], Dst: remap[e.Dst], Volume: e.Volume})
	}
	return res
}

// Parallel returns the parallel composition of g1 and g2 under the default
// MergeSum policy. See ParallelWith.
func Parallel(g1, g2 *Graph) *Graph { return ParallelWith(g1, g2, MergeSum) }

// ParallelWith merges the sources of g1 and g2 and their sinks, following
// Section 3.1 of the paper: the graph with the larger sink x coordinate plays
// the role of g1 (they are swapped otherwise, so that the first graph
// contains the longest path); the y coordinates of the inner stages of the
// second graph are shifted by the maximum y of the first. The inputs are not
// modified.
func ParallelWith(g1, g2 *Graph, policy MergePolicy) *Graph {
	s1, s2 := g1.Sink(), g2.Sink()
	if s1 < 0 || s2 < 0 {
		panic("spg: parallel composition of graph without unique sink")
	}
	if g1.Stages[s1].Label.X < g2.Stages[s2].Label.X {
		g1, g2 = g2, g1
		s1, s2 = s2, s1
	}
	yShift := g1.Elevation()

	res := g1.Clone()
	res.invalidate()
	res.Stages[0].Weight = policy.merge(g1.Stages[0].Weight, g2.Stages[0].Weight)
	res.Stages[s1].Weight = policy.merge(g1.Stages[s1].Weight, g2.Stages[s2].Weight)
	if res.Stages[0].Name == "" {
		res.Stages[0].Name = g2.Stages[0].Name
	}
	if res.Stages[s1].Name == "" {
		res.Stages[s1].Name = g2.Stages[s2].Name
	}

	remap := make([]int, g2.N())
	for j := range remap {
		remap[j] = -1
	}
	remap[0] = 0
	remap[s2] = s1
	for j := 0; j < g2.N(); j++ {
		if remap[j] >= 0 {
			continue
		}
		s := g2.Stages[j]
		s.Label.Y += yShift
		remap[j] = len(res.Stages)
		res.Stages = append(res.Stages, s)
	}
	for _, e := range g2.Edges {
		res.Edges = append(res.Edges, Edge{Src: remap[e.Src], Dst: remap[e.Dst], Volume: e.Volume})
	}
	return res
}

// ForkJoin builds the fork-join SPG used throughout the paper's proofs: a
// source, k parallel middle stages with the given weights, and a sink.
// inVol[i] is the volume from the source to middle stage i and outVol[i] the
// volume from middle stage i to the sink.
func ForkJoin(wSource, wSink float64, middle, inVol, outVol []float64) (*Graph, error) {
	if len(middle) == 0 {
		return nil, fmt.Errorf("spg: fork-join needs at least one middle stage")
	}
	if len(inVol) != len(middle) || len(outVol) != len(middle) {
		return nil, fmt.Errorf("spg: fork-join volume slices must match middle stages")
	}
	res := &Graph{
		Stages: []Stage{
			{Weight: wSource, Label: Label{1, 1}},
			{Weight: middle[0], Label: Label{2, 1}},
			{Weight: wSink, Label: Label{3, 1}},
		},
		Edges: []Edge{
			{Src: 0, Dst: 1, Volume: inVol[0]},
			{Src: 1, Dst: 2, Volume: outVol[0]},
		},
	}
	for i := 1; i < len(middle); i++ {
		idx := len(res.Stages)
		res.Stages = append(res.Stages, Stage{Weight: middle[i], Label: Label{2, i + 1}})
		res.Edges = append(res.Edges,
			Edge{Src: 0, Dst: idx, Volume: inVol[i]},
			Edge{Src: idx, Dst: 2, Volume: outVol[i]},
		)
	}
	return res, nil
}
