package spg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReachabilityChain(t *testing.T) {
	g := mustChain(t, 5)
	r := NewReachability(g)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := i < j
			if got := r.Reaches(i, j); got != want {
				t.Errorf("Reaches(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if r.Reaches(2, 2) {
		t.Error("Reaches must be irreflexive")
	}
}

func TestReachabilityForkJoin(t *testing.T) {
	fj, _ := ForkJoin(0, 0, []float64{1, 1, 1}, []float64{1, 1, 1}, []float64{1, 1, 1})
	r := NewReachability(fj)
	// Middle stages (indices 1, 3, 4) are pairwise incomparable.
	for _, a := range []int{1, 3, 4} {
		for _, b := range []int{1, 3, 4} {
			if a != b && r.Comparable(a, b) {
				t.Errorf("middle stages %d and %d comparable", a, b)
			}
		}
	}
	if !r.Reaches(0, 2) || !r.Reaches(0, 4) || !r.Reaches(4, 2) {
		t.Error("source/sink reachability broken")
	}
}

// TestReachabilityMatchesDFS is a property test against a straightforward
// per-query DFS oracle.
func TestReachabilityMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(25))
		r := NewReachability(g)
		var dfs func(from, to int, seen []bool) bool
		dfs = func(from, to int, seen []bool) bool {
			if from == to {
				return true
			}
			seen[from] = true
			for _, e := range g.OutEdges(from) {
				d := g.Edges[e].Dst
				if !seen[d] && dfs(d, to, seen) {
					return true
				}
			}
			return false
		}
		for trial := 0; trial < 20; trial++ {
			i, j := rng.Intn(g.N()), rng.Intn(g.N())
			want := i != j && dfs(i, j, make([]bool, g.N()))
			if r.Reaches(i, j) != want {
				t.Logf("seed %d: Reaches(%d,%d) = %v, want %v", seed, i, j, r.Reaches(i, j), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLevelsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomSPG(rng, 30)
	levels := Levels(g)
	count := 0
	for y, lv := range levels {
		for _, s := range lv {
			if g.Stages[s].Label.Y != y+1 {
				t.Fatalf("stage %d in level %d has label %v", s, y+1, g.Stages[s].Label)
			}
			count++
		}
		// Within a level, x must be strictly increasing.
		for i := 1; i < len(lv); i++ {
			if g.Stages[lv[i-1]].Label.X >= g.Stages[lv[i]].Label.X {
				t.Fatalf("level %d not sorted by x", y+1)
			}
		}
	}
	if count != g.N() {
		t.Fatalf("levels cover %d stages of %d", count, g.N())
	}
}

func TestStageGrid(t *testing.T) {
	fj, _ := ForkJoin(0, 0, []float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	grid := StageGrid(fj)
	if len(grid) != fj.Depth() || len(grid[0]) != fj.Elevation() {
		t.Fatalf("grid dims %dx%d", len(grid), len(grid[0]))
	}
	// Source at (1,1), middles at (2,1) and (2,2), sink at (3,1).
	if grid[0][0] != 0 || grid[2][0] != 2 {
		t.Errorf("terminals misplaced: %v", grid)
	}
	if grid[1][0] != 1 || grid[1][1] != 3 {
		t.Errorf("middles misplaced: %v", grid)
	}
	// Empty cells are -1.
	if grid[0][1] != -1 || grid[2][1] != -1 {
		t.Errorf("empty cells not -1: %v", grid)
	}
}

func TestIsConvex(t *testing.T) {
	// Chain 0-1-2-3: {0,2} is not convex (1 lies between), {1,2} is.
	g := mustChain(t, 4)
	r := NewReachability(g)
	member := []bool{true, false, true, false}
	if IsConvex(g, r, member) {
		t.Error("{0,2} reported convex on a chain")
	}
	member = []bool{false, true, true, false}
	if !IsConvex(g, r, member) {
		t.Error("{1,2} reported non-convex on a chain")
	}
	// Fork-join: {source, sink} is not convex; {branch} is.
	fj, _ := ForkJoin(0, 0, []float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	r2 := NewReachability(fj)
	if IsConvex(fj, r2, []bool{true, false, true, false}) {
		t.Error("{source,sink} reported convex on a fork-join")
	}
	if !IsConvex(fj, r2, []bool{false, true, false, false}) {
		t.Error("single branch stage reported non-convex")
	}
}

func TestCCRAndScale(t *testing.T) {
	g := Primitive(3, 3, 2)
	if got := CCR(g); got != 3 {
		t.Errorf("CCR = %g, want 3", got)
	}
	ScaleToCCR(g, 12)
	if got := CCR(g); math.Abs(got-12) > 1e-12 {
		t.Errorf("scaled CCR = %g, want 12", got)
	}
	// No-volume graph: CCR is +Inf and scaling is a no-op.
	g2 := Primitive(1, 1, 0)
	if !math.IsInf(CCR(g2), 1) {
		t.Errorf("CCR of zero-volume graph = %g", CCR(g2))
	}
	ScaleToCCR(g2, 5)
	if g2.TotalVolume() != 0 {
		t.Error("scaling resurrected volume from nothing")
	}
	// Non-positive target: no-op.
	before := g.Edges[0].Volume
	ScaleToCCR(g, -1)
	if g.Edges[0].Volume != before {
		t.Error("negative target changed volumes")
	}
}

// TestScaleToCCRPreservesRatios: scaling is uniform across edges.
func TestScaleToCCRPreservesRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomSPG(rng, 20)
	RandomizeVolumes(g, rng, 1, 5)
	ratio := g.Edges[0].Volume / g.Edges[1].Volume
	ScaleToCCR(g, 0.37)
	after := g.Edges[0].Volume / g.Edges[1].Volume
	if math.Abs(ratio-after) > 1e-9*ratio {
		t.Errorf("edge ratio changed: %g -> %g", ratio, after)
	}
}
