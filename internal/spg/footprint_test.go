package spg

import "testing"

func footprintGraph(t *testing.T) *Graph {
	t.Helper()
	weights := make([]float64, 24)
	vols := make([]float64, 23)
	for i := range weights {
		weights[i] = 0.02
	}
	g, err := Chain(weights, vols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMemoryFootprintGrowsWithStructures: an empty analysis charges only the
// graph; every structure built afterwards strictly increases the estimate,
// and probing never builds anything (the estimate is stable across repeated
// calls on an untouched analysis).
func TestMemoryFootprintGrowsWithStructures(t *testing.T) {
	an := NewAnalysis(footprintGraph(t))
	base := an.MemoryFootprint()
	if base <= 0 {
		t.Fatalf("fresh analysis footprint = %d", base)
	}
	if again := an.MemoryFootprint(); again != base {
		t.Fatalf("probing built something: %d -> %d", base, again)
	}

	an.Reachability()
	afterReach := an.MemoryFootprint()
	if afterReach <= base {
		t.Errorf("reachability did not grow the footprint: %d -> %d", base, afterReach)
	}

	an.LabelPrefixSums()
	an.InVolumes()
	an.Band(1, an.Depth())
	afterBands := an.MemoryFootprint()
	if afterBands <= afterReach {
		t.Errorf("bands/prefix sums did not grow the footprint: %d -> %d", afterReach, afterBands)
	}

	ds, err := an.DownsetSpace(10_000)
	if err != nil {
		t.Fatal(err)
	}
	afterSpace := an.MemoryFootprint()
	if afterSpace <= afterBands {
		t.Errorf("downset space did not grow the footprint: %d -> %d", afterBands, afterSpace)
	}

	// Enumeration keeps interning states: the estimate must track growth,
	// which is why the cache re-estimates on every hit.
	ds.LockRun()
	ds.BeginRun()
	if _, err := ds.Expansions(ds.EmptyID(), 1e18); err != nil {
		ds.UnlockRun()
		t.Fatal(err)
	}
	ds.UnlockRun()
	afterEnum := an.MemoryFootprint()
	if afterEnum <= afterSpace {
		t.Errorf("enumeration did not grow the footprint: %d -> %d", afterSpace, afterEnum)
	}
}

// TestMemoryFootprintScaleFamily: a scaled member's volume-dependent half is
// charged to the base that retains it, and asking the member itself counts
// the shared structural half exactly once.
func TestMemoryFootprintScaleFamily(t *testing.T) {
	base := NewAnalysis(footprintGraph(t))
	base.Reachability()
	before := base.MemoryFootprint()

	scaled := base.ScaleToCCR(10)
	scaled.InVolumes()
	after := base.MemoryFootprint()
	if after <= before {
		t.Errorf("scaled member not charged to its base: %d -> %d", before, after)
	}

	// The member's own estimate includes the shared half once, so it lies
	// between the member-only delta and the base total.
	if m := scaled.MemoryFootprint(); m <= 0 || m > after {
		t.Errorf("member footprint %d out of range (base total %d)", m, after)
	}
}

// TestMemoryFootprintNilSafety: nil receivers and nil-graph analyses answer
// zero instead of panicking (the cache probes whatever it stored).
func TestMemoryFootprintNilSafety(t *testing.T) {
	var nilAn *Analysis
	if got := nilAn.MemoryFootprint(); got != 0 {
		t.Errorf("nil analysis footprint = %d", got)
	}
	if got := NewAnalysis(nil).MemoryFootprint(); got != 0 {
		t.Errorf("nil-graph analysis footprint = %d", got)
	}
}

type testAux struct{ bytes int64 }

func (a *testAux) MemoryFootprint() int64 { return a.bytes }

// TestMemoryFootprintAuxParticipation: Aux and MemberAux values implementing
// Footprinter contribute their own accounting.
func TestMemoryFootprintAuxParticipation(t *testing.T) {
	an := NewAnalysis(footprintGraph(t))
	before := an.MemoryFootprint()
	an.Aux("fam", func() any { return &testAux{bytes: 1 << 20} })
	an.MemberAux("mem", func() any { return &testAux{bytes: 1 << 10} })
	got := an.MemoryFootprint()
	want := before + 1<<20 + 1<<10
	if got != want {
		t.Errorf("aux-inclusive footprint = %d, want %d", got, want)
	}
}
