package spg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteDownsets enumerates predecessor-closed subsets by brute force (for
// graphs of up to ~16 stages).
func bruteDownsets(g *Graph) int {
	n := g.N()
	count := 0
	r := NewReachability(g)
	for mask := 0; mask < 1<<uint(n); mask++ {
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if r.Reaches(j, i) && mask&(1<<uint(j)) == 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func TestDownsetCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(10))
		ds, err := NewDownsetSpace(g, 1<<20)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		all, err := ds.AllDownsets()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := bruteDownsets(g)
		if len(all) != want {
			t.Logf("seed %d: enumerated %d downsets, brute force %d", seed, len(all), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDownsetMembersArePredecessorClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(11)) //nolint:gosec
	g := randomSPG(rng, 18)
	ds, err := NewDownsetSpace(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ds.AllDownsets()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range all {
		for _, s := range ds.Members(id) {
			for _, p := range g.Predecessors(s) {
				if !ds.Contains(id, p) {
					t.Fatalf("downset %d contains %d but not its predecessor %d", id, s, p)
				}
			}
		}
	}
}

func TestDownsetChainExtremes(t *testing.T) {
	g := mustChain(t, 6)
	ds, err := NewDownsetSpace(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ds.AllDownsets()
	if err != nil {
		t.Fatal(err)
	}
	// A chain of 6 stages has exactly 7 downsets (prefixes).
	if len(all) != 7 {
		t.Fatalf("chain downsets = %d, want 7", len(all))
	}
	if ds.Size(ds.EmptyID()) != 0 || ds.Size(ds.FullID()) != 6 {
		t.Fatalf("extreme sizes wrong: %d %d", ds.Size(ds.EmptyID()), ds.Size(ds.FullID()))
	}
}

func TestDownsetCout(t *testing.T) {
	// Chain 1 -2-> 2 -3-> 3: the downset {1} has Cout 2, {1,2} has Cout 3.
	g, err := Chain([]float64{1, 1, 1}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDownsetSpace(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := ds.Expansions(ds.EmptyID(), 10)
	if err != nil {
		t.Fatal(err)
	}
	byCout := map[int]float64{}
	for _, ex := range exps {
		byCout[ds.Size(ex.To)] = ds.Cout(ex.To)
	}
	if byCout[1] != 2 {
		t.Errorf("Cout({S1}) = %g, want 2", byCout[1])
	}
	if byCout[2] != 3 {
		t.Errorf("Cout({S1,S2}) = %g, want 3", byCout[2])
	}
	if byCout[3] != 0 {
		t.Errorf("Cout(full) = %g, want 0", byCout[3])
	}
}

func TestExpansionsRespectWorkBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomSPG(rng, 12)
	for i := range g.Stages {
		g.Stages[i].Weight = 1
	}
	ds, err := NewDownsetSpace(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := ds.Expansions(ds.EmptyID(), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exps {
		if ex.ChunkWork > 2.5 {
			t.Fatalf("chunk work %g exceeds budget", ex.ChunkWork)
		}
		if ds.Size(ex.To) > 2 {
			t.Fatalf("chunk of %d unit stages exceeds budget 2.5", ds.Size(ex.To))
		}
	}
	// With unit weights and budget 2.5, chunk sizes are 1 or 2.
	if len(exps) == 0 {
		t.Fatal("no expansions found")
	}
}

func TestExpansionChunkWorkMatchesDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomSPG(rng, 14)
	ds, err := NewDownsetSpace(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := ds.Expansions(ds.EmptyID(), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exps[:min(len(exps), 200)] {
		var w float64
		for _, s := range ds.Diff(ds.EmptyID(), ex.To) {
			w += g.Stages[s].Weight
		}
		if math.Abs(w-ex.ChunkWork) > 1e-9 {
			t.Fatalf("chunk work %g but members weigh %g", ex.ChunkWork, w)
		}
	}
}

func TestStateLimit(t *testing.T) {
	// A wide fork-join has exponentially many downsets; a tiny budget must
	// trip ErrStateLimit.
	middle := make([]float64, 14)
	vols := make([]float64, 14)
	for i := range middle {
		middle[i] = 1
		vols[i] = 1
	}
	g, err := ForkJoin(0, 0, middle, vols, vols)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDownsetSpace(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AllDownsets(); err != ErrStateLimit {
		t.Fatalf("AllDownsets error = %v, want ErrStateLimit", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
