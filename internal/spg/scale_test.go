package spg

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// freshScaled clones g, rescales it to the target CCR and wraps it in a
// brand-new analysis — the reference every family-shared scaled view must
// agree with, accessor by accessor, bit for bit.
func freshScaled(g *Graph, target float64) (*Graph, *Analysis) {
	g2 := g.Clone()
	ScaleToCCR(g2, target)
	return g2, NewAnalysis(g2)
}

func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// checkScaledAgreement compares every Analysis accessor between the
// family-shared scaled view and a fresh analysis of an independently
// rescaled clone. Floats are compared by bit pattern: the scaled view must
// recompute volume-dependent entries with exactly the arithmetic a fresh
// build uses.
func checkScaledAgreement(t *testing.T, g *Graph, target float64) {
	t.Helper()
	base := NewAnalysis(g)
	scaled := base.ScaleToCCR(target)
	freshG, fresh := freshScaled(g, target)

	if scaled != base.ScaleToCCR(target) {
		t.Fatalf("target %g: scaled view not memoized", target)
	}

	// The scaled graph itself must be bit-identical to an independent clone
	// put through the package-level ScaleToCCR.
	sg := scaled.Graph()
	if len(sg.Edges) != len(freshG.Edges) {
		t.Fatalf("target %g: edge count drifted", target)
	}
	for e := range sg.Edges {
		if math.Float64bits(sg.Edges[e].Volume) != math.Float64bits(freshG.Edges[e].Volume) {
			t.Fatalf("target %g: edge %d volume %.17g != fresh %.17g",
				target, e, sg.Edges[e].Volume, freshG.Edges[e].Volume)
		}
	}
	if !reflect.DeepEqual(sg.Stages, freshG.Stages) {
		t.Fatalf("target %g: stages drifted under scaling", target)
	}

	if !sameErr(scaled.Validate(), fresh.Validate()) {
		t.Fatalf("target %g: Validate %v != fresh %v", target, scaled.Validate(), fresh.Validate())
	}
	if scaled.Depth() != fresh.Depth() || scaled.Elevation() != fresh.Elevation() {
		t.Fatalf("target %g: dims drifted", target)
	}
	if math.Float64bits(scaled.CCR()) != math.Float64bits(fresh.CCR()) {
		t.Fatalf("target %g: CCR %.17g != fresh %.17g", target, scaled.CCR(), fresh.CCR())
	}
	if !reflect.DeepEqual(scaled.Levels(), fresh.Levels()) {
		t.Fatalf("target %g: Levels mismatch", target)
	}
	if !reflect.DeepEqual(scaled.StageGrid(), fresh.StageGrid()) {
		t.Fatalf("target %g: StageGrid mismatch", target)
	}
	to1, err1 := scaled.TopoOrder()
	to2, err2 := fresh.TopoOrder()
	if !reflect.DeepEqual(to1, to2) || !sameErr(err1, err2) {
		t.Fatalf("target %g: TopoOrder mismatch", target)
	}
	r1, r2 := scaled.Reachability(), fresh.Reachability()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if r1.Reaches(i, j) != r2.Reaches(i, j) {
				t.Fatalf("target %g: Reaches(%d,%d) mismatch", target, i, j)
			}
		}
	}
	if !reflect.DeepEqual(scaled.PredCounts(), fresh.PredCounts()) {
		t.Fatalf("target %g: PredCounts mismatch", target)
	}
	iv1, iv2 := scaled.InVolumes(), fresh.InVolumes()
	for i := range iv1 {
		if math.Float64bits(iv1[i]) != math.Float64bits(iv2[i]) {
			t.Fatalf("target %g: InVolumes[%d] %.17g != fresh %.17g", target, i, iv1[i], iv2[i])
		}
	}
	w1, c1 := scaled.LabelPrefixSums()
	w2, c2 := fresh.LabelPrefixSums()
	if !reflect.DeepEqual(w1, w2) || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("target %g: LabelPrefixSums mismatch", target)
	}

	// Bands: structural fields identical, crossing volumes bit-identical,
	// convexity verdicts identical over every rectangle.
	xmax, ymax := scaled.Depth(), scaled.Elevation()
	bandsToCheck := [][2]int{{1, xmax}}
	if xmax >= 3 {
		bandsToCheck = append(bandsToCheck, [2]int{2, xmax - 1}, [2]int{1, xmax / 2}, [2]int{xmax/2 + 1, xmax})
	}
	for _, mm := range bandsToCheck {
		b1 := scaled.Band(mm[0], mm[1])
		b2 := fresh.Band(mm[0], mm[1])
		if !reflect.DeepEqual(b1.Internal, b2.Internal) || !reflect.DeepEqual(b1.Outgoing, b2.Outgoing) ||
			!reflect.DeepEqual(b1.Nodes, b2.Nodes) || !reflect.DeepEqual(b1.Anc, b2.Anc) ||
			!reflect.DeepEqual(b1.Desc, b2.Desc) {
			t.Fatalf("target %g: band [%d..%d] structure mismatch", target, mm[0], mm[1])
		}
		for gp := 0; gp <= ymax; gp++ {
			if math.Float64bits(b1.UpInt[gp]) != math.Float64bits(b2.UpInt[gp]) ||
				math.Float64bits(b1.DownInt[gp]) != math.Float64bits(b2.DownInt[gp]) {
				t.Fatalf("target %g: band [%d..%d] crossing volume at boundary %d mismatch",
					target, mm[0], mm[1], gp)
			}
		}
		for r1i := 1; r1i <= ymax; r1i++ {
			for r2i := r1i; r2i <= ymax; r2i++ {
				if b1.RowsConvex(r1i, r2i) != b2.RowsConvex(r1i, r2i) {
					t.Fatalf("target %g: band [%d..%d] RowsConvex(%d,%d) mismatch",
						target, mm[0], mm[1], r1i, r2i)
				}
			}
		}
	}

	// Downset spaces: the shared lattice must enumerate the same expansions
	// (chunk works are weight sums, untouched by scaling) and the per-scale
	// cut volumes must match a fresh space bit for bit.
	ds1, derr1 := scaled.DownsetSpace(1 << 20)
	ds2, derr2 := fresh.DownsetSpace(1 << 20)
	if !sameErr(derr1, derr2) {
		t.Fatalf("target %g: DownsetSpace err %v != fresh %v", target, derr1, derr2)
	}
	if derr1 != nil {
		return
	}
	maxWork := g.TotalWork() / 3
	ds1.BeginRun()
	exps1, eerr1 := ds1.Expansions(ds1.EmptyID(), maxWork)
	ds2.BeginRun()
	exps2, eerr2 := ds2.Expansions(ds2.EmptyID(), maxWork)
	if !sameErr(eerr1, eerr2) {
		t.Fatalf("target %g: Expansions err %v != fresh %v", target, eerr1, eerr2)
	}
	if eerr1 == nil {
		if !reflect.DeepEqual(expansionSet(ds1, exps1), expansionSet(ds2, exps2)) {
			t.Fatalf("target %g: expansion sets differ between scaled view and fresh space", target)
		}
		for _, ex := range exps1 {
			if math.Float64bits(ds1.Cout(ex.To)) != math.Float64bits(ds2.Cout(ex.To)) {
				t.Fatalf("target %g: Cout(%v) %.17g != fresh %.17g",
					target, ds1.Members(ex.To), ds1.Cout(ex.To), ds2.Cout(ex.To))
			}
		}
	}
	if math.Float64bits(ds1.Cout(ds1.FullID())) != math.Float64bits(ds2.Cout(ds2.FullID())) {
		t.Fatalf("target %g: full-set Cout mismatch", target)
	}
}

// TestScaledAnalysisMatchesFresh: on random SPGs and over the paper's CCR
// targets, a ScaleToCCR-derived analysis must agree with a fresh analysis of
// an independently rescaled clone on every accessor, bit for bit.
func TestScaledAnalysisMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	targets := []float64{10, 1, 0.1, 2.5}
	for trial := 0; trial < 12; trial++ {
		g := randomSPG(rng, 6+rng.Intn(22))
		for _, target := range targets {
			checkScaledAgreement(t, g, target)
		}
	}
}

// TestScaledAnalysisBudgetEpochs: the family-shared downset lattice must hit
// (or clear) a run's state budget at exactly the same point for a scaled
// view as for a fresh space — including when the lattice was warmed by a
// sibling scale's earlier, larger-budget run.
func TestScaledAnalysisBudgetEpochs(t *testing.T) {
	middle := make([]float64, 12)
	vols := make([]float64, 12)
	for i := range middle {
		middle[i] = 1
		vols[i] = 1
	}
	g, err := ForkJoin(1, 1, middle, vols, vols)
	if err != nil {
		t.Fatal(err)
	}
	base := NewAnalysis(g)
	scaled := base.ScaleToCCR(0.5)

	// Warm the shared lattice generously through the base member...
	baseDS, err := base.DownsetSpace(40)
	if err != nil {
		t.Fatal(err)
	}
	baseDS.BeginRun()
	_, warmErr := baseDS.Expansions(baseDS.EmptyID(), 8)
	if !errors.Is(warmErr, ErrStateLimit) {
		t.Fatalf("warming run error = %v, want ErrStateLimit", warmErr)
	}

	// ...then the scaled sibling's run must fail exactly like a fresh space
	// with the same budget, despite the leftover interned states.
	scaledDS, err := scaled.DownsetSpace(40)
	if err != nil {
		t.Fatal(err)
	}
	if scaledDS == baseDS {
		t.Fatal("sibling scales must hold distinct views")
	}
	scaledDS.BeginRun()
	_, gotErr := scaledDS.Expansions(scaledDS.EmptyID(), 6)

	freshG, fresh := freshScaled(g, 0.5)
	_ = freshG
	freshDS, err := fresh.DownsetSpace(40)
	if err != nil {
		t.Fatal(err)
	}
	freshDS.BeginRun()
	_, wantErr := freshDS.Expansions(freshDS.EmptyID(), 6)
	if !sameErr(gotErr, wantErr) {
		t.Fatalf("warmed sibling run error %v differs from fresh run error %v", gotErr, wantErr)
	}

	// Success case at a budget both clear: identical expansion sets and cuts.
	bigBase, err := base.DownsetSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	bigBase.BeginRun()
	if _, err := bigBase.Expansions(bigBase.EmptyID(), 8); err != nil {
		t.Fatal(err)
	}
	bigScaled, err := scaled.DownsetSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	bigScaled.BeginRun()
	got, err := bigScaled.Expansions(bigScaled.EmptyID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	freshBig, err := fresh.DownsetSpace(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	freshBig.BeginRun()
	want, err := freshBig.Expansions(freshBig.EmptyID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expansionSet(bigScaled, got), expansionSet(freshBig, want)) {
		t.Fatal("warmed sibling enumerates different expansions than a fresh space")
	}
}

// TestScaleToCCREviction: evicting a budget-failed space through one family
// member must also drop the shared lattice core, so the next request starts
// from a fresh, unbloated space.
func TestScaleToCCREviction(t *testing.T) {
	g := mustChain(t, 8)
	base := NewAnalysis(g)
	ds, err := base.DownsetSpace(100)
	if err != nil {
		t.Fatal(err)
	}
	base.EvictDownsetSpace(100, ds)
	ds2, err := base.DownsetSpace(100)
	if err != nil {
		t.Fatal(err)
	}
	if ds2 == ds {
		t.Fatal("eviction did not drop the view")
	}
	if ds2.NumStates() != 2 {
		t.Fatalf("post-eviction space has %d interned states, want a fresh core with 2", ds2.NumStates())
	}
}
