package spg

import (
	"errors"
	"fmt"
)

// DecompKind identifies the constructor of a node of an SP decomposition
// tree.
type DecompKind int

const (
	// DecompLeaf is a single original edge.
	DecompLeaf DecompKind = iota
	// DecompSeries is a series composition of its two children.
	DecompSeries
	// DecompParallel is a parallel composition of its two children.
	DecompParallel
)

func (k DecompKind) String() string {
	switch k {
	case DecompLeaf:
		return "leaf"
	case DecompSeries:
		return "series"
	case DecompParallel:
		return "parallel"
	default:
		return fmt.Sprintf("DecompKind(%d)", int(k))
	}
}

// DecompNode is a node of the binary series-parallel decomposition tree of an
// SPG, produced by Decompose. Leaves reference original edges; internal nodes
// record the composition used.
type DecompNode struct {
	Kind  DecompKind
	Edge  int // index into Graph.Edges, for leaves
	Left  *DecompNode
	Right *DecompNode
	Src   int // terminal pair of the sub-SPG represented by this node
	Dst   int
}

// Leaves returns the number of leaf nodes under d.
func (d *DecompNode) Leaves() int {
	if d == nil {
		return 0
	}
	if d.Kind == DecompLeaf {
		return 1
	}
	return d.Left.Leaves() + d.Right.Leaves()
}

// ErrNotSeriesParallel is returned by Decompose when the input DAG cannot be
// reduced to a single source-sink edge by series and parallel reductions.
var ErrNotSeriesParallel = errors.New("spg: graph is not two-terminal series-parallel")

type reduceEdge struct {
	src, dst int
	tree     *DecompNode
	dead     bool
}

// Decompose builds the series-parallel decomposition tree of the graph using
// the classical Valdes-Tarjan-Lawler reduction: interior vertices with
// in-degree 1 and out-degree 1 are series-reduced and parallel edges are
// merged, until a single source-to-sink edge remains. It returns
// ErrNotSeriesParallel if the reduction gets stuck, which happens exactly
// when the DAG is not two-terminal series-parallel.
func Decompose(g *Graph) (*DecompNode, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("spg: cannot decompose graph with fewer than two stages")
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	sink := g.Sink()
	if sink < 0 {
		return nil, ErrNotSeriesParallel
	}
	source := g.Source()

	edges := make([]*reduceEdge, 0, g.M())
	out := make([]map[*reduceEdge]bool, n)
	in := make([]map[*reduceEdge]bool, n)
	for i := 0; i < n; i++ {
		out[i] = make(map[*reduceEdge]bool)
		in[i] = make(map[*reduceEdge]bool)
	}
	for ei, e := range g.Edges {
		re := &reduceEdge{src: e.Src, dst: e.Dst,
			tree: &DecompNode{Kind: DecompLeaf, Edge: ei, Src: e.Src, Dst: e.Dst}}
		edges = append(edges, re)
		out[e.Src][re] = true
		in[e.Dst][re] = true
	}

	// Repeatedly apply parallel then series reductions until fixpoint.
	alive := len(edges)
	for {
		changed := false
		// Parallel reduction: merge duplicate (src,dst) pairs.
		for v := 0; v < n; v++ {
			byDst := make(map[int]*reduceEdge)
			for re := range out[v] {
				if re.dead {
					delete(out[v], re)
					continue
				}
				if prev, ok := byDst[re.dst]; ok {
					prev.tree = &DecompNode{Kind: DecompParallel,
						Left: prev.tree, Right: re.tree, Src: v, Dst: re.dst}
					re.dead = true
					delete(out[v], re)
					delete(in[re.dst], re)
					alive--
					changed = true
				} else {
					byDst[re.dst] = re
				}
			}
		}
		// Series reduction: interior vertex with single in and single out edge.
		for v := 0; v < n; v++ {
			if v == source || v == sink {
				continue
			}
			if len(in[v]) != 1 || len(out[v]) != 1 {
				continue
			}
			var e1, e2 *reduceEdge
			for re := range in[v] {
				e1 = re
			}
			for re := range out[v] {
				e2 = re
			}
			merged := &reduceEdge{src: e1.src, dst: e2.dst,
				tree: &DecompNode{Kind: DecompSeries, Left: e1.tree, Right: e2.tree,
					Src: e1.src, Dst: e2.dst}}
			e1.dead = true
			e2.dead = true
			delete(out[e1.src], e1)
			delete(in[v], e1)
			delete(out[v], e2)
			delete(in[e2.dst], e2)
			out[merged.src][merged] = true
			in[merged.dst][merged] = true
			alive--
			changed = true
		}
		if !changed {
			break
		}
	}
	if alive != 1 || len(out[source]) != 1 {
		return nil, ErrNotSeriesParallel
	}
	for re := range out[source] {
		if re.dst != sink {
			return nil, ErrNotSeriesParallel
		}
		return re.tree, nil
	}
	return nil, ErrNotSeriesParallel
}

// IsSeriesParallel reports whether the graph is a two-terminal
// series-parallel DAG.
func IsSeriesParallel(g *Graph) bool {
	_, err := Decompose(g)
	return err == nil
}
