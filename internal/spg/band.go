package spg

import "sync"

// Band is the analysis of one band of consecutive x levels [M1..M2] of an
// SPG, as consumed by the DPA2D nested dynamic program (Section 5.3): edge
// classification, per-row-boundary internal crossing volumes, and band-local
// ancestor/descendant elevation masks for rectangle convexity checks.
//
// A band splits into two halves with different sharing scope. The structural
// half (edge classification, node order, ancestor/descendant masks, rectangle
// convexity) depends only on the graph's shape and labels, so it lives in a
// bandShape shared across every volume scale of a graph family (the CCR
// variants of a workload all read one shape). The volume half (UpInt/DownInt)
// depends on the edge volumes and is recomputed per scale — by the exact
// arithmetic a fresh build would use, so scaled bands are bit-identical to
// freshly analyzed ones. Both halves are platform- and period-independent and
// are shared across DPA2D, its transposed variant, DPA2D1D and every period
// division (see Analysis.Band). The exported structure is immutable after
// construction; the rectangle-convexity verdicts are memoized inside the
// shared shape under its own lock.
type Band struct {
	M1, M2 int

	// Internal lists edge indices with both endpoints in the band; Outgoing
	// lists edges with their source in the band and destination beyond it.
	// Both are label-only classifications shared with the band's shape.
	Internal []int
	Outgoing []int

	// UpInt[gp] (DownInt[gp]) is the volume of internal edges crossing the
	// row boundary gp upwards (downwards): y_src <= gp < y_dst (resp.
	// y_dst <= gp < y_src). Volume-dependent, so owned per scale.
	UpInt, DownInt []float64

	// Nodes lists the band's stages in topological order; Local maps a stage
	// index to its position in Nodes. Anc[i] (Desc[i]) is the y bitmask of
	// the band-internal ancestors (descendants) of band node i, each Words
	// uint64 long. All shared with the shape.
	Nodes []int
	Local map[int]int
	Anc   [][]uint64
	Desc  [][]uint64
	Words int

	g     *Graph
	shape *bandShape
}

// bandShape is the structure-only core of a band: everything derived from
// stage labels and edge endpoints alone. One shape serves every volume scale
// of a graph family.
type bandShape struct {
	m1, m2             int
	internal, outgoing []int
	nodes              []int
	local              map[int]int
	anc, desc          [][]uint64
	words              int
	ymax               int
	g                  *Graph // structure/label authority (any family member)

	// convex memoizes rows-convexity verdicts: index r1*(ymax+2)+r2, with
	// 0 = unknown, 1 = convex, -1 = not convex. The verdict is graph-only,
	// so it is shared across every volume scale, platform and period that
	// queries the band.
	mu     sync.Mutex
	convex []int8
}

// RowsConvex reports whether restricting the band to label rows [r1..r2]
// yields a convex stage set: no band stage outside those rows may have both
// an ancestor and a descendant inside them (Section 5.3 assigns such
// rectangles infinite energy). Verdicts are memoized in the shared shape; the
// method is safe for concurrent use.
func (b *Band) RowsConvex(r1, r2 int) bool {
	return b.shape.rowsConvex(r1, r2)
}

func (s *bandShape) rowsConvex(r1, r2 int) bool {
	idx := r1*(s.ymax+2) + r2
	s.mu.Lock()
	if v := s.convex[idx]; v != 0 {
		s.mu.Unlock()
		return v > 0
	}
	s.mu.Unlock()
	ok := s.computeConvex(r1, r2)
	s.mu.Lock()
	if ok {
		s.convex[idx] = 1
	} else {
		s.convex[idx] = -1
	}
	s.mu.Unlock()
	return ok
}

func (s *bandShape) computeConvex(r1, r2 int) bool {
	mask := make([]uint64, s.words)
	for y := r1 - 1; y <= r2-1; y++ {
		mask[y/64] |= 1 << uint(y%64)
	}
	for li, st := range s.nodes {
		y := s.g.Stages[st].Label.Y
		if y >= r1 && y <= r2 {
			continue
		}
		var hasAnc, hasDesc bool
		for w := 0; w < s.words; w++ {
			if s.anc[li][w]&mask[w] != 0 {
				hasAnc = true
			}
			if s.desc[li][w]&mask[w] != 0 {
				hasDesc = true
			}
		}
		if hasAnc && hasDesc {
			return false
		}
	}
	return true
}

// newBandShape computes the structure-only band analysis of x levels
// [m1..m2]. topo is a topological order of the full graph; ymax its
// elevation. Any dependence path between two band stages stays inside the
// band (x is strictly increasing along edges), so band-local reachability
// suffices for rectangle convexity.
func newBandShape(g *Graph, topo []int, ymax, m1, m2 int) *bandShape {
	words := (ymax + 63) / 64
	s := &bandShape{
		m1: m1, m2: m2,
		local:  make(map[int]int),
		words:  words,
		ymax:   ymax,
		g:      g,
		convex: make([]int8, (ymax+2)*(ymax+2)),
	}
	inBand := func(st int) bool {
		x := g.Stages[st].Label.X
		return x >= m1 && x <= m2
	}
	for _, st := range topo {
		if inBand(st) {
			s.local[st] = len(s.nodes)
			s.nodes = append(s.nodes, st)
		}
	}
	for ei, edge := range g.Edges {
		switch {
		case inBand(edge.Src) && inBand(edge.Dst):
			s.internal = append(s.internal, ei)
		case inBand(edge.Src) && g.Stages[edge.Dst].Label.X > m2:
			s.outgoing = append(s.outgoing, ei)
		}
	}
	// Band-internal ancestor/descendant y masks, propagated in topological
	// (node list) order.
	nb := len(s.nodes)
	s.anc = make([][]uint64, nb)
	s.desc = make([][]uint64, nb)
	masks := make([]uint64, 2*nb*words)
	for i := 0; i < nb; i++ {
		s.anc[i], masks = masks[:words], masks[words:]
		s.desc[i], masks = masks[:words], masks[words:]
	}
	for li, st := range s.nodes {
		for _, ei := range g.OutEdges(st) {
			edge := g.Edges[ei]
			ld, ok := s.local[edge.Dst]
			if !ok {
				continue
			}
			y := g.Stages[st].Label.Y - 1
			s.anc[ld][y/64] |= 1 << uint(y%64)
			for w := 0; w < words; w++ {
				s.anc[ld][w] |= s.anc[li][w]
			}
		}
	}
	for li := nb - 1; li >= 0; li-- {
		st := s.nodes[li]
		for _, ei := range g.OutEdges(st) {
			edge := g.Edges[ei]
			ld, ok := s.local[edge.Dst]
			if !ok {
				continue
			}
			y := g.Stages[edge.Dst].Label.Y - 1
			s.desc[li][y/64] |= 1 << uint(y%64)
			for w := 0; w < words; w++ {
				s.desc[li][w] |= s.desc[ld][w]
			}
		}
	}
	return s
}

// newBandAt binds a shared shape to one volume scale: the structural fields
// alias the shape, and the crossing volumes are accumulated from g's edge
// volumes in ascending edge order — the same order a monolithic build used,
// so the prefix sums are bit-identical to a from-scratch analysis of g.
func newBandAt(s *bandShape, g *Graph) *Band {
	b := &Band{
		M1: s.m1, M2: s.m2,
		Internal: s.internal,
		Outgoing: s.outgoing,
		UpInt:    make([]float64, s.ymax+1),
		DownInt:  make([]float64, s.ymax+1),
		Nodes:    s.nodes,
		Local:    s.local,
		Anc:      s.anc,
		Desc:     s.desc,
		Words:    s.words,
		g:        g,
		shape:    s,
	}
	upDiff := make([]float64, s.ymax+2)
	downDiff := make([]float64, s.ymax+2)
	for _, ei := range s.internal {
		edge := g.Edges[ei]
		ys, yd := g.Stages[edge.Src].Label.Y, g.Stages[edge.Dst].Label.Y
		if ys < yd {
			upDiff[ys] += edge.Volume
			upDiff[yd] -= edge.Volume
		} else if yd < ys {
			downDiff[yd] += edge.Volume
			downDiff[ys] -= edge.Volume
		}
	}
	var up, down float64
	for gp := 0; gp <= s.ymax; gp++ {
		up += upDiff[gp]
		down += downDiff[gp]
		b.UpInt[gp] = up
		b.DownInt[gp] = down
	}
	return b
}
