package spg

import "sync"

// Band is the platform- and period-independent analysis of one band of
// consecutive x levels [M1..M2] of an SPG, as consumed by the DPA2D nested
// dynamic program (Section 5.3): edge classification, per-row-boundary
// internal crossing volumes, and band-local ancestor/descendant elevation
// masks for rectangle convexity checks. Everything here depends only on the
// graph, so bands are built once per (m1, m2) pair and shared across DPA2D,
// its transposed variant, DPA2D1D and every period division (see
// Analysis.Band). The exported structure is immutable after construction;
// the rectangle-convexity verdicts are memoized internally under a lock.
type Band struct {
	M1, M2 int

	// Internal lists edge indices with both endpoints in the band; Outgoing
	// lists edges with their source in the band and destination beyond it.
	Internal []int
	Outgoing []int

	// UpInt[gp] (DownInt[gp]) is the volume of internal edges crossing the
	// row boundary gp upwards (downwards): y_src <= gp < y_dst (resp.
	// y_dst <= gp < y_src).
	UpInt, DownInt []float64

	// Nodes lists the band's stages in topological order; Local maps a stage
	// index to its position in Nodes. Anc[i] (Desc[i]) is the y bitmask of
	// the band-internal ancestors (descendants) of band node i, each Words
	// uint64 long.
	Nodes []int
	Local map[int]int
	Anc   [][]uint64
	Desc  [][]uint64
	Words int

	g    *Graph
	ymax int

	// convex memoizes RowsConvex verdicts: index r1*(ymax+2)+r2, with 0 =
	// unknown, 1 = convex, -1 = not convex. The verdict is graph-only, so it
	// is shared across every platform and period that queries the band.
	mu     sync.Mutex
	convex []int8
}

// RowsConvex reports whether restricting the band to label rows [r1..r2]
// yields a convex stage set: no band stage outside those rows may have both
// an ancestor and a descendant inside them (Section 5.3 assigns such
// rectangles infinite energy). Verdicts are memoized; the method is safe for
// concurrent use.
func (b *Band) RowsConvex(r1, r2 int) bool {
	idx := r1*(b.ymax+2) + r2
	b.mu.Lock()
	if v := b.convex[idx]; v != 0 {
		b.mu.Unlock()
		return v > 0
	}
	b.mu.Unlock()
	ok := b.computeConvex(r1, r2)
	b.mu.Lock()
	if ok {
		b.convex[idx] = 1
	} else {
		b.convex[idx] = -1
	}
	b.mu.Unlock()
	return ok
}

func (b *Band) computeConvex(r1, r2 int) bool {
	mask := make([]uint64, b.Words)
	for y := r1 - 1; y <= r2-1; y++ {
		mask[y/64] |= 1 << uint(y%64)
	}
	for li, s := range b.Nodes {
		y := b.g.Stages[s].Label.Y
		if y >= r1 && y <= r2 {
			continue
		}
		var hasAnc, hasDesc bool
		for w := 0; w < b.Words; w++ {
			if b.Anc[li][w]&mask[w] != 0 {
				hasAnc = true
			}
			if b.Desc[li][w]&mask[w] != 0 {
				hasDesc = true
			}
		}
		if hasAnc && hasDesc {
			return false
		}
	}
	return true
}

// newBand computes the band analysis of x levels [m1..m2]. topo is a
// topological order of the full graph; ymax its elevation. Any dependence
// path between two band stages stays inside the band (x is strictly
// increasing along edges), so band-local reachability suffices for rectangle
// convexity.
func newBand(g *Graph, topo []int, ymax, m1, m2 int) *Band {
	words := (ymax + 63) / 64
	b := &Band{
		M1: m1, M2: m2,
		UpInt:   make([]float64, ymax+1),
		DownInt: make([]float64, ymax+1),
		Local:   make(map[int]int),
		Words:   words,
		g:       g,
		ymax:    ymax,
		convex:  make([]int8, (ymax+2)*(ymax+2)),
	}
	inBand := func(s int) bool {
		x := g.Stages[s].Label.X
		return x >= m1 && x <= m2
	}
	for _, s := range topo {
		if inBand(s) {
			b.Local[s] = len(b.Nodes)
			b.Nodes = append(b.Nodes, s)
		}
	}
	// Difference arrays for the per-boundary internal crossing volumes.
	upDiff := make([]float64, ymax+2)
	downDiff := make([]float64, ymax+2)
	for ei, edge := range g.Edges {
		srcIn, dstIn := inBand(edge.Src), inBand(edge.Dst)
		switch {
		case srcIn && dstIn:
			b.Internal = append(b.Internal, ei)
			ys, yd := g.Stages[edge.Src].Label.Y, g.Stages[edge.Dst].Label.Y
			if ys < yd {
				upDiff[ys] += edge.Volume
				upDiff[yd] -= edge.Volume
			} else if yd < ys {
				downDiff[yd] += edge.Volume
				downDiff[ys] -= edge.Volume
			}
		case srcIn && g.Stages[edge.Dst].Label.X > m2:
			b.Outgoing = append(b.Outgoing, ei)
		}
	}
	var up, down float64
	for gp := 0; gp <= ymax; gp++ {
		up += upDiff[gp]
		down += downDiff[gp]
		b.UpInt[gp] = up
		b.DownInt[gp] = down
	}
	// Band-internal ancestor/descendant y masks, propagated in topological
	// (node list) order.
	nb := len(b.Nodes)
	b.Anc = make([][]uint64, nb)
	b.Desc = make([][]uint64, nb)
	masks := make([]uint64, 2*nb*words)
	for i := 0; i < nb; i++ {
		b.Anc[i], masks = masks[:words], masks[words:]
		b.Desc[i], masks = masks[:words], masks[words:]
	}
	for li, s := range b.Nodes {
		for _, ei := range g.OutEdges(s) {
			edge := g.Edges[ei]
			ld, ok := b.Local[edge.Dst]
			if !ok {
				continue
			}
			y := g.Stages[s].Label.Y - 1
			b.Anc[ld][y/64] |= 1 << uint(y%64)
			for w := 0; w < words; w++ {
				b.Anc[ld][w] |= b.Anc[li][w]
			}
		}
	}
	for li := nb - 1; li >= 0; li-- {
		s := b.Nodes[li]
		for _, ei := range g.OutEdges(s) {
			edge := g.Edges[ei]
			ld, ok := b.Local[edge.Dst]
			if !ok {
				continue
			}
			y := g.Stages[edge.Dst].Label.Y - 1
			b.Desc[li][y/64] |= 1 << uint(y%64)
			for w := 0; w < words; w++ {
				b.Desc[li][w] |= b.Desc[ld][w]
			}
		}
	}
	return b
}
