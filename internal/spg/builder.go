package spg

import (
	"fmt"
	"math/rand"
)

// BuildShape constructs an SPG with exactly n stages, elevation ymax and
// depth xmax, by composing a main chain of xmax stages in parallel with
// ymax-1 branches that carry the remaining n-xmax stages. All weights and
// volumes are 1; callers randomize them afterwards (see RandomizeWeights and
// RandomizeVolumes). rng controls how the branch sizes and anchor points are
// spread; a nil rng yields a deterministic balanced shape.
//
// Feasibility requires xmax >= 2, 1 <= ymax, n >= xmax, and:
//   - extra := n - xmax >= ymax - 1 (each branch holds at least one stage);
//   - every branch fits over the main chain: branch size <= xmax - 2 + 1,
//     i.e. a branch of k inner stages spans k+1 <= xmax - 1 edges... in
//     practice k <= xmax-2 guarantees the branch is strictly shorter than the
//     chain segment it parallels, so depth stays xmax.
func BuildShape(n, ymax, xmax int, rng *rand.Rand) (*Graph, error) {
	if xmax < 2 {
		return nil, fmt.Errorf("spg: BuildShape needs xmax >= 2, got %d", xmax)
	}
	if ymax < 1 {
		return nil, fmt.Errorf("spg: BuildShape needs ymax >= 1, got %d", ymax)
	}
	if n < xmax {
		return nil, fmt.Errorf("spg: BuildShape needs n >= xmax (n=%d, xmax=%d)", n, xmax)
	}
	extra := n - xmax
	branches := ymax - 1
	if extra < branches {
		return nil, fmt.Errorf("spg: BuildShape cannot reach elevation %d with only %d spare stages", ymax, extra)
	}
	if branches == 0 && extra > 0 {
		return nil, fmt.Errorf("spg: BuildShape with ymax=1 requires n == xmax")
	}
	maxBranch := xmax - 2
	if branches > 0 && maxBranch < 1 {
		return nil, fmt.Errorf("spg: BuildShape needs xmax >= 3 to host parallel branches")
	}
	if branches > 0 && extra > branches*maxBranch {
		return nil, fmt.Errorf("spg: BuildShape cannot place %d spare stages in %d branches of at most %d stages",
			extra, branches, maxBranch)
	}

	// Split the extra stages across branches as evenly as possible, then
	// optionally jitter with rng while respecting the per-branch bounds.
	sizes := make([]int, branches)
	for i := range sizes {
		sizes[i] = extra / branches
		if i < extra%branches {
			sizes[i]++
		}
	}
	if rng != nil && branches > 1 {
		for it := 0; it < 4*branches; it++ {
			a, b := rng.Intn(branches), rng.Intn(branches)
			if a != b && sizes[a] > 1 && sizes[b] < maxBranch {
				sizes[a]--
				sizes[b]++
			}
		}
	}

	unitChain := func(k int) *Graph {
		w := make([]float64, k)
		v := make([]float64, k-1)
		for i := range w {
			w[i] = 1
		}
		for i := range v {
			v[i] = 1
		}
		c, err := Chain(w, v)
		if err != nil {
			panic(err) // k >= 2 by construction
		}
		return c
	}

	g := unitChain(xmax)
	for _, k := range sizes {
		if k == 0 {
			continue
		}
		// A branch of k inner stages is a chain of k+2 stages whose endpoints
		// merge with the main source and sink during parallel composition.
		branch := unitChain(k + 2)
		g = ParallelWith(g, branch, MergeKeepFirst)
	}
	if got := g.N(); got != n {
		return nil, fmt.Errorf("spg: BuildShape internal error: built %d stages, want %d", got, n)
	}
	if got := g.Elevation(); got != ymax {
		return nil, fmt.Errorf("spg: BuildShape internal error: elevation %d, want %d", got, ymax)
	}
	if got := g.Depth(); got != xmax {
		return nil, fmt.Errorf("spg: BuildShape internal error: depth %d, want %d", got, xmax)
	}
	return g, nil
}

// RandomizeWeights assigns every stage an independent uniform weight in
// [min, max).
func RandomizeWeights(g *Graph, rng *rand.Rand, min, max float64) {
	for i := range g.Stages {
		g.Stages[i].Weight = min + rng.Float64()*(max-min)
	}
}

// RandomizeVolumes assigns every edge an independent uniform volume in
// [min, max).
func RandomizeVolumes(g *Graph, rng *rand.Rand, min, max float64) {
	for i := range g.Edges {
		g.Edges[i].Volume = min + rng.Float64()*(max-min)
	}
}
