package spg

import (
	"math"
	"sort"
)

// Reachability is a precomputed transitive-closure of an SPG, used by the
// DAG-partition validity checks and by the dynamic programming heuristics.
// For the graph sizes of the paper (n <= ~150) a dense bitset representation
// is both simple and fast.
type Reachability struct {
	n     int
	words int
	bits  []uint64 // row i occupies bits[i*words : (i+1)*words]
}

// NewReachability computes the transitive closure l* of the graph: the
// returned structure answers Reaches(i, j) = "is there a dependence path from
// stage i to stage j" (false for i == j).
func NewReachability(g *Graph) *Reachability {
	n := g.N()
	words := (n + 63) / 64
	r := &Reachability{n: n, words: words, bits: make([]uint64, n*words)}
	order, err := g.TopoOrder()
	if err != nil {
		// Callers are expected to validate graphs first; a cyclic graph has
		// no meaningful closure, so return an empty relation.
		return r
	}
	// Process in reverse topological order: row(i) = union over successors j
	// of ({j} | row(j)).
	for idx := len(order) - 1; idx >= 0; idx-- {
		i := order[idx]
		ri := r.row(i)
		for _, e := range g.OutEdges(i) {
			j := g.Edges[e].Dst
			ri[j/64] |= 1 << uint(j%64)
			rj := r.row(j)
			for w := range ri {
				ri[w] |= rj[w]
			}
		}
	}
	return r
}

func (r *Reachability) row(i int) []uint64 {
	return r.bits[i*r.words : (i+1)*r.words]
}

// Reaches reports whether there is a dependence path from stage i to stage j.
func (r *Reachability) Reaches(i, j int) bool {
	if i == j {
		return false
	}
	return r.bits[i*r.words+j/64]&(1<<uint(j%64)) != 0
}

// Comparable reports whether stages i and j are ordered by a dependence path
// in either direction.
func (r *Reachability) Comparable(i, j int) bool {
	return r.Reaches(i, j) || r.Reaches(j, i)
}

// Levels groups stage indices by elevation: Levels(g)[y-1] lists the stages
// with label y, sorted by increasing x. In an SPG, stages of equal elevation
// are pairwise comparable, so each level is a dependence chain.
func Levels(g *Graph) [][]int {
	ymax := g.Elevation()
	levels := make([][]int, ymax)
	for i, s := range g.Stages {
		levels[s.Label.Y-1] = append(levels[s.Label.Y-1], i)
	}
	for y := range levels {
		lv := levels[y]
		sort.Slice(lv, func(a, b int) bool {
			return g.Stages[lv[a]].Label.X < g.Stages[lv[b]].Label.X
		})
	}
	return levels
}

// StageGrid returns a Depth() x Elevation() matrix m with m[x-1][y-1] = stage
// index at label (x, y), or -1 when no stage has that label. DPA2D maps the
// SPG onto this virtual grid before cutting it into CMP columns and rows.
func StageGrid(g *Graph) [][]int {
	xmax, ymax := g.Depth(), g.Elevation()
	grid := make([][]int, xmax)
	cells := make([]int, xmax*ymax)
	for i := range cells {
		cells[i] = -1
	}
	for x := 0; x < xmax; x++ {
		grid[x], cells = cells[:ymax], cells[ymax:]
	}
	for i, s := range g.Stages {
		grid[s.Label.X-1][s.Label.Y-1] = i
	}
	return grid
}

// IsConvex reports whether the stage set (given as a membership mask) is
// convex with respect to dependence paths: for every pair i, j in the set,
// every stage on a path from i to j is also in the set. Convexity of every
// cluster is the closure rule stated in Section 3.3 of the paper; it is
// necessary (though not sufficient on arbitrary DAGs) for the cluster
// quotient graph to be acyclic.
func IsConvex(g *Graph, r *Reachability, member []bool) bool {
	for k := range g.Stages {
		if member[k] {
			continue
		}
		var hasPredIn, hasSuccIn bool
		for i := range g.Stages {
			if !member[i] {
				continue
			}
			if r.Reaches(i, k) {
				hasPredIn = true
			}
			if r.Reaches(k, i) {
				hasSuccIn = true
			}
			if hasPredIn && hasSuccIn {
				return false
			}
		}
	}
	return true
}

// CCR returns the computation-to-communication ratio of the graph: the sum of
// stage weights divided by the sum of edge volumes. It returns +Inf when the
// graph has no communication volume.
func CCR(g *Graph) float64 {
	v := g.TotalVolume()
	if v == 0 {
		return inf()
	}
	return g.TotalWork() / v
}

// ScaleToCCR multiplies every edge volume by a common factor so that the
// graph's CCR becomes target, as done in Section 6.1.1 of the paper to set
// the StreamIt CCRs to 10, 1 and 0.1. It is a no-op when the graph carries no
// communication at all.
func ScaleToCCR(g *Graph, target float64) {
	v := g.TotalVolume()
	if v == 0 || target <= 0 {
		return
	}
	factor := g.TotalWork() / (target * v)
	for i := range g.Edges {
		g.Edges[i].Volume *= factor
	}
}

func inf() float64 { return math.Inf(1) }
