package spg

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Analysis is a per-graph cache of the period-independent structures the
// heuristics and front-end tools consume: validation, transitive closure,
// elevation levels, the label grid, topological order, label-rectangle
// prefix sums, adjacency summaries, band analyses (DPA2D) and interned
// downset spaces (DPA1D). All of it depends only on the graph, never on the
// platform or the period, so one Analysis can be shared across every
// heuristic run on a workload — in particular across the up-to-ten period
// divisions of the Section 6.1.3 selection protocol, which would otherwise
// recompute each structure from scratch at every division.
//
// Analyses form scale families. ScaleToCCR derives the analysis of a
// uniformly volume-rescaled clone of the graph — the Section 6.1.1 CCR
// variants — and the expensive structure-only caches (reachability, levels,
// grids, prefix sums, band shapes with convexity verdicts, the interned
// downset lattice with its expansion enumerations) are shared verbatim
// across the whole family, because none of them reads an edge volume. Only
// the volume-dependent entries (CCR, in-volumes, band crossing volumes,
// downset cut volumes) are held per family member, and those are recomputed
// from the member's own volumes with the same arithmetic a fresh analysis
// would use, so a scaled analysis answers bit-identically to a from-scratch
// one.
//
// Every structure is computed lazily on first use and memoized behind its
// own sync.Once-style slot, so an expensive first build (a 150k-state
// downset space, say) never blocks getters of other structures on concurrent
// goroutines; only callers of the same structure wait for its first build.
// An Analysis is safe for concurrent use by multiple goroutines. The graph
// it wraps must not be mutated after NewAnalysis (mutating the graph would
// silently invalidate the memoized structures).
//
// Accessors return internal slices for speed; callers must treat them as
// read-only and copy before mutating.
type Analysis struct {
	g      *Graph
	shared *analysisShared

	// Volume-dependent, per family member.
	ccr   lazySlot[float64]
	inVol lazySlot[[]float64]

	bandMu sync.Mutex
	bands  []*lazySlot[*Band]

	downMu   sync.Mutex
	downsets map[int]*downsetSlot

	scaleMu sync.Mutex
	scaled  map[float64]*Analysis

	auxMu sync.Mutex
	aux   map[any]*lazySlot[any]
}

// analysisShared is the structure-and-weight half of an analysis, shared by
// every member of a scale family. Nothing in here reads an edge volume.
type analysisShared struct {
	g *Graph // structure/weight authority: the family's founding graph

	validate lazySlot[error]
	reach    lazySlot[*Reachability]
	levels   lazySlot[[][]int]
	grid     lazySlot[[][]int]
	topo     lazySlot[topoMemo]
	dims     lazySlot[dimsMemo]
	preds    lazySlot[[]int]
	prefix   lazySlot[prefixMemo]

	// bandShapes[m1*(depth+1)+m2] memoizes the structural band analysis; a
	// dense slice because the DPA2D outer DP probes bands in tight loops
	// where map hashing is measurable. Cells are installed under bandMu and
	// built under their own once, so one band's build never blocks another's.
	bandMu     sync.Mutex
	bandShapes []*lazySlot[*bandShape]

	// downsetCores holds the per-budget interned downset lattices shared by
	// the family's DownsetSpace views.
	coreMu       sync.Mutex
	downsetCores map[int]*downsetCoreCell

	// aux lets downstream packages attach their own structure-or-weight
	// caches (core's cross-period rectangle tables) to the family.
	auxMu sync.Mutex
	aux   map[any]*lazySlot[any]
}

type topoMemo struct {
	order []int
	err   error
}

type dimsMemo struct {
	depth, elevation int
}

type prefixMemo struct {
	w [][]float64
	c [][]int
}

// downsetCoreCell lazily builds one budget's shared lattice core. It is a
// mutex-based (not sync.Once-based) cell because EvictDownsetSpace must read
// the built pointer for its identity check, and a once's completion gives no
// happens-before edge to a goroutine that never called it.
type downsetCoreCell struct {
	mu    sync.Mutex
	built bool
	core  *downsetCore
	err   error
}

// downsetSlot is the per-member counterpart of downsetCoreCell, holding the
// member's volume-scale view; mutex-based for the same eviction reason.
type downsetSlot struct {
	mu    sync.Mutex
	built bool
	ds    *DownsetSpace
	err   error
}

// lazySlot memoizes one structure behind its own sync.Once: the first caller
// builds, concurrent callers of the same structure wait, and callers of
// other structures are never blocked. Embed it by value for fixed slots, or
// heap-allocate (*lazySlot) cells for per-key tables — the owning map or
// slice installs cells under a short lock and each cell builds outside it.
type lazySlot[T any] struct {
	once sync.Once
	done atomic.Bool
	v    T
}

func (s *lazySlot[T]) get(build func() T) T {
	s.once.Do(func() {
		s.v = build()
		s.done.Store(true)
	})
	return s.v
}

// value observes the slot without building: it returns the memoized value
// and true once a build has completed (the atomic flag orders the read after
// the build's writes). MemoryFootprint probes slots this way so accounting
// never forces a structure into existence.
func (s *lazySlot[T]) value() (T, bool) {
	if !s.done.Load() {
		var zero T
		return zero, false
	}
	return s.v, true
}

// NewAnalysis wraps g in an empty cache, founding a new scale family. The
// graph's adjacency lists are built eagerly so that concurrent reads through
// the Graph accessors (Successors, OutEdges, ...) are race-free afterwards.
func NewAnalysis(g *Graph) *Analysis {
	if g != nil {
		g.buildAdj()
	}
	return &Analysis{
		g:      g,
		shared: &analysisShared{g: g},
	}
}

// Graph returns the wrapped graph.
func (a *Analysis) Graph() *Graph { return a.g }

// ScaleToCCR returns the analysis of a clone of the wrapped graph whose edge
// volumes are uniformly rescaled so its CCR equals target — the same
// arithmetic as the package-level ScaleToCCR, so the returned graph is
// bit-identical to independently rescaling a copy. The result shares this
// analysis's structural caches (see the type comment); results are memoized
// per target, so the CCR variants of a campaign resolve to one family
// member each. Derive every variant from the same base analysis: scaling is
// relative to the receiver's volumes, so chained scalings compose
// numerically instead of sharing memo entries.
func (a *Analysis) ScaleToCCR(target float64) *Analysis {
	if a.g == nil {
		return a
	}
	a.scaleMu.Lock()
	defer a.scaleMu.Unlock()
	if v, ok := a.scaled[target]; ok {
		return v
	}
	g2 := a.g.Clone()
	ScaleToCCR(g2, target)
	g2.buildAdj()
	v := &Analysis{g: g2, shared: a.shared}
	if a.scaled == nil {
		a.scaled = make(map[float64]*Analysis)
	}
	a.scaled[target] = v
	return v
}

// Aux returns the memoized auxiliary value for key, building it on first
// use. It lets downstream packages attach their own caches of structure- or
// weight-derived data to the analysis — the core package stores its
// cross-period DPA2D rectangle tables here — with the same sharing scope as
// the structural caches: one value per scale family, never per volume
// variant. Keys follow the context.Context convention (unexported types in
// the owning package). The build function must not depend on edge volumes.
func (a *Analysis) Aux(key any, build func() any) any {
	sh := a.shared
	sh.auxMu.Lock()
	if sh.aux == nil {
		sh.aux = make(map[any]*lazySlot[any])
	}
	cell := sh.aux[key]
	if cell == nil {
		cell = &lazySlot[any]{}
		sh.aux[key] = cell
	}
	sh.auxMu.Unlock()
	return cell.get(build)
}

// MemberAux is Aux at member scope: the value is memoized per family member
// rather than per family, for downstream caches that depend on this member's
// edge volumes (core's DPA1D run-outcome memo keys off the member because
// the run's cut-capacity pruning reads volumes). Same conventions as Aux.
func (a *Analysis) MemberAux(key any, build func() any) any {
	a.auxMu.Lock()
	if a.aux == nil {
		a.aux = make(map[any]*lazySlot[any])
	}
	cell := a.aux[key]
	if cell == nil {
		cell = &lazySlot[any]{}
		a.aux[key] = cell
	}
	a.auxMu.Unlock()
	return cell.get(build)
}

// Validate memoizes Graph.Validate: the first call pays the full structural
// check, every later call returns the recorded verdict. This is what makes
// Instance.Validate idempotent when an Analysis is attached. The verdict is
// shared across the scale family: a uniform non-negative volume rescale can
// change neither the structure nor any volume's sign, so every member
// validates identically.
func (a *Analysis) Validate() error {
	return a.shared.validate.get(func() error {
		if a.shared.g == nil {
			return errors.New("spg: analysis of a nil graph")
		}
		return a.shared.g.Validate()
	})
}

// Reachability returns the memoized transitive closure.
func (a *Analysis) Reachability() *Reachability {
	sh := a.shared
	return sh.reach.get(func() *Reachability { return NewReachability(sh.g) })
}

// Levels returns the memoized elevation levels (see the Levels function).
func (a *Analysis) Levels() [][]int {
	return a.shared.levelsMemo()
}

func (sh *analysisShared) levelsMemo() [][]int {
	return sh.levels.get(func() [][]int { return Levels(sh.g) })
}

// StageGrid returns the memoized Depth() x Elevation() label grid (see the
// StageGrid function). DPA2D itself consumes the prefix sums and bands; the
// grid form is kept for renderers, tools and tests.
func (a *Analysis) StageGrid() [][]int {
	sh := a.shared
	return sh.grid.get(func() [][]int { return StageGrid(sh.g) })
}

// TopoOrder returns the memoized topological order.
func (a *Analysis) TopoOrder() ([]int, error) {
	t := a.shared.topoMemo()
	return t.order, t.err
}

func (sh *analysisShared) topoMemo() topoMemo {
	return sh.topo.get(func() topoMemo {
		order, err := sh.g.TopoOrder()
		return topoMemo{order: order, err: err}
	})
}

func (sh *analysisShared) dimsMemo() dimsMemo {
	return sh.dims.get(func() dimsMemo {
		return dimsMemo{depth: sh.g.Depth(), elevation: sh.g.Elevation()}
	})
}

// Depth returns the memoized x_max.
func (a *Analysis) Depth() int { return a.shared.dimsMemo().depth }

// Elevation returns the memoized y_max.
func (a *Analysis) Elevation() int { return a.shared.dimsMemo().elevation }

// CCR returns the memoized computation-to-communication ratio. Volumes
// differ per family member, so the value is held per member.
func (a *Analysis) CCR() float64 {
	return a.ccr.get(func() float64 { return CCR(a.g) })
}

// PredCounts returns, per stage, the number of distinct predecessors — the
// initial in-degree vector the list-scheduling heuristics start from. The
// returned slice is shared; copy before decrementing.
func (a *Analysis) PredCounts() []int {
	sh := a.shared
	return sh.preds.get(func() []int {
		pc := make([]int, sh.g.N())
		for i := range pc {
			pc[i] = len(sh.g.Predecessors(i))
		}
		return pc
	})
}

// InVolumes returns, per stage, the total incoming communication volume (the
// sort key of the Greedy heuristic), summed from this member's own volumes
// in edge order. The returned slice is shared and must not be mutated.
func (a *Analysis) InVolumes() []float64 {
	return a.inVol.get(func() []float64 {
		iv := make([]float64, a.g.N())
		for i := range iv {
			for _, e := range a.g.InEdges(i) {
				iv[i] += a.g.Edges[e].Volume
			}
		}
		return iv
	})
}

// LabelPrefixSums returns (xmax+1) x (ymax+1) 2D prefix sums over the label
// grid: w[x][y] is the total weight and c[x][y] the stage count of labels
// (x' <= x, y' <= y), both 1-based with a zero guard row/column. DPA2D uses
// them for O(1) rectangle work and population queries. The returned slices
// are shared and must not be mutated.
func (a *Analysis) LabelPrefixSums() (w [][]float64, c [][]int) {
	sh := a.shared
	m := sh.prefix.get(func() prefixMemo {
		dims := sh.dimsMemo()
		xmax, ymax := dims.depth, dims.elevation
		wp := make([][]float64, xmax+1)
		cp := make([][]int, xmax+1)
		for x := 0; x <= xmax; x++ {
			wp[x] = make([]float64, ymax+1)
			cp[x] = make([]int, ymax+1)
		}
		for _, s := range sh.g.Stages {
			wp[s.Label.X][s.Label.Y] += s.Weight
			cp[s.Label.X][s.Label.Y]++
		}
		for x := 1; x <= xmax; x++ {
			for y := 1; y <= ymax; y++ {
				wp[x][y] += wp[x-1][y] + wp[x][y-1] - wp[x-1][y-1]
				cp[x][y] += cp[x-1][y] + cp[x][y-1] - cp[x-1][y-1]
			}
		}
		return prefixMemo{w: wp, c: cp}
	})
	return m.w, m.c
}

// Band returns (building and memoizing on first use) the platform- and
// period-independent analysis of the band of x levels [m1..m2] used by the
// DPA2D nested dynamic program. The structural half is shared across the
// scale family; the crossing volumes are this member's own. Bands are shared
// between DPA2D, its transposed variant and DPA2D1D, and across all period
// divisions of the selection protocol.
func (a *Analysis) Band(m1, m2 int) *Band {
	depth := a.Depth()
	key := m1*(depth+1) + m2
	a.bandMu.Lock()
	if a.bands == nil {
		a.bands = make([]*lazySlot[*Band], (depth+1)*(depth+1))
	}
	cell := a.bands[key]
	if cell == nil {
		cell = &lazySlot[*Band]{}
		a.bands[key] = cell
	}
	a.bandMu.Unlock()
	return cell.get(func() *Band {
		shape := a.shared.bandShape(m1, m2)
		return newBandAt(shape, a.g)
	})
}

func (sh *analysisShared) bandShape(m1, m2 int) *bandShape {
	dims := sh.dimsMemo()
	key := m1*(dims.depth+1) + m2
	sh.bandMu.Lock()
	if sh.bandShapes == nil {
		sh.bandShapes = make([]*lazySlot[*bandShape], (dims.depth+1)*(dims.depth+1))
	}
	cell := sh.bandShapes[key]
	if cell == nil {
		cell = &lazySlot[*bandShape]{}
		sh.bandShapes[key] = cell
	}
	sh.bandMu.Unlock()
	return cell.get(func() *bandShape {
		topo := sh.topoMemo()
		return newBandShape(sh.g, topo.order, dims.elevation, m1, m2)
	})
}

// DownsetSpace returns the memoized admissible-subgraph space for the given
// state budget, creating it on first use. Spaces are keyed by budget so that
// configurations with different caps (library default vs experiment
// campaigns) never observe each other's limits; within one budget the
// interned lattice persists across runs — and is shared with the scale
// family's sibling members, which hold their own volume-dependent views over
// it — while per-run budget accounting is handled by DownsetSpace.BeginRun.
func (a *Analysis) DownsetSpace(maxStates int) (*DownsetSpace, error) {
	maxStates = normalizeStateBudget(maxStates)
	a.downMu.Lock()
	if a.downsets == nil {
		a.downsets = make(map[int]*downsetSlot)
	}
	slot := a.downsets[maxStates]
	if slot == nil {
		slot = &downsetSlot{}
		a.downsets[maxStates] = slot
	}
	a.downMu.Unlock()
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.built {
		core, err := a.shared.downsetCore(maxStates, a.shared.levelsMemo())
		if err != nil {
			slot.err = err
		} else {
			slot.ds = core.viewFor(a.g)
		}
		slot.built = true
	}
	return slot.ds, slot.err
}

func (sh *analysisShared) downsetCore(maxStates int, levels [][]int) (*downsetCore, error) {
	sh.coreMu.Lock()
	if sh.downsetCores == nil {
		sh.downsetCores = make(map[int]*downsetCoreCell)
	}
	cell := sh.downsetCores[maxStates]
	if cell == nil {
		cell = &downsetCoreCell{}
		sh.downsetCores[maxStates] = cell
	}
	sh.coreMu.Unlock()
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if !cell.built {
		cell.core, cell.err = newDownsetCore(sh.g, levels, maxStates)
		cell.built = true
	}
	return cell.core, cell.err
}

// EvictDownsetSpace drops the memoized space for the given budget, provided
// the slot still holds the space the caller observed failing (a concurrent
// eviction may already have replaced it with a fresh space another goroutine
// is warming — that one must survive). DPA1D evicts after a budget-exhausted
// run: each period's enumeration explores a different frontier of a
// partially enumerated space, so keeping it would grow memory without bound
// across runs and slow every later enumeration behind a bloated intern
// table. Dropping it keeps failed runs on exactly the same footing as a
// fresh space. The family-shared lattice core is evicted alongside the view
// when the view still wraps it; sibling members that already hold views over
// the old core keep them (they stay correct — run epochs make the budget
// accounting history-independent) until their own next eviction.
func (a *Analysis) EvictDownsetSpace(maxStates int, ds *DownsetSpace) {
	maxStates = normalizeStateBudget(maxStates)
	a.downMu.Lock()
	if slot, ok := a.downsets[maxStates]; ok {
		slot.mu.Lock()
		match := slot.built && slot.ds == ds
		slot.mu.Unlock()
		if match {
			delete(a.downsets, maxStates)
		}
	}
	a.downMu.Unlock()
	if ds == nil {
		return
	}
	sh := a.shared
	sh.coreMu.Lock()
	if cell, ok := sh.downsetCores[maxStates]; ok {
		cell.mu.Lock()
		match := cell.built && cell.core == ds.core
		cell.mu.Unlock()
		if match {
			delete(sh.downsetCores, maxStates)
		}
	}
	sh.coreMu.Unlock()
}
