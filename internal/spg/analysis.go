package spg

import (
	"errors"
	"sync"
)

// Analysis is a per-graph cache of the period-independent structures the
// heuristics and front-end tools consume: validation, transitive closure,
// elevation levels, the label grid, topological order, label-rectangle
// prefix sums, adjacency summaries, band analyses (DPA2D) and interned
// downset spaces (DPA1D). All of it depends only on the graph, never on the
// platform or the period, so
// one Analysis can be shared across every heuristic run on a workload — in
// particular across the up-to-ten period divisions of the Section 6.1.3
// selection protocol, which would otherwise recompute each structure from
// scratch at every division.
//
// Every structure is computed lazily on first use and memoized. An Analysis
// is safe for concurrent use by multiple goroutines, though a single mutex
// guards all memoization: a goroutine paying for an expensive first build
// (a large downset space, say) briefly blocks cheap getters on other
// goroutines. The graph it wraps must not be mutated after NewAnalysis
// (mutating the graph would silently invalidate the memoized structures).
//
// Accessors return internal slices for speed; callers must treat them as
// read-only and copy before mutating.
type Analysis struct {
	g *Graph

	mu sync.Mutex

	validated   bool
	validateErr error

	reach *Reachability

	levels [][]int
	grid   [][]int

	topoDone bool
	topo     []int
	topoErr  error

	dimsDone         bool
	depth, elevation int

	ccrDone bool
	ccr     float64

	predCounts []int
	inVolumes  []float64

	wPrefix [][]float64
	cPrefix [][]int

	// bands[m1*(depth+1)+m2] memoizes Band(m1, m2); a dense slice because
	// the DPA2D outer DP probes bands in tight loops where map hashing is
	// measurable.
	bands    []*Band
	downsets map[int]*downsetSlot
}

type downsetSlot struct {
	ds  *DownsetSpace
	err error
}

// NewAnalysis wraps g in an empty cache. The graph's adjacency lists are
// built eagerly so that concurrent reads through the Graph accessors
// (Successors, OutEdges, ...) are race-free afterwards.
func NewAnalysis(g *Graph) *Analysis {
	if g != nil {
		g.buildAdj()
	}
	return &Analysis{
		g:        g,
		downsets: make(map[int]*downsetSlot),
	}
}

// Graph returns the wrapped graph.
func (a *Analysis) Graph() *Graph { return a.g }

// Validate memoizes Graph.Validate: the first call pays the full structural
// check, every later call returns the recorded verdict. This is what makes
// Instance.Validate idempotent when an Analysis is attached.
func (a *Analysis) Validate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.validated {
		if a.g == nil {
			a.validateErr = errors.New("spg: analysis of a nil graph")
		} else {
			a.validateErr = a.g.Validate()
		}
		a.validated = true
	}
	return a.validateErr
}

// Reachability returns the memoized transitive closure.
func (a *Analysis) Reachability() *Reachability {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reach == nil {
		a.reach = NewReachability(a.g)
	}
	return a.reach
}

// Levels returns the memoized elevation levels (see the Levels function).
func (a *Analysis) Levels() [][]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.levelsLocked()
}

func (a *Analysis) levelsLocked() [][]int {
	if a.levels == nil {
		a.levels = Levels(a.g)
	}
	return a.levels
}

// StageGrid returns the memoized Depth() x Elevation() label grid (see the
// StageGrid function). DPA2D itself consumes the prefix sums and bands; the
// grid form is kept for renderers, tools and tests.
func (a *Analysis) StageGrid() [][]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.grid == nil {
		a.grid = StageGrid(a.g)
	}
	return a.grid
}

// TopoOrder returns the memoized topological order.
func (a *Analysis) TopoOrder() ([]int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.topoLocked()
}

func (a *Analysis) topoLocked() ([]int, error) {
	if !a.topoDone {
		a.topo, a.topoErr = a.g.TopoOrder()
		a.topoDone = true
	}
	return a.topo, a.topoErr
}

// Depth returns the memoized x_max.
func (a *Analysis) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dimsLocked()
	return a.depth
}

// Elevation returns the memoized y_max.
func (a *Analysis) Elevation() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dimsLocked()
	return a.elevation
}

func (a *Analysis) dimsLocked() {
	if !a.dimsDone {
		a.depth, a.elevation = a.g.Depth(), a.g.Elevation()
		a.dimsDone = true
	}
}

// CCR returns the memoized computation-to-communication ratio.
func (a *Analysis) CCR() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.ccrDone {
		a.ccr = CCR(a.g)
		a.ccrDone = true
	}
	return a.ccr
}

// PredCounts returns, per stage, the number of distinct predecessors — the
// initial in-degree vector the list-scheduling heuristics start from. The
// returned slice is shared; copy before decrementing.
func (a *Analysis) PredCounts() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.predCounts == nil {
		pc := make([]int, a.g.N())
		for i := range pc {
			pc[i] = len(a.g.Predecessors(i))
		}
		a.predCounts = pc
	}
	return a.predCounts
}

// InVolumes returns, per stage, the total incoming communication volume (the
// sort key of the Greedy heuristic). The returned slice is shared and must
// not be mutated.
func (a *Analysis) InVolumes() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inVolumes == nil {
		iv := make([]float64, a.g.N())
		for i := range iv {
			for _, e := range a.g.InEdges(i) {
				iv[i] += a.g.Edges[e].Volume
			}
		}
		a.inVolumes = iv
	}
	return a.inVolumes
}

// LabelPrefixSums returns (xmax+1) x (ymax+1) 2D prefix sums over the label
// grid: w[x][y] is the total weight and c[x][y] the stage count of labels
// (x' <= x, y' <= y), both 1-based with a zero guard row/column. DPA2D uses
// them for O(1) rectangle work and population queries. The returned slices
// are shared and must not be mutated.
func (a *Analysis) LabelPrefixSums() (w [][]float64, c [][]int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prefixLocked()
	return a.wPrefix, a.cPrefix
}

func (a *Analysis) prefixLocked() {
	if a.wPrefix != nil {
		return
	}
	a.dimsLocked()
	xmax, ymax := a.depth, a.elevation
	wp := make([][]float64, xmax+1)
	cp := make([][]int, xmax+1)
	for x := 0; x <= xmax; x++ {
		wp[x] = make([]float64, ymax+1)
		cp[x] = make([]int, ymax+1)
	}
	for _, s := range a.g.Stages {
		wp[s.Label.X][s.Label.Y] += s.Weight
		cp[s.Label.X][s.Label.Y]++
	}
	for x := 1; x <= xmax; x++ {
		for y := 1; y <= ymax; y++ {
			wp[x][y] += wp[x-1][y] + wp[x][y-1] - wp[x-1][y-1]
			cp[x][y] += cp[x-1][y] + cp[x][y-1] - cp[x-1][y-1]
		}
	}
	a.wPrefix, a.cPrefix = wp, cp
}

// Band returns (building and memoizing on first use) the platform- and
// period-independent analysis of the band of x levels [m1..m2] used by the
// DPA2D nested dynamic program. Bands are shared between DPA2D, its
// transposed variant and DPA2D1D, and across all period divisions of the
// selection protocol.
func (a *Analysis) Band(m1, m2 int) *Band {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dimsLocked()
	if a.bands == nil {
		a.bands = make([]*Band, (a.depth+1)*(a.depth+1))
	}
	key := m1*(a.depth+1) + m2
	if b := a.bands[key]; b != nil {
		return b
	}
	topo, _ := a.topoLocked()
	b := newBand(a.g, topo, a.elevation, m1, m2)
	a.bands[key] = b
	return b
}

// DownsetSpace returns the memoized admissible-subgraph space for the given
// state budget, creating it on first use. Spaces are keyed by budget so that
// configurations with different caps (library default vs experiment
// campaigns) never observe each other's limits; within one budget the
// interned states persist across runs, and per-run budget accounting is
// handled by DownsetSpace.BeginRun.
func (a *Analysis) DownsetSpace(maxStates int) (*DownsetSpace, error) {
	maxStates = normalizeStateBudget(maxStates)
	a.mu.Lock()
	defer a.mu.Unlock()
	slot, ok := a.downsets[maxStates]
	if !ok {
		ds, err := newDownsetSpace(a.g, a.levelsLocked(), maxStates)
		slot = &downsetSlot{ds: ds, err: err}
		a.downsets[maxStates] = slot
	}
	return slot.ds, slot.err
}

// EvictDownsetSpace drops the memoized space for the given budget, provided
// the slot still holds the space the caller observed failing (a concurrent
// eviction may already have replaced it with a fresh space another goroutine
// is warming — that one must survive). DPA1D evicts after a budget-exhausted
// run: each period's enumeration explores a different frontier of a
// partially enumerated space, so keeping it would grow memory without bound
// across runs and slow every later enumeration behind a bloated intern
// table. Dropping it keeps failed runs on exactly the same footing as a
// fresh space.
func (a *Analysis) EvictDownsetSpace(maxStates int, ds *DownsetSpace) {
	maxStates = normalizeStateBudget(maxStates)
	a.mu.Lock()
	defer a.mu.Unlock()
	if slot, ok := a.downsets[maxStates]; ok && slot.ds == ds {
		delete(a.downsets, maxStates)
	}
}
