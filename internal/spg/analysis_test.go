package spg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestAnalysisMatchesDirect: every memoized accessor must agree with the
// direct computation it replaces.
func TestAnalysisMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomSPG(rng, 4+rng.Intn(20))
		a := NewAnalysis(g)

		if err := a.Validate(); !reflect.DeepEqual(err, g.Validate()) {
			t.Fatalf("Validate: %v vs %v", err, g.Validate())
		}
		if got, want := a.Depth(), g.Depth(); got != want {
			t.Fatalf("Depth: %d vs %d", got, want)
		}
		if got, want := a.Elevation(), g.Elevation(); got != want {
			t.Fatalf("Elevation: %d vs %d", got, want)
		}
		if got, want := a.CCR(), CCR(g); got != want {
			t.Fatalf("CCR: %g vs %g", got, want)
		}
		if !reflect.DeepEqual(a.Levels(), Levels(g)) {
			t.Fatal("Levels mismatch")
		}
		if !reflect.DeepEqual(a.StageGrid(), StageGrid(g)) {
			t.Fatal("StageGrid mismatch")
		}
		topo, err := a.TopoOrder()
		wantTopo, wantErr := g.TopoOrder()
		if !reflect.DeepEqual(topo, wantTopo) || !reflect.DeepEqual(err, wantErr) {
			t.Fatal("TopoOrder mismatch")
		}
		r, want := a.Reachability(), NewReachability(g)
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if r.Reaches(i, j) != want.Reaches(i, j) {
					t.Fatalf("Reaches(%d,%d) mismatch", i, j)
				}
			}
		}
		pc := a.PredCounts()
		iv := a.InVolumes()
		for i := 0; i < g.N(); i++ {
			if pc[i] != len(g.Predecessors(i)) {
				t.Fatalf("PredCounts[%d] = %d, want %d", i, pc[i], len(g.Predecessors(i)))
			}
			var vol float64
			for _, e := range g.InEdges(i) {
				vol += g.Edges[e].Volume
			}
			if iv[i] != vol {
				t.Fatalf("InVolumes[%d] = %g, want %g", i, iv[i], vol)
			}
		}
	}
}

// TestAnalysisLabelPrefixSums: rectangle queries through the prefix sums
// must count exactly the stages whose labels fall inside the rectangle.
func TestAnalysisLabelPrefixSums(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomSPG(rng, 18)
	a := NewAnalysis(g)
	wp, cp := a.LabelPrefixSums()
	xmax, ymax := a.Depth(), a.Elevation()
	rect := func(p [][]float64, m1, m2, r1, r2 int) float64 {
		return p[m2][r2] - p[m1-1][r2] - p[m2][r1-1] + p[m1-1][r1-1]
	}
	for m1 := 1; m1 <= xmax; m1++ {
		for m2 := m1; m2 <= xmax; m2++ {
			for r1 := 1; r1 <= ymax; r1++ {
				for r2 := r1; r2 <= ymax; r2++ {
					var w float64
					var c int
					for _, s := range g.Stages {
						if s.Label.X >= m1 && s.Label.X <= m2 && s.Label.Y >= r1 && s.Label.Y <= r2 {
							w += s.Weight
							c++
						}
					}
					if got := rect(wp, m1, m2, r1, r2); math.Abs(got-w) > 1e-9 {
						t.Fatalf("weight rect [%d..%d]x[%d..%d] = %g, want %g", m1, m2, r1, r2, got, w)
					}
					if got := cp[m2][r2] - cp[m1-1][r2] - cp[m2][r1-1] + cp[m1-1][r1-1]; got != c {
						t.Fatalf("count rect [%d..%d]x[%d..%d] = %d, want %d", m1, m2, r1, r2, got, c)
					}
				}
			}
		}
	}
}

// TestAnalysisBand: band edge classification and the ancestor/descendant
// elevation masks must agree with brute-force recomputation from the global
// transitive closure (any path between band stages stays inside the band).
func TestAnalysisBand(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		g := randomSPG(rng, 6+rng.Intn(18))
		a := NewAnalysis(g)
		r := a.Reachability()
		xmax := a.Depth()
		bandsToCheck := [][2]int{{1, xmax}}
		if xmax >= 3 {
			bandsToCheck = append(bandsToCheck, [2]int{2, xmax - 1}, [2]int{1, xmax / 2})
		}
		for _, mm := range bandsToCheck {
			m1, m2 := mm[0], mm[1]
			b := a.Band(m1, m2)
			if b != a.Band(m1, m2) {
				t.Fatal("Band not memoized")
			}
			inBand := func(s int) bool {
				x := g.Stages[s].Label.X
				return x >= m1 && x <= m2
			}
			var wantInternal, wantOutgoing []int
			for ei, e := range g.Edges {
				switch {
				case inBand(e.Src) && inBand(e.Dst):
					wantInternal = append(wantInternal, ei)
				case inBand(e.Src) && g.Stages[e.Dst].Label.X > m2:
					wantOutgoing = append(wantOutgoing, ei)
				}
			}
			if !reflect.DeepEqual(b.Internal, wantInternal) || !reflect.DeepEqual(b.Outgoing, wantOutgoing) {
				t.Fatalf("band [%d..%d] edge classification mismatch", m1, m2)
			}
			for li, s := range b.Nodes {
				var wantAnc, wantDesc []uint64
				wantAnc = make([]uint64, b.Words)
				wantDesc = make([]uint64, b.Words)
				for _, o := range b.Nodes {
					y := uint(g.Stages[o].Label.Y - 1)
					if r.Reaches(o, s) {
						wantAnc[y/64] |= 1 << (y % 64)
					}
					if r.Reaches(s, o) {
						wantDesc[y/64] |= 1 << (y % 64)
					}
				}
				if !reflect.DeepEqual(b.Anc[li], wantAnc) {
					t.Fatalf("band [%d..%d] Anc of stage %d mismatch", m1, m2, s)
				}
				if !reflect.DeepEqual(b.Desc[li], wantDesc) {
					t.Fatalf("band [%d..%d] Desc of stage %d mismatch", m1, m2, s)
				}
			}
		}
	}
}

// TestAnalysisConcurrent hammers every accessor from several goroutines; run
// with -race to verify the locking.
func TestAnalysisConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomSPG(rng, 24)
	a := NewAnalysis(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = a.Validate()
				_ = a.Reachability()
				_ = a.Levels()
				_ = a.StageGrid()
				_, _ = a.TopoOrder()
				_ = a.Depth()
				_ = a.Elevation()
				_ = a.CCR()
				_ = a.PredCounts()
				_ = a.InVolumes()
				_, _ = a.LabelPrefixSums()
				_ = a.Band(1, a.Depth())
				ds, err := a.DownsetSpace(1 << 20)
				if err != nil {
					t.Error(err)
					return
				}
				_ = ds.Cout(ds.FullID())
			}
		}()
	}
	wg.Wait()
}

// TestAnalysisDownsetSpaceKeying: one space per budget, memoized.
func TestAnalysisDownsetSpaceKeying(t *testing.T) {
	g := mustChain(t, 6)
	a := NewAnalysis(g)
	ds1, err := a.DownsetSpace(100)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := a.DownsetSpace(100)
	if err != nil {
		t.Fatal(err)
	}
	if ds1 != ds2 {
		t.Error("same budget must return the same space")
	}
	ds3, err := a.DownsetSpace(200)
	if err != nil {
		t.Fatal(err)
	}
	if ds1 == ds3 {
		t.Error("different budgets must not share a space")
	}
}

// expansionSet flattens an expansion list into a comparable form: the sorted
// member sets of the reached downsets with their chunk works, independent of
// id numbering.
func expansionSet(ds *DownsetSpace, exps []Expansion) map[string]float64 {
	out := make(map[string]float64, len(exps))
	for _, ex := range exps {
		out[fmt.Sprint(ds.Members(ex.To))] = ex.ChunkWork
	}
	return out
}

// TestDownsetSpaceRunBudget: a space warmed by a previous run (larger work
// budget, extra interned states) must behave exactly like a fresh space in
// the next run — same expansions on success, same ErrStateLimit on budget
// exhaustion.
func TestDownsetSpaceRunBudget(t *testing.T) {
	middle := make([]float64, 12)
	vols := make([]float64, 12)
	for i := range middle {
		middle[i] = 1
		vols[i] = 1
	}
	g, err := ForkJoin(1, 1, middle, vols, vols)
	if err != nil {
		t.Fatal(err)
	}

	// Success case: generous budget, two work levels.
	warm, err := NewDownsetSpace(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	warm.BeginRun()
	if _, err := warm.Expansions(warm.EmptyID(), 4); err != nil {
		t.Fatal(err)
	}
	warm.BeginRun()
	warmExps, err := warm.Expansions(warm.EmptyID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDownsetSpace(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fresh.BeginRun()
	freshExps, err := fresh.Expansions(fresh.EmptyID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expansionSet(warm, warmExps), expansionSet(fresh, freshExps)) {
		t.Error("warmed space enumerates different expansions than a fresh one")
	}

	// Failure case: tiny state budget must trip in the warmed space exactly
	// as it does in a fresh one, even though the warmed space was filled by
	// an earlier (also failing) run.
	warmTiny, err := NewDownsetSpace(g, 40)
	if err != nil {
		t.Fatal(err)
	}
	warmTiny.BeginRun()
	_, err1 := warmTiny.Expansions(warmTiny.EmptyID(), 8)
	warmTiny.BeginRun()
	_, err2 := warmTiny.Expansions(warmTiny.EmptyID(), 6)
	freshTiny, err := NewDownsetSpace(g, 40)
	if err != nil {
		t.Fatal(err)
	}
	freshTiny.BeginRun()
	_, err3 := freshTiny.Expansions(freshTiny.EmptyID(), 6)
	if !errors.Is(err1, ErrStateLimit) {
		t.Errorf("first warm run error = %v, want ErrStateLimit", err1)
	}
	if !reflect.DeepEqual(err2, err3) {
		t.Errorf("warmed run error %v differs from fresh run error %v", err2, err3)
	}
}

// TestDownsetSpaceLegacyTotalCap: without BeginRun the lifetime is a single
// run, preserving the historical total-cap semantics.
func TestDownsetSpaceLegacyTotalCap(t *testing.T) {
	g := mustChain(t, 6)
	ds, err := NewDownsetSpace(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AllDownsets(); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("AllDownsets error = %v, want ErrStateLimit", err)
	}
}
