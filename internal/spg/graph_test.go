package spg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustChain(t *testing.T, k int) *Graph {
	t.Helper()
	w := make([]float64, k)
	v := make([]float64, k-1)
	for i := range w {
		w[i] = 1
	}
	for i := range v {
		v[i] = 1
	}
	g, err := Chain(w, v)
	if err != nil {
		t.Fatalf("Chain(%d): %v", k, err)
	}
	return g
}

func TestPrimitive(t *testing.T) {
	g := Primitive(2, 3, 5)
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("primitive has n=%d m=%d", g.N(), g.M())
	}
	if g.Stages[0].Label != (Label{1, 1}) || g.Stages[1].Label != (Label{2, 1}) {
		t.Fatalf("primitive labels wrong: %v %v", g.Stages[0].Label, g.Stages[1].Label)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("primitive invalid: %v", err)
	}
	if g.TotalWork() != 5 || g.TotalVolume() != 5 {
		t.Fatalf("work=%g volume=%g", g.TotalWork(), g.TotalVolume())
	}
}

func TestChainProperties(t *testing.T) {
	g := mustChain(t, 5)
	if g.Depth() != 5 || g.Elevation() != 1 {
		t.Fatalf("chain depth=%d elevation=%d", g.Depth(), g.Elevation())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("chain invalid: %v", err)
	}
	if g.Sink() != 4 {
		t.Fatalf("chain sink = %d", g.Sink())
	}
}

func TestChainErrors(t *testing.T) {
	if _, err := Chain([]float64{1}, nil); err == nil {
		t.Error("single-stage chain accepted")
	}
	if _, err := Chain([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("mismatched volumes accepted")
	}
}

// TestSeriesLabels reproduces the series composition example of Figure 1:
// composing a graph whose sink has x=4 with a 3-stage structure shifts the
// x labels of the second graph by 3.
func TestSeriesLabels(t *testing.T) {
	g1 := mustChain(t, 4) // labels (1,1)..(4,1)
	g2 := mustChain(t, 3) // labels (1,1)..(3,1)
	s := Series(g1, g2)
	if s.N() != 6 {
		t.Fatalf("series n=%d, want 6", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("series invalid: %v", err)
	}
	// Stage 4 of g2 (index 1 there) must be at x = 2 + (4-1) = 5.
	if got := s.Stages[4].Label; got != (Label{5, 1}) {
		t.Errorf("second-graph stage label = %v, want (5,1)", got)
	}
	if s.Depth() != 6 {
		t.Errorf("series depth = %d, want 6", s.Depth())
	}
}

func TestSeriesMergePolicies(t *testing.T) {
	g1 := Primitive(1, 2, 1)
	g2 := Primitive(3, 4, 1)
	if got := Series(g1, g2).Stages[1].Weight; got != 5 {
		t.Errorf("MergeSum weight = %g, want 5", got)
	}
	if got := SeriesWith(g1, g2, MergeKeepFirst).Stages[1].Weight; got != 2 {
		t.Errorf("MergeKeepFirst weight = %g, want 2", got)
	}
	if got := SeriesWith(g1, g2, MergeMax).Stages[1].Weight; got != 3 {
		t.Errorf("MergeMax weight = %g, want 3", got)
	}
}

// TestParallelLabels checks the parallel composition of Figure 1: the second
// graph's inner stages keep x and shift y by the first graph's elevation.
func TestParallelLabels(t *testing.T) {
	g1 := mustChain(t, 4) // longest path, elevation 1
	g2 := mustChain(t, 3)
	p := Parallel(g1, g2)
	if p.N() != 4+3-2 {
		t.Fatalf("parallel n=%d, want 5", p.N())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("parallel invalid: %v", err)
	}
	if p.Elevation() != 2 {
		t.Errorf("parallel elevation = %d, want 2", p.Elevation())
	}
	if p.Depth() != 4 {
		t.Errorf("parallel depth = %d, want 4 (longest branch)", p.Depth())
	}
	// The inner stage of g2 must be at (2, 2): x kept, y shifted by 1.
	found := false
	for _, s := range p.Stages {
		if s.Label == (Label{2, 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("no stage at (2,2) after parallel composition: %+v", p.Stages)
	}
}

// TestParallelSwap checks that the longer graph is used as the first operand
// regardless of argument order (the paper's rule x^(1)_{n1} >= x^(2)_{n2}).
func TestParallelSwap(t *testing.T) {
	short := mustChain(t, 3)
	long := mustChain(t, 5)
	p1 := Parallel(long, short)
	p2 := Parallel(short, long)
	if p1.Depth() != 5 || p2.Depth() != 5 {
		t.Fatalf("depths %d and %d, want 5", p1.Depth(), p2.Depth())
	}
	if p1.N() != p2.N() {
		t.Fatalf("sizes differ: %d vs %d", p1.N(), p2.N())
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("swapped parallel invalid: %v", err)
	}
}

// TestParallelOfPrimitives exercises parallel edges (a two-stage SPG composed
// in parallel with itself).
func TestParallelOfPrimitives(t *testing.T) {
	p := Parallel(Primitive(1, 1, 2), Primitive(1, 1, 3))
	if p.N() != 2 || p.M() != 2 {
		t.Fatalf("n=%d m=%d, want 2 and 2", p.N(), p.M())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("parallel-edge SPG invalid: %v", err)
	}
	if p.TotalVolume() != 5 {
		t.Errorf("volume = %g, want 5", p.TotalVolume())
	}
}

func TestForkJoin(t *testing.T) {
	fj, err := ForkJoin(0, 0,
		[]float64{1, 2, 3},
		[]float64{1, 1, 1},
		[]float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if fj.N() != 5 || fj.M() != 6 {
		t.Fatalf("fork-join n=%d m=%d", fj.N(), fj.M())
	}
	if fj.Elevation() != 3 {
		t.Errorf("fork-join elevation = %d, want 3", fj.Elevation())
	}
	if err := fj.Validate(); err != nil {
		t.Fatalf("fork-join invalid: %v", err)
	}
}

func TestForkJoinErrors(t *testing.T) {
	if _, err := ForkJoin(0, 0, nil, nil, nil); err == nil {
		t.Error("empty fork-join accepted")
	}
	if _, err := ForkJoin(0, 0, []float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched volumes accepted")
	}
}

// randomSPG builds a random SPG with approximately n stages by recursive
// composition; used by property tests.
func randomSPG(rng *rand.Rand, n int) *Graph {
	if n <= 2 {
		return Primitive(rng.Float64(), rng.Float64(), rng.Float64())
	}
	k := 1 + rng.Intn(n-1)
	left := randomSPG(rng, k)
	right := randomSPG(rng, n-k)
	if rng.Intn(2) == 0 {
		return Series(left, right)
	}
	return Parallel(left, right)
}

// TestCompositionInvariants is the central property test of the label
// scheme: any sequence of compositions yields a valid SPG (unique labels,
// x strictly increasing along edges, source at (1,1), sink at y=1) whose
// stages of equal elevation are pairwise comparable.
func TestCompositionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(40))
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		r := NewReachability(g)
		for y, level := range Levels(g) {
			for i := 0; i < len(level); i++ {
				for j := i + 1; j < len(level); j++ {
					if !r.Comparable(level[i], level[j]) {
						t.Logf("seed %d: stages %d and %d at level %d not comparable",
							seed, level[i], level[j], y+1)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestComposedGraphsAreSeriesParallel checks that composition output is
// recognized by the SP decomposition.
func TestComposedGraphsAreSeriesParallel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSPG(rng, 2+rng.Intn(30))
		return IsSeriesParallel(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := &Graph{
		Stages: []Stage{
			{Label: Label{1, 1}}, {Label: Label{2, 1}},
		},
		Edges: []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
	}
	if err := g.Validate(); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestValidateRejectsDuplicateLabels(t *testing.T) {
	g := Primitive(1, 1, 1)
	g.Stages[1].Label = Label{1, 1}
	if err := g.Validate(); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestValidateRejectsNonMonotoneX(t *testing.T) {
	g := Primitive(1, 1, 1)
	g.Stages[1].Label = Label{1, 2}
	if err := g.Validate(); err == nil {
		t.Error("edge with non-increasing x accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	g := randomSPG(rand.New(rand.NewSource(7)), 25)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("edge %d->%d violates topo order", e.Src, e.Dst)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Primitive(1, 2, 3)
	c := g.Clone()
	c.Stages[0].Weight = 99
	c.Edges[0].Volume = 99
	if g.Stages[0].Weight == 99 || g.Edges[0].Volume == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	fj, _ := ForkJoin(0, 0, []float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	succ := fj.Successors(0)
	if len(succ) != 2 {
		t.Fatalf("source successors = %v", succ)
	}
	sink := fj.Sink()
	preds := fj.Predecessors(sink)
	if len(preds) != 2 {
		t.Fatalf("sink predecessors = %v", preds)
	}
}
