// Package spg implements two-terminal series-parallel graphs (SPGs), the
// application model of Benoit, Melhem, Renaud-Goud and Robert, "Energy-aware
// mappings of series-parallel workflows onto chip multiprocessors" (ICPP 2011).
//
// An SPG is built from the primitive two-node graph by series composition
// (merging the sink of the first graph with the source of the second) and
// parallel composition (merging the two sources and the two sinks). Every
// stage carries a computation requirement and every edge a communication
// volume. Stages are labelled with 2D coordinates (x, y) following the
// recursive scheme of Section 3.1 of the paper; the maximum y value is the
// graph's elevation, its maximal degree of parallelism.
package spg

import (
	"errors"
	"fmt"
	"sort"
)

// Label is the 2D coordinate assigned to a stage by the recursive SPG
// construction. X grows along the series direction (depth), Y along the
// parallel direction (elevation).
type Label struct {
	X int
	Y int
}

// Stage is one node of the workflow. Weight is the computation requirement
// w_i of the paper, expressed in Gcycles (so that Weight/speed-in-GHz is a
// time in seconds). Name is optional and used only for reporting.
type Stage struct {
	Weight float64
	Label  Label
	Name   string
}

// Edge is one precedence constraint L_{i,j}. Volume is the communication
// volume delta_{i,j} in GB. Parallel edges between the same pair of stages are
// permitted (they arise from parallel composition of primitive SPGs).
type Edge struct {
	Src    int
	Dst    int
	Volume float64
}

// Graph is a series-parallel workflow. The source is always stage 0 and the
// sink is identified by Sink(). Graphs built through Primitive, Series and
// Parallel are series-parallel by construction; arbitrary DAGs can also be
// represented (for tests and counter-examples) but are rejected by Validate.
type Graph struct {
	Stages []Stage
	Edges  []Edge

	// Lazily built adjacency caches; invalidated by structural mutation.
	out [][]int // out[i] = indices into Edges leaving stage i
	in  [][]int // in[i] = indices into Edges entering stage i
}

// NewGraph returns an empty graph. Most callers should use Primitive, Chain
// or the composition functions instead.
func NewGraph() *Graph { return &Graph{} }

// Primitive returns the smallest SPG: two stages connected by one edge, with
// the given stage weights and edge volume. The source is labelled (1,1) and
// the sink (2,1).
func Primitive(wSrc, wDst, volume float64) *Graph {
	return &Graph{
		Stages: []Stage{
			{Weight: wSrc, Label: Label{1, 1}},
			{Weight: wDst, Label: Label{2, 1}},
		},
		Edges: []Edge{{Src: 0, Dst: 1, Volume: volume}},
	}
}

// Chain returns a linear chain with the given stage weights; volumes[i] is
// the communication volume between stage i and stage i+1. len(volumes) must
// be len(weights)-1 and len(weights) must be at least 2.
func Chain(weights []float64, volumes []float64) (*Graph, error) {
	if len(weights) < 2 {
		return nil, errors.New("spg: chain needs at least two stages")
	}
	if len(volumes) != len(weights)-1 {
		return nil, fmt.Errorf("spg: chain with %d stages needs %d volumes, got %d",
			len(weights), len(weights)-1, len(volumes))
	}
	g := &Graph{}
	for i, w := range weights {
		g.Stages = append(g.Stages, Stage{Weight: w, Label: Label{X: i + 1, Y: 1}})
	}
	for i, v := range volumes {
		g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, Volume: v})
	}
	return g, nil
}

// N returns the number of stages.
func (g *Graph) N() int { return len(g.Stages) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Source returns the index of the source stage (always 0 for composed SPGs).
func (g *Graph) Source() int { return 0 }

// Sink returns the index of the unique stage without successors, or -1 if
// there is no unique sink.
func (g *Graph) Sink() int {
	g.buildAdj()
	sink := -1
	for i := range g.Stages {
		if len(g.out[i]) == 0 {
			if sink >= 0 {
				return -1
			}
			sink = i
		}
	}
	return sink
}

// invalidate drops adjacency caches after a structural mutation.
func (g *Graph) invalidate() {
	g.out = nil
	g.in = nil
}

func (g *Graph) buildAdj() {
	if g.out != nil {
		return
	}
	g.out = make([][]int, len(g.Stages))
	g.in = make([][]int, len(g.Stages))
	for e, edge := range g.Edges {
		g.out[edge.Src] = append(g.out[edge.Src], e)
		g.in[edge.Dst] = append(g.in[edge.Dst], e)
	}
}

// OutEdges returns the indices into g.Edges of the edges leaving stage i.
// The returned slice must not be modified.
func (g *Graph) OutEdges(i int) []int {
	g.buildAdj()
	return g.out[i]
}

// InEdges returns the indices into g.Edges of the edges entering stage i.
// The returned slice must not be modified.
func (g *Graph) InEdges(i int) []int {
	g.buildAdj()
	return g.in[i]
}

// Successors returns the distinct successor stages of stage i in ascending
// order.
func (g *Graph) Successors(i int) []int {
	g.buildAdj()
	return distinctEndpoints(g.Edges, g.out[i], false)
}

// Predecessors returns the distinct predecessor stages of stage i in
// ascending order.
func (g *Graph) Predecessors(i int) []int {
	g.buildAdj()
	return distinctEndpoints(g.Edges, g.in[i], true)
}

func distinctEndpoints(edges []Edge, idx []int, src bool) []int {
	if len(idx) == 0 {
		return nil
	}
	res := make([]int, 0, len(idx))
	for _, e := range idx {
		v := edges[e].Dst
		if src {
			v = edges[e].Src
		}
		res = append(res, v)
	}
	sort.Ints(res)
	out := res[:1]
	for _, v := range res[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Elevation returns y_max, the maximum y label over all stages: the maximal
// degree of parallelism of the SPG.
func (g *Graph) Elevation() int {
	ymax := 0
	for _, s := range g.Stages {
		if s.Label.Y > ymax {
			ymax = s.Label.Y
		}
	}
	return ymax
}

// Depth returns x_max, the maximum x label over all stages. For a composed
// SPG this is the x coordinate of the sink.
func (g *Graph) Depth() int {
	xmax := 0
	for _, s := range g.Stages {
		if s.Label.X > xmax {
			xmax = s.Label.X
		}
	}
	return xmax
}

// TotalWork returns the sum of all stage weights.
func (g *Graph) TotalWork() float64 {
	var t float64
	for _, s := range g.Stages {
		t += s.Weight
	}
	return t
}

// TotalVolume returns the sum of all edge volumes.
func (g *Graph) TotalVolume() float64 {
	var t float64
	for _, e := range g.Edges {
		t += e.Volume
	}
	return t
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Stages: append([]Stage(nil), g.Stages...),
		Edges:  append([]Edge(nil), g.Edges...),
	}
	return ng
}

// TopoOrder returns a topological order of the stages, or an error if the
// graph contains a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	g.buildAdj()
	indeg := make([]int, len(g.Stages))
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	queue := make([]int, 0, len(g.Stages))
	for i := range g.Stages {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.Stages))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			d := g.Edges[e].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(g.Stages) {
		return nil, errors.New("spg: graph contains a cycle")
	}
	return order, nil
}

// String returns a compact human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("SPG{n=%d, m=%d, xmax=%d, ymax=%d}", g.N(), g.M(), g.Depth(), g.Elevation())
}

// Validate checks the structural invariants guaranteed by SPG composition:
// acyclicity, a unique source labelled (1,1), a unique sink with y=1, strictly
// increasing x along every edge, and unique labels. It returns the first
// violation found.
func (g *Graph) Validate() error {
	if g.N() < 2 {
		return errors.New("spg: graph needs at least two stages")
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	g.buildAdj()
	for i := range g.Stages {
		if i != 0 && len(g.in[i]) == 0 {
			return fmt.Errorf("spg: stage %d is a second source", i)
		}
	}
	if len(g.in[0]) != 0 {
		return errors.New("spg: stage 0 is not a source")
	}
	sink := g.Sink()
	if sink < 0 {
		return errors.New("spg: no unique sink")
	}
	if g.Stages[0].Label != (Label{1, 1}) {
		return fmt.Errorf("spg: source label %v, want (1,1)", g.Stages[0].Label)
	}
	if g.Stages[sink].Label.Y != 1 {
		return fmt.Errorf("spg: sink label %v, want y=1", g.Stages[sink].Label)
	}
	seen := make(map[Label]int, g.N())
	for i, s := range g.Stages {
		if s.Weight < 0 {
			return fmt.Errorf("spg: stage %d has negative weight", i)
		}
		if s.Label.X < 1 || s.Label.Y < 1 {
			return fmt.Errorf("spg: stage %d has invalid label %v", i, s.Label)
		}
		if j, dup := seen[s.Label]; dup {
			return fmt.Errorf("spg: stages %d and %d share label %v", j, i, s.Label)
		}
		seen[s.Label] = i
	}
	for e, edge := range g.Edges {
		if edge.Src < 0 || edge.Src >= g.N() || edge.Dst < 0 || edge.Dst >= g.N() {
			return fmt.Errorf("spg: edge %d endpoints out of range", e)
		}
		if edge.Volume < 0 {
			return fmt.Errorf("spg: edge %d has negative volume", e)
		}
		if g.Stages[edge.Src].Label.X >= g.Stages[edge.Dst].Label.X {
			return fmt.Errorf("spg: edge %d (%d->%d) does not increase x", e, edge.Src, edge.Dst)
		}
	}
	return nil
}
