// Package mapping represents DAG-partition mappings of a series-parallel
// workflow onto a CMP and evaluates them: DAG-partition validity, period
// feasibility (maximum resource cycle-time, Section 3.4) and energy
// consumption (Section 3.5). Every heuristic's output flows through the
// single evaluator in this package, so reported energies are computed by one
// authoritative model rather than by each heuristic's internal bookkeeping.
package mapping

import (
	"fmt"
	"sort"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Mapping assigns every stage to a core, gives every used core a speed, and
// optionally pins explicit routes for inter-core communications.
type Mapping struct {
	// Alloc[i] is the core executing stage i.
	Alloc []platform.Core
	// SpeedIdx[u*Q+v] is the index into Platform.Speeds of the speed of core
	// (u,v), or -1 when the core is off. Cores hosting at least one stage
	// must have a speed.
	SpeedIdx []int
	// Paths optionally routes edge e (index into Graph.Edges) over an
	// explicit sequence of directed links. Edges without an entry use XY
	// routing. Edges whose endpoints share a core must have no entry.
	Paths map[int][]platform.Link
}

// New returns a mapping skeleton for n stages on pl with all cores off.
func New(n int, pl *platform.Platform) *Mapping {
	m := &Mapping{
		Alloc:    make([]platform.Core, n),
		SpeedIdx: make([]int, pl.NumCores()),
	}
	for i := range m.SpeedIdx {
		m.SpeedIdx[i] = -1
	}
	return m
}

// CoreIndex flattens a core coordinate for indexing SpeedIdx.
func CoreIndex(pl *platform.Platform, c platform.Core) int { return c.U*pl.Q + c.V }

// SpeedOf returns the speed index of core c.
func (m *Mapping) SpeedOf(pl *platform.Platform, c platform.Core) int {
	return m.SpeedIdx[CoreIndex(pl, c)]
}

// SetSpeed sets the speed index of core c.
func (m *Mapping) SetSpeed(pl *platform.Platform, c platform.Core, idx int) {
	m.SpeedIdx[CoreIndex(pl, c)] = idx
}

// PathFor returns the route of edge e from core a to b: the explicit path if
// one was pinned, the XY route otherwise.
func (m *Mapping) PathFor(pl *platform.Platform, e int, a, b platform.Core) []platform.Link {
	if p, ok := m.Paths[e]; ok {
		return p
	}
	return pl.XYPath(a, b)
}

// Clusters groups stage indices by hosting core. Stages within each cluster
// are sorted ascending; cluster keys are returned in row-major core order.
func (m *Mapping) Clusters(pl *platform.Platform) (cores []platform.Core, byCore map[platform.Core][]int) {
	byCore = make(map[platform.Core][]int)
	for i, c := range m.Alloc {
		byCore[c] = append(byCore[c], i)
	}
	for _, stages := range byCore {
		sort.Ints(stages)
	}
	cores = make([]platform.Core, 0, len(byCore))
	for c := range byCore {
		cores = append(cores, c)
	}
	sort.Slice(cores, func(i, j int) bool {
		if cores[i].U != cores[j].U {
			return cores[i].U < cores[j].U
		}
		return cores[i].V < cores[j].V
	})
	return cores, byCore
}

// CoreWork returns, for each used core, the total weight of its stages.
func (m *Mapping) CoreWork(g *spg.Graph) map[platform.Core]float64 {
	work := make(map[platform.Core]float64)
	for i, c := range m.Alloc {
		work[c] += g.Stages[i].Weight
	}
	return work
}

// DowngradeSpeeds lowers every used core to the slowest speed that still
// meets the period for its assigned work, and turns off unused cores. This is
// the post-pass applied by the Greedy heuristic (Section 5.2); it never
// increases energy. It returns false if some core cannot meet the period even
// at maximum speed.
func (m *Mapping) DowngradeSpeeds(g *spg.Graph, pl *platform.Platform, T float64) bool {
	work := m.CoreWork(g)
	for i := range m.SpeedIdx {
		m.SpeedIdx[i] = -1
	}
	for c, w := range work {
		_, idx, ok := pl.MinFeasibleSpeed(w, T)
		if !ok {
			return false
		}
		m.SetSpeed(pl, c, idx)
	}
	return true
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	nm := &Mapping{
		Alloc:    append([]platform.Core(nil), m.Alloc...),
		SpeedIdx: append([]int(nil), m.SpeedIdx...),
	}
	if m.Paths != nil {
		nm.Paths = make(map[int][]platform.Link, len(m.Paths))
		for e, p := range m.Paths {
			nm.Paths[e] = append([]platform.Link(nil), p...)
		}
	}
	return nm
}

// String summarizes the mapping.
func (m *Mapping) String() string {
	used := make(map[platform.Core]int)
	for _, c := range m.Alloc {
		used[c]++
	}
	return fmt.Sprintf("Mapping{stages=%d, cores=%d}", len(m.Alloc), len(used))
}
