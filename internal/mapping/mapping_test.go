package mapping

import (
	"math"
	"strings"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func chain(t testing.TB, weights []float64, vols []float64) *spg.Graph {
	t.Helper()
	g, err := spg.Chain(weights, vols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// singleCore maps every stage onto core (0,0) at the given speed index.
func singleCore(g *spg.Graph, pl *platform.Platform, speedIdx int) *Mapping {
	m := New(g.N(), pl)
	c := platform.Core{U: 0, V: 0}
	for i := range m.Alloc {
		m.Alloc[i] = c
	}
	m.SetSpeed(pl, c, speedIdx)
	return m
}

func TestEvaluateSingleCoreEnergy(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.2}, []float64{5})
	m := singleCore(g, pl, 2) // 0.6 GHz
	res, err := Evaluate(g, pl, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-core edge: no communication at all.
	if res.CommDynEnergy != 0 || res.UsedLinks != 0 {
		t.Errorf("intra-core mapping has comm energy %g on %d links", res.CommDynEnergy, res.UsedLinks)
	}
	wantCycle := 0.3 / 0.6
	if math.Abs(res.MaxCycleTime-wantCycle) > 1e-12 {
		t.Errorf("cycle time %g, want %g", res.MaxCycleTime, wantCycle)
	}
	want := pl.LeakPower*1 + 0.3/0.6*pl.DynPower[2]
	if math.Abs(res.Energy-want) > 1e-12 {
		t.Errorf("energy %g, want %g", res.Energy, want)
	}
	if res.ActiveCores != 1 {
		t.Errorf("active cores %d", res.ActiveCores)
	}
}

func TestEvaluateTwoCoreCommunication(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.1}, []float64{3})
	m := New(2, pl)
	m.Alloc[0] = platform.Core{U: 0, V: 0}
	m.Alloc[1] = platform.Core{U: 1, V: 1}
	m.SetSpeed(pl, m.Alloc[0], 4)
	m.SetSpeed(pl, m.Alloc[1], 4)
	res, err := Evaluate(g, pl, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// XY route: 2 hops, 3 GB each.
	if res.UsedLinks != 2 {
		t.Errorf("used links %d, want 2", res.UsedLinks)
	}
	wantComm := 2 * 3.0 * pl.EnergyPerGB
	if math.Abs(res.CommDynEnergy-wantComm) > 1e-12 {
		t.Errorf("comm energy %g, want %g", res.CommDynEnergy, wantComm)
	}
	// At 1 GHz cores take 0.1 s; the links take 3/19.2 = 0.156 s and bound
	// the cycle-time.
	if want := 3.0 / pl.BW; math.Abs(res.MaxCycleTime-want) > 1e-12 {
		t.Errorf("max cycle %g, want %g (link bound)", res.MaxCycleTime, want)
	}
}

func TestEvaluatePeriodViolations(t *testing.T) {
	pl := platform.XScale(2, 2)
	// Computation violation: 0.2 Gcycles at 0.15 GHz > T=1.
	g := chain(t, []float64{0.1, 0.1}, []float64{0.001})
	m := singleCore(g, pl, 0)
	if _, err := Evaluate(g, pl, m, 1); err == nil {
		t.Error("computation overload accepted")
	}
	// Bandwidth violation: 30 GB over a 19.2 GB link at T=1.
	g2 := chain(t, []float64{0.01, 0.01}, []float64{30})
	m2 := New(2, pl)
	m2.Alloc[0] = platform.Core{U: 0, V: 0}
	m2.Alloc[1] = platform.Core{U: 0, V: 1}
	m2.SetSpeed(pl, m2.Alloc[0], 0)
	m2.SetSpeed(pl, m2.Alloc[1], 0)
	if _, err := Evaluate(g2, pl, m2, 1); err == nil {
		t.Error("bandwidth overload accepted")
	}
}

func TestEvaluateRejectsMissingSpeed(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.1}, []float64{0.001})
	m := New(2, pl)
	m.Alloc[0] = platform.Core{U: 0, V: 0}
	m.Alloc[1] = platform.Core{U: 0, V: 1}
	m.SetSpeed(pl, m.Alloc[0], 1)
	// Core (0,1) hosts a stage but is off.
	if _, err := Evaluate(g, pl, m, 1); err == nil {
		t.Error("unpowered active core accepted")
	}
}

// TestEvaluateRejectsCyclicQuotient builds the counter-example showing
// per-cluster convexity is weaker than quotient acyclicity: two clusters
// with edges in both directions.
func TestEvaluateRejectsCyclicQuotient(t *testing.T) {
	pl := platform.XScale(2, 2)
	// Diamond: S0 -> {S1, S2} -> S3; clusters {S0, S3} and {S1, S2} give
	// quotient edges in both directions.
	g, err := spg.ForkJoin(0.01, 0.01, []float64{0.01, 0.01}, []float64{0.001, 0.001}, []float64{0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	m := New(g.N(), pl)
	a, b := platform.Core{U: 0, V: 0}, platform.Core{U: 0, V: 1}
	m.Alloc[0], m.Alloc[2] = a, a // source and sink together
	m.Alloc[1], m.Alloc[3] = b, b // both middle stages elsewhere
	m.SetSpeed(pl, a, 4)
	m.SetSpeed(pl, b, 4)
	_, err = Evaluate(g, pl, m, 1)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic quotient not rejected: %v", err)
	}
}

func TestEvaluateExplicitPaths(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.1}, []float64{1})
	m := New(2, pl)
	a, b := platform.Core{U: 0, V: 0}, platform.Core{U: 1, V: 1}
	m.Alloc[0], m.Alloc[1] = a, b
	m.SetSpeed(pl, a, 0)
	m.SetSpeed(pl, b, 0)
	// Route vertical-first instead of XY.
	mid := platform.Core{U: 1, V: 0}
	m.Paths = map[int][]platform.Link{0: {{From: a, To: mid}, {From: mid, To: b}}}
	res, err := Evaluate(g, pl, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.LinkLoads[platform.Link{From: a, To: mid}]; !ok {
		t.Error("explicit path not used")
	}
	// A broken explicit path must be rejected.
	m.Paths[0] = m.Paths[0][:1]
	if _, err := Evaluate(g, pl, m, 1); err == nil {
		t.Error("truncated path accepted")
	}
	// An intra-core edge with a path must be rejected.
	m2 := singleCore(g, pl, 1)
	m2.Paths = map[int][]platform.Link{0: {{From: a, To: mid}}}
	if _, err := Evaluate(g, pl, m2, 1); err == nil {
		t.Error("intra-core path accepted")
	}
}

func TestDowngradeSpeeds(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.3}, []float64{0.001})
	m := New(2, pl)
	m.Alloc[0] = platform.Core{U: 0, V: 0}
	m.Alloc[1] = platform.Core{U: 0, V: 1}
	// Start everything at max speed.
	m.SetSpeed(pl, m.Alloc[0], 4)
	m.SetSpeed(pl, m.Alloc[1], 4)
	if !m.DowngradeSpeeds(g, pl, 1) {
		t.Fatal("downgrade failed")
	}
	if got := m.SpeedOf(pl, m.Alloc[0]); got != 0 { // 0.1 fits 0.15 GHz
		t.Errorf("core 0 speed idx %d, want 0", got)
	}
	if got := m.SpeedOf(pl, m.Alloc[1]); got != 1 { // 0.3 needs 0.4 GHz
		t.Errorf("core 1 speed idx %d, want 1", got)
	}
	// Unused cores must be off.
	if got := m.SpeedOf(pl, platform.Core{U: 1, V: 1}); got != -1 {
		t.Errorf("unused core speed idx %d, want -1", got)
	}
	// Infeasible work fails.
	g.Stages[1].Weight = 2
	if m.DowngradeSpeeds(g, pl, 1) {
		t.Error("downgrade succeeded on infeasible work")
	}
}

func TestClustersAndCoreWork(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{1, 2, 3}, []float64{0, 0})
	m := New(3, pl)
	a, b := platform.Core{U: 0, V: 0}, platform.Core{U: 1, V: 0}
	m.Alloc[0], m.Alloc[1], m.Alloc[2] = a, a, b
	cores, byCore := m.Clusters(pl)
	if len(cores) != 2 || cores[0] != a || cores[1] != b {
		t.Fatalf("cores = %v", cores)
	}
	if len(byCore[a]) != 2 || len(byCore[b]) != 1 {
		t.Fatalf("clusters = %v", byCore)
	}
	work := m.CoreWork(g)
	if work[a] != 3 || work[b] != 3 {
		t.Fatalf("work = %v", work)
	}
}

func TestCloneIndependence(t *testing.T) {
	pl := platform.XScale(2, 2)
	m := New(2, pl)
	m.Paths = map[int][]platform.Link{0: {{From: platform.Core{U: 0, V: 0}, To: platform.Core{U: 0, V: 1}}}}
	c := m.Clone()
	c.Alloc[0] = platform.Core{U: 1, V: 1}
	c.SpeedIdx[0] = 3
	c.Paths[0][0].To = platform.Core{U: 1, V: 0}
	if m.Alloc[0] == c.Alloc[0] || m.SpeedIdx[0] == 3 {
		t.Error("Clone shares alloc/speed storage")
	}
	if m.Paths[0][0].To == c.Paths[0][0].To {
		t.Error("Clone shares path storage")
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.1}, []float64{0.001})
	m := singleCore(g, pl, 4)
	if _, err := Evaluate(g, pl, m, 0); err == nil {
		t.Error("zero period accepted")
	}
	short := New(1, pl)
	if _, err := Evaluate(g, pl, short, 1); err == nil {
		t.Error("wrong alloc length accepted")
	}
	bad := singleCore(g, pl, 4)
	bad.Alloc[0] = platform.Core{U: 5, V: 5}
	if _, err := Evaluate(g, pl, bad, 1); err == nil {
		t.Error("out-of-grid core accepted")
	}
}

func TestMappingJSONRoundTrip(t *testing.T) {
	pl := platform.XScale(3, 3)
	g := chain(t, []float64{0.1, 0.1, 0.1}, []float64{1, 1})
	m := New(3, pl)
	m.Alloc[0] = platform.Core{U: 0, V: 0}
	m.Alloc[1] = platform.Core{U: 1, V: 1}
	m.Alloc[2] = platform.Core{U: 2, V: 2}
	for _, c := range m.Alloc {
		m.SetSpeed(pl, c, 2)
	}
	mid := platform.Core{U: 1, V: 0}
	m.Paths = map[int][]platform.Link{0: {
		{From: m.Alloc[0], To: mid},
		{From: mid, To: platform.Core{U: 1, V: 1}},
	}}

	var buf strings.Builder
	if err := m.WriteJSON(&buf, pl); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadJSON(strings.NewReader(buf.String()), pl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Alloc {
		if m.Alloc[i] != m2.Alloc[i] {
			t.Fatalf("alloc %d differs", i)
		}
	}
	for i := range m.SpeedIdx {
		if m.SpeedIdx[i] != m2.SpeedIdx[i] {
			t.Fatalf("speed %d differs: %d vs %d", i, m.SpeedIdx[i], m2.SpeedIdx[i])
		}
	}
	if len(m2.Paths[0]) != 2 || m2.Paths[0][0].To != mid {
		t.Fatalf("paths lost: %+v", m2.Paths)
	}
	// Both evaluate identically.
	r1, err1 := Evaluate(g, pl, m, 1)
	r2, err2 := Evaluate(g, pl, m2, 1)
	if err1 != nil || err2 != nil {
		t.Fatalf("evaluate: %v %v", err1, err2)
	}
	if r1.Energy != r2.Energy {
		t.Fatalf("energies differ after round trip")
	}
}

func TestMappingJSONRejects(t *testing.T) {
	pl := platform.XScale(2, 2)
	cases := []string{
		`{"p":3,"q":3,"alloc":[[0,0]]}`,                                       // wrong grid
		`{"p":2,"q":2,"alloc":[[5,5]]}`,                                       // out of bounds
		`{"p":2,"q":2,"alloc":[[0,0]],"cores":[{"u":0,"v":0,"speed_idx":9}]}`, // bad speed
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c), pl); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRenderGridAndSummary(t *testing.T) {
	pl := platform.XScale(2, 2)
	g := chain(t, []float64{0.1, 0.2}, []float64{0.001})
	m := New(2, pl)
	m.Alloc[0] = platform.Core{U: 0, V: 0}
	m.Alloc[1] = platform.Core{U: 1, V: 1}
	m.SetSpeed(pl, m.Alloc[0], 1)
	m.SetSpeed(pl, m.Alloc[1], 1)
	out := RenderGrid(g, pl, m)
	if !strings.Contains(out, "1 stages") || !strings.Contains(out, "off") {
		t.Errorf("render output unexpected:\n%s", out)
	}
	sum := Summary(g, pl, m)
	if !strings.Contains(sum, "2 cores") {
		t.Errorf("summary: %s", sum)
	}
}

func TestWireMappingCanonical(t *testing.T) {
	pl := platform.XScale(2, 2)
	m := New(4, pl)
	cores := []platform.Core{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 1}}
	for i, c := range cores {
		m.Alloc[i] = c
		m.SetSpeed(pl, c, 1)
	}
	// Several pinned paths: the wire form must order them by edge index no
	// matter how map iteration shuffles them, so equal mappings always
	// serialize to identical bytes.
	m.Paths = map[int][]platform.Link{
		2: {{From: cores[2], To: cores[3]}},
		0: {{From: cores[0], To: cores[1]}},
		1: {{From: cores[1], To: cores[3]}},
	}
	var first string
	for trial := 0; trial < 8; trial++ {
		var buf strings.Builder
		if err := m.WriteJSON(&buf, pl); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = buf.String()
			w := m.Wire(pl)
			for i := 1; i < len(w.Paths); i++ {
				if w.Paths[i-1].Edge >= w.Paths[i].Edge {
					t.Fatalf("wire paths unsorted: %+v", w.Paths)
				}
			}
			continue
		}
		if buf.String() != first {
			t.Fatal("wire form not canonical across serializations")
		}
	}
	// Wire -> Mapping rebuild is lossless.
	m2, err := m.Wire(pl).Mapping(pl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Alloc {
		if m.Alloc[i] != m2.Alloc[i] {
			t.Fatalf("alloc %d differs", i)
		}
	}
	for e, p := range m.Paths {
		if len(m2.Paths[e]) != len(p) || m2.Paths[e][0] != p[0] {
			t.Fatalf("path %d differs", e)
		}
	}
}
