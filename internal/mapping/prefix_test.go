package mapping

import (
	"math/rand"
	"testing"

	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
)

// prefixPanel enumerates random partitions of a seeded graph and checks the
// account's two invariants against the real evaluator on every complete
// placement:
//
//   - the running bound Floor + sum of PlaceExtra terms is admissible at
//     every prefix (never exceeds the final evaluated energy), and
//   - at the leaf it reconstructs the evaluator's energy to within float
//     summation-order noise.
//
// Placements are evaluated with EvaluateGeneral so link capacity never
// filters the sample (the bound must hold for valid and invalid placements
// alike — the solver prunes before checking validity).
func TestPrefixAccountAdmissibleAndTight(t *testing.T) {
	g, err := randspg.Generate(randspg.Params{N: 9, Elevation: 3, Seed: 17, CCR: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(2, 3)
	var total float64
	for _, st := range g.Stages {
		total += st.Weight
	}
	T := 0.5 * total
	rng := rand.New(rand.NewSource(71))
	cores := pl.NumCores()
	account := NewPrefixAccount(g.N())

	checked := 0
	for trial := 0; trial < 400; trial++ {
		// Random partition into k clusters (not necessarily DAG — the
		// account is partition-shape-agnostic).
		k := 1 + rng.Intn(cores)
		part := make([]int, g.N())
		seen := 0
		for i := range part {
			c := rng.Intn(min(seen+1, k))
			part[i] = c
			if c == seen {
				seen++
			}
		}
		k = seen
		if !account.Reset(g, pl, T, part, k) {
			continue
		}
		// Random injective placement, scored incrementally.
		perm := rng.Perm(cores)[:k]
		bound := account.Floor
		for c := 0; c < k; c++ {
			bound += account.PlaceExtra(pl, c, perm[c], perm[:c])
		}
		m := New(g.N(), pl)
		for i := range g.Stages {
			coreIdx := perm[part[i]]
			m.Alloc[i] = platform.Core{U: coreIdx / pl.Q, V: coreIdx % pl.Q}
		}
		if !m.DowngradeSpeeds(g, pl, T) {
			continue
		}
		res, err := EvaluateGeneral(g, pl, m, T)
		if err != nil {
			continue
		}
		checked++
		if bound > res.Energy*(1+1e-9) {
			t.Fatalf("trial %d: leaf bound %.17g exceeds evaluated energy %.17g", trial, bound, res.Energy)
		}
		if bound < res.Energy*(1-1e-9) {
			t.Fatalf("trial %d: leaf bound %.17g is not tight against %.17g — a term is missing", trial, bound, res.Energy)
		}
		// Every prefix bound must also be admissible on its own.
		prefix := account.Floor
		for c := 0; c < k; c++ {
			prefix += account.PlaceExtra(pl, c, perm[c], perm[:c])
			if prefix > res.Energy*(1+1e-9) {
				t.Fatalf("trial %d: prefix bound after %d placements %.17g exceeds %.17g", trial, c+1, prefix, res.Energy)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d valid samples — panel too thin", checked)
	}
}

// TestPrefixAccountSymmetryInvariant: Floor and every PlaceExtra term must
// be identical across grid-automorphism images of a placement prefix, the
// property that lets bound pruning compose with orbit canonicity pruning.
func TestPrefixAccountSymmetryInvariant(t *testing.T) {
	g, err := randspg.Generate(randspg.Params{N: 8, Elevation: 2, Seed: 5, CCR: 10})
	if err != nil {
		t.Fatal(err)
	}
	pl := platform.XScale(2, 2)
	var total float64
	for _, st := range g.Stages {
		total += st.Weight
	}
	T := 0.35 * total
	// The 2x2 grid's rotation by 180 degrees as a core permutation.
	perm180 := []int{3, 2, 1, 0}

	part := make([]int, g.N())
	for i := range part {
		part[i] = i % 4
	}
	account := NewPrefixAccount(g.N())
	if !account.Reset(g, pl, T, part, 4) {
		t.Fatal("partition infeasible")
	}
	floor := account.Floor
	place := []int{0, 1, 2, 3}
	img := make([]int, 4)
	for c, coreIdx := range place {
		img[c] = perm180[coreIdx]
	}
	var a, b float64
	for c := 0; c < 4; c++ {
		a += account.PlaceExtra(pl, c, place[c], place[:c])
		b += account.PlaceExtra(pl, c, img[c], img[:c])
	}
	if a != b {
		t.Errorf("hop excess differs across the orbit: %.17g vs %.17g", a, b)
	}
	if account.Floor != floor {
		t.Errorf("Floor changed while placing: %.17g vs %.17g", account.Floor, floor)
	}
}
