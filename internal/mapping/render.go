package mapping

import (
	"fmt"
	"strings"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// RenderGrid draws the mapping as a text diagram of the CMP grid: each cell
// shows the number of stages, the total work and the speed of the core
// ("off" for unused cores). Useful for eyeballing heuristic layouts.
func RenderGrid(g *spg.Graph, pl *platform.Platform, m *Mapping) string {
	work := m.CoreWork(g)
	count := make(map[platform.Core]int)
	for _, c := range m.Alloc {
		count[c]++
	}
	const cellW = 18
	var b strings.Builder
	hline := "+" + strings.Repeat(strings.Repeat("-", cellW)+"+", pl.Q) + "\n"
	for u := 0; u < pl.P; u++ {
		b.WriteString(hline)
		row1, row2 := "|", "|"
		for v := 0; v < pl.Q; v++ {
			c := platform.Core{U: u, V: v}
			if n := count[c]; n > 0 {
				row1 += pad(fmt.Sprintf(" %d stages", n), cellW) + "|"
				row2 += pad(fmt.Sprintf(" %.3gGc @%.2gGHz", work[c], pl.Speeds[m.SpeedOf(pl, c)]), cellW) + "|"
			} else {
				row1 += pad(" .", cellW) + "|"
				row2 += pad(" off", cellW) + "|"
			}
		}
		b.WriteString(row1 + "\n" + row2 + "\n")
	}
	b.WriteString(hline)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Summary returns a one-line description of a mapping's resource usage.
func Summary(g *spg.Graph, pl *platform.Platform, m *Mapping) string {
	work := m.CoreWork(g)
	var minW, maxW, total float64
	first := true
	for _, w := range work {
		if first || w < minW {
			minW = w
		}
		if first || w > maxW {
			maxW = w
		}
		total += w
		first = false
	}
	imbalance := 0.0
	if len(work) > 0 && maxW > 0 {
		imbalance = (maxW - minW) / maxW
	}
	return fmt.Sprintf("%d cores, %.4g Gcycles total, load imbalance %.1f%%",
		len(work), total, 100*imbalance)
}
