package mapping

import (
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// PrefixAccount is the placement-side energy accounting of the
// branch-and-bound exact solver. Once a partition is complete the cluster
// works are fixed, so the computation energy is exact before any cluster is
// placed (every core runs its cluster at the slowest feasible speed), and
// only the communication hop counts depend on the placement. The account
// therefore splits a mapping's energy into
//
//	Floor       = exact core energies + comm leakage + one hop per
//	              cross-cluster volume (every pair of clusters lands on
//	              distinct cores, so one hop is unavoidable), and
//	hop excess  = the additional (Manhattan-1) hops each placed pair pays,
//
// which makes Floor + running excess an admissible lower bound at every
// placement prefix and (up to float summation order) the exact energy at the
// leaves. Both terms are invariant under grid automorphisms — hop counts are
// Manhattan distances — so pruning on the bound composes soundly with the
// symmetry-orbit canonicity check: a pruned canonical prefix prunes exactly
// what its orbit members would have contributed.
//
// The account is rebuilt per partition with Reset and queried per placement
// step with PlaceExtra; all storage is reused across partitions so the hot
// enumeration loop stays allocation-free.
type PrefixAccount struct {
	// Floor is the placement-independent energy floor of the current
	// partition: sum of exact per-cluster core energies, the platform's
	// communication leakage, and one hop of link energy per unit of
	// cross-cluster volume.
	Floor float64

	k     int
	works []float64
	// vol[lo*k+hi] (lo < hi) is the total volume between clusters lo and hi,
	// both directions aggregated.
	vol []float64
	// touch lists the (lo, hi) pairs with nonzero volume, so Reset clears
	// only what the previous partition dirtied.
	touch []int32
	// peers[c] lists the clusters d < c that exchange volume with c,
	// precisely the pairs PlaceExtra(c, ...) must price.
	peers [][]int32
}

// NewPrefixAccount returns an account sized for partitions of at most
// maxClusters clusters.
func NewPrefixAccount(maxClusters int) *PrefixAccount {
	a := &PrefixAccount{
		works: make([]float64, maxClusters),
		vol:   make([]float64, maxClusters*maxClusters),
		touch: make([]int32, 0, maxClusters*maxClusters),
		peers: make([][]int32, maxClusters),
	}
	for c := range a.peers {
		a.peers[c] = make([]int32, 0, maxClusters)
	}
	return a
}

// Reset rebuilds the account for the partition part (k clusters) of g at
// period T. It reports false when some cluster's work exceeds the fastest
// speed's capacity, in which case no placement of the partition is feasible.
func (a *PrefixAccount) Reset(g *spg.Graph, pl *platform.Platform, T float64, part []int, k int) bool {
	a.k = k
	for _, pair := range a.touch {
		a.vol[pair] = 0
	}
	a.touch = a.touch[:0]
	for c := 0; c < k; c++ {
		a.works[c] = 0
		a.peers[c] = a.peers[c][:0]
	}
	for i, st := range g.Stages {
		a.works[part[i]] += st.Weight
	}
	floor := pl.CommLeakPower * T
	for c := 0; c < k; c++ {
		_, idx, ok := pl.MinFeasibleSpeed(a.works[c], T)
		if !ok {
			return false
		}
		floor += pl.CoreEnergy(a.works[c], T, idx)
	}
	for _, e := range g.Edges {
		lo, hi := part[e.Src], part[e.Dst]
		if lo == hi {
			continue
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		pair := lo*k + hi
		if a.vol[pair] == 0 {
			a.touch = append(a.touch, int32(pair))
			a.peers[hi] = append(a.peers[hi], int32(lo))
		}
		a.vol[pair] += e.Volume
	}
	for _, pair := range a.touch {
		floor += a.vol[pair] * pl.EnergyPerGB
	}
	a.Floor = floor
	return true
}

// PlaceExtra returns the hop-excess energy that placing cluster c on core
// coreIdx adds over the one-hop floor, given the cores already chosen for
// clusters 0..c-1 in placed: for each earlier peer d, the pair's volume pays
// Manhattan(c, d)-1 additional hops of link energy. The result depends only
// on pairwise Manhattan distances, so it is identical across all grid-
// automorphism images of the prefix.
func (a *PrefixAccount) PlaceExtra(pl *platform.Platform, c, coreIdx int, placed []int) float64 {
	cu, cv := coreIdx/pl.Q, coreIdx%pl.Q
	var extra float64
	for _, d32 := range a.peers[c] {
		d := int(d32)
		du, dv := placed[d]/pl.Q, placed[d]%pl.Q
		dist := cu - du
		if dist < 0 {
			dist = -dist
		}
		if dv > cv {
			dist += dv - cv
		} else {
			dist += cv - dv
		}
		extra += a.vol[d*a.k+c] * float64(dist-1) * pl.EnergyPerGB
	}
	return extra
}

// Work returns cluster c's total work under the current partition.
func (a *PrefixAccount) Work(c int) float64 { return a.works[c] }
