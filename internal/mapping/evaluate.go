package mapping

import (
	"errors"
	"fmt"
	"sort"

	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Tolerance for floating-point feasibility comparisons: a resource cycle-time
// may exceed the period by at most this relative amount.
const relTol = 1e-9

// Result reports the evaluation of a valid mapping.
type Result struct {
	// Energy is the total energy per period: E(comp) + E(comm).
	Energy float64
	// CompLeakEnergy is |A| * P_leak^(comp) * T.
	CompLeakEnergy float64
	// CompDynEnergy is sum over cores of (w/s) * P_dyn(s).
	CompDynEnergy float64
	// CommLeakEnergy is P_leak^(comm) * T.
	CommLeakEnergy float64
	// CommDynEnergy is sum over links of load * E(bit).
	CommDynEnergy float64

	// MaxCycleTime is the maximum resource cycle-time (seconds); it never
	// exceeds the period for a valid mapping.
	MaxCycleTime float64
	// ActiveCores is |A|, the number of cores hosting at least one stage.
	ActiveCores int
	// UsedLinks is the number of directed links carrying traffic.
	UsedLinks int
	// LinkLoads maps each loaded directed link to its volume per period (GB).
	LinkLoads map[platform.Link]float64
	// CoreTimes maps each active core to its computation cycle-time (s).
	CoreTimes map[platform.Core]float64
}

// Evaluate validates m against the DAG-partition mapping rules and the period
// bound T, and computes its energy. It returns an error describing the first
// violation when the mapping is invalid.
func Evaluate(g *spg.Graph, pl *platform.Platform, m *Mapping, T float64) (*Result, error) {
	return evaluate(g, pl, m, T, true)
}

// EvaluateGeneral is Evaluate without the DAG-partition (quotient
// acyclicity) requirement. It supports the paper's future-work direction of
// assessing general mappings: the per-resource cycle-time bound still
// characterizes the achievable steady-state period, but a cyclic cluster
// quotient requires software pipelining across data sets (each core buffers
// results between iterations) instead of the simple cluster-at-a-time
// schedule that acyclic quotients allow.
func EvaluateGeneral(g *spg.Graph, pl *platform.Platform, m *Mapping, T float64) (*Result, error) {
	return evaluate(g, pl, m, T, false)
}

func evaluate(g *spg.Graph, pl *platform.Platform, m *Mapping, T float64, requireAcyclic bool) (*Result, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if T <= 0 {
		return nil, errors.New("mapping: period must be positive")
	}
	if len(m.Alloc) != g.N() {
		return nil, fmt.Errorf("mapping: %d allocations for %d stages", len(m.Alloc), g.N())
	}
	if len(m.SpeedIdx) != pl.NumCores() {
		return nil, fmt.Errorf("mapping: %d speed entries for %d cores", len(m.SpeedIdx), pl.NumCores())
	}
	for i, c := range m.Alloc {
		if !pl.InBounds(c) {
			return nil, fmt.Errorf("mapping: stage %d mapped outside the grid: %v", i, c)
		}
	}
	if requireAcyclic {
		if err := checkDAGPartition(g, pl, m); err != nil {
			return nil, err
		}
	}

	res := &Result{
		LinkLoads: make(map[platform.Link]float64),
		CoreTimes: make(map[platform.Core]float64),
	}

	// Computation cycle-times and energy. Active cores are visited in
	// row-major order — not map order — so the floating-point accumulation
	// (and the violation reported first) is deterministic: the same mapping
	// always evaluates to the bit-identical energy. Sorting just the active
	// cores keeps the cost proportional to the mapping, which matters in the
	// exact solver's enumeration loop.
	work := m.CoreWork(g)
	active := make([]platform.Core, 0, len(work))
	for c := range work {
		active = append(active, c)
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].U != active[j].U {
			return active[i].U < active[j].U
		}
		return active[i].V < active[j].V
	})
	for _, c := range active {
		w := work[c]
		idx := m.SpeedOf(pl, c)
		if idx < 0 || idx >= len(pl.Speeds) {
			return nil, fmt.Errorf("mapping: core %v hosts stages but has speed index %d", c, idx)
		}
		ct := w / pl.Speeds[idx]
		if ct > T*(1+relTol) {
			return nil, fmt.Errorf("mapping: core %v cycle-time %.6g exceeds period %.6g", c, ct, T)
		}
		res.CoreTimes[c] = ct
		if ct > res.MaxCycleTime {
			res.MaxCycleTime = ct
		}
		res.CompLeakEnergy += pl.LeakPower * T
		res.CompDynEnergy += w / pl.Speeds[idx] * pl.DynPower[idx]
	}
	res.ActiveCores = len(work)

	// Communication routing, link loads and cycle-times.
	for e, edge := range g.Edges {
		a, b := m.Alloc[edge.Src], m.Alloc[edge.Dst]
		if a == b {
			if _, ok := m.Paths[e]; ok {
				return nil, fmt.Errorf("mapping: edge %d is intra-core but has a path", e)
			}
			continue
		}
		path := m.PathFor(pl, e, a, b)
		if err := pl.ValidatePath(a, b, path); err != nil {
			return nil, fmt.Errorf("mapping: edge %d: %w", e, err)
		}
		for _, l := range path {
			res.LinkLoads[l] += edge.Volume
		}
	}
	// Loaded links are visited in a canonical sorted order for the same
	// determinism reasons as the core loop above; sorting just the loaded
	// links keeps the cost proportional to the mapping, which matters in the
	// exact solver's enumeration loop.
	capacity := pl.LinkCapacity(T)
	loaded := make([]platform.Link, 0, len(res.LinkLoads))
	for l := range res.LinkLoads {
		loaded = append(loaded, l)
	}
	linkKey := func(l platform.Link) int {
		return (l.From.U*pl.Q+l.From.V)*pl.NumCores() + l.To.U*pl.Q + l.To.V
	}
	sort.Slice(loaded, func(i, j int) bool { return linkKey(loaded[i]) < linkKey(loaded[j]) })
	for _, l := range loaded {
		load := res.LinkLoads[l]
		if load > capacity*(1+relTol) {
			return nil, fmt.Errorf("mapping: link %v load %.6g GB exceeds capacity %.6g GB", l, load, capacity)
		}
		if load > 0 {
			res.UsedLinks++
		}
		if ct := load / pl.BW; ct > res.MaxCycleTime {
			res.MaxCycleTime = ct
		}
		res.CommDynEnergy += load * pl.EnergyPerGB
	}

	res.CommLeakEnergy = pl.CommLeakPower * T
	res.Energy = res.CompLeakEnergy + res.CompDynEnergy + res.CommLeakEnergy + res.CommDynEnergy
	return res, nil
}

// checkDAGPartition verifies the mapping rule of Section 3.3: the quotient
// graph whose nodes are the per-core stage clusters must be acyclic. The
// paper states the rule through the convexity closure property (any stage
// between two co-located stages must be co-located); acyclicity of the
// quotient is the property the proofs and the streaming semantics actually
// rely on, and it implies convexity.
func checkDAGPartition(g *spg.Graph, pl *platform.Platform, m *Mapping) error {
	// Assign dense cluster ids per used core.
	id := make(map[platform.Core]int)
	for _, c := range m.Alloc {
		if _, ok := id[c]; !ok {
			id[c] = len(id)
		}
	}
	k := len(id)
	adj := make(map[int][]int, k)
	indeg := make([]int, k)
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges {
		a, b := id[m.Alloc[e.Src]], id[m.Alloc[e.Dst]]
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		adj[a] = append(adj[a], b)
		indeg[b]++
	}
	queue := make([]int, 0, k)
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if processed != k {
		return errors.New("mapping: cluster quotient graph is cyclic (DAG-partition rule violated)")
	}
	return nil
}

// MustEvaluate is a test helper: it panics when Evaluate fails.
func MustEvaluate(g *spg.Graph, pl *platform.Platform, m *Mapping, T float64) *Result {
	res, err := Evaluate(g, pl, m, T)
	if err != nil {
		panic(err)
	}
	return res
}
