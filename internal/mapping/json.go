package mapping

import (
	"encoding/json"
	"fmt"
	"io"

	"spgcmp/internal/platform"
)

// jsonMapping is the on-disk representation of a Mapping, independent of the
// platform object (grid dimensions are embedded for validation on load).
type jsonMapping struct {
	P     int        `json:"p"`
	Q     int        `json:"q"`
	Alloc [][2]int   `json:"alloc"` // stage -> [u, v]
	Cores []jsonCore `json:"cores"`
	Paths []jsonPath `json:"paths,omitempty"`
}

type jsonCore struct {
	U        int `json:"u"`
	V        int `json:"v"`
	SpeedIdx int `json:"speed_idx"`
}

type jsonPath struct {
	Edge int      `json:"edge"`
	Hops [][4]int `json:"hops"` // [fromU, fromV, toU, toV]
}

// WriteJSON serializes the mapping.
func (m *Mapping) WriteJSON(w io.Writer, pl *platform.Platform) error {
	jm := jsonMapping{P: pl.P, Q: pl.Q, Alloc: make([][2]int, len(m.Alloc))}
	for i, c := range m.Alloc {
		jm.Alloc[i] = [2]int{c.U, c.V}
	}
	for u := 0; u < pl.P; u++ {
		for v := 0; v < pl.Q; v++ {
			if idx := m.SpeedIdx[u*pl.Q+v]; idx >= 0 {
				jm.Cores = append(jm.Cores, jsonCore{U: u, V: v, SpeedIdx: idx})
			}
		}
	}
	for e, path := range m.Paths {
		jp := jsonPath{Edge: e}
		for _, l := range path {
			jp.Hops = append(jp.Hops, [4]int{l.From.U, l.From.V, l.To.U, l.To.V})
		}
		jm.Paths = append(jm.Paths, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jm)
}

// ReadJSON parses a mapping written by WriteJSON and validates it against
// the platform dimensions.
func ReadJSON(r io.Reader, pl *platform.Platform) (*Mapping, error) {
	var jm jsonMapping
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, err
	}
	if jm.P != pl.P || jm.Q != pl.Q {
		return nil, fmt.Errorf("mapping: file targets a %dx%d grid, platform is %dx%d",
			jm.P, jm.Q, pl.P, pl.Q)
	}
	m := New(len(jm.Alloc), pl)
	for i, uv := range jm.Alloc {
		c := platform.Core{U: uv[0], V: uv[1]}
		if !pl.InBounds(c) {
			return nil, fmt.Errorf("mapping: stage %d outside the grid: %v", i, c)
		}
		m.Alloc[i] = c
	}
	for _, jc := range jm.Cores {
		c := platform.Core{U: jc.U, V: jc.V}
		if !pl.InBounds(c) {
			return nil, fmt.Errorf("mapping: speed entry outside the grid: %v", c)
		}
		if jc.SpeedIdx < 0 || jc.SpeedIdx >= len(pl.Speeds) {
			return nil, fmt.Errorf("mapping: core %v has invalid speed index %d", c, jc.SpeedIdx)
		}
		m.SetSpeed(pl, c, jc.SpeedIdx)
	}
	if len(jm.Paths) > 0 {
		m.Paths = make(map[int][]platform.Link, len(jm.Paths))
		for _, jp := range jm.Paths {
			var path []platform.Link
			for _, h := range jp.Hops {
				path = append(path, platform.Link{
					From: platform.Core{U: h[0], V: h[1]},
					To:   platform.Core{U: h[2], V: h[3]},
				})
			}
			m.Paths[jp.Edge] = path
		}
	}
	return m, nil
}
