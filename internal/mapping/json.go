package mapping

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"spgcmp/internal/platform"
)

// WireMapping is the platform-independent wire form of a Mapping: the grid
// dimensions are embedded so the value is self-describing (and validated on
// rebuild), which lets mappings travel inside other wire payloads — a
// CellOutcome crossing the shard protocol, a /v1/map response — without a
// platform object at hand. It is also the on-disk JSON representation
// written by WriteJSON and read by ReadJSON.
type WireMapping struct {
	P     int        `json:"p"`
	Q     int        `json:"q"`
	Alloc [][2]int   `json:"alloc"` // stage -> [u, v]
	Cores []WireCore `json:"cores"`
	Paths []WirePath `json:"paths,omitempty"`
}

// WireCore is one powered core and its DVFS speed index.
type WireCore struct {
	U        int `json:"u"`
	V        int `json:"v"`
	SpeedIdx int `json:"speed_idx"`
}

// WirePath is one explicitly-routed edge.
type WirePath struct {
	Edge int      `json:"edge"`
	Hops [][4]int `json:"hops"` // [fromU, fromV, toU, toV]
}

// Wire converts the mapping for transport or disk. The output is canonical —
// cores in row-major order, pinned paths sorted by edge index — so equal
// mappings always serialize to identical bytes regardless of map iteration
// order.
func (m *Mapping) Wire(pl *platform.Platform) *WireMapping {
	w := &WireMapping{P: pl.P, Q: pl.Q, Alloc: make([][2]int, len(m.Alloc))}
	for i, c := range m.Alloc {
		w.Alloc[i] = [2]int{c.U, c.V}
	}
	for u := 0; u < pl.P; u++ {
		for v := 0; v < pl.Q; v++ {
			if idx := m.SpeedIdx[u*pl.Q+v]; idx >= 0 {
				w.Cores = append(w.Cores, WireCore{U: u, V: v, SpeedIdx: idx})
			}
		}
	}
	for e, path := range m.Paths {
		wp := WirePath{Edge: e}
		for _, l := range path {
			wp.Hops = append(wp.Hops, [4]int{l.From.U, l.From.V, l.To.U, l.To.V})
		}
		w.Paths = append(w.Paths, wp)
	}
	sort.Slice(w.Paths, func(i, j int) bool { return w.Paths[i].Edge < w.Paths[j].Edge })
	return w
}

// Mapping rebuilds the executable mapping, validating every coordinate and
// speed index against the platform (which must match the embedded grid
// dimensions).
func (w *WireMapping) Mapping(pl *platform.Platform) (*Mapping, error) {
	if w.P != pl.P || w.Q != pl.Q {
		return nil, fmt.Errorf("mapping: wire form targets a %dx%d grid, platform is %dx%d",
			w.P, w.Q, pl.P, pl.Q)
	}
	m := New(len(w.Alloc), pl)
	for i, uv := range w.Alloc {
		c := platform.Core{U: uv[0], V: uv[1]}
		if !pl.InBounds(c) {
			return nil, fmt.Errorf("mapping: stage %d outside the grid: %v", i, c)
		}
		m.Alloc[i] = c
	}
	for _, wc := range w.Cores {
		c := platform.Core{U: wc.U, V: wc.V}
		if !pl.InBounds(c) {
			return nil, fmt.Errorf("mapping: speed entry outside the grid: %v", c)
		}
		if wc.SpeedIdx < 0 || wc.SpeedIdx >= len(pl.Speeds) {
			return nil, fmt.Errorf("mapping: core %v has invalid speed index %d", c, wc.SpeedIdx)
		}
		m.SetSpeed(pl, c, wc.SpeedIdx)
	}
	if len(w.Paths) > 0 {
		m.Paths = make(map[int][]platform.Link, len(w.Paths))
		for _, wp := range w.Paths {
			var path []platform.Link
			for _, h := range wp.Hops {
				path = append(path, platform.Link{
					From: platform.Core{U: h[0], V: h[1]},
					To:   platform.Core{U: h[2], V: h[3]},
				})
			}
			m.Paths[wp.Edge] = path
		}
	}
	return m, nil
}

// WriteJSON serializes the mapping.
func (m *Mapping) WriteJSON(w io.Writer, pl *platform.Platform) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Wire(pl))
}

// ReadJSON parses a mapping written by WriteJSON and validates it against
// the platform dimensions.
func ReadJSON(r io.Reader, pl *platform.Platform) (*Mapping, error) {
	var w WireMapping
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	return w.Mapping(pl)
}
