package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sendAll fires n GET requests at url through client and returns the
// per-request outcomes as compact strings: "err" for transport errors,
// otherwise "<code>:<body>".
func sendAll(t *testing.T, client *http.Client, url string, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := client.Get(url)
		if err != nil {
			out = append(out, "err")
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			out = append(out, "readerr")
			continue
		}
		out = append(out, resp.Status[:3]+":"+string(body))
	}
	return out
}

func TestTransportSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	cases := []struct {
		name  string
		rules []Rule
		want  []string // outcome per request, 6 requests
	}{
		{
			name:  "drop every second request",
			rules: []Rule{{Fault: Drop, Every: 2}},
			want:  []string{"err", "200:ok", "err", "200:ok", "err", "200:ok"},
		},
		{
			name:  "offset skips the first matches",
			rules: []Rule{{Fault: Status, Code: 503, Every: 2, Offset: 1}},
			want:  []string{"200:ok", "503:chaos: injected 503 (rule 0)", "200:ok", "503:chaos: injected 503 (rule 0)", "200:ok", "503:chaos: injected 503 (rule 0)"},
		},
		{
			name:  "count bounds total firings",
			rules: []Rule{{Fault: Drop, Every: 1, Count: 2}},
			want:  []string{"err", "err", "200:ok", "200:ok", "200:ok", "200:ok"},
		},
		{
			name:  "status defaults to 500",
			rules: []Rule{{Fault: Status, Every: 3}},
			want:  []string{"500:chaos: injected 500 (rule 0)", "200:ok", "200:ok", "500:chaos: injected 500 (rule 0)", "200:ok", "200:ok"},
		},
		{
			name:  "first firing rule wins",
			rules: []Rule{{Fault: Drop, Every: 3}, {Fault: Status, Code: 502, Every: 2}},
			want:  []string{"err", "200:ok", "502:chaos: injected 502 (rule 1)", "err", "502:chaos: injected 502 (rule 1)", "200:ok"},
		},
		{
			name:  "path filter spares other endpoints",
			rules: []Rule{{Fault: Drop, Path: "/elsewhere", Every: 1}},
			want:  []string{"200:ok", "200:ok", "200:ok", "200:ok", "200:ok", "200:ok"},
		},
		{
			name:  "method filter spares GETs",
			rules: []Rule{{Fault: Drop, Method: http.MethodPost, Every: 1}},
			want:  []string{"200:ok", "200:ok", "200:ok", "200:ok", "200:ok", "200:ok"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &Transport{Rules: tc.rules}
			client := &http.Client{Transport: tr}
			got := sendAll(t, client, srv.URL+"/v1/cells/execute", len(tc.want))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("outcomes = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTransportDeterministicUnderSeed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	run := func(seed int64) ([]string, []Event) {
		tr := &Transport{Seed: seed, Rules: []Rule{{Fault: Drop, Every: 1, Prob: 0.4}}}
		client := &http.Client{Transport: tr}
		return sendAll(t, client, srv.URL+"/x", 40), tr.Events()
	}

	got1, events1 := run(7)
	got2, events2 := run(7)
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("same seed diverged:\n%v\n%v", got1, got2)
	}
	if !reflect.DeepEqual(events1, events2) {
		t.Fatalf("same seed produced different event logs:\n%v\n%v", events1, events2)
	}
	faulted := 0
	for _, o := range got1 {
		if o == "err" {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(got1) {
		t.Fatalf("prob gate degenerate: %d/%d faulted", faulted, len(got1))
	}
	if len(events1) != faulted {
		t.Fatalf("event log has %d entries, %d requests faulted", len(events1), faulted)
	}

	got3, _ := run(8)
	if reflect.DeepEqual(got1, got3) {
		t.Fatalf("different seeds produced identical schedules (possible, but suspicious for 40 requests)")
	}
}

func TestTransportGarbage(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, `{"fine":true}`)
	}))
	defer srv.Close()

	tr := &Transport{Rules: []Rule{{Fault: Garbage, Every: 1, Count: 1}}}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("garbage fault should not be a transport error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage status = %d, want 200", resp.StatusCode)
	}
	if strings.HasPrefix(string(body), "{") {
		t.Fatalf("garbage body decodes as JSON start: %q", body)
	}
	if served != 0 {
		t.Fatalf("garbage fault forwarded the request to the server")
	}
}

func TestTransportTruncate(t *testing.T) {
	const full = `{"results":[1,2,3,4,5,6,7,8]}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, full)
	}))
	defer srv.Close()

	tr := &Transport{Rules: []Rule{{Fault: Truncate, Every: 1}}}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("truncate fault should not be a transport error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len(full)/2 {
		t.Fatalf("truncated body has %d bytes, want %d", len(body), len(full)/2)
	}
	if !strings.HasPrefix(full, string(body)) {
		t.Fatalf("truncated body %q is not a prefix of %q", body, full)
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()

	tr := &Transport{Rules: []Rule{{Fault: Delay, Delay: time.Hour, Every: 1}}}
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatalf("delayed-past-deadline request should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay did not honor the context deadline: took %v", elapsed)
	}
	if served != 0 {
		t.Fatalf("request aborted by its deadline still reached the server")
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("delay,d=400ms,path=/v1/cells/execute,every=3; status,code=503,offset=2,count=1,method=post ;drop,prob=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Fault: Delay, Delay: 400 * time.Millisecond, Path: "/v1/cells/execute", Every: 3},
		{Fault: Status, Code: 503, Offset: 2, Count: 1, Method: "POST"},
		{Fault: Drop, Prob: 0.25},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("Parse = %+v, want %+v", rules, want)
	}

	for _, bad := range []string{
		"",
		"explode,every=1",
		"drop,every",
		"drop,every=x",
		"drop,frequency=2",
		"delay,d=fast",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
