package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse decodes the compact rule syntax of cmd/spgserve's -chaos flag:
// semicolon-separated rules, each a comma-separated list whose first field is
// the fault kind and whose remaining fields are key=value options.
//
//	delay,d=400ms,path=/v1/cells/execute,every=3
//	status,code=503,every=5,offset=2
//	drop,prob=0.2;garbage,count=1
//
// Keys: path, method, every, offset, count, prob, d/delay (a Go duration),
// code. Unknown kinds, unknown keys and malformed values are errors, so a
// typo'd schedule fails at startup rather than silently injecting nothing.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, ",")
		rule := Rule{Fault: Kind(strings.TrimSpace(fields[0]))}
		switch rule.Fault {
		case Drop, Delay, Status, Garbage, Truncate:
		default:
			return nil, fmt.Errorf("chaos: unknown fault kind %q in rule %q", rule.Fault, raw)
		}
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: field %q in rule %q is not key=value", f, raw)
			}
			var err error
			switch key {
			case "path":
				rule.Path = val
			case "method":
				rule.Method = strings.ToUpper(val)
			case "every":
				rule.Every, err = strconv.Atoi(val)
			case "offset":
				rule.Offset, err = strconv.Atoi(val)
			case "count":
				rule.Count, err = strconv.Atoi(val)
			case "prob":
				rule.Prob, err = strconv.ParseFloat(val, 64)
			case "d", "delay":
				rule.Delay, err = time.ParseDuration(val)
			case "code":
				rule.Code, err = strconv.Atoi(val)
			default:
				return nil, fmt.Errorf("chaos: unknown key %q in rule %q", key, raw)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: bad value for %q in rule %q: %v", key, raw, err)
			}
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: spec %q contains no rules", spec)
	}
	return rules, nil
}
