// Package chaos is the deterministic fault-injection layer of the mapping
// cluster: a seeded http.RoundTripper wrapper that injects transport faults —
// dropped connections, added latency, synthesized 5xx answers, garbage
// payloads, truncated bodies — according to a declarative schedule instead of
// a random process. Determinism is the point: the engine's campaigns are
// proven byte-identical under re-placement, so the chaos tests can demand the
// strongest robustness criterion there is (identical results and bounded
// retry counts under every fault class), and a failing schedule replays
// exactly from its seed and rule list. Nothing here touches solver results;
// the seed only gates which requests are faulted, honoring the repo's
// no-randomness-in-results invariant.
//
// The layer is used two ways: the engine's dispatcher chaos tests wrap their
// worker clients in a Transport, and cmd/spgserve's -chaos flag (parsed by
// Parse) wraps the coordinator's dispatch client so the CI chaos jobs can
// fault a real multi-process cluster.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind names a fault class.
type Kind string

const (
	// Drop fails the request outright with a transport error, as a severed
	// connection would; the server never sees the request.
	Drop Kind = "drop"
	// Delay sleeps before forwarding the request, honoring the request
	// context — a delay pushed past the sender's deadline surfaces as the
	// context's error, exactly like a stalled peer.
	Delay Kind = "delay"
	// Status answers with a synthesized HTTP error status (default 500)
	// without forwarding the request.
	Status Kind = "status"
	// Garbage answers 200 with an undecodable body without forwarding the
	// request — a confused or corrupted peer.
	Garbage Kind = "garbage"
	// Truncate forwards the request but cuts the response body in half — a
	// connection lost mid-transfer.
	Truncate Kind = "truncate"
)

// Rule schedules one fault over the stream of matching requests. Matching is
// by method and path substring; firing is decided by the deterministic
// (Every, Offset, Count, Prob) schedule over the rule's own match counter, so
// the same request sequence always faults the same requests.
type Rule struct {
	// Fault is the injected fault class.
	Fault Kind
	// Path, when non-empty, restricts the rule to URLs whose path contains
	// it (e.g. "/v1/cells/execute" spares health probes).
	Path string
	// Method, when non-empty, restricts the rule to one HTTP method.
	Method string
	// Every fires the rule on every Nth matching request (1 = every match;
	// 0 selects 1).
	Every int
	// Offset skips the first Offset matching requests before the Every
	// schedule starts.
	Offset int
	// Count bounds how many times the rule fires (0 = unlimited).
	Count int
	// Prob gates each scheduled firing by a seeded hash in [0, 1): the rule
	// fires when the hash of (seed, rule index, match ordinal) falls below
	// Prob. Outside (0, 1) the gate is off and every scheduled match fires.
	// The hash is pure, so a given seed always faults the same requests.
	Prob float64
	// Delay is the injected latency of a Delay fault.
	Delay time.Duration
	// Code is the synthesized status of a Status fault (default 500).
	Code int
}

// Event records one injected fault, for assertions and operator logs.
type Event struct {
	// Rule is the index of the firing rule in Transport.Rules.
	Rule int
	// Fault is the injected fault class.
	Fault Kind
	// Match is the rule's match ordinal that fired (0-based).
	Match int
	// Method and Path identify the faulted request.
	Method string
	Path   string
}

// Transport is the injecting http.RoundTripper: requests are matched against
// Rules in order and the first rule that fires applies its fault (at most one
// fault per request); everything else forwards to Base untouched.
type Transport struct {
	// Base handles unfaulted requests; nil selects http.DefaultTransport.
	Base http.RoundTripper
	// Seed drives the Prob gates. Two Transports with equal seeds, rules and
	// request sequences inject identical fault schedules.
	Seed int64
	// Rules is the declarative fault schedule.
	Rules []Rule

	mu      sync.Mutex
	matches []int   // guarded by mu; per-rule match ordinals
	fired   []int   // guarded by mu; per-rule firing counts
	events  []Event // guarded by mu
}

// Events returns a copy of every injected fault so far, in injection order.
func (t *Transport) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Injected returns how many faults have been injected so far.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// probGate reports whether the seeded hash of (seed, rule, ordinal) falls
// below p — a pure function, so schedules replay exactly.
func probGate(seed int64, rule, ordinal int, p float64) bool {
	if p <= 0 || p >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(rule))
	binary.LittleEndian.PutUint64(buf[16:], uint64(ordinal))
	_, _ = h.Write(buf[:])
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return frac < p
}

// match reports whether the rule applies to the request at all.
func (r Rule) match(req *http.Request) bool {
	if r.Method != "" && req.Method != r.Method {
		return false
	}
	if r.Path != "" && !strings.Contains(req.URL.Path, r.Path) {
		return false
	}
	return true
}

// decide picks the first rule that fires for this request, advancing every
// matching rule's ordinal, and records the event. Returns the rule index and
// rule, or -1.
func (t *Transport) decide(req *http.Request) (int, Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.matches == nil {
		t.matches = make([]int, len(t.Rules))
		t.fired = make([]int, len(t.Rules))
	}
	chosen := -1
	var chosenRule Rule
	var chosenMatch int
	for i, r := range t.Rules {
		if !r.match(req) {
			continue
		}
		n := t.matches[i]
		t.matches[i]++
		if chosen >= 0 {
			continue // ordinals still advance for later rules
		}
		every := r.Every
		if every <= 0 {
			every = 1
		}
		if n < r.Offset || (n-r.Offset)%every != 0 {
			continue
		}
		if r.Count > 0 && t.fired[i] >= r.Count {
			continue
		}
		if !probGate(t.Seed, i, n, r.Prob) {
			continue
		}
		t.fired[i]++
		chosen, chosenRule, chosenMatch = i, r, n
	}
	if chosen >= 0 {
		t.events = append(t.events, Event{
			Rule: chosen, Fault: chosenRule.Fault, Match: chosenMatch,
			Method: req.Method, Path: req.URL.Path,
		})
	}
	return chosen, chosenRule
}

// discardBody fulfills the RoundTripper contract on paths that never forward
// the request: the body must be consumed and closed exactly once.
func discardBody(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
}

// synthesize builds a response that never touched the network.
func synthesize(req *http.Request, code int, contentType string, body []byte) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{contentType}},
		Body:          io.NopCloser(strings.NewReader(string(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// RoundTrip implements http.RoundTripper: apply the first firing rule's
// fault, forward everything else.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	i, rule := t.decide(req)
	if i < 0 {
		return base.RoundTrip(req)
	}
	switch rule.Fault {
	case Drop:
		discardBody(req)
		return nil, fmt.Errorf("chaos: dropped %s %s (rule %d)", req.Method, req.URL.Path, i)
	case Delay:
		select {
		case <-time.After(rule.Delay):
		case <-req.Context().Done():
			discardBody(req)
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case Status:
		discardBody(req)
		code := rule.Code
		if code == 0 {
			code = http.StatusInternalServerError
		}
		return synthesize(req, code, "text/plain; charset=utf-8",
			[]byte(fmt.Sprintf("chaos: injected %d (rule %d)", code, i))), nil
	case Garbage:
		discardBody(req)
		return synthesize(req, http.StatusOK, "application/json",
			[]byte("\x00chaos\xffgarbage{{{not json")), nil
	case Truncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(strings.NewReader(string(cut)))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return nil, fmt.Errorf("chaos: unknown fault kind %q (rule %d)", rule.Fault, i)
	}
}
