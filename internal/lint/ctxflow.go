package lint

import (
	"go/ast"
)

// Ctxflow keeps request-path code honest about context propagation: the
// engine and service layers receive a context.Context at every entry point
// (HTTP handlers, Executor.Execute, dispatch loops), and cancellation is
// load-bearing — DELETE /v1/campaign reaches into a worker's solver through
// it. Minting a fresh root context severs that chain, so ctxflow flags:
//
//   - context.Background() and context.TODO() calls;
//   - the context-less HTTP helpers http.NewRequest, http.Get, http.Post,
//     http.PostForm and http.Head (use http.NewRequestWithContext).
//
// Deliberately detached lifecycles — the registry's probe loop, async
// campaign jobs that outlive their submitting request, the exact solver's
// core.Heuristic compatibility shim over its context-taking entry point —
// are annotated with //spglint:ignore and a written reason instead.
//
// The exact package is covered because its searches run for seconds to
// minutes: SolveContext threads ctx into every enumeration loop, and the
// analyzer keeps new entry points from quietly minting detached roots.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path code must propagate the incoming context.Context: no " +
		"context.Background()/TODO(), no context-less http request helpers",
	Packages: []string{
		"spgcmp/internal/engine",
		"spgcmp/internal/exact",
		"spgcmp/internal/service",
	},
	Run: runCtxflow,
}

var ctxlessHTTPHelpers = map[string]bool{
	"NewRequest": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runCtxflow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case pkgNameOf(pass.TypesInfo, sel.X, "context") &&
				(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"):
				pass.Reportf(call.Pos(), "context.%s() mints a fresh root context on the request path; propagate the incoming ctx", sel.Sel.Name)
			case pkgNameOf(pass.TypesInfo, sel.X, "net/http") && ctxlessHTTPHelpers[sel.Sel.Name]:
				pass.Reportf(call.Pos(), "http.%s ignores the incoming context; use http.NewRequestWithContext", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
