package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard checks the `// guarded by mu` field annotations: a field so
// annotated may only be accessed (read or written) in a function that first
// locks the named sibling mutex on the same receiver expression — the
// intra-package lexical heuristic that catches the common slip of touching
// a guarded map from a new method without taking the lock.
//
// The annotation is a field doc or trailing comment containing
// "guarded by <field>" (case-insensitive), where <field> must resolve to a
// sibling field of type sync.Mutex or sync.RWMutex — anything else is
// itself a finding, so stale annotations cannot rot silently.
//
// An access is considered locked when the enclosing function body contains
// a lexically earlier call to <base>.<mutex>.Lock() or .RLock() on the same
// base expression as the access. Functions whose names end in "Locked"
// document a caller-held lock and are exempt, as is the method holding the
// mutex field itself. This is deliberately a heuristic, not a proof: it
// does not model Unlock, branches, or cross-function lock passing — the
// race detector covers those; lockguard keeps the annotations honest.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by mu` must only be accessed with the named " +
		"mutex held (lexical intra-package heuristic; *Locked functions exempt)",
	Packages: []string{
		"spgcmp/internal/engine",
		"spgcmp/internal/service",
	},
	Run: runLockguard,
}

var guardRe = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_][A-Za-z0-9_]*)\b`)

// guardedField is one annotated (struct, field) pair.
type guardedField struct {
	owner *types.Named
	field string
	guard string
}

func runLockguard(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			owner := derefNamed(selection.Recv())
			if owner == nil {
				return true
			}
			var g *guardedField
			for i := range guarded {
				if guarded[i].owner.Obj() == owner.Obj() && guarded[i].field == sel.Sel.Name {
					g = &guarded[i]
					break
				}
			}
			if g == nil {
				return true
			}
			// Collect every enclosing function: a lock taken in an outer
			// method covers accesses in its closures, and a *Locked name
			// anywhere in the chain documents a caller-held lock.
			var bodies []*ast.BlockStmt
			exempt := false
			for i := len(stack) - 2; i >= 0; i-- {
				switch f := stack[i].(type) {
				case *ast.FuncDecl:
					bodies = append(bodies, f.Body)
					if strings.HasSuffix(f.Name.Name, "Locked") {
						exempt = true
					}
				case *ast.FuncLit:
					bodies = append(bodies, f.Body)
				}
			}
			if exempt || len(bodies) == 0 {
				return true // caller-held lock, or package-level composite literal
			}
			held := false
			for _, body := range bodies {
				if lockHeldBefore(pass.TypesInfo, body, sel, g.guard) {
					held = true
					break
				}
			}
			if !held {
				pass.Reportf(sel.Sel.Pos(), "%s.%s is accessed without %s.%s held (annotated `guarded by %s`)",
					owner.Obj().Name(), g.field, types.ExprString(sel.X), g.guard, g.guard)
			}
			return true
		})
	}
	return nil
}

// collectGuardedFields parses the package's struct declarations for
// guarded-by annotations, reporting annotations whose guard does not
// resolve to a sibling mutex field.
func collectGuardedFields(pass *Pass) []guardedField {
	var guarded []guardedField
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := types.Unalias(obj.Type()).(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				if !structHasMutexField(st, pass.TypesInfo, guard) {
					pass.Reportf(field.Pos(), "`guarded by %s` does not name a sibling sync.Mutex/RWMutex field of %s",
						guard, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					guarded = append(guarded, guardedField{owner: named, field: name.Name, guard: guard})
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the guard field name from a struct field's doc
// or trailing comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasMutexField reports whether the struct literally declares a field
// with the given name of type sync.Mutex or sync.RWMutex.
func structHasMutexField(st *ast.StructType, info *types.Info, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			t := info.TypeOf(field.Type)
			named := derefNamed(t)
			if named == nil || named.Obj().Pkg() == nil {
				return false
			}
			if named.Obj().Pkg().Path() != "sync" {
				return false
			}
			return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
		}
	}
	return false
}

// lockHeldBefore reports whether body contains a call to
// <base>.<guard>.Lock() or <base>.<guard>.RLock() lexically before the
// access, where <base> renders to the same expression as the access's base.
func lockHeldBefore(info *types.Info, body *ast.BlockStmt, access *ast.SelectorExpr, guard string) bool {
	base := types.ExprString(access.X)
	want := base + "." + guard
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= access.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if types.ExprString(sel.X) == want {
			held = true
		}
		return !held
	})
	return held
}
