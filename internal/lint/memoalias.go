package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Memoalias enforces the copy-on-return rule (PR 3): a function that reads
// a slice- or map-valued entry out of a memo/cache map must hand the caller
// a copy, never the cached value itself — an aliased return lets the caller
// mutate cache-private state and silently poison every later replay.
//
// A map expression is memo-like when any identifier in the expression, or
// the named type of any prefix of the selector chain, mentions "memo" or
// "cache" (case-insensitive): bm.sol on a *budgetMemo qualifies via the
// receiver's type name. Values are aliasing-prone when their underlying
// type is (or transitively contains, through struct fields) a slice or map.
// Pointer-valued caches are exempt: handing out a shared, internally
// synchronized *spg.Analysis is the cache's purpose, not a leak.
//
// Flagged: `return m.cache[k]`, and `v, ok := m.cache[k]; ...; return v`
// when v was not reassigned in between. Passing v through any call (a
// clone helper, append-copy) or rebinding it clears the taint.
var Memoalias = &Analyzer{
	Name: "memoalias",
	Doc: "functions returning values from memo/cache maps must return copies " +
		"(copy-on-return); returning the cached slice/map aliases private cache state",
	Packages: []string{
		"spgcmp/internal/core",
		"spgcmp/internal/spg",
	},
	Run: runMemoalias,
}

func runMemoalias(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch f := n.(type) {
			case *ast.FuncDecl:
				body = f.Body
			case *ast.FuncLit:
				body = f.Body
			default:
				return true
			}
			if body != nil {
				memoaliasFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func memoaliasFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// taints: variables bound to an aliasing-prone memo lookup, keyed by
	// object with the position of the binding.
	taints := make(map[types.Object]token.Pos)
	var rebinds []struct {
		obj types.Object
		pos token.Pos
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false // nested functions are visited on their own
		case *ast.AssignStmt:
			// v, ok := m[k] / v := m[k] / v = m[k] with a memo-like map m.
			// The variable's own type is consulted (not the index
			// expression's, which is a tuple in comma-ok form).
			if len(stmt.Rhs) == 1 {
				if idx, ok := stmt.Rhs[0].(*ast.IndexExpr); ok && memoMapIndex(info, idx) {
					if obj := identObj(info, stmt.Lhs[0]); obj != nil && aliasingProne(obj.Type()) {
						taints[obj] = stmt.Pos()
						return true
					}
				}
			}
			// Any other assignment to a tainted variable clears its taint.
			for _, lhs := range stmt.Lhs {
				if obj := identObj(info, lhs); obj != nil {
					rebinds = append(rebinds, struct {
						obj types.Object
						pos token.Pos
					}{obj, stmt.Pos()})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				switch e := res.(type) {
				case *ast.IndexExpr:
					if memoMapIndex(info, e) && aliasingProne(info.TypeOf(e)) {
						pass.Reportf(e.Pos(), "returns %s straight out of a memo/cache map; return a copy (copy-on-return)", types.ExprString(e))
					}
				case *ast.Ident:
					obj := identObj(info, e)
					if obj == nil {
						continue
					}
					tpos, tainted := taints[obj]
					if !tainted || tpos > stmt.Pos() {
						continue
					}
					cleared := false
					for _, rb := range rebinds {
						if rb.obj == obj && rb.pos > tpos && rb.pos < stmt.Pos() {
							cleared = true
							break
						}
					}
					if !cleared {
						pass.Reportf(e.Pos(), "returns %s, read from a memo/cache map and never copied; return a copy (copy-on-return)", e.Name)
					}
				}
			}
		}
		return true
	})
}

// memoMapIndex reports whether idx indexes a memo-like map.
func memoMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return false
	}
	return memoLike(info, idx.X)
}

// memoLike walks the selector chain of e looking for memo/cache in an
// identifier or in the named type of any prefix.
func memoLike(info *types.Info, e ast.Expr) bool {
	for {
		if nameSuggestsMemo(types.ExprString(e)) {
			return true
		}
		if n := derefNamed(info.TypeOf(e)); n != nil && nameSuggestsMemo(n.Obj().Name()) {
			return true
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		e = sel.X
	}
}

func nameSuggestsMemo(s string) bool {
	s = strings.ToLower(s)
	return strings.Contains(s, "memo") || strings.Contains(s, "cache")
}

// aliasingProne reports whether returning a value of type t uncopied can
// alias interior state: its underlying type is, or a struct field chain
// reaches, a slice or map. Pointers are deliberate sharing, not aliasing
// leaks, and are exempt.
func aliasingProne(t types.Type) bool {
	return aliasingProneVisit(t, make(map[types.Type]bool))
}

func aliasingProneVisit(t types.Type, visiting map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if visiting[t] {
		return false
	}
	visiting[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Array:
		return aliasingProneVisit(u.Elem(), visiting)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasingProneVisit(u.Field(i).Type(), visiting) {
				return true
			}
		}
	}
	return false
}
