package lint_test

import (
	"testing"

	"spgcmp/internal/lint"
	"spgcmp/internal/lint/linttest"
)

func TestDetrange(t *testing.T)  { linttest.Run(t, "detrange", lint.Detrange) }
func TestWirecodec(t *testing.T) { linttest.Run(t, "wirecodec", lint.Wirecodec) }
func TestMemoalias(t *testing.T) { linttest.Run(t, "memoalias", lint.Memoalias) }
func TestLockguard(t *testing.T) { linttest.Run(t, "lockguard", lint.Lockguard) }
func TestCtxflow(t *testing.T)   { linttest.Run(t, "ctxflow", lint.Ctxflow) }

// TestEngineMirror runs the relevant analyzers together over a fixture
// distilled from real internal/engine code (the WorkerRegistry probe/health
// machinery and the AnalysisCache keys/stats walks), with one seeded
// violation per invariant.
func TestEngineMirror(t *testing.T) {
	linttest.Run(t, "enginemirror", lint.Detrange, lint.Lockguard, lint.Ctxflow)
}
