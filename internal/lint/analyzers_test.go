package lint_test

import (
	"testing"

	"spgcmp/internal/lint"
	"spgcmp/internal/lint/linttest"
)

func TestDetrange(t *testing.T)  { linttest.Run(t, "detrange", lint.Detrange) }
func TestWirecodec(t *testing.T) { linttest.Run(t, "wirecodec", lint.Wirecodec) }
func TestMemoalias(t *testing.T) { linttest.Run(t, "memoalias", lint.Memoalias) }
func TestLockguard(t *testing.T) { linttest.Run(t, "lockguard", lint.Lockguard) }
func TestCtxflow(t *testing.T)   { linttest.Run(t, "ctxflow", lint.Ctxflow) }

// TestScratchArena runs the aliasing and determinism analyzers over a
// fixture distilled from the scratch-arena kernels (core.Scratch plus the
// recttab snapshotInto/publish pair): the blessed copy-through-caller-memory
// shapes must stay silent, the uncopied cache returns must stay findings.
func TestScratchArena(t *testing.T) {
	linttest.Run(t, "scratcharena", lint.Memoalias, lint.Detrange)
}

// TestEngineMirror runs the relevant analyzers together over a fixture
// distilled from real internal/engine code (the WorkerRegistry probe/health
// machinery and the AnalysisCache keys/stats walks), with one seeded
// violation per invariant.
func TestEngineMirror(t *testing.T) {
	linttest.Run(t, "enginemirror", lint.Detrange, lint.Lockguard, lint.Ctxflow)
}
