// Package linttest is the golden-fixture harness for the spglint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library alone. A fixture is one package under testdata/src/<name>; every
// expected finding is declared inline with a trailing comment:
//
//	for k := range m { // want `map iteration order`
//
// Each `want` comment holds one or more back-quoted or double-quoted
// regular expressions, all of which must match findings reported on that
// line. Findings with no matching expectation, and expectations with no
// matching finding, fail the test. Suppressed findings (//spglint:ignore)
// are treated as absent — a fixture line carrying a valid directive and no
// want comment asserts the suppression works.
package linttest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"spgcmp/internal/lint"
)

var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one `// want` declaration in a fixture.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the calling test's directory,
// runs the analyzers over it, and compares the diagnostics against the
// fixture's `// want` comments. The analyzers' package gates are bypassed:
// fixtures have synthetic import paths.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("linttest: fixture %s: %v", fixture, err)
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := lint.LoadDir(moduleDir, dir)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", fixture, err)
	}
	diags, err := lint.Check(pkg, analyzers)
	if err != nil {
		t.Fatalf("linttest: checking fixture %s: %v", fixture, err)
	}

	expectations := collectWants(t, pkg)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, e := range expectations {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// collectWants parses the fixture's `// want` comments.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *lint.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
		pat := m[1]
		if pat == "" {
			pat = m[2]
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no pattern", pos)
	}
	return out
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, which anchors the `go list` export-data resolution.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
