package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"spgcmp/internal/lint"
)

func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	pkg, err := lint.LoadDir("../..", filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// TestSuppression pins the directive semantics down: valid directives
// suppress and carry their reason, bare directives are findings and
// suppress nothing, analyzer lists are respected, and * matches all.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags, err := lint.Check(pkg, []*lint.Analyzer{lint.Detrange})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, unsuppressed, malformed []lint.Diagnostic
	for _, d := range diags {
		switch {
		case d.Analyzer == "spglint":
			malformed = append(malformed, d)
		case d.Suppressed:
			suppressed = append(suppressed, d)
		default:
			unsuppressed = append(unsuppressed, d)
		}
	}

	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed") {
		t.Fatalf("want exactly one malformed-directive finding, got %v", malformed)
	}
	// valid + wildcard suppress their findings; bare and wrongAnalyzer do not.
	if len(suppressed) != 2 {
		t.Fatalf("want 2 suppressed findings (valid, wildcard), got %v", suppressed)
	}
	for _, d := range suppressed {
		if d.Reason == "" {
			t.Errorf("suppressed finding lost its reason: %v", d)
		}
	}
	if len(unsuppressed) != 2 {
		t.Fatalf("want 2 unsuppressed findings (bare, wrongAnalyzer), got %v", unsuppressed)
	}
}

// TestAppliesTo pins the package gating: each analyzer is enforced exactly
// on its configured packages and the empty list means everywhere.
func TestAppliesTo(t *testing.T) {
	if !lint.Detrange.AppliesTo("spgcmp/internal/core") {
		t.Error("detrange must apply to internal/core")
	}
	if lint.Detrange.AppliesTo("spgcmp/internal/service") {
		t.Error("detrange is not enforced on internal/service")
	}
	all := &lint.Analyzer{Name: "x"}
	if !all.AppliesTo("anything") {
		t.Error("empty Packages means every package")
	}
}

// TestRepoIsLintClean runs the full suite over the real module: the tree
// must stay free of unsuppressed findings, and every suppression must carry
// a reason — the same bar the CI lint job enforces, kept close to `go test`.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.All()
	if len(analyzers) != 5 {
		t.Fatalf("the suite must ship five analyzers, got %d", len(analyzers))
	}
	checked := 0
	for _, pkg := range pkgs {
		var active []*lint.Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(pkg.Path) {
				active = append(active, a)
			}
		}
		diags, err := lint.Check(pkg, active)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for _, d := range diags {
			if d.Suppressed {
				if d.Reason == "" {
					t.Errorf("suppression without reason: %v", d)
				}
				continue
			}
			t.Errorf("unsuppressed finding: %v", d)
		}
	}
	if checked == 0 {
		t.Fatal("no packages checked")
	}
}
