package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate onto the
// upstream framework wholesale if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //spglint:ignore
	// directives.
	Name string
	// Doc is the one-paragraph help text shown by `spglint -list`.
	Doc string
	// Packages lists the import paths the analyzer is enforced on; empty
	// means every package. The linttest harness bypasses this gate (fixture
	// packages have synthetic paths).
	Packages []string
	// Run reports findings on one package through pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer is enforced on the package with
// the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *Package
	TypesInfo *types.Info
	diags     []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set when an //spglint:ignore directive covers the
	// finding; Reason carries the directive's written justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", d.Reason)
	}
	return s
}

// ignoreDirective is one parsed //spglint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // "*" matches all
	reason    string
}

func (d *ignoreDirective) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == "*" || a == analyzer {
			return true
		}
	}
	return false
}

const ignorePrefix = "//spglint:ignore"

// parseIgnores scans a package's comments for //spglint:ignore directives.
// Malformed directives (no analyzer list or no reason) are reported as
// findings of the pseudo-analyzer "spglint" — and are themselves
// unsuppressable, so a bare ignore can never silently disable a check.
func parseIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "spglint",
						Pos:      pos,
						Message:  "malformed //spglint:ignore: want `//spglint:ignore <analyzer>[,...] <reason>` — the reason is mandatory",
					})
					continue
				}
				directives = append(directives, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return directives, malformed
}

// applySuppressions marks diagnostics covered by a directive on the same
// line or the line directly above.
func applySuppressions(diags []Diagnostic, directives []ignoreDirective) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "spglint" {
			continue // malformed-directive findings are unsuppressable
		}
		for _, dir := range directives {
			if dir.file != d.Pos.Filename || !dir.matches(d.Analyzer) {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				d.Suppressed = true
				d.Reason = dir.reason
				break
			}
		}
	}
	return diags
}

// Check runs the given analyzers over pkg, applies //spglint:ignore
// suppressions, and returns every diagnostic (suppressed ones included,
// flagged as such) sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	directives, malformed := parseIgnores(pkg.Fset, pkg.Files)
	diags = applySuppressions(diags, directives)
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full spglint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Detrange, Wirecodec, Memoalias, Lockguard, Ctxflow}
}
