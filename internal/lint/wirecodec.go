package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Wirecodec checks that every exported field of a struct reachable from the
// wire seams is JSON-complete: it must carry a json struct tag (so the wire
// name is deliberate, not an accident of the Go identifier) and must not be
// func-, chan-, or unserializable-interface-typed (which encoding/json
// rejects at runtime, turning a shard dispatch into a marshalling error on
// a live cluster).
//
// Wire roots are discovered three ways:
//   - struct types passed to encoding/json Marshal/Unmarshal/Encode/Decode
//     calls in the package;
//   - struct types following the wire naming convention: a Wire prefix or a
//     Request/Response suffix (the engine protocol and service API types);
//   - struct types annotated with a `//spglint:wire` doc comment.
//
// Reachability follows exported fields through pointers, slices, arrays and
// maps, across package boundaries (a field added to core.Options surfaces
// through engine.CellSpec). Types with custom MarshalJSON/MarshalText
// codecs are trusted and not traversed. Embedded structs are traversed but
// are themselves exempt from the tag rule (they marshal inline).
var Wirecodec = &Analyzer{
	Name: "wirecodec",
	Doc: "every exported field reachable from a wire struct must carry a json tag and be " +
		"JSON-serializable (no func/chan/non-empty-interface fields)",
	Packages: []string{
		"spgcmp/internal/benchfmt",
		"spgcmp/internal/engine",
		"spgcmp/internal/mapping",
		"spgcmp/internal/service",
	},
	Run: runWirecodec,
}

const wireDirective = "//spglint:wire"

func runWirecodec(pass *Pass) error {
	roots := wireRoots(pass)
	w := &wireWalker{pass: pass, seen: make(map[*types.Named]bool)}
	for _, r := range roots {
		w.checkNamed(r.typ, r.pos)
	}
	return nil
}

type wireRoot struct {
	typ *types.Named
	pos token.Pos // where to report findings that have no in-package position
}

// wireRoots discovers the package's wire seam types.
func wireRoots(pass *Pass) []wireRoot {
	info := pass.TypesInfo
	var roots []wireRoot
	seen := make(map[*types.Named]bool)
	add := func(t types.Type, pos token.Pos) {
		n := derefNamed(t)
		if n == nil || seen[n] {
			return
		}
		if _, ok := n.Underlying().(*types.Struct); !ok {
			return
		}
		seen[n] = true
		roots = append(roots, wireRoot{typ: n, pos: pos})
	}
	for _, file := range pass.Files {
		// Declared struct types: naming convention and //spglint:wire.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if wireByName(ts.Name.Name) || hasWireDirective(gd, ts) {
					add(obj.Type(), ts.Pos())
				}
			}
		}
		// Arguments of encoding/json calls.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !jsonCodecCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if t := info.TypeOf(arg); t != nil {
					add(t, arg.Pos())
				}
			}
			return true
		})
	}
	return roots
}

// wireByName reports whether a type name follows the wire naming
// convention.
func wireByName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "wire") ||
		strings.HasSuffix(lower, "request") ||
		strings.HasSuffix(lower, "response")
}

func hasWireDirective(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, doc := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, wireDirective) {
				return true
			}
		}
	}
	return false
}

// jsonCodecCall reports whether call is an encoding/json package call or an
// Encode/Decode method call on a json.Encoder/Decoder.
func jsonCodecCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgNameOf(info, sel.X, "encoding/json") {
		switch sel.Sel.Name {
		case "Marshal", "MarshalIndent", "Unmarshal":
			return true
		}
		return false
	}
	if sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode" {
		return false
	}
	recv := derefNamed(info.TypeOf(sel.X))
	return recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Path() == "encoding/json"
}

type wireWalker struct {
	pass *Pass
	seen map[*types.Named]bool
}

// checkNamed validates one named struct and recurses through its fields.
// fallback is where findings are reported when the field's own position is
// not part of this build (types imported from export data).
func (w *wireWalker) checkNamed(n *types.Named, fallback token.Pos) {
	if w.seen[n] {
		return
	}
	w.seen[n] = true
	if hasMethod(n, "MarshalJSON") || hasMethod(n, "UnmarshalJSON") {
		return // custom codec owns its wire form
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	w.checkStruct(n.Obj().Name(), st, fallback)
}

func (w *wireWalker) checkStruct(name string, st *types.Struct, fallback token.Pos) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // encoding/json skips unexported fields
		}
		pos := f.Pos()
		if !w.inPass(pos) {
			pos = fallback
		}
		tag := reflect.StructTag(st.Tag(i))
		jsonTag, hasTag := tag.Lookup("json")
		if jsonTag == "-" {
			continue // explicitly excluded from the wire form
		}
		if !hasTag && !f.Embedded() {
			w.pass.Reportf(pos, "wire struct %s: exported field %s has no json tag", name, f.Name())
		}
		if bad := unserializable(f.Type(), make(map[types.Type]bool)); bad != "" {
			w.pass.Reportf(pos, "wire struct %s: field %s is not JSON-serializable (%s)", name, f.Name(), bad)
		}
		w.recurse(f.Type(), pos)
	}
}

// recurse follows a field type to nested named structs so their fields are
// validated too.
func (w *wireWalker) recurse(t types.Type, fallback token.Pos) {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		w.checkNamed(t, fallback)
	case *types.Pointer:
		w.recurse(t.Elem(), fallback)
	case *types.Slice:
		w.recurse(t.Elem(), fallback)
	case *types.Array:
		w.recurse(t.Elem(), fallback)
	case *types.Map:
		w.recurse(t.Elem(), fallback)
	case *types.Struct:
		w.checkStruct("(anonymous)", t, fallback)
	}
}

func (w *wireWalker) inPass(pos token.Pos) bool {
	if pos == token.NoPos {
		return false
	}
	f := w.pass.Fset.File(pos)
	if f == nil {
		return false
	}
	for _, file := range w.pass.Files {
		if w.pass.Fset.File(file.Pos()) == f {
			return true
		}
	}
	return false
}

// unserializable returns a description of why t cannot round-trip through
// encoding/json, or "" if it can.
func unserializable(t types.Type, visiting map[types.Type]bool) string {
	t = types.Unalias(t)
	if visiting[t] {
		return ""
	}
	visiting[t] = true
	defer delete(visiting, t)
	if n, ok := t.(*types.Named); ok {
		if hasMethod(n, "MarshalJSON") || hasMethod(n, "MarshalText") {
			return ""
		}
		if _, isStruct := n.Underlying().(*types.Struct); isStruct {
			// Named structs are checked as wire structs in their own right
			// (recurse → checkNamed), reporting at their own fields instead
			// of at every field that references them.
			return ""
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Complex64, types.Complex128, types.UnsafePointer:
			return u.String()
		}
		return ""
	case *types.Signature:
		return "func type " + t.String()
	case *types.Chan:
		return "chan type " + t.String()
	case *types.Interface:
		if u.NumMethods() == 0 {
			return "" // any: opaque but marshalable payload
		}
		return "non-empty interface " + t.String()
	case *types.Pointer:
		return unserializable(u.Elem(), visiting)
	case *types.Slice:
		return unserializable(u.Elem(), visiting)
	case *types.Array:
		return unserializable(u.Elem(), visiting)
	case *types.Map:
		if bad := unserializableMapKey(u.Key()); bad != "" {
			return bad
		}
		return unserializable(u.Elem(), visiting)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if bad := unserializable(f.Type(), visiting); bad != "" {
				return bad
			}
		}
		return ""
	}
	return ""
}

// unserializableMapKey rejects map keys encoding/json cannot encode:
// anything but strings, integers, and TextMarshalers.
func unserializableMapKey(k types.Type) string {
	k = types.Unalias(k)
	if n, ok := k.(*types.Named); ok && hasMethod(n, "MarshalText") {
		return ""
	}
	if b, ok := k.Underlying().(*types.Basic); ok {
		if b.Info()&(types.IsString|types.IsInteger) != 0 {
			return ""
		}
	}
	return "map key type " + k.String() + " is not a string, integer, or TextMarshaler"
}
