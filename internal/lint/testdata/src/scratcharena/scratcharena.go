// Package scratcharena is a golden fixture distilled from the per-worker
// scratch-arena kernels (core.Scratch and the recttab snapshot/publish pair):
// it pins the analyzers' verdicts on the arena reuse idiom so the blessed
// shapes stay silent and the anti-idioms stay findings.
//
// The idiom under test: a worker-owned arena hands out windows of its blocks;
// kernels seed private arena-backed tables FROM a shared cache by copying
// into caller memory (snapshotInto), and publish results BACK by copying out
// of arena memory (publish) — the cached value itself must never cross a
// function boundary uncopied.
package scratcharena

type arena struct {
	blocks [][]float64
	cur    int
	off    int
}

// alloc carves a window out of the current block: arena memory is private to
// one goroutine, so handing out sub-slices is the idiom, not a leak.
func (a *arena) alloc(n int) []float64 {
	for {
		if a.cur < len(a.blocks) {
			if blk := a.blocks[a.cur]; a.off+n <= len(blk) {
				out := blk[a.off : a.off+n : a.off+n]
				a.off += n
				return out
			}
			a.cur++
			a.off = 0
			continue
		}
		a.blocks = append(a.blocks, make([]float64, 1024+n))
	}
}

// periodCache mirrors the shared per-period energy-table store the engines
// snapshot from and publish to.
type periodCache struct {
	ecal map[int][]float64
}

// snapshotInto fills the caller's (arena-backed) table from the cache by
// copying: tab is caller memory, not the cached slice, so returning it is
// the blessed shape and must stay silent.
func (pc *periodCache) snapshotInto(key int, tab []float64) []float64 {
	if src, ok := pc.ecal[key]; ok {
		copy(tab, src)
	}
	return tab
}

// leak returns the shared table itself: a caller writing into it (or an
// arena reset recycling it, had it been published uncopied) would poison
// every later snapshot.
func (pc *periodCache) leak(key int) []float64 {
	return pc.ecal[key] // want `straight out of a memo/cache map`
}

// leakLocal is the same aliasing through an untouched local.
func (pc *periodCache) leakLocal(key int) ([]float64, bool) {
	tab, ok := pc.ecal[key]
	if !ok {
		return nil, false
	}
	return tab, true // want `read from a memo/cache map and never copied`
}

// publish merges arena-backed entries into the cache copy-first, so nothing
// in the shared store aliases a worker's arena: blessed, silent.
func (pc *periodCache) publish(key int, tab []float64) {
	dst, ok := pc.ecal[key]
	if !ok {
		dst = make([]float64, len(tab))
		copy(dst, tab)
		pc.ecal[key] = dst
		return
	}
	for i, v := range tab {
		dst[i] = v
	}
}

// totalEnergy folds the cached entries with float addition, which does not
// commute in round-off: map iteration order escapes into the sum.
func (pc *periodCache) totalEnergy() float64 {
	var sum float64
	for _, tab := range pc.ecal { // want `map iteration order`
		for _, v := range tab {
			sum += v
		}
	}
	return sum
}

// footprint sums retained bytes commutatively; the deliberate suppression
// carries its reason, exactly like the production footprint walks.
func (pc *periodCache) footprint() int {
	n := 0
	//spglint:ignore detrange commutative byte sum; iteration order never reaches the result
	for _, tab := range pc.ecal {
		n += len(tab) * 8
	}
	return n
}
