// Package enginemirror mirrors real internal/engine patterns — the
// WorkerRegistry health map and the AnalysisCache keys/stats walks — so the
// analyzers are proven against the shapes they actually police. The code
// here is a distilled copy of engine/registry.go and engine/cache.go
// idioms, with one seeded violation per invariant.
package enginemirror

import (
	"context"
	"net/http"
	"sort"
	"sync"
)

type workerEntry struct {
	url      string
	state    int
	failures int
}

// workerRegistry mirrors engine.WorkerRegistry.
type workerRegistry struct {
	mu      sync.Mutex
	workers map[string]*workerEntry // guarded by mu
	stop    chan struct{}           // guarded by mu
}

// Healthy mirrors the real registry: snapshot under the lock, sort for
// deterministic rendezvous routing — the sorted-keys idiom end to end.
func (r *workerRegistry) Healthy() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, e := range r.workers {
		if e.state == 0 {
			out = append(out, e.url)
		}
	}
	sort.Strings(out)
	return out
}

// Probe mirrors the probe sweep: snapshot URLs under the lock, then probe
// outside it with the caller's context.
func (r *workerRegistry) Probe(ctx context.Context, client *http.Client) {
	urls := r.snapshotURLs()
	for _, u := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/v1/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		r.noteOutcome(u, err)
	}
}

func (r *workerRegistry) snapshotURLs() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.workers))
	for u := range r.workers {
		out = append(out, u)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

func (r *workerRegistry) noteOutcome(url string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[url]
	if e == nil {
		return
	}
	if err != nil {
		e.failures++
	} else {
		e.failures = 0
	}
}

// brokenLen is the seeded lock-discipline violation: a fresh helper
// touching the guarded map without the mutex.
func (r *workerRegistry) brokenLen() int {
	return len(r.workers) // want `workerRegistry.workers is accessed without r.mu held`
}

// brokenProbe is the seeded context violation: a probe loop helper minting
// its own root instead of threading the sweep's context through.
func (r *workerRegistry) brokenProbe(client *http.Client) {
	r.Probe(context.Background(), client) // want `context.Background\(\) mints a fresh root context`
}

// analysisCache mirrors engine.AnalysisCache's stats walk.
type analysisCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
}

type cacheEntry struct {
	key   string
	bytes int64
}

// Keys mirrors AnalysisCache.Keys: collect under the lock, sort after.
func (c *analysisCache) Keys() []string {
	c.mu.Lock()
	var keys []string
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// footprint mirrors the Stats byte walk: the collected order feeds a
// commutative sum, documented via suppression exactly as the real code is.
func (c *analysisCache) footprint() int64 {
	c.mu.Lock()
	walk := make([]*cacheEntry, 0, len(c.entries))
	//spglint:ignore detrange collects map values for a commutative sum; iteration order never reaches the result
	for _, e := range c.entries {
		walk = append(walk, e)
	}
	c.mu.Unlock()
	var b int64
	for _, e := range walk {
		b += e.bytes
	}
	return b
}

// brokenKeys is the seeded determinism violation: handing out the visit
// order without sorting.
func (c *analysisCache) brokenKeys() []string {
	var keys []string
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries { // want `slice append \(keys\) never sorted`
		keys = append(keys, k)
	}
	return keys
}
