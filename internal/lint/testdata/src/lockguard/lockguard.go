// Package lockguard exercises the lockguard analyzer: `guarded by mu`
// field annotations enforced by a lexical lock-before-access heuristic.
package lockguard

import "sync"

type registry struct {
	mu      sync.Mutex
	workers map[string]int // guarded by mu
	epoch   int            // guarded by mu
	name    string         // unannotated: never checked
}

// locked takes the mutex before touching guarded state.
func (r *registry) locked(url string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	return r.workers[url]
}

// unlocked touches guarded state with no lock anywhere in sight.
func (r *registry) unlocked(url string) int {
	return r.workers[url] // want `registry.workers is accessed without r.mu held`
}

// unlockedWrite misses the lock on a write.
func (r *registry) unlockedWrite() {
	r.epoch++ // want `registry.epoch is accessed without r.mu held`
}

// sizeLocked documents a caller-held lock through its name.
func (r *registry) sizeLocked() int {
	return len(r.workers)
}

// closureUnderLock: a lock taken in the method covers its closures.
func (r *registry) closureUnderLock(fn func(int)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	visit := func() {
		fn(len(r.workers))
	}
	visit()
}

// rwGuarded uses an RWMutex; RLock counts as held.
type rwGuarded struct {
	state sync.RWMutex
	seq   []int // guarded by state
}

func (g *rwGuarded) read() int {
	g.state.RLock()
	defer g.state.RUnlock()
	return len(g.seq)
}

func (g *rwGuarded) badRead() int {
	return len(g.seq) // want `rwGuarded.seq is accessed without g.state held`
}

// badAnnotation names a guard that is not a sibling mutex field.
type badAnnotation struct {
	mu    sync.Mutex
	count int // want `does not name a sibling sync.Mutex/RWMutex field` — guarded by lock
}

// notAMutex annotates against a non-mutex sibling.
type notAMutex struct {
	lock  chan struct{}
	items []int // want `does not name a sibling sync.Mutex/RWMutex field` — guarded by lock
}

// suppressed demonstrates //spglint:ignore on a deliberate lock-free read.
func (r *registry) racyLen() int {
	//spglint:ignore lockguard fixture: approximate length read is documented as racy by design
	return len(r.workers)
}
