// Package wirecodec exercises the wirecodec analyzer: JSON-completeness of
// structs reachable from the wire seams.
package wirecodec

import (
	"encoding/json"
	"time"
)

// MapRequest is a wire root by naming convention (Request suffix).
type MapRequest struct {
	Workload string `json:"workload"`
	Seed     int64  // want `exported field Seed has no json tag`
	internal int    // unexported: invisible to encoding/json, not checked
}

// MapResponse nests a payload; reachability follows the field.
type MapResponse struct {
	Best    *Placement `json:"best"`
	Elapsed int        `json:"elapsed_ms"`
}

// Placement is reached from MapResponse, so its fields are wire fields.
type Placement struct {
	Cores  []int         `json:"cores"`
	Notify func()        // want `field Notify is not JSON-serializable \(func type func\(\)\)` `field Notify has no json tag`
	Done   chan struct{} // want `field Done is not JSON-serializable \(chan type chan struct\{\}\)` `field Done has no json tag`
}

// WireCell is a root via the Wire prefix.
type WireCell struct {
	Key     string                    `json:"key"`
	Reducer interface{ Reduce() int } // want `field Reducer is not JSON-serializable \(non-empty interface` `field Reducer has no json tag`
	Payload any                       `json:"payload"` // empty interface: fine
}

// marshaled is a root because it is passed to json.Marshal below.
type marshaled struct {
	Value  float64 `json:"value"`
	Hidden string  // want `exported field Hidden has no json tag`
}

func encode(m marshaled) ([]byte, error) {
	return json.Marshal(m)
}

// annotated is a root via the //spglint:wire directive.
//
//spglint:wire
type annotated struct {
	Count int // want `exported field Count has no json tag`
}

// CustomCodec owns its wire form; its fields are not traversed.
type CustomCodec struct {
	Raw      []byte
	Untagged func()
}

func (c CustomCodec) MarshalJSON() ([]byte, error) { return c.Raw, nil }

// TimedResponse shows trusted marshalers in field position: time.Time has
// MarshalJSON, time.Duration is an integer on the wire.
type TimedResponse struct {
	At   time.Time         `json:"at"`
	Took time.Duration     `json:"took"`
	Keys map[time.Time]int `json:"keys"` // time.Time implements MarshalText: legal key
	Bad  map[Coord]int     `json:"bad"`  // want `map key type wirecodec.Coord is not a string, integer, or TextMarshaler`
	Wrap CustomCodec       `json:"wrap"`
}

// Coord is comparable (a legal Go map key) but not a legal JSON map key.
type Coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// BatchMapRequest mirrors the batch endpoint shape: reachability follows
// the request slice into the per-item struct.
type BatchMapRequest struct {
	Requests []BatchItem `json:"requests"`
	Deadline int64       // want `exported field Deadline has no json tag`
}

// BatchItem is reached from BatchMapRequest, so its fields are wire fields.
type BatchItem struct {
	P int `json:"p"`
	Q int // want `exported field Q has no json tag`
}

// WireStoredOutcome mirrors a content-addressed store entry (Wire prefix
// root) carrying a metrics map and an illegal runtime hook.
type WireStoredOutcome struct {
	Feasible bool               `json:"feasible"`
	Metrics  map[string]float64 `json:"metrics"`
	OnEvict  func()             // want `field OnEvict is not JSON-serializable \(func type func\(\)\)` `field OnEvict has no json tag`
}

// SkipResponse: json:"-" fields are exempt from both rules.
type SkipResponse struct {
	Runtime func() `json:"-"`
	Named   string `json:"named"`
}

// suppressedResponse demonstrates //spglint:ignore.
type suppressedResponse struct {
	//spglint:ignore wirecodec fixture: field deliberately untagged to prove suppression works
	Legacy string
}
