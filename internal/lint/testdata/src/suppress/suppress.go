// Package suppress exercises the suppression machinery itself: a valid
// directive suppresses and records its reason; a bare directive (no reason)
// is a finding of its own and suppresses nothing.
package suppress

func valid(m map[string]float64) float64 {
	var sum float64
	//spglint:ignore detrange values sum into a histogram downstream; order never escapes
	for _, v := range m {
		sum += v
	}
	return sum
}

func bare(m map[string]float64) float64 {
	var sum float64
	//spglint:ignore detrange
	for _, v := range m {
		sum += v
	}
	return sum
}

func wrongAnalyzer(m map[string]float64) float64 {
	var sum float64
	//spglint:ignore ctxflow reason aimed at the wrong analyzer does not suppress detrange
	for _, v := range m {
		sum += v
	}
	return sum
}

func wildcard(m map[string]float64) float64 {
	var sum float64
	//spglint:ignore * wildcard directives suppress any analyzer on the next line
	for _, v := range m {
		sum += v
	}
	return sum
}
