// Package memoalias exercises the memoalias analyzer: copy-on-return for
// values read out of memo/cache maps.
package memoalias

import "sort"

type result struct {
	Chunks [][]int
	Score  float64
}

type solverMemo struct {
	sol     map[string][][]int
	results map[string]result
	scores  map[string]float64
	ptrs    map[string]*result
}

// direct returns the cached slice itself.
func (m *solverMemo) direct(key string) [][]int {
	return m.sol[key] // want `returns m.sol\[key\] straight out of a memo/cache map`
}

// viaLocal leaks the cached slice through an untouched local.
func (m *solverMemo) viaLocal(key string) ([][]int, bool) {
	chunks, ok := m.sol[key]
	if !ok {
		return nil, false
	}
	return chunks, true // want `returns chunks, read from a memo/cache map and never copied`
}

// copied passes the value through a clone helper: the blessed pattern.
func (m *solverMemo) copied(key string) ([][]int, bool) {
	chunks, ok := m.sol[key]
	if !ok {
		return nil, false
	}
	return copyChunks(chunks), true
}

// rebound overwrites the local with a fresh copy before returning it.
func (m *solverMemo) rebound(key string) []int {
	flat, ok := m.flatCache()[key]
	_ = ok
	flat = append([]int(nil), flat...)
	return flat
}

func (m *solverMemo) flatCache() map[string][]int { return nil }

// structValue returns a struct containing a slice field: still aliasing.
func (m *solverMemo) structValue(key string) result {
	return m.results[key] // want `returns m.results\[key\] straight out of a memo/cache map`
}

// scalar values copy on return by definition.
func (m *solverMemo) scalar(key string) float64 {
	return m.scores[key]
}

// pointer caches share deliberately (internally synchronized values).
func (m *solverMemo) pointer(key string) *result {
	return m.ptrs[key]
}

// plainMap is not memo-like: no finding even though the value aliases.
type index struct {
	children map[string][]string
}

func (ix *index) kids(key string) []string {
	return ix.children[key]
}

// sortedCopyKeys shows a memo map participating in ordinary, non-returning
// reads without findings.
func (m *solverMemo) keys() []string {
	out := make([]string, 0, len(m.scores))
	for k := range m.scores {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// suppressed demonstrates //spglint:ignore on the return line.
func (m *solverMemo) suppressed(key string) [][]int {
	return m.sol[key] //spglint:ignore memoalias fixture: caller is package-internal and treats the slice as read-only
}

func copyChunks(chunks [][]int) [][]int {
	out := make([][]int, len(chunks))
	for i, c := range chunks {
		out[i] = append([]int(nil), c...)
	}
	return out
}
