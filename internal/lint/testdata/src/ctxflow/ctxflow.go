// Package ctxflow exercises the ctxflow analyzer: request-path code must
// propagate the incoming context.Context.
package ctxflow

import (
	"context"
	"net/http"
)

// mintBackground severs the caller's cancellation chain.
func mintBackground(workers []string) {
	ctx := context.Background() // want `context.Background\(\) mints a fresh root context`
	for _, w := range workers {
		probe(ctx, w)
	}
}

// mintTODO is no better.
func mintTODO() context.Context {
	return context.TODO() // want `context.TODO\(\) mints a fresh root context`
}

// contextlessRequest drops the context on the floor.
func contextlessRequest(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `http.NewRequest ignores the incoming context`
}

// contextlessGet too.
func contextlessGet(url string) (*http.Response, error) {
	return http.Get(url) // want `http.Get ignores the incoming context`
}

// propagated is the blessed pattern end to end.
func propagated(ctx context.Context, url string, client *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// derived contexts keep the chain intact.
func derived(ctx context.Context, url string, client *http.Client) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return propagated(ctx, url, client)
}

// detachedLoop is a deliberate lifecycle root, annotated with its reason.
func detachedLoop(stop <-chan struct{}, workers []string) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		//spglint:ignore ctxflow fixture: probe loop is process-lifecycle, not request-scoped
		ctx := context.Background()
		for _, w := range workers {
			probe(ctx, w)
		}
	}
}

func probe(ctx context.Context, url string) {
	_ = ctx
	_ = url
}

// --- Solver-shaped patterns, mirroring internal/exact ---

// solverShim is the blessed shape for a context-less interface method
// (core.Heuristic's Solve) delegating to its context-taking twin: the root
// context is annotated with the reason, and everything below threads ctx.
func solverShim(n int) error {
	//spglint:ignore ctxflow fixture: interface compatibility shim; deadline-aware callers use the ctx entry point
	return solverSearch(context.Background(), n)
}

// unannotatedShim is the same shape without the annotation and must flag.
func unannotatedShim(n int) error {
	return solverSearch(context.TODO(), n) // want `context.TODO\(\) mints a fresh root context`
}

// solverSearch is the blessed long-search pattern: a hot enumeration loop
// that polls ctx on a cadence instead of per iteration, and unwinds with
// ctx's error as soon as it fires.
func solverSearch(ctx context.Context, n int) error {
	const ctxCheckMask = 1023
	for tick := 0; tick < n; tick++ {
		if tick&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
