// Package detrange exercises the detrange analyzer: map iteration whose
// nondeterministic order escapes into an order-sensitive sink.
package detrange

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// floatAccumulation leaks map order into float round-off.
func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `float accumulation \(sum\)`
		sum += v
	}
	return sum
}

// spelledOutAccumulation does the same without a compound operator.
func spelledOutAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `float accumulation \(sum\)`
		sum = sum + v
	}
	return sum
}

// unsortedAppend records the visit order in a slice.
func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `slice append \(keys\) never sorted`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeysIdiom is the blessed pattern: append, sort, then iterate.
func sortedKeysIdiom(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// hashWrite streams map entries into a hash in visit order.
func hashWrite(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want `order-dependent write/hash`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

// streamWrite prints entries in visit order.
func streamWrite(m map[string]int, b *strings.Builder) {
	for k, v := range m { // want `ordered stream write \(fmt.Fprintf\)`
		fmt.Fprintf(b, "%s=%d;", k, v)
	}
}

// wireOutput marshals entries in visit order; both the json sink and the
// collecting append are reported.
func wireOutput(m map[string]int) [][]byte {
	var out [][]byte
	for k := range m { // want `wire output \(json.Marshal\)` `slice append \(out\) never sorted`
		b, _ := json.Marshal(k)
		out = append(out, b)
	}
	return out
}

// intCounting is order-insensitive: integer adds commute exactly.
func intCounting(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perKeyAccumulation touches each accumulator entry once per distinct key;
// order cannot reach the result.
func perKeyAccumulation(m map[string]float64, acc map[string]float64) {
	for k, v := range m {
		acc[k] += v
	}
}

// loopLocalAppend rebuilds its slice every iteration; nothing accumulates.
func loopLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// suppressed demonstrates //spglint:ignore on the preceding line.
func suppressed(m map[string]float64) float64 {
	var sum float64
	//spglint:ignore detrange fixture: demonstrating a deliberate, documented exemption
	for _, v := range m {
		sum += v
	}
	return sum
}
