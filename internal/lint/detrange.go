package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrange flags `for range` over maps where the nondeterministic iteration
// order can escape into an order-sensitive sink: float accumulation (float
// addition does not commute in round-off), slice appends (the slice records
// the visit order), hashing / stream writes, or wire output. The sorted-keys
// idiom is recognized: appending to a slice that is passed to a sort or
// slices call later in the same function is deterministic and exempt.
//
// Results proven bit-identical across worker counts and cache states are
// this repo's core guarantee; every sink below is a way a map's order could
// leak into them.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "flag map iteration whose nondeterministic order escapes into float accumulation, " +
		"slice appends (unless sorted afterwards), hashing, or wire output",
	Packages: []string{
		"spgcmp/internal/core",
		"spgcmp/internal/spg",
		"spgcmp/internal/engine",
	},
	Run: runDetrange,
}

// writeSinkMethods are method names treated as order-sensitive stream/hash
// sinks when called inside a map-range body.
var writeSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum32": true, "Sum64": true, "Encode": true,
}

func runDetrange(pass *Pass) error {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			_, body := enclosingFunc(stack)
			for _, reason := range detrangeSinks(pass, rs, body) {
				pass.Reportf(rs.Pos(), "map iteration order escapes into %s; iterate sorted keys instead", reason)
			}
			return true
		})
	}
	return nil
}

// detrangeSinks classifies the order-sensitive escapes of one map range.
// funcBody is the innermost enclosing function body, used to recognize the
// sorted-keys idiom (sort call after the loop).
func detrangeSinks(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) []string {
	info := pass.TypesInfo
	var reasons []string
	// appendTargets maps a loop-external slice variable receiving appends to
	// the expression text reported if it is never sorted.
	appendTargets := make(map[types.Object]string)
	declaredOutside := func(e ast.Expr) types.Object {
		obj := identObj(info, e)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return nil // loop-local: rebuilt every iteration, order cannot accumulate
		}
		return obj
	}
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			switch stmt.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(stmt.Lhs[0]) && !perKeyIndexed(info, rs, stmt.Lhs[0]) {
					reasons = append(reasons, "float accumulation ("+types.ExprString(stmt.Lhs[0])+")")
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range stmt.Rhs {
					if i >= len(stmt.Lhs) {
						break
					}
					// s = s + v with float s: accumulation spelled out.
					if bin, ok := rhs.(*ast.BinaryExpr); ok && isFloat(stmt.Lhs[i]) {
						if obj := declaredOutside(stmt.Lhs[i]); obj != nil &&
							(exprMentions(info, bin, obj) && (bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO)) {
							reasons = append(reasons, "float accumulation ("+types.ExprString(stmt.Lhs[i])+")")
						}
					}
					// s = append(s, ...) onto a slice that outlives the loop.
					if call, ok := rhs.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
							if obj := declaredOutside(stmt.Lhs[i]); obj != nil {
								appendTargets[obj] = types.ExprString(stmt.Lhs[i])
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := stmt.Fun.(*ast.SelectorExpr); ok {
				switch {
				case pkgNameOf(info, sel.X, "fmt") && strings.HasPrefix(sel.Sel.Name, "Fprint"):
					reasons = append(reasons, "ordered stream write (fmt."+sel.Sel.Name+")")
				case pkgNameOf(info, sel.X, "encoding/json"):
					reasons = append(reasons, "wire output (json."+sel.Sel.Name+")")
				case writeSinkMethods[sel.Sel.Name] && info.Selections[sel] != nil:
					reasons = append(reasons, "order-dependent write/hash ("+types.ExprString(sel)+")")
				}
			}
		}
		return true
	})
	for obj, name := range appendTargets {
		if !sortedAfter(info, funcBody, rs, obj) {
			reasons = append(reasons, "slice append ("+name+") never sorted afterwards")
		}
	}
	return reasons
}

// perKeyIndexed reports whether lhs is an index expression keyed by the
// range's own key variable: `acc[k] += v` inside `for k, v := range m`
// touches each accumulator entry exactly once per distinct key, so the
// visit order cannot reach the result.
func perKeyIndexed(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyObj := identObj(info, rs.Key)
	return keyObj != nil && exprMentions(info, idx.Index, keyObj)
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// positioned after the range statement in the enclosing function body — the
// tail half of the sorted-keys idiom.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !pkgNameOf(info, sel.X, "sort") && !pkgNameOf(info, sel.X, "slices") {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(info, arg, obj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
