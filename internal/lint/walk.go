package lint

import (
	"go/ast"
	"go/types"
)

// inspectStack walks file like ast.Inspect but hands fn the stack of
// enclosing nodes (outermost first, n last).
func inspectStack(file *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		return fn(n, stack)
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// stack whose body contains the node at the top, plus its body. The top of
// the stack itself is skipped so a FuncLit can ask for its own enclosure.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// identObj resolves an identifier expression to its object (definition or
// use), or nil for non-identifiers.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgNameOf reports whether e is a reference to the package imported under
// the given import path (e.g. "sort", "net/http").
func pkgNameOf(info *types.Info, e ast.Expr, path string) bool {
	pn, ok := identObj(info, e).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// exprMentions reports whether obj is referenced anywhere inside e.
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// derefNamed unwraps aliases and one level of pointer and returns the named
// type beneath, if any.
func derefNamed(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// hasMethod reports whether t (or *t) has a method with the given name,
// exported or not, declared directly or promoted.
func hasMethod(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
