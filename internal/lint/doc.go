// Package lint is spgcmp's static-analysis suite: five custom analyzers
// that machine-check the invariants every scaling PR has leaned on —
// deterministic iteration order, wire-codable structs, copy-on-return
// memos, mutex discipline, and context propagation. They are compiled into
// the cmd/spglint multichecker and run over ./... in CI; an unsuppressed
// finding fails the build.
//
// The five analyzers:
//
//   - detrange: flags `for range` over maps in internal/core, internal/spg
//     and internal/engine when the (nondeterministic) iteration order can
//     escape into float accumulation, slice appends, hashing, or wire
//     output. The sorted-keys idiom — append the keys to a slice, sort it,
//     iterate the slice — is recognized and exempt.
//
//   - wirecodec: every exported field of a struct reachable from the wire
//     seams (engine cell specs and wire results, mapping.WireMapping, the
//     service request/response types) must carry a json tag and must not be
//     func-, chan-, or unserializable-interface-typed. Wire roots are found
//     three ways: arguments to encoding/json calls, type names matching the
//     wire naming convention (Wire* prefix, *Request/*Response suffix), and
//     explicit `//spglint:wire` annotations.
//
//   - memoalias: functions in internal/core and internal/spg that return
//     values read out of memo/cache maps must return copies (the
//     copy-on-return rule): returning the looked-up slice or map — directly
//     or via an untouched local — aliases cache-private state to the caller.
//     Pointer-valued caches are exempt (sharing internally-synchronized
//     values is their point).
//
//   - lockguard: struct fields annotated `// guarded by mu` (where mu names
//     a sibling sync.Mutex/RWMutex field) must only be accessed in functions
//     that lexically lock that mutex on the same receiver first. Methods
//     whose name ends in "Locked" document a caller-held lock and are
//     exempt. This is an intra-package lexical heuristic, not an
//     inter-procedural proof — it catches the overwhelmingly common slip of
//     touching a guarded map from a new method without taking the lock.
//
//   - ctxflow: request-path code in internal/engine and internal/service
//     must propagate the incoming context.Context: minting
//     context.Background()/context.TODO(), or building requests with the
//     context-less http.NewRequest/http.Get/http.Post helpers, is flagged.
//     Deliberately detached lifecycles (probe loops, async campaign jobs)
//     carry suppression annotations explaining why.
//
// # Suppression
//
// A finding is suppressed by a directive comment on the flagged line or the
// line directly above it:
//
//	//spglint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be * to match any analyzer. The reason is
// mandatory: a directive without one is itself reported (and cannot be
// suppressed). Suppressions are surfaced by `spglint -v` so deliberate
// exemptions stay auditable.
//
// # Implementation note
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) and its analysistest golden-fixture harness
// (internal/lint/linttest), but is built on the standard library alone:
// packages are loaded with `go list -export -deps -json` and type-checked
// against compiler export data via go/importer, so the suite needs no
// dependencies beyond the Go toolchain that builds the repo.
package lint
