package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package: what a Pass sees.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json args...` in dir and returns the
// decoded package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a go/importer that resolves import paths through
// the export-data files recorded by `go list -export`. One importer (and
// one FileSet) must be shared across every type-check that should agree on
// package identity.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load type-checks the packages matching patterns (e.g. "./...") in the
// module rooted at moduleDir and returns them sorted by import path.
// Dependencies are imported from compiler export data, so targets can be
// checked independently of one another and nothing is fetched from the
// network.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir (used by the
// linttest fixture harness; testdata directories are invisible to go list).
// Imports are resolved through export data listed from moduleDir, so
// fixtures may import anything the module's toolchain can build — in
// practice, the standard library.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheckFiles(fset, exportImporter(fset, exports), filepath.Base(dir), files)
}

func typeCheck(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, len(filenames))
	for i, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return typeCheckFiles(fset, imp, path, files)
}

func typeCheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
