// Package randspg generates random series-parallel workflows by recursive
// series and parallel composition (Section 6.1.1), with exact control of the
// stage count and the elevation — the x-axis of Figures 10-13.
package randspg

import (
	"fmt"
	"math/rand"

	"spgcmp/internal/spg"
)

// Params configures a generation.
type Params struct {
	// N is the exact number of stages: N >= 2 for Elevation 1 and
	// N >= Elevation+2 otherwise (an elevation-e SPG needs a carrier stage
	// on every branch, and parallel edges carry no labels).
	N int
	// Elevation is the exact maximum elevation y_max (>= 1).
	Elevation int
	// Seed drives the structure, weights and volumes deterministically.
	Seed int64
	// WeightMin/WeightMax bound the uniform stage weights (Gcycles).
	// Defaults: [0.01, 0.1].
	WeightMin, WeightMax float64
	// CCR, when positive, rescales communication volumes to the target
	// computation-to-communication ratio.
	CCR float64
}

func (p Params) withDefaults() Params {
	if p.WeightMin == 0 && p.WeightMax == 0 {
		p.WeightMin, p.WeightMax = 0.01, 0.1
	}
	return p
}

// minRoot is the smallest stage count of an SPG with elevation e.
func minRoot(e int) int {
	if e == 1 {
		return 2
	}
	return e + 2
}

// minPar is the smallest stage count of a parallel operand contributing
// elevation e: an elevation-1 operand must have an inner stage (3 nodes) to
// carry a shifted label; higher elevations already guarantee inner carriers.
func minPar(e int) int {
	if e == 1 {
		return 3
	}
	return e + 2
}

// maxElev is the largest elevation reachable with n stages.
func maxElev(n int) int {
	if n < 4 {
		return 1
	}
	return n - 2
}

// Generate builds a random SPG with exactly p.N stages and elevation
// p.Elevation.
func Generate(p Params) (*spg.Graph, error) {
	p = p.withDefaults()
	if p.Elevation < 1 {
		return nil, fmt.Errorf("randspg: elevation must be >= 1, got %d", p.Elevation)
	}
	if p.N < minRoot(p.Elevation) {
		return nil, fmt.Errorf("randspg: elevation %d needs at least %d stages, got %d",
			p.Elevation, minRoot(p.Elevation), p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := build(rng, p.N, p.Elevation)
	if g.N() != p.N || g.Elevation() != p.Elevation {
		return nil, fmt.Errorf("randspg: internal error: built (n=%d, e=%d), want (%d, %d)",
			g.N(), g.Elevation(), p.N, p.Elevation)
	}
	spg.RandomizeWeights(g, rng, p.WeightMin, p.WeightMax)
	spg.RandomizeVolumes(g, rng, 0.5, 1.5)
	if p.CCR > 0 {
		spg.ScaleToCCR(g, p.CCR)
	}
	return g, nil
}

// build returns an SPG with exactly n stages and elevation exactly e
// (n >= minRoot(e)).
//
// Composition arithmetic (Section 3.1):
//
//	series(n1, n2)   -> n1 + n2 - 1 stages, elevation max(e1, e2)
//	parallel(n1, n2) -> n1 + n2 - 2 stages, elevation e1 + e2
//
// The parallel elevation sum only holds when both operands carry their
// maximum label on stages that survive the merge (inner stages), which the
// minPar bounds guarantee regardless of the longest-path swap performed by
// the composition rule.
func build(rng *rand.Rand, n, e int) *spg.Graph {
	if e == 1 {
		return unitChain(n)
	}

	// Parallel split: e = e1 + e2; n + 2 = n1 + n2 with ni >= minPar(ei).
	var parE []int
	for e1 := 1; e1 <= e-1; e1++ {
		if minPar(e1)+minPar(e-e1) <= n+2 {
			parE = append(parE, e1)
		}
	}
	// Series split: one side keeps elevation e and needs minRoot(e) stages;
	// the other side needs at least 2. n1 + n2 = n + 1.
	seriesOK := n-1 >= minRoot(e)

	if len(parE) == 0 && !seriesOK {
		// Unreachable when n >= minRoot(e); defensive fallback.
		panic(fmt.Sprintf("randspg: stuck at n=%d e=%d", n, e))
	}

	pParallel := float64(e) / (float64(e) + float64(n)/3.0)
	useParallel := len(parE) > 0 && (!seriesOK || rng.Float64() < pParallel)

	if useParallel {
		e1 := parE[rng.Intn(len(parE))]
		e2 := e - e1
		lo, hi := minPar(e1), n+2-minPar(e2)
		n1 := lo + rng.Intn(hi-lo+1)
		n2 := n + 2 - n1
		return spg.ParallelWith(build(rng, n1, e1), build(rng, n2, e2), spg.MergeKeepFirst)
	}

	// Series: the elevation-carrying side gets nA in [minRoot(e), n-1].
	lo, hi := minRoot(e), n-1
	nA := lo + rng.Intn(hi-lo+1)
	nB := n + 1 - nA
	eB := 1
	if cap := min(e, maxElev(nB)); cap > 1 {
		eB = 1 + rng.Intn(cap)
	}
	a := build(rng, nA, e)
	b := build(rng, nB, eB)
	if rng.Intn(2) == 0 {
		return spg.SeriesWith(a, b, spg.MergeKeepFirst)
	}
	return spg.SeriesWith(b, a, spg.MergeKeepFirst)
}

func unitChain(n int) *spg.Graph {
	w := make([]float64, n)
	v := make([]float64, n-1)
	for i := range w {
		w[i] = 1
	}
	for i := range v {
		v[i] = 1
	}
	g, err := spg.Chain(w, v)
	if err != nil {
		panic(err) // n >= 2 guaranteed by callers
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
