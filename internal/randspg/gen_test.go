package randspg

import (
	"math"
	"testing"
	"testing/quick"

	"spgcmp/internal/spg"
)

// TestExactSizeAndElevation: the generator must hit the requested (n, e)
// exactly across the experiment ranges of the paper (Figures 10-13).
func TestExactSizeAndElevation(t *testing.T) {
	for _, n := range []int{50, 150} {
		maxE := 20
		if n == 150 {
			maxE = 30
		}
		for e := 1; e <= maxE; e++ {
			for seed := int64(0); seed < 5; seed++ {
				g, err := Generate(Params{N: n, Elevation: e, Seed: seed})
				if err != nil {
					t.Fatalf("n=%d e=%d seed=%d: %v", n, e, seed, err)
				}
				if g.N() != n || g.Elevation() != e {
					t.Fatalf("n=%d e=%d seed=%d: got (%d, %d)", n, e, seed, g.N(), g.Elevation())
				}
			}
		}
	}
}

func TestGeneratedGraphsAreValidSPGs(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%91+91)%91 // 10..100
		e := 1 + int(seed%17+17)%17  // 1..17
		if n < e+2 {
			e = 1
		}
		g, err := Generate(Params{N: n, Elevation: e, Seed: seed})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return spg.IsSeriesParallel(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Params{N: 40, Elevation: 6, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{N: 40, Elevation: 6, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("structure not deterministic")
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			t.Fatalf("stage %d differs", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := Generate(Params{N: 40, Elevation: 6, Seed: 1})
	b, _ := Generate(Params{N: 40, Elevation: 6, Seed: 2})
	same := a.M() == b.M()
	if same {
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestCCRScaling(t *testing.T) {
	for _, ccr := range []float64{10, 1, 0.1} {
		g, err := Generate(Params{N: 50, Elevation: 8, Seed: 3, CCR: ccr})
		if err != nil {
			t.Fatal(err)
		}
		if got := spg.CCR(g); math.Abs(got-ccr)/ccr > 1e-9 {
			t.Errorf("CCR = %g, want %g", got, ccr)
		}
	}
}

func TestWeightBounds(t *testing.T) {
	g, err := Generate(Params{N: 60, Elevation: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range g.Stages {
		if s.Weight < 0.01 || s.Weight > 0.1 {
			t.Errorf("stage %d weight %g outside [0.01, 0.1]", i, s.Weight)
		}
	}
}

func TestParamErrors(t *testing.T) {
	if _, err := Generate(Params{N: 1, Elevation: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Generate(Params{N: 10, Elevation: 0}); err == nil {
		t.Error("elevation 0 accepted")
	}
	if _, err := Generate(Params{N: 2, Elevation: 3}); err == nil {
		t.Error("N=2 with elevation 3 accepted")
	}
	if _, err := Generate(Params{N: 4, Elevation: 3}); err == nil {
		t.Error("N=4 with elevation 3 accepted (needs N >= 5)")
	}
}

// TestMinimalSizes: the boundary N = Elevation + 2 must always work.
func TestMinimalSizes(t *testing.T) {
	for e := 2; e <= 25; e++ {
		g, err := Generate(Params{N: e + 2, Elevation: e, Seed: int64(e)})
		if err != nil {
			t.Fatalf("e=%d: %v", e, err)
		}
		if g.N() != e+2 || g.Elevation() != e {
			t.Fatalf("e=%d: got (n=%d, e=%d)", e, g.N(), g.Elevation())
		}
	}
}
