package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	"spgcmp/internal/engine"
)

// --- generalized admission control ---

// admitGate is the service's admission-control primitive: a bounded set of
// active slots fronted by a bounded wait queue, generalizing the original
// shed-immediately semaphores (MaxActiveMaps / MaxActiveRanges). With a zero
// queue it behaves exactly like them — beyond the active bound, shed — and
// with a positive queue a short burst waits for a slot instead of bouncing,
// while anything beyond active+queued still sheds with 429 + Retry-After so
// overload never builds an unbounded backlog.
type admitGate struct {
	active chan struct{} // filled while a slot is held
	queue  chan struct{} // filled while a request waits; nil = shed immediately
}

func newAdmitGate(active, queued int) *admitGate {
	g := &admitGate{active: make(chan struct{}, active)}
	if queued > 0 {
		g.queue = make(chan struct{}, queued)
	}
	return g
}

// errAdmitShed reports that both the active slots and the wait queue were
// full at arrival.
var errAdmitShed = errors.New("service: admission queue full")

// acquire claims an active slot, waiting in the bounded queue when one is
// configured. It returns errAdmitShed when the gate is saturated and
// ctx.Err() when the caller's context ends while queued; on nil the caller
// must release(). A nil ctx waits without a cancellation point — the path
// for detached solvers whose slot turnover is bounded by the solves ahead of
// them.
func (g *admitGate) acquire(ctx context.Context) error {
	select {
	case g.active <- struct{}{}:
		return nil
	default:
	}
	if g.queue == nil {
		return errAdmitShed
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return errAdmitShed
	}
	defer func() { <-g.queue }()
	if ctx == nil {
		g.active <- struct{}{}
		return nil
	}
	select {
	case g.active <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *admitGate) release() { <-g.active }

// capacity is the active-slot bound (for shed messages).
func (g *admitGate) capacity() int { return cap(g.active) }

// --- singleflight coalescing ---

// flight is one in-flight solve shared by every concurrent request for the
// same content key. The leader publishes into the result fields and then
// closes done; the channel close is the happens-before edge that lets
// waiters read them without further locking.
type flight struct {
	done chan struct{}
	res  engine.CellResult // set before done closes
	shed bool              // set before done closes: the solve never ran, admission was saturated
}

// coalescer deduplicates identical in-flight /v1/map workloads: the first
// request for a content key becomes the leader and runs the solve; every
// request that arrives before it finishes joins the same flight and receives
// the identical result. Join-then-solve ordering makes "exactly one solve
// per key at a time" a structural guarantee, not a race outcome.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight // guarded by mu

	solves    atomic.Uint64 // flights led (each is at most one solve)
	coalesced atomic.Uint64 // requests answered by someone else's flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller leads it (and must
// therefore solve and finish it). The empty key — a workload that cannot be
// content-hashed — gets a private flight: it is always led, never shared.
func (c *coalescer) join(key string) (*flight, bool) {
	if key == "" {
		c.solves.Add(1)
		return &flight{done: make(chan struct{})}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.flights[key]; f != nil {
		c.coalesced.Add(1)
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.solves.Add(1)
	return f, true
}

// finish publishes the flight: it is removed from the table first — so a
// request arriving after the result exists starts fresh (and hits the
// result store instead) — and then done is closed, releasing every waiter.
func (c *coalescer) finish(key string, f *flight) {
	if key != "" {
		c.mu.Lock()
		if c.flights[key] == f {
			delete(c.flights, key)
		}
		c.mu.Unlock()
	}
	close(f.done)
}

// coalesceStats snapshots the coalescer's traffic counters for /v1/healthz.
type coalesceStats struct {
	// Solves counts flights led: an upper bound on the solves the map path
	// has ever started (store hits never open a flight).
	Solves uint64 `json:"solves"`
	// Coalesced counts requests that were answered by an already-in-flight
	// identical solve instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
}

func (c *coalescer) stats() coalesceStats {
	return coalesceStats{Solves: c.solves.Load(), Coalesced: c.coalesced.Load()}
}

// --- /v1/map ---

// handleMap answers one workload synchronously, through three layers that
// keep repeat traffic off the solver pool: the content-addressed ResultStore
// (a prior identical solve answers in O(1), byte-identical by per-cell
// determinism), singleflight coalescing (N concurrent identical requests
// share one solve), and only then an admitted full period-selection solve —
// bounded by MaxActiveMaps with a MaxQueuedMaps wait queue, beyond which 429
// + Retry-After sheds. Infeasible workloads — no heuristic succeeds even at
// the 1 s starting period — answer 422 with feasible=false and the failing
// outcomes, distinguishing "the service cannot map this" from request
// errors. A deadline_ms / X-SPG-Deadline budget turns an overrunning wait
// into 504 at the deadline; the abandoned solve still finishes and warms the
// store for the client's retry.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeShedError(w, http.StatusServiceUnavailable, 1, "draining: not accepting new work")
		return
	}
	var req mapRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if err := s.checkGrid(req.P, req.Q); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	budget, hasBudget, err := resolveDeadline(r.Header, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	cell, err := s.cellFor(req.Workload, req.P, req.Q, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Keep placements so the answer is actionable: the response carries the
	// winning mapping, not just its energy. Set before hashing — KeepMappings
	// changes the result payload, so it is part of the content key.
	cell.Spec.Opts.KeepMappings = true
	key := ""
	if k, err := cell.Spec.ContentKey(); err == nil {
		key = k
	}
	// Fast path: a previously solved identical workload answers from the
	// store without touching the coalescer or the admission gate.
	if res, ok := s.store.Get(key); ok {
		res.Key = cell.Spec.Key
		s.writeMapResult(w, res)
		return
	}
	ctx := r.Context()
	if hasBudget {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	f, leads := s.flights.join(key)
	if leads {
		// The solve runs on a side goroutine detached from this request so
		// the handler can answer 504 at its deadline while the solve runs out
		// (bounded by the map gate) and publishes for every other waiter —
		// and warms the store for the client's retry.
		go s.solveFlight(cell, key, f)
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the solve finished")
		return
	}
	if f.shed {
		writeShedError(w, http.StatusTooManyRequests, 1, "%d map requests already executing; retry later", s.maps.capacity())
		return
	}
	res := f.res
	res.Key = cell.Spec.Key
	s.writeMapResult(w, res)
}

// solveFlight is the leader half of one coalesced solve: admit, re-check the
// store (another flight may have stored the key while this request was being
// admitted), solve, store, publish.
func (s *Server) solveFlight(cell engine.Cell, key string, f *flight) {
	if res, ok := s.store.Get(key); ok {
		f.res = res
		s.flights.finish(key, f)
		return
	}
	if err := s.maps.acquire(nil); err != nil {
		f.shed = true
		s.flights.finish(key, f)
		return
	}
	defer s.maps.release()
	res := engine.Solve(cell, s.cache)
	if res.Err == nil {
		s.store.Put(key, res)
	}
	f.res = res
	s.flights.finish(key, f)
}

// writeMapResult renders one solved cell as the /v1/map response.
func (s *Server) writeMapResult(w http.ResponseWriter, res engine.CellResult) {
	if res.Err != nil {
		writeError(w, http.StatusInternalServerError, "workload build failed: %v", res.Err)
		return
	}
	resp := mapResponseFor(res)
	if !res.Feasible {
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// mapResponseFor folds one solved cell into the map response shape: the full
// per-heuristic result plus the winning heuristic's name and placement.
func mapResponseFor(res engine.CellResult) mapResponse {
	resp := mapResponse{Key: res.Key, Feasible: res.Feasible, Result: res.Result}
	if !res.Feasible {
		return resp
	}
	best := res.Result.BestEnergy()
	for _, o := range res.Result.Outcomes {
		if o.OK && o.Energy == best {
			resp.Best = o.Heuristic
			resp.Mapping = o.Mapping
			break
		}
	}
	return resp
}

// --- /v1/map/batch ---

// batchMapRequest is the body of POST /v1/map/batch: up to MaxBatchCells
// /v1/map-shaped requests answered together, with one optional deadline over
// the whole batch.
type batchMapRequest struct {
	Requests []batchMapItem `json:"requests"`
	// DeadlineMS bounds the whole batch in milliseconds; past it the request
	// answers 504. The X-SPG-Deadline header is an equivalent spelling (the
	// body field wins when both are set).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// batchMapItem is one workload of a batch: the mapRequest shape without the
// per-request deadline (the batch deadline covers all of them).
type batchMapItem struct {
	Workload workloadRef `json:"workload"`
	P        int         `json:"p"`
	Q        int         `json:"q"`
	Seed     int64       `json:"seed"`
}

// batchMapResponse answers a batchMapRequest with one result per request, in
// request order. Items are independent: an infeasible or failed item carries
// feasible=false or its error inline instead of failing the batch.
type batchMapResponse struct {
	Results []mapResponse `json:"results"`
}

// handleMapBatch answers many workloads in one request by enumerating them
// into a single engine campaign: on a coordinator the dispatcher fans the
// batch out across the worker cluster with cache affinity, and the result
// store strips previously solved cells before dispatch (duplicates within a
// cold batch each solve — sharing the family analysis — and every later
// occurrence anywhere is an O(1) hit). The
// whole batch is validated before anything executes — a malformed item
// rejects the batch with 400, so partial execution never happens. Admission
// mirrors /v1/map with its own gate (MaxActiveBatches / MaxQueuedBatches):
// beyond it, 429 + Retry-After.
func (s *Server) handleMapBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeShedError(w, http.StatusServiceUnavailable, 1, "draining: not accepting new work")
		return
	}
	var req batchMapRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: empty batch")
		return
	}
	if len(req.Requests) > s.maxBatch {
		writeError(w, http.StatusBadRequest, "bad request: batch has %d requests, limit %d", len(req.Requests), s.maxBatch)
		return
	}
	budget, hasBudget, err := resolveDeadline(r.Header, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	cells := make([]engine.Cell, len(req.Requests))
	for i, item := range req.Requests {
		if err := s.checkGrid(item.P, item.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: request %d: %v", i, err)
			return
		}
		cell, err := s.cellFor(item.Workload, item.P, item.Q, item.Seed)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request: request %d: %v", i, err)
			return
		}
		cell.Spec.Opts.KeepMappings = true
		cells[i] = cell
	}
	if err := s.batches.acquire(r.Context()); err != nil {
		if errors.Is(err, errAdmitShed) {
			writeShedError(w, http.StatusTooManyRequests, 1, "%d batches already executing; retry later", s.batches.capacity())
		} else {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the batch was admitted")
		}
		return
	}
	defer s.batches.release()
	ctx := r.Context()
	if hasBudget {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	// One dispatcher campaign for the whole batch: registry-scheduled when
	// this process coordinates a cluster, the configured executor otherwise.
	ex := s.exec
	if s.registry.Len() > 0 {
		ex = s.disp.Clone()
	}
	results, err := engine.Run(ctx, ex, engine.Campaign{Cells: cells, Cache: s.cache, Store: s.store})
	if errors.Is(err, context.DeadlineExceeded) || (err == nil && errors.Is(ctx.Err(), context.DeadlineExceeded)) {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the batch finished")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "batch failed: %v", err)
		return
	}
	resp := batchMapResponse{Results: make([]mapResponse, len(results))}
	for i, res := range results {
		if res.Err != nil {
			resp.Results[i] = mapResponse{Key: res.Key, Error: res.Err.Error()}
			continue
		}
		resp.Results[i] = mapResponseFor(res)
	}
	writeJSON(w, http.StatusOK, resp)
}
