package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spgcmp/internal/engine"
)

// newServingServer builds a test server with the repeat-traffic fast path
// enabled: a result store plus a one-slot map gate with a queue, so tests
// can hold the slot and observe coalescing deterministically.
func newServingServer(t *testing.T, store *engine.ResultStore) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(Config{
		Cache:         engine.NewAnalysisCache(32),
		Store:         store,
		MaxActiveMaps: 1,
		MaxQueuedMaps: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

const servingMapBody = `{"workload": {"random": {"n": 8, "elevation": 2, "seed": 11, "ccr": 1}}, "p": 2, "q": 2}`

// TestMapCoalescingExactlyOneSolve: N concurrent identical /v1/map requests
// must issue exactly one solve. The map gate's only slot is held while the
// requests arrive, so all of them are provably in flight together: one leads
// the flight (queued on the gate), the rest coalesce onto it; releasing the
// slot lets the single solve run and fan out to every waiter.
func TestMapCoalescingExactlyOneSolve(t *testing.T) {
	store := engine.NewResultStore(64, 0)
	ts, srv := newServingServer(t, store)

	srv.maps.active <- struct{}{} // hold the only solve slot
	const n = 8
	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSONNoFatal(t, ts.URL+"/v1/map", servingMapBody)
			replies <- reply{resp.StatusCode, body}
		}()
	}
	// All n requests must be in flight together before the slot frees: one
	// flight led, n-1 coalesced onto it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.flights.stats()
		if st.Solves == 1 && st.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights never converged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	<-srv.maps.active // release: the one solve runs
	wg.Wait()
	close(replies)
	var first []byte
	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("status %d: %s", r.code, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatalf("coalesced responses differ:\n%s\n%s", first, r.body)
		}
	}
	if st := srv.flights.stats(); st.Solves != 1 || st.Coalesced != n-1 {
		t.Fatalf("coalescing counters moved after the flight: %+v", st)
	}
	if st := store.Stats(); st.Puts != 1 {
		t.Fatalf("the single solve should have stored once, got %d puts", st.Puts)
	}

	// A second wave is pure store traffic: no new flights, byte-identical
	// answers.
	resp, body := postJSONNoFatal(t, ts.URL+"/v1/map", servingMapBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, first) {
		t.Fatalf("warm answer diverged (status %d):\n%s\n%s", resp.StatusCode, body, first)
	}
	if st := srv.flights.stats(); st.Solves != 1 {
		t.Fatalf("store hit opened a flight: %+v", st)
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("no store hit recorded: %+v", st)
	}
}

// postJSONNoFatal is postJSON without the t.Fatal on transport errors being
// load-bearing inside goroutines (t.Fatal must not run off the test
// goroutine).
func postJSONNoFatal(t *testing.T, url, body string) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Errorf("post: %v", err)
		return &http.Response{StatusCode: 0}, nil
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Errorf("read: %v", err)
	}
	return resp, buf.Bytes()
}

// TestMapStoreByteIdentity: /v1/map answers must be byte-identical with the
// result store on and off, cold and warm — the serving half of the
// equivalence bar (the engine half is the experiments store suite).
func TestMapStoreByteIdentity(t *testing.T) {
	off := New(Config{Cache: engine.NewAnalysisCache(32)})
	on := New(Config{Cache: engine.NewAnalysisCache(32), Store: engine.NewResultStore(64, 0)})
	tsOff := httptest.NewServer(off.Handler())
	tsOn := httptest.NewServer(on.Handler())
	t.Cleanup(tsOff.Close)
	t.Cleanup(tsOn.Close)

	bodies := []string{
		`{"workload": {"streamit": "DCT"}, "p": 2, "q": 2}`,
		`{"workload": {"streamit": "DCT", "ccr": 0.5}, "p": 2, "q": 2, "seed": 3}`,
		servingMapBody,
	}
	for _, reqBody := range bodies {
		respOff, wantBody := postJSON(t, tsOff.URL+"/v1/map", reqBody)
		respCold, coldBody := postJSON(t, tsOn.URL+"/v1/map", reqBody)
		respWarm, warmBody := postJSON(t, tsOn.URL+"/v1/map", reqBody)
		if respOff.StatusCode != respCold.StatusCode || respOff.StatusCode != respWarm.StatusCode {
			t.Fatalf("%s: status off=%d cold=%d warm=%d", reqBody, respOff.StatusCode, respCold.StatusCode, respWarm.StatusCode)
		}
		if !bytes.Equal(wantBody, coldBody) {
			t.Fatalf("%s: cold body diverged from store-off:\n%s\n%s", reqBody, coldBody, wantBody)
		}
		if !bytes.Equal(wantBody, warmBody) {
			t.Fatalf("%s: warm body diverged from store-off:\n%s\n%s", reqBody, warmBody, wantBody)
		}
	}
	if st := on.store.Stats(); st.Hits != uint64(len(bodies)) {
		t.Fatalf("expected one warm hit per body, got %+v", st)
	}
}

// TestMapBatch: the batch endpoint answers every item exactly as /v1/map
// would (modulo the per-item status codes a single response can carry), in
// request order, including duplicates and infeasible items.
func TestMapBatch(t *testing.T) {
	store := engine.NewResultStore(64, 0)
	srv := New(Config{Cache: engine.NewAnalysisCache(32), Store: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	items := []string{
		`{"workload": {"streamit": "DCT"}, "p": 2, "q": 2}`,
		servingMapBody,
		`{"workload": {"streamit": "DCT"}, "p": 2, "q": 2}`, // duplicate of item 0
	}
	batch := fmt.Sprintf(`{"requests": [%s, %s, %s]}`, items[0], items[1], items[2])
	resp, body := postJSON(t, ts.URL+"/v1/map/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(items) {
		t.Fatalf("%d results for %d items", len(br.Results), len(items))
	}
	for i, item := range items {
		_, single := postJSON(t, ts.URL+"/v1/map", item)
		var want, got bytes.Buffer
		if err := json.Compact(&want, single); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&got, br.Results[i]); err != nil {
			t.Fatal(err)
		}
		if want.String() != got.String() {
			t.Fatalf("item %d diverged from /v1/map:\n%s\n%s", i, got.String(), want.String())
		}
	}
	// Duplicate items agree with each other.
	if string(br.Results[0]) != string(br.Results[2]) {
		t.Fatal("duplicate batch items diverged")
	}
}

// TestMapBatchValidation: malformed batches reject whole, before anything
// executes.
func TestMapBatchValidation(t *testing.T) {
	srv := New(Config{Cache: engine.NewAnalysisCache(8), MaxBatchCells: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		name, body string
	}{
		{"empty", `{"requests": []}`},
		{"oversized", `{"requests": [` + servingMapBody + `,` + servingMapBody + `,` + servingMapBody + `]}`},
		{"bad-item", `{"requests": [{"workload": {"streamit": "NoSuchApp"}, "p": 2, "q": 2}]}`},
		{"bad-grid", `{"requests": [{"workload": {"streamit": "DCT"}, "p": 0, "q": 2}]}`},
		{"unknown-field", `{"requests": [], "nope": 1}`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/map/batch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
	if st := srv.flights.stats(); st.Solves != 0 {
		t.Fatalf("a rejected batch solved something: %+v", st)
	}
}

// TestMapQueuedAdmission: with a queue, a burst beyond MaxActiveMaps waits
// instead of shedding, and only traffic beyond active+queued answers 429 —
// the generalized admission-control semantics.
func TestMapQueuedAdmission(t *testing.T) {
	ts, srv := newServingServer(t, nil) // 1 active slot + 1 queued
	srv.maps.active <- struct{}{}       // hold the slot

	// First request queues (distinct workload: no coalescing in play).
	type reply struct {
		code int
	}
	first := make(chan reply, 1)
	go func() {
		resp, _ := postJSONNoFatal(t, ts.URL+"/v1/map", `{"workload": {"random": {"n": 6, "elevation": 2, "seed": 1, "ccr": 1}}, "p": 2, "q": 2}`)
		first <- reply{resp.StatusCode}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.maps.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Second distinct request: active full, queue full -> immediate 429.
	resp, body := postJSON(t, ts.URL+"/v1/map", `{"workload": {"random": {"n": 6, "elevation": 2, "seed": 2, "ccr": 1}}, "p": 2, "q": 2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	<-srv.maps.active // release: the queued request solves
	if r := <-first; r.code != http.StatusOK {
		t.Fatalf("queued request answered %d, want 200", r.code)
	}
}

// TestHealthzServingStats: the health endpoint surfaces result-store and
// coalescing counters when the store is enabled, and omits the store section
// when it is not.
func TestHealthzServingStats(t *testing.T) {
	store := engine.NewResultStore(64, 0)
	srv := New(Config{Cache: engine.NewAnalysisCache(8), Store: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/v1/map", servingMapBody) // solve + put
	postJSON(t, ts.URL+"/v1/map", servingMapBody) // hit

	var hz struct {
		Status      string                   `json:"status"`
		ResultStore *engine.ResultStoreStats `json:"result_store"`
		Coalescing  *coalesceStats           `json:"coalescing"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	if hz.ResultStore == nil || hz.ResultStore.Puts != 1 || hz.ResultStore.Hits != 1 {
		t.Fatalf("result_store stats wrong: %+v", hz.ResultStore)
	}
	if hz.Coalescing == nil || hz.Coalescing.Solves != 1 {
		t.Fatalf("coalescing stats wrong: %+v", hz.Coalescing)
	}

	plain := New(Config{Cache: engine.NewAnalysisCache(8)})
	tsPlain := httptest.NewServer(plain.Handler())
	t.Cleanup(tsPlain.Close)
	var raw map[string]json.RawMessage
	if code := getJSON(t, tsPlain.URL+"/v1/healthz", &raw); code != http.StatusOK {
		t.Fatal("plain healthz")
	}
	if _, ok := raw["result_store"]; ok {
		t.Fatal("store-less healthz advertises a result store")
	}
	if _, ok := raw["coalescing"]; !ok {
		t.Fatal("healthz lost the coalescing section")
	}
}
